#!/usr/bin/env python
"""Campaign-as-a-service: many tenants, one shared facility.

A facility operator exposes pooled lab capacity behind the multi-tenant
:class:`repro.service.CampaignService` front door.  Three tenants with
different quotas and shares submit campaigns; we watch admission control
push back on an over-eager tenant, deadlines expire, a campaign get
cancelled mid-flight, and fair-share scheduling keep delivered
throughput proportional to shares — then verify the whole run replays
to the same decision hash.

Run:  python examples/campaign_service.py
"""

from repro.core import CampaignSpec
from repro.scale import decision_hash
from repro.service import (AdmissionError, CampaignService, FacilitySlot,
                           TenantQuota, synthetic_runner)
from repro.sim.kernel import Simulator


def build_service(seed: int = 0) -> "tuple[Simulator, CampaignService]":
    sim = Simulator()
    runner = synthetic_runner(sim, seed=seed, mean_experiment_s=300.0)
    service = CampaignService(
        sim, [FacilitySlot(f"slot-{i}", runner) for i in range(4)])
    # Three tiers: a metered walk-in, a standard group, a paid partner
    # entitled to twice the throughput under contention.
    service.register_tenant("walk-in", TenantQuota(
        max_in_flight=1, max_queued=2, experiment_budget=30))
    service.register_tenant("uni-lab", TenantQuota(max_in_flight=4))
    service.register_tenant("partner", TenantQuota(max_in_flight=8,
                                                   share=2.0))
    return sim, service


def spec(name: str, experiments: int = 5) -> CampaignSpec:
    return CampaignSpec(name=name, objective_key="objective",
                        max_experiments=experiments)


def run_scenario(seed: int = 0) -> "tuple[dict, str]":
    sim, service = build_service(seed)
    handles = {}

    # Steady submissions from the two big tenants.
    for i in range(8):
        handles[f"uni-{i}"] = service.submit("uni-lab", spec(f"uni-{i}"))
        handles[f"par-{i}"] = service.submit("partner", spec(f"par-{i}"),
                                             priority=i % 2)
    # The walk-in floods past its bounded queue: explicit rejections.
    rejected = 0
    for i in range(6):
        try:
            handles[f"walk-{i}"] = service.submit("walk-in",
                                                  spec(f"walk-{i}", 3))
        except AdmissionError as exc:
            rejected += 1
            print(f"  rejected: {exc} (reason={exc.reason})")
    # A low-priority campaign with a deadline that cannot be met: every
    # higher-priority campaign dispatches first, so the deadline lapses
    # while it is still queued and the service expires it.
    handles["doomed"] = service.submit("uni-lab", spec("doomed", 2),
                                       priority=-1, deadline=60.0)

    # Cancel one queued partner campaign from inside the simulation.
    def cancel_later():
        yield sim.timeout(400.0)
        handles["par-7"].cancel()
        print(f"  [t={sim.now:.0f}s] cancelled par-7 "
              f"({handles['par-7'].status.value})")

    sim.process(cancel_later())

    # Snapshot mid-run, while every slot is still contended: this is
    # where fair-share (partner share=2.0) shows up as delivered rate.
    sim.run(until=5000.0)
    mid_uni = service.tenant("uni-lab").completed_experiments
    mid_partner = service.tenant("partner").completed_experiments
    sim.run()  # drain to completion

    by_status: dict[str, int] = {}
    for handle in handles.values():
        by_status[handle.status.value] = \
            by_status.get(handle.status.value, 0) + 1
    summary = {
        "statuses": by_status,
        "rejected_at_submit": rejected,
        "fairness": round(service.fairness(), 3),
        "peak_in_system": service.peak_in_system,
        "uni_experiments_mid": mid_uni,
        "partner_experiments_mid": mid_partner,
        "sim_hours": round(sim.now / 3600.0, 2),
    }
    return summary, decision_hash(service.decision_log())


def main() -> None:
    print("=== multi-tenant campaign service ===")
    summary, digest = run_scenario(seed=0)
    print("\noutcomes:")
    for key, value in summary.items():
        print(f"  {key:>20}: {value}")

    # Partner's share=2.0 should show up as ~2x the delivered rate while
    # slots are contended (after the drain, everyone's work is done).
    ratio = summary["partner_experiments_mid"] / max(
        summary["uni_experiments_mid"], 1)
    print(f"\npartner/uni mid-run throughput ratio: {ratio:.2f} "
          f"(share 2.0 vs 1.0)")

    print("\nreplaying the same seed ...")
    _, replay_digest = run_scenario(seed=0)
    assert replay_digest == digest, "determinism broke!"
    print(f"decision hash reproduced: {digest[:16]}…")


if __name__ == "__main__":
    main()
