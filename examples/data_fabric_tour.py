#!/usr/bin/env python
"""Tour of the agent-driven data fabric (dimension 2: M5, M6, M7).

Five labs feed a federated data mesh: instruments emit heterogeneous raw
payloads; the stream processor quality-checks and reduces them; the FAIR
governor repairs metadata/licensing; the metadata extractor annotates
techniques; provenance tracks every record back to its sample; and a
remote site discovers and fetches data across institutional boundaries —
with a restricted record correctly refused export.

Run:  python examples/data_fabric_tour.py
"""

import numpy as np

from repro.core import FederationManager
from repro.data import (AnomalyDetector, DataRecord, MetadataExtractor,
                        QualityAssessor, StreamProcessor)
from repro.labsci import QuantumDotLandscape, Sample


def main() -> None:
    fed = FederationManager(seed=4, n_sites=5, objective_key="plqy",
                            secure=True, with_mesh=True)
    landscape = QuantumDotLandscape(seed=7)
    labs = [fed.add_lab(f"site-{i}", lambda s: landscape) for i in range(3)]
    sim, mesh = fed.sim, fed.mesh

    # -- streaming ingest with quality assessment (M7) --------------------
    node0 = labs[0].mesh_node
    alerts = []
    stream = StreamProcessor(
        sim, QualityAssessor(detector=AnomalyDetector(min_history=8)),
        sink=node0, keep_every=5,
        on_alert=lambda rec, rep: alerts.append(rec.record_id))
    stream.start()

    def produce():
        rng = np.random.default_rng(0)
        for i in range(120):
            params = landscape.space.sample(rng)
            sample = Sample.synthesize(params, landscape, site="site-0")
            m = yield from labs[0].characterization.measure(sample)
            rec = DataRecord.from_measurement(m)
            if i == 60:  # corrupt one record: the QC layer must flag it
                rec.values["plqy"] = 37.0
            stream.submit(rec)

    sim.process(produce())
    sim.run(until=3 * 3600.0)

    print("=== M7: near-real-time stream processing ===")
    print(f"  processed: {stream.stats['processed']}, retained: "
          f"{stream.stats['retained']}, reduced away: "
          f"{stream.stats['reduced']} "
          f"({100 * stream.reduction_ratio():.0f}% reduction)")
    print(f"  anomaly alerts: {stream.stats['alerts']} -> {alerts}")

    # -- FAIR governance (M5 + M6) ------------------------------------------
    governor = node0.governor
    print("\n=== M5/M6: autonomous FAIR governance ===")
    print(f"  records ingested: {len(node0)}; governor repairs: "
          f"{governor.stats['repairs']}")
    print(f"  mean FAIR gain per record: "
          f"{governor.mean_improvement():.3f}")
    print(f"  node mean FAIR score: {node0.mean_fair_score():.3f}")

    # -- metadata extraction on a foreign payload ---------------------------
    extractor = MetadataExtractor()
    sample_rec = node0.local_records()[0]
    ann = extractor.extract(sample_rec.raw, sample_rec.values)
    print(f"  extractor on first record: technique={ann.technique} "
          f"(confidence {ann.confidence:.2f})")

    # -- cross-institution discovery + fetch (M6) -----------------------------
    sim.run(until=sim.now + 10.0)  # let the index replicate
    idp = fed.fabric.provider(labs[1].institution)
    token = idp.issue(f"agent@{labs[1].institution}")
    out = {}

    def remote_browse():
        entries = yield from mesh.discover(
            "site-1", **{"metadata.technique": "photoluminescence"})
        out["n_found"] = len(entries)
        rec = yield from mesh.fetch(entries[0]["record_id"],
                                    to_site="site-1", token=token)
        out["fetched"] = rec.record_id

    sim.process(remote_browse())
    sim.run()
    print("\n=== M6: cross-institutional discovery ===")
    print(f"  site-1 discovered {out['n_found']} PL records, fetched "
          f"{out['fetched']}")

    # -- sovereignty: restricted data stays home --------------------------------
    secret = DataRecord(source="spec.site-0", values={"plqy": 0.99},
                        sensitivity="restricted")
    node0.ingest(secret)
    sim.run(until=sim.now + 5.0)
    from repro.data.mesh import AccessDenied
    denied = {}

    def try_exfiltrate():
        try:
            yield from mesh.fetch(secret.record_id, to_site="site-1",
                                  token=token)
            denied["ok"] = False
        except AccessDenied as exc:
            denied["ok"] = True
            denied["why"] = str(exc)[:70]

    sim.process(try_exfiltrate())
    sim.run()
    print("\n=== zero-trust data sovereignty ===")
    print(f"  restricted record export blocked: {denied['ok']} "
          f"({denied.get('why', '')})")

    # -- provenance --------------------------------------------------------------
    rec0 = node0.local_records()[0]
    completeness = node0.provenance.completeness(rec0.record_id)
    print("\n=== provenance ===")
    print(f"  completeness of ingested records (no campaign context): "
          f"{completeness:.2f}")
    print("  (run examples/quickstart.py with a mesh for full lineages)")


if __name__ == "__main__":
    main()
