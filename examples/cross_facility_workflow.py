#!/usr/bin/env python
"""Cross-facility workflow: the paper's canonical scenario (M2).

"Scientific workflows ... naturally span multiple facilities, e.g.,
synthesizing a material in one lab, characterizing it at national user
facilities, and running simulations on HPC systems" (§1).

A :class:`WorkflowDAG` orchestrates exactly that: synthesis at site-0,
courier shipping to the user facility at site-1, XRD + electron
microscopy there (in parallel), an HPC property simulation running
concurrently with the physical legs, and a final analysis step joining
experiment and computation.

Run:  python examples/cross_facility_workflow.py
"""

from repro import Testbed
from repro.core import WorkflowDAG
from repro.instruments import (ElectronMicroscope, HpcCluster,
                               XRayDiffractometer)
from repro.labsci import QuantumDotLandscape


def main() -> None:
    landscape = QuantumDotLandscape(seed=7)
    built = (Testbed(seed=6, n_sites=3)
             .site("site-0", landscape=landscape)   # synthesis lab
             .build())
    fed, lab = built.fed, built.lab("site-0")
    sim, rngs = fed.sim, fed.rngs

    # The national user facility at site-1 and HPC center at site-2.
    xrd = XRayDiffractometer(sim, "xrd.site-1", "site-1", rngs,
                             scan_time_s=900.0)
    sem = ElectronMicroscope(sim, "sem.site-1", "site-1", rngs,
                             image_time_s=600.0, image_px=64)
    hpc = HpcCluster(sim, "hpc.site-2", "site-2", rngs, n_nodes=32)

    recipe = lab.optimizer.space.sample(rngs.stream("recipe"))

    wf = WorkflowDAG(sim, "materials-pipeline")

    def synthesize(results):
        return lab.synthesis.synthesize(recipe, requester="workflow")

    def ship(results):
        return fed.ship_sample(results["synthesize"], "site-1",
                               shipping_time_s=12 * 3600.0)

    def measure_xrd(results):
        return xrd.measure(results["ship"], requester="workflow")

    def measure_sem(results):
        return sem.measure(results["ship"], requester="workflow")

    def simulate(results):
        # Computation starts immediately — it does not wait for matter.
        return hpc.simulate(landscape, recipe, fidelity="high")

    def analyze(results):
        def gen():
            yield sim.timeout(300.0)  # analysis compute
            measured = results["xrd"].values["crystallinity"]
            predicted = results["simulate"].values["plqy"]
            uniformity = results["sem"].values["uniformity"]
            return {
                "measured_crystallinity": round(measured, 3),
                "predicted_plqy": round(predicted, 3),
                "uniformity": round(uniformity, 3),
                "consistent": abs(measured - predicted) < 0.25,
            }
        return gen()

    wf.add("synthesize", synthesize)
    wf.add("ship", ship, deps=("synthesize",))
    wf.add("xrd", measure_xrd, deps=("ship",), retries=1)
    wf.add("sem", measure_sem, deps=("ship",), retries=1)
    wf.add("simulate", simulate)  # no deps: runs alongside the wet path
    wf.add("analyze", analyze, deps=("xrd", "sem", "simulate"))

    out = {}

    def run():
        out["results"] = yield from wf.run()

    proc = sim.process(run())
    sim.run(until=proc)

    print("=== cross-facility workflow ===")
    for step in ("synthesize", "ship", "xrd", "sem", "simulate", "analyze"):
        start, end = wf.timings[step]
        print(f"  {step:>10}: t+{start / 3600:6.2f} h -> t+{end / 3600:6.2f} h")
    print(f"\ncritical path: {' -> '.join(wf.critical_path())}")
    print(f"total wall time: {sim.now / 3600:.1f} simulated hours")
    print("\nanalysis verdict:")
    for key, value in out["results"]["analyze"].items():
        print(f"  {key:>24}: {value}")
    queued = out["results"]["simulate"]
    print(f"\nHPC job: {queued.nodes} nodes, ran {queued.ran_s / 3600:.1f} h, "
          f"queued {queued.queued_s:.0f} s")


if __name__ == "__main__":
    main()
