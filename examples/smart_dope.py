#!/usr/bin/env python
"""Smart Dope: navigating 10^13 quantum-dot synthesis conditions.

Reproduces the shape of the paper's flagship in-text example (§3.3, ref
[23]): an autonomous fluidic lab exploring a nested discrete-continuous
space of metal-halide quantum-dot syntheses too large for exhaustive
search, using the nested Bayesian optimization strategy of ref [24].

Run:  python examples/smart_dope.py
"""

import numpy as np

from repro.labsci import QuantumDotLandscape
from repro.methods import NestedBayesianOptimizer, RandomSearch

BUDGET = 200


def main() -> None:
    landscape = QuantumDotLandscape(seed=2)
    n_conditions = landscape.n_conditions_at_sdl_resolution()
    print(f"synthesis condition space: {n_conditions:.2e} conditions "
          f"(paper: ~10^13)\n")

    strategies = {
        "nested-BO": NestedBayesianOptimizer(
            landscape.space, np.random.default_rng(0), arm_subset=16),
        "random": RandomSearch(landscape.space, np.random.default_rng(0)),
    }
    trajectories = {}
    for name, opt in strategies.items():
        for _ in range(BUDGET):
            params = opt.ask()
            opt.tell(params, landscape.objective_value(params))
        trajectories[name] = opt.best_trajectory()
        best_v, best_p = opt.best
        print(f"{name:>10}: best PLQY {best_v:.3f} after {BUDGET} "
              f"experiments")
        if name == "nested-BO":
            print(f"{'':>12}chemistries explored: "
                  f"{opt.n_arms_visited}")
            combo, pulls, value = opt.arm_summary()[0]
            print(f"{'':>12}winning chemistry: {combo} "
                  f"({pulls} experiments, best {value:.3f})")

    oracle, _ = landscape.best_estimate(n_random=20_000)
    print(f"\noracle optimum (dense search): {oracle:.3f}")
    for name, traj in trajectories.items():
        milestones = {n: round(traj[n - 1], 3)
                      for n in (25, 50, 100, 200) if n <= len(traj)}
        print(f"{name:>10} best-so-far at n experiments: {milestones}")
    gap = trajectories["nested-BO"][-1] / oracle
    print(f"\nnested-BO reached {100 * gap:.0f}% of the oracle optimum "
          f"with {BUDGET / n_conditions:.1e} of the space sampled")


if __name__ == "__main__":
    main()
