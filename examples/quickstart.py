#!/usr/bin/env python
"""Quickstart: one autonomous laboratory running a closed-loop campaign.

Builds a single AISLE lab site (fluidic reactor + PL spectrometer behind a
vendor protocol and the HAL, digital twin, LLM-orchestrated planner with
Bayesian optimization, verification stack) and runs a quantum-dot
discovery campaign, then prints what happened.

Run:  python examples/quickstart.py
"""

from repro.core import CampaignSpec, FederationManager
from repro.labsci import QuantumDotLandscape


def main() -> None:
    # The federation manager wires the whole stack; one lab is enough here.
    fed = FederationManager(seed=42, n_sites=2, objective_key="plqy")
    lab = fed.add_lab(
        "site-0",
        landscape_factory=lambda site: QuantumDotLandscape(seed=7),
        synthesis_kind="flow",          # fluidic SDL
        vendor="kelvin-sci",            # vendor dialect hidden by the HAL
        planner_mode="hierarchical",    # LLM orchestrates, BO proposes
    )
    orchestrator = fed.make_orchestrator(lab, verified=True)

    spec = CampaignSpec(name="qd-quickstart", objective_key="plqy",
                        max_experiments=60)
    proc = fed.sim.process(orchestrator.run_campaign(spec))
    result = fed.sim.run(until=proc)

    print("=== campaign summary ===")
    for key, value in result.summary().items():
        print(f"  {key:>16}: {value}")
    print(f"\nbest recipe found (PLQY={result.best_value:.3f}):")
    for name, value in sorted(result.best_params.items()):
        print(f"  {name:>16}: {value if isinstance(value, str) else round(value, 3)}")
    hours = result.duration / 3600.0
    print(f"\n{result.n_experiments} experiments in {hours:.2f} simulated "
          f"hours ({result.n_experiments / hours:.1f} experiments/hour)")
    print(f"reagent consumed: {lab.synthesis.reagent_used_mL:.1f} mL")
    best_traj = result.best_trajectory()
    print(f"best-so-far trajectory (every 10th): "
          f"{[round(v, 3) for v in best_traj[::10]]}")


if __name__ == "__main__":
    main()
