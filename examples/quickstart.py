#!/usr/bin/env python
"""Quickstart: one autonomous laboratory running a closed-loop campaign.

Builds a single AISLE lab site (fluidic reactor + PL spectrometer behind a
vendor protocol and the HAL, digital twin, LLM-orchestrated planner with
Bayesian optimization, verification stack) and runs a quantum-dot
discovery campaign, then prints what happened.

Run:  python examples/quickstart.py
"""

from repro import Testbed
from repro.core import CampaignSpec
from repro.labsci import QuantumDotLandscape


def main() -> None:
    # The testbed builder wires the whole stack; one lab is enough here.
    built = (Testbed(seed=42)
             .site("site-0")
             .with_landscape(QuantumDotLandscape(seed=7))
             .with_instruments(synthesis="flow",   # fluidic SDL
                               vendor="kelvin-sci")  # dialect hidden by HAL
             .with_planner(mode="hierarchical")   # LLM orchestrates, BO asks
             .with_verification()
             .build())
    lab = built.lab("site-0")

    spec = CampaignSpec(name="qd-quickstart", objective_key="plqy",
                        max_experiments=60)
    result = built.run(spec, site="site-0")

    print("=== campaign summary ===")
    for key, value in result.report().summary().items():
        print(f"  {key:>16}: {value}")
    print(f"\nbest recipe found (PLQY={result.best_value:.3f}):")
    for name, value in sorted(result.best_params.items()):
        print(f"  {name:>16}: {value if isinstance(value, str) else round(value, 3)}")
    hours = result.duration / 3600.0
    print(f"\n{result.n_experiments} experiments in {hours:.2f} simulated "
          f"hours ({result.n_experiments / hours:.1f} experiments/hour)")
    print(f"reagent consumed: {lab.synthesis.reagent_used_mL:.1f} mL")
    best_traj = result.best_trajectory()
    print(f"best-so-far trajectory (every 10th): "
          f"{[round(v, 3) for v in best_traj[::10]]}")


if __name__ == "__main__":
    main()
