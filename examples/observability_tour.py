#!/usr/bin/env python
"""Observability tour: traced campaigns, span trees, and metrics.

Runs a two-site federated campaign with the full :mod:`repro.obs` stack
wired in — a :class:`~repro.obs.trace.Tracer` turning the orchestrator's
plan/verify/execute/evaluate loop into a span tree, and a shared
:class:`~repro.obs.metrics.MetricsRegistry` collecting counters and
streaming latency histograms from every layer (bus, transport, HAL,
fault tolerance, campaign loop).

Everything is stamped with *simulation* time and a deterministic
sequence number: the exported JSON-lines trace is byte-identical across
runs from the same seed.

Run:  python examples/observability_tour.py
"""

import os
import tempfile

from repro import Testbed
from repro.core import CampaignSpec
from repro.labsci import QuantumDotLandscape
from repro.obs import load_jsonl, metrics_snapshot, write_jsonl

SEED = 11


def build():
    return (Testbed(seed=SEED)
            .with_metrics()          # one registry for the whole federation
            .with_tracing()          # span-tree tracing of every campaign
            .with_knowledge()        # cross-site knowledge sharing (M9)
            .site("site-0", landscape=QuantumDotLandscape(seed=7))
            .with_instruments(synthesis="flow", vendor="kelvin-sci")
            .site("site-1", landscape=QuantumDotLandscape(seed=8))
            .build())


def show_tree(node, depth=0):
    pad = "  " * depth
    attrs = {k: v for k, v in node["attrs"].items() if k != "error"}
    extra = f"  {attrs}" if attrs else ""
    print(f"{pad}{node['name']:<12} t+{node['start']:>9.1f}s  "
          f"dur {node['duration'] or 0.0:>8.1f}s{extra}")
    for child in node["children"]:
        show_tree(child, depth + 1)


def main() -> None:
    built = build()
    spec = CampaignSpec(name="obs-tour", objective_key="plqy", target=0.85,
                        max_experiments=12)
    result = built.run(spec, site="site-0")

    print("=== campaign ===")
    print(f"  {result.n_experiments} experiments, "
          f"best PLQY {result.best_value:.3f}, "
          f"stopped: {result.stop_reason}")

    # -- 1. the span tree: the campaign loop, replayed ---------------------
    print("\n=== span tree (first experiment) ===")
    campaign = built.tracer.span_tree()[0]
    show_tree({**campaign, "children": campaign["children"][:1]})

    # -- 2. JSON-lines export: same seed, same bytes -----------------------
    path = os.path.join(tempfile.gettempdir(), "obs_tour_trace.jsonl")
    n = write_jsonl(built.tracer, path)
    print(f"\n=== trace export ===\n  {n} events -> {path}")
    roundtrip = load_jsonl(path)
    assert [e.seq for e in roundtrip] == [e.seq for e in built.tracer.events]
    second = build()
    second.run(spec, site="site-0")
    path2 = os.path.join(tempfile.gettempdir(), "obs_tour_trace2.jsonl")
    write_jsonl(second.tracer, path2)
    with open(path, "rb") as a, open(path2, "rb") as b:
        identical = a.read() == b.read()
    print(f"  re-run from seed {SEED}: byte-identical = {identical}")
    assert identical, "determinism contract violated"

    # -- 3. the metrics registry: every layer, one snapshot ----------------
    print("\n=== metrics snapshot (site-0) ===")
    snap = metrics_snapshot(built.metrics, site="site-0")
    for name, value in snap["counters"].items():
        if value:
            print(f"  {name:<60} {value:g}")
    print("\n=== latency histograms ===")
    for name, summary in snap["histograms"].items():
        if summary["count"]:
            print(f"  {name}: n={summary['count']} "
                  f"p50={summary['p50']:.2f}s p95={summary['p95']:.2f}s "
                  f"p99={summary['p99']:.2f}s")


if __name__ == "__main__":
    main()
