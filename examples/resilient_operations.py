#!/usr/bin/env python
"""Fault-tolerant federated operations under adversity (M3, E11).

An autonomous campaign keeps making progress while we injure it:
instrument faults (short MTBF), a WAN link failure, a crashed planner
agent (restarted by the supervisor), and failover of execution to a
second site.

Run:  python examples/resilient_operations.py
"""

from repro.agents import Supervisor
from repro.core import CampaignSpec, FederationManager
from repro.labsci import QuantumDotLandscape


def main() -> None:
    fed = FederationManager(seed=9, n_sites=3, objective_key="plqy")
    primary = fed.add_lab("site-0",
                          lambda s: QuantumDotLandscape(seed=7),
                          mtbf_hours=0.4, repair_time_s=1800.0)
    backup = fed.add_lab("site-1", lambda s: QuantumDotLandscape(seed=7))
    orch = fed.make_orchestrator(primary, verified=True,
                                 fault_tolerant=True, alternates=[backup])

    # Agent-level supervision (heartbeats + restart).
    for agent in (primary.planner, primary.executor, primary.evaluator):
        agent.start()
    supervisor = Supervisor(fed.sim, check_interval_s=10.0,
                            restart_delay_s=60.0)
    for agent in (primary.planner, primary.executor, primary.evaluator):
        supervisor.watch(agent)
    supervisor.start()

    # Scripted adversity, declared up front through the chaos controller
    # (no hand-rolled gremlin process).
    fed.chaos.cut_link("site-0", "site-1", at_s=900.0, duration_s=600.0)
    fed.chaos.crash_agent(primary.planner, at_s=1500.0)

    spec = CampaignSpec(name="resilient", objective_key="plqy",
                        max_experiments=80)
    proc = fed.sim.process(orch.run_campaign(spec))
    result = fed.sim.run(until=proc)

    print("\n=== campaign under fire ===")
    for key, value in result.report().summary().items():
        print(f"  {key:>16}: {value}")
    print("\nchaos injections:")
    for t, kind, detail in fed.chaos.log:
        print(f"  [{t:8.0f}s] {kind:<14} {detail[:60]}")
    ft = orch.fault_tolerant
    print("\nfault-tolerance events:")
    for t, kind, detail in ft.events[:12]:
        print(f"  [{t:8.0f}s] {kind:<14} {detail[:60]}")
    print(f"\nsupervisor restarts: {supervisor.restart_count()}")
    print(f"instrument faults handled: {ft.stats['faults_handled']}, "
          f"repairs: {ft.stats['repairs']}, failovers: {ft.stats['failovers']}")
    print(f"campaign still completed {result.n_experiments}/80 experiments "
          f"with best PLQY {result.best_value:.3f}")


if __name__ == "__main__":
    main()
