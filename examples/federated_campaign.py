#!/usr/bin/env python
"""Federated discovery: joining the AISLE network vs going it alone.

Reproduces the paper's central promise (M9): knowledge propagating across
interconnected laboratories reduces the experiments each lab needs.  Two
established facilities run perovskite-nanocrystal campaigns and publish
observations into the federation's knowledge base; a third lab then
pursues the same brightness target either **isolated** (policy "none") or
**integrated** (bias-corrected sharing).  Every site's instruments carry
site-specific calibration offsets, which the transfer adapter corrects.

Run:  python examples/federated_campaign.py
"""

from repro.core import (CampaignSpec, FederationManager,
                        experiments_to_target)
from repro.labsci import PerovskiteLandscape

TARGET = 0.35
DONOR_BUDGET = 50
JOINER_BUDGET = 80


def landscape(site: str) -> PerovskiteLandscape:
    return PerovskiteLandscape(seed=5, site=site, calibration_scale=1.0)


def run_joiner(policy: str) -> int:
    fed = FederationManager(seed=11, n_sites=4, objective_key="plqy")
    donors = [fed.add_lab(f"site-{i}", landscape) for i in (0, 1)]
    joiner = fed.add_lab("site-2", landscape)
    kb = fed.make_knowledge_base(policy=policy)

    # Established facilities work first, publishing as they go.
    for lab in donors:
        orch = fed.make_orchestrator(lab, verified=True, knowledge=kb)
        spec = CampaignSpec(name=f"donor-{lab.name}", objective_key="plqy",
                            max_experiments=DONOR_BUDGET)
        proc = fed.sim.process(orch.run_campaign(spec))
        fed.sim.run(until=proc)

    # The new lab joins and chases the target.
    joiner.evaluator.target = TARGET
    orch = fed.make_orchestrator(joiner, verified=True, knowledge=kb)
    spec = CampaignSpec(name="joiner", objective_key="plqy", target=TARGET,
                        max_experiments=JOINER_BUDGET)
    proc = fed.sim.process(orch.run_campaign(spec))
    result = fed.sim.run(until=proc)
    return experiments_to_target(result, TARGET) or JOINER_BUDGET


def main() -> None:
    print(f"target PLQY: {TARGET}  |  joiner budget: {JOINER_BUDGET}\n")
    needed = {}
    for policy in ("none", "corrected"):
        needed[policy] = run_joiner(policy)
        label = ("isolated lab (pre-AISLE)" if policy == "none"
                 else "integrated lab (AISLE)")
        print(f"{label:>26}: {needed[policy]} experiments to target")
    reduction = 100.0 * (1.0 - needed["corrected"] / needed["none"])
    print(f"\nknowledge integration reduced required experiments by "
          f"{reduction:.0f}% (M9 target: >30%)")


if __name__ == "__main__":
    main()
