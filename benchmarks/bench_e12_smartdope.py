"""E12 (§3.3 in-text claim, ref [23]): Smart Dope's 10^13-condition space.

Paper claim: "Smart Dope, which navigates 10^13 possible synthesis
conditions to discover optimal quantum dot formulations", enabled by
"nested discrete-continuous Bayesian optimization strategies" [24].

Nested BO, flat BO, random, and grid search each get a few-hundred-
experiment budget on the quantum-dot landscape (whose condition count at
SDL resolution exceeds 10^13 — asserted).  Metric: best PLQY found and
fraction of the oracle optimum, plus the acquisition-function ablation
from DESIGN.md.
"""

import numpy as np

from benchmarks.conftest import fmt, report, run_seeded
from repro.labsci import QuantumDotLandscape
from repro.methods import (BayesianOptimizer, GridSearch,
                           NestedBayesianOptimizer, RandomSearch)

BUDGET = 150
SEEDS = (0, 1, 2)
STRATEGIES = ("nested-BO", "flat-BO", "random", "grid")


def _make_strategy(name: str, space, rng, acquisition=None):
    if name == "nested-BO":
        inner = {"acquisition": acquisition} if acquisition else None
        return NestedBayesianOptimizer(space, rng, arm_subset=16,
                                       inner_kwargs=inner)
    if name == "flat-BO":
        return BayesianOptimizer(space, rng, n_init=10, n_candidates=256)
    if name == "random":
        return RandomSearch(space, rng)
    if name == "grid":
        return GridSearch(space, points_per_dim=3)
    raise ValueError(f"unknown strategy {name!r}")


def _run_strategy(seed: int, config: dict) -> dict:
    """World entrypoint: one strategy, one seed, full budget (picklable)."""
    landscape = QuantumDotLandscape(seed=2)
    opt = _make_strategy(config["strategy"], landscape.space,
                         np.random.default_rng(seed),
                         config.get("acquisition"))
    for _ in range(BUDGET):
        params = opt.ask()
        opt.tell(params, landscape.objective_value(params))
    return {"best": float(opt.best[0]),
            "trajectory": [float(v) for v in opt.best_trajectory()]}


def test_e12_smartdope(bench_once):
    landscape = QuantumDotLandscape(seed=2)

    def scenario():
        out = {name: run_seeded(_run_strategy, SEEDS, {"strategy": name})
               for name in STRATEGIES}
        oracle, _ = landscape.best_estimate(n_random=20_000)
        # Acquisition ablation on the nested inner loop.
        ablation = {}
        for acq in ("ei", "ucb", "thompson"):
            (run,) = run_seeded(_run_strategy, (7,),
                                {"strategy": "nested-BO", "acquisition": acq})
            ablation[acq] = run["best"]
        return out, oracle, ablation

    out, oracle, ablation = bench_once(scenario)
    n_conditions = landscape.n_conditions_at_sdl_resolution()
    print(f"\ncondition space at SDL resolution: {n_conditions:.2e} "
          f"(paper: ~10^13); oracle optimum: {oracle:.3f}")
    rows = []
    means = {}
    for name, runs in out.items():
        bests = [r["best"] for r in runs]
        means[name] = float(np.mean(bests))
        at50 = float(np.mean([r["trajectory"][49] for r in runs]))
        rows.append([name, fmt(means[name]), fmt(at50),
                     fmt(means[name] / oracle, 2)])
    report(
        f"E12: best PLQY after {BUDGET} experiments in a 10^13 space "
        "(mean of 3 seeds)",
        ["strategy", "best@150", "best@50", "fraction of oracle"],
        rows)
    report(
        "E12b: acquisition ablation (nested inner loop)",
        ["acquisition", "best@150"],
        [[acq, fmt(v)] for acq, v in sorted(ablation.items())])

    assert n_conditions >= 1e13
    assert means["nested-BO"] > means["random"] * 1.2, \
        "nested BO must decisively beat random search"
    assert means["nested-BO"] > means["grid"], \
        "grid search cannot navigate a space this size"
    # The oracle is itself an estimate; the vectorized best_estimate
    # finds a better optimum on this landscape (0.846 -> 0.912), which
    # tightened the denominator without the optimizer changing.  The bar
    # in absolute PLQY is nearly unchanged: 0.45 * 0.912 = 0.410 vs the
    # old 0.5 * 0.846 = 0.423.
    assert means["nested-BO"] >= 0.45 * oracle, \
        "should reach a substantial fraction of the optimum"
    # Every acquisition variant is functional.
    assert all(v > means["random"] * 0.8 for v in ablation.values())
