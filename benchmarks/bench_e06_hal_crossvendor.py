"""E6 (milestones M1/M10): vendor-agnostic hardware abstraction.

Paper target: "common integration interfaces for scientific instruments
with vendor-agnostic hardware abstraction layers" (M1), "demonstrating
cross-vendor instrument control" (M10).

The same canonical workflow (prepare -> synthesize -> measure) is run
against instruments from four vendor protocol dialects, once through the
HAL and once by a client that only speaks the canonical interface
directly to the native endpoints.  With the HAL everything works; without
it, only the vendor whose dialect coincides with the canonical interface
does.
"""

import numpy as np

from benchmarks.conftest import report
from repro.instruments import (BatchSynthesisRobot, HardwareAbstractionLayer,
                               OperationRequest, PLSpectrometer,
                               VENDOR_DIALECTS, VendorError,
                               make_vendor_protocol)
from repro.labsci import QuantumDotLandscape
from repro.sim import RngRegistry, Simulator

VENDORS = tuple(sorted(VENDOR_DIALECTS))


def _bench_world():
    sim = Simulator()
    rngs = RngRegistry(7)
    landscape = QuantumDotLandscape(seed=7)
    params = landscape.space.sample(np.random.default_rng(0))
    hal = HardwareAbstractionLayer()
    rigs = {}
    for vendor in VENDORS:
        robot = BatchSynthesisRobot(sim, f"robot-{vendor}", "site-0", rngs,
                                    landscape, batch_time_s=60.0)
        spec = PLSpectrometer(sim, f"spec-{vendor}", "site-0", rngs,
                              scan_time_s=10.0)
        hal.register(make_vendor_protocol(robot, vendor))
        hal.register(make_vendor_protocol(spec, vendor))
        rigs[vendor] = (robot, spec)
    return sim, hal, rigs, params


def _workflow_via_hal(sim, hal, vendor, params):
    def flow():
        sample = yield from hal.execute(
            f"robot-{vendor}",
            OperationRequest(operation="synthesize", params=dict(params)))
        m = yield from hal.execute(
            f"spec-{vendor}",
            OperationRequest(operation="measure", sample=sample))
        return m.values["plqy"]

    proc = sim.process(flow())
    return sim.run(until=proc)


def _workflow_without_hal(sim, rigs, vendor, params):
    robot, spec = rigs[vendor]
    proto_r = make_vendor_protocol(robot, vendor)
    proto_s = make_vendor_protocol(spec, vendor)

    def flow():
        # A canonical-only client: canonical command names + flat params.
        sample = yield from proto_r.invoke("synthesize", dict(params))
        m = yield from proto_s.invoke("measure", None, sample=sample)
        return m.values["plqy"]

    proc = sim.process(flow())
    try:
        return sim.run(until=proc), None
    except VendorError as exc:
        return None, str(exc)


def test_e06_hal_crossvendor(bench_once):
    def scenario():
        sim, hal, rigs, params = _bench_world()
        with_hal = {v: _workflow_via_hal(sim, hal, v, params)
                    for v in VENDORS}
        without = {v: _workflow_without_hal(sim, rigs, v, params)
                   for v in VENDORS}
        return with_hal, without

    with_hal, without = bench_once(scenario)
    rows = []
    for vendor in VENDORS:
        ok_hal = with_hal[vendor] is not None
        plqy, err = without[vendor]
        rows.append([vendor, "ok" if ok_hal else "FAIL",
                     "ok" if plqy is not None else "FAIL",
                     (err or "")[:48]])
    report(
        "E6: cross-vendor workflow success (M1/M10)",
        ["vendor dialect", "via HAL", "canonical direct", "direct error"],
        rows)

    # With the HAL: all four vendors controllable, identical results.
    values = list(with_hal.values())
    assert all(v is not None for v in values)
    assert max(values) - min(values) < 0.2  # same recipe, noise apart
    # Without: only the dialect matching the canonical interface works.
    assert without["aisle-ref"][0] is not None
    for vendor in ("kelvin-sci", "helios", "custom-lab"):
        assert without[vendor][0] is None
