"""A2 (ablation, M4): human override vs automated verification vs both.

"Robust human-in-the-loop safeguards that allow operators to override
autonomous agents sending laboratory robots out-of-specification
commands" (M4) — but §3.5 also warns that humans are imperfect monitors
(complacency, limited attention).  This ablation quantifies the layering:
a hallucinating LLM-direct planner is screened by (a) nothing, (b) a
human operator alone, (c) the automated stack alone, (d) both.

Expected shape: the operator alone helps but misses what complacency and
finite skill let through; automation alone is near-perfect on encoded
constraints; the combination is at least as good as automation and costs
only the review latency.
"""

import numpy as np

from benchmarks.conftest import fmt, report
from repro.core import CampaignSpec, FederationManager, VerificationStack
from repro.core.orchestrator import HierarchicalOrchestrator
from repro.hitl import OperatorOverride, TrustModel
from repro.labsci import QuantumDotLandscape

BUDGET = 40
SEEDS = (3, 17)
HALLUCINATION = 0.35


def _run(config: str, seed: int):
    fed = FederationManager(seed=seed, n_sites=2, objective_key="plqy")
    lab = fed.add_lab("site-0", lambda s: QuantumDotLandscape(seed=7),
                      planner_mode="llm-direct",
                      hallucination_rate=HALLUCINATION)
    operator = OperatorOverride(
        fed.sim, fed.rngs.stream(f"operator/{seed}"),
        trust=TrustModel(initial=0.5),
        safety_envelope=dict(lab.twin.safety_envelope),
        detection_skill=0.85, review_time_s=45.0)

    verification = None
    if config != "none":
        verifiers = []
        if config in ("automated", "both"):
            verifiers.extend(fed.verification_stack(lab).verifiers)
        if config in ("operator", "both"):
            verifiers.append(operator)
        verification = VerificationStack(fed.sim, verifiers)

    orch = HierarchicalOrchestrator(fed.sim, lab.planner, lab.executor,
                                    lab.evaluator,
                                    verification=verification)
    spec = CampaignSpec(name=f"a2-{config}", objective_key="plqy",
                        max_experiments=BUDGET)
    proc = fed.sim.process(orch.run_campaign(spec))
    result = fed.sim.run(until=proc)
    return result, operator


def test_a02_operator_override(bench_once):
    configs = ("none", "operator", "automated", "both")

    def scenario():
        return {c: [_run(c, s) for s in SEEDS] for c in configs}

    results = bench_once(scenario)
    rows = []
    correctness = {}
    for config in configs:
        runs = results[config]
        c = float(np.mean([r.correctness for r, _ in runs]))
        correctness[config] = c
        vetoes = sum(op.stats["vetoed"] for _, op in runs)
        missed = sum(op.stats["missed_unsafe"] for _, op in runs)
        hours = float(np.mean([r.duration for r, _ in runs])) / 3600.0
        rows.append([config, fmt(c, 3), vetoes, missed, fmt(hours, 2)])
    report(
        "A2 (ablation): who catches the hallucinations? "
        f"(LLM-direct planner, {HALLUCINATION:.0%} hallucination rate)",
        ["screening", "correctness", "operator vetoes",
         "operator misses", "campaign (h)"],
        rows)

    assert correctness["none"] < 0.9          # the problem is real
    assert correctness["operator"] > correctness["none"]
    assert correctness["automated"] >= 0.95   # M8 machinery
    assert correctness["both"] >= correctness["operator"]
    assert correctness["both"] >= 0.95
    # The operator-alone arm must show the complacency failure mode:
    # some unsafe plans slipped past the human.
    assert sum(op.stats["missed_unsafe"]
               for _, op in results["operator"]) > 0
