"""E3 (milestone M9): cross-facility knowledge integration.

Paper target: "Deploy a knowledge integration system with 3+ facilities,
propagating insights across sites in real-time to reduce required
experiments by >30% while achieving >90% scientist approval of reasoning
traces."

Design: two established facilities run perovskite campaigns and publish
their observations into the knowledge base.  A third facility then
pursues the same brightness target, either **cold** (isolated — the
pre-AISLE world) or **integrated** (syncing the federation's knowledge,
raw or bias-corrected).  Metric: experiments the joining facility needs
to reach the target.  All instruments carry site-specific calibration
offsets, which is what the corrected policy must overcome.
"""

import numpy as np

from benchmarks.conftest import fmt, report, run_seeded
from repro.core import (CampaignSpec, FederationManager,
                        experiments_to_target)
from repro.core.metrics import reduction_fraction
from repro.labsci import PerovskiteLandscape

TARGET = 0.35
DONOR_BUDGET = 50
JOINER_BUDGET = 80
SEEDS = (11, 23)


def _landscape(site: str) -> PerovskiteLandscape:
    return PerovskiteLandscape(seed=5, site=site, calibration_scale=1.0)


def _run(seed: int, config: dict):
    """World entrypoint: one knowledge policy on one seed (picklable)."""
    policy = config["policy"]
    fed = FederationManager(seed=seed, n_sites=4, objective_key="plqy")
    donors = [fed.add_lab(f"site-{i}", _landscape) for i in (0, 1)]
    joiner = fed.add_lab("site-2", _landscape)
    kb = fed.make_knowledge_base(policy=policy)

    # Phase 1: the established facilities accumulate and publish knowledge.
    donor_procs = []
    for lab in donors:
        orch = fed.make_orchestrator(lab, verified=True, knowledge=kb)
        spec = CampaignSpec(name=f"donor-{lab.name}", objective_key="plqy",
                            max_experiments=DONOR_BUDGET)
        donor_procs.append(fed.sim.process(orch.run_campaign(spec)))
    for proc in donor_procs:
        fed.sim.run(until=proc)

    # Phase 2: the joining facility chases the target.
    joiner.evaluator.target = TARGET
    orch = fed.make_orchestrator(joiner, verified=True, knowledge=kb)
    spec = CampaignSpec(name="joiner", objective_key="plqy", target=TARGET,
                        max_experiments=JOINER_BUDGET)
    proc = fed.sim.process(orch.run_campaign(spec))
    result = fed.sim.run(until=proc)
    needed = experiments_to_target(result, TARGET) or JOINER_BUDGET
    return {"needed": needed, "traces": list(kb.reasoning_traces())}


def _trace_approval(traces: list, rng) -> float:
    """Panel approval of reasoning traces (M9's >90% criterion).

    A simulated reviewer approves a trace when it names its plan and
    carries a substantive rationale; 5% of reviews are harsh regardless.
    """
    if not traces:
        return 0.0
    approvals = sum(
        1 for t in traces
        if ":" in t and len(t.split(":", 1)[1].strip()) > 5
        and rng.random() > 0.05)
    return approvals / len(traces)


def test_e03_knowledge_integration(bench_once):
    policies = ("none", "raw", "corrected")

    def scenario():
        return {p: run_seeded(_run, SEEDS, {"policy": p}) for p in policies}

    results = bench_once(scenario)
    rng = np.random.default_rng(0)
    means, rows, approval = {}, [], None
    for policy in policies:
        runs = results[policy]
        needed = [r["needed"] for r in runs]
        means[policy] = float(np.mean(needed))
        if policy == "corrected":
            approval = float(np.mean(
                [_trace_approval(r["traces"], rng) for r in runs]))
        rows.append([policy, " / ".join(map(str, needed)),
                     fmt(means[policy], 1),
                     fmt(reduction_fraction(means["none"], means[policy]), 2)])
    report(
        f"E3: experiments for a joining facility to reach PLQY {TARGET} "
        f"(M9 target: >30% reduction)",
        ["knowledge policy", "per-seed", "mean", "reduction vs isolated"],
        rows)
    print(f"reasoning-trace approval (corrected): {approval:.2%} "
          f"(M9 target: >90%)")

    reduction = reduction_fraction(means["none"], means["corrected"])
    assert reduction is not None and reduction > 0.30, \
        f"M9 wants >30% reduction, got {reduction:.0%}"
    # Raw sharing also helps at these (small) calibration offsets; both
    # integrated policies must decisively beat isolation.
    raw_reduction = reduction_fraction(means["none"], means["raw"])
    assert raw_reduction is not None and raw_reduction > 0.30
    assert approval is not None and approval > 0.90
