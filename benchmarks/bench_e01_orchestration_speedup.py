"""E1 (milestone M8): hierarchical agent orchestration vs manual.

Paper target: "achieving 3x speedup over manual orchestration".

Both arms run the same fluidic lab, the same optimizer, and the same
budget of experiments; the only difference is who closes the loop — the
hierarchical agent stack (LLM orchestrates, BO proposes, verification
vets) or a human scientist with realistic decision latency and working
hours.  We report total campaign time and the speedup ratio.
"""

from benchmarks.conftest import fmt, report
from repro.core import CampaignSpec, FederationManager
from repro.labsci import QuantumDotLandscape

BUDGET = 30
SEED = 21


def _run_arm(mode: str):
    fed = FederationManager(seed=SEED, n_sites=2, objective_key="plqy")
    lab = fed.add_lab("site-0", lambda s: QuantumDotLandscape(seed=7))
    spec = CampaignSpec(name=f"e1-{mode}", objective_key="plqy",
                        max_experiments=BUDGET)
    if mode == "manual":
        runner = fed.make_manual(lab, batch_size=4,
                                 decision_delay_s=4 * 3600.0)
    else:
        runner = fed.make_orchestrator(lab, verified=True)
    proc = fed.sim.process(runner.run_campaign(spec))
    return fed.sim.run(until=proc)


def test_e01_orchestration_speedup(bench_once):
    def scenario():
        return {mode: _run_arm(mode) for mode in ("manual", "autonomous")}

    results = bench_once(scenario)
    manual, auto = results["manual"], results["autonomous"]
    ratio = manual.duration / auto.duration
    report(
        "E1: hierarchical orchestration speedup (M8 target: >=3x)",
        ["arm", "experiments", "campaign time (h)", "best PLQY",
         "speedup"],
        [
            ["manual", manual.n_experiments,
             fmt(manual.duration / 3600.0, 1), fmt(manual.best_value), "1.0x"],
            ["autonomous", auto.n_experiments,
             fmt(auto.duration / 3600.0, 1), fmt(auto.best_value),
             f"{ratio:.1f}x"],
        ])

    # Shape assertions per the reproduction contract.
    assert manual.n_experiments == auto.n_experiments == BUDGET
    assert ratio >= 3.0, f"expected >=3x speedup (M8), got {ratio:.1f}x"
    # Same optimizer: scientific quality should be comparable.
    assert auto.best_value >= 0.5 * manual.best_value
