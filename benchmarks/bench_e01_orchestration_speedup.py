"""E1 (milestone M8): hierarchical agent orchestration vs manual.

Paper target: "achieving 3x speedup over manual orchestration".

Both arms run the same fluidic lab, the same optimizer, and the same
budget of experiments; the only difference is who closes the loop — the
hierarchical agent stack (LLM orchestrates, BO proposes, verification
vets) or a human scientist with realistic decision latency and working
hours.  We report total campaign time, the speedup ratio, and the
per-experiment duration distribution from the observability registry.
"""

from benchmarks.conftest import fmt, report
from repro import Testbed
from repro.core import CampaignSpec
from repro.labsci import QuantumDotLandscape

BUDGET = 30
SEED = 21


def _run_arm(mode: str):
    built = (Testbed(seed=SEED)
             .with_metrics()
             .site("site-0", landscape=QuantumDotLandscape(seed=7))
             .with_verification()
             .build())
    spec = CampaignSpec(name=f"e1-{mode}", objective_key="plqy",
                        max_experiments=BUDGET)
    if mode == "manual":
        runner = built.fed.make_manual(built.lab("site-0"), batch_size=4,
                                       decision_delay_s=4 * 3600.0)
        proc = built.sim.process(runner.run_campaign(spec))
        result = built.sim.run(until=proc)
    else:
        result = built.run(spec, site="site-0")
    return result, built.metrics


def test_e01_orchestration_speedup(bench_once):
    def scenario():
        return {mode: _run_arm(mode) for mode in ("manual", "autonomous")}

    results = bench_once(scenario)
    manual, _ = results["manual"]
    auto, auto_metrics = results["autonomous"]
    ratio = manual.duration / auto.duration
    report(
        "E1: hierarchical orchestration speedup (M8 target: >=3x)",
        ["arm", "experiments", "campaign time (h)", "best PLQY",
         "speedup"],
        [
            ["manual", manual.n_experiments,
             fmt(manual.duration / 3600.0, 1), fmt(manual.best_value), "1.0x"],
            ["autonomous", auto.n_experiments,
             fmt(auto.duration / 3600.0, 1), fmt(auto.best_value),
             f"{ratio:.1f}x"],
        ])

    # Per-experiment duration distribution, straight from the registry
    # histogram the orchestrator reports into (no sample list kept).
    hist = auto_metrics.histogram("campaign.experiment_duration",
                                  site="site-0")
    pcts = hist.percentiles()
    report(
        "E1: autonomous per-experiment duration (registry histogram)",
        ["experiments", "p50 (min)", "p95 (min)", "p99 (min)"],
        [[hist.count, fmt(pcts["p50"] / 60.0, 1), fmt(pcts["p95"] / 60.0, 1),
          fmt(pcts["p99"] / 60.0, 1)]])

    # Shape assertions per the reproduction contract.
    assert manual.n_experiments == auto.n_experiments == BUDGET
    assert ratio >= 3.0, f"expected >=3x speedup (M8), got {ratio:.1f}x"
    # Same optimizer: scientific quality should be comparable.
    assert auto.best_value >= 0.5 * manual.best_value
    # The histogram saw every autonomous experiment.
    assert hist.count == BUDGET
    assert pcts["p50"] <= pcts["p95"] <= pcts["p99"]
