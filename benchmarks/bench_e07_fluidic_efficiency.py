"""E7 (§3.1 in-text claim, ref [24]): fluidic SDL acquisition efficiency.

Paper claim: "fluidic SDLs have achieved >100x data acquisition
efficiency over traditional batch methods while maintaining
reproducibility and closed-loop optimization capabilities".

Both platforms run flat out for the same simulated shift (24 h) on the
same landscape, with the realistic SDL access pattern: conditions are
swept in blocks of 25 per chemistry (continuous-knob sweeps amortize the
fluidic line's priming cost; batch synthesis pays its full cycle either
way).  We report samples acquired, reagent consumed, and the two
efficiency ratios (throughput and chemicals-per-datum).  Reproducibility
is checked by replicate spread on each platform.
"""

import numpy as np

from benchmarks.conftest import fmt, report
from repro.instruments import BatchSynthesisRobot, FluidicReactor
from repro.labsci import QuantumDotLandscape
from repro.sim import RngRegistry, Simulator

SHIFT_S = 24 * 3600.0


def _run_platform(kind: str):
    sim = Simulator()
    rngs = RngRegistry(13)
    landscape = QuantumDotLandscape(seed=7)
    rng = np.random.default_rng(1)
    if kind == "flow":
        rig = FluidicReactor(sim, "flow", "site-0", rngs, landscape)
    else:
        rig = BatchSynthesisRobot(sim, "batch", "site-0", rngs, landscape)

    samples = []

    def grind():
        while True:
            # One chemistry block: fix the discrete choices, sweep the
            # process knobs 25 times (the SDL access pattern).
            base = landscape.space.sample(rng)
            for _ in range(25):
                params = dict(base)
                for dim in landscape.space.continuous:
                    params[dim.name] = float(rng.uniform(dim.low, dim.high))
                sample = yield from rig.synthesize(params)
                samples.append(sample)

    sim.process(grind())
    sim.run(until=SHIFT_S)
    return rig, samples


def _replicate_spread(kind: str) -> float:
    """Reproducibility: std of true objective across 10 replicates."""
    sim = Simulator()
    rngs = RngRegistry(14)
    landscape = QuantumDotLandscape(seed=7)
    params = landscape.space.sample(np.random.default_rng(2))
    rig = (FluidicReactor(sim, "flow", "s", rngs, landscape)
           if kind == "flow"
           else BatchSynthesisRobot(sim, "batch", "s", rngs, landscape))
    values = []

    def replicate():
        for _ in range(10):
            sample = yield from rig.synthesize(params)
            values.append(sample.true_property("plqy"))

    proc = sim.process(replicate())
    sim.run(until=proc)
    return float(np.std(values))


def test_e07_fluidic_efficiency(bench_once):
    def scenario():
        platforms = {k: _run_platform(k) for k in ("batch", "flow")}
        spreads = {k: _replicate_spread(k) for k in ("batch", "flow")}
        return platforms, spreads

    platforms, spreads = bench_once(scenario)
    rows = []
    stats = {}
    for kind in ("batch", "flow"):
        rig, samples = platforms[kind]
        n = len(samples)
        reagent = rig.reagent_used_mL
        stats[kind] = (n, reagent)
        rows.append([kind, n, fmt(n / (SHIFT_S / 3600.0), 2),
                     fmt(reagent, 2), fmt(reagent / max(n, 1), 4),
                     fmt(spreads[kind], 4)])
    n_b, reagent_b = stats["batch"]
    n_f, reagent_f = stats["flow"]
    throughput_ratio = n_f / n_b
    chem_ratio = (reagent_b / n_b) / (reagent_f / n_f)
    report(
        "E7: fluidic SDL vs batch over one 24 h shift "
        "(paper: >100x data acquisition efficiency)",
        ["platform", "samples", "samples/h", "reagent (mL)",
         "mL/sample", "replicate std"],
        rows)
    print(f"throughput ratio: {throughput_ratio:.0f}x | "
          f"chemicals-per-datum ratio: {chem_ratio:.0f}x")

    assert throughput_ratio > 100.0, \
        f"paper claims >100x; measured {throughput_ratio:.0f}x"
    assert chem_ratio > 100.0
    # Reproducibility maintained: replicate spread comparable (same truth).
    assert spreads["flow"] <= spreads["batch"] + 1e-6
