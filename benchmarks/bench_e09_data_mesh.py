"""E9 (milestones M6/M7): federated data mesh + near-real-time streams.

Paper targets: "federated data mesh architecture with common APIs,
cross-institutional discovery capabilities, and autonomous FAIR data
governance" (M6); "near real-time data processing infrastructure
supporting high-velocity scientific streams with automated quality
assessment, provenance tracking, and regulatory compliance" (M7).

A five-node mesh ingests a high-velocity instrument stream with injected
corruption; we report stream throughput/reduction/alert recall, FAIR
scores before/after autonomous governance, cross-site discovery and fetch
latency, pass-by-reference savings, and compliance (restricted-record
containment).
"""

import numpy as np

from benchmarks.conftest import fmt, report
from repro.core import FederationManager
from repro.data import (AnomalyDetector, DataRecord, ProxyStore,
                        QualityAssessor, StreamProcessor, fair_score)
from repro.data.mesh import AccessDenied
from repro.labsci import QuantumDotLandscape, Sample

N_RECORDS = 400
N_CORRUPT = 12


def _scenario():
    fed = FederationManager(seed=8, n_sites=5, objective_key="plqy",
                            secure=True, with_mesh=True)
    landscape = QuantumDotLandscape(seed=7)
    labs = [fed.add_lab(f"site-{i}", lambda s: landscape) for i in range(5)]
    sim, mesh = fed.sim, fed.mesh
    node0 = labs[0].mesh_node

    # -- M7: high-velocity stream with corruption injected -------------------
    alerts: list[str] = []
    corrupted: list[str] = []
    stream = StreamProcessor(
        sim, QualityAssessor(detector=AnomalyDetector(min_history=16,
                                                      z_threshold=6.0)),
        sink=node0, keep_every=8, per_record_s=0.002,
        on_alert=lambda rec, rep: alerts.append(rec.record_id))
    stream.start()
    rng = np.random.default_rng(0)
    corrupt_at = set(rng.choice(np.arange(50, N_RECORDS), size=N_CORRUPT,
                                replace=False).tolist())
    fair_before = []

    def produce():
        for i in range(N_RECORDS):
            sample = Sample.synthesize(landscape.space.sample(rng),
                                       landscape, site="site-0")
            m = yield from labs[0].characterization.measure(sample)
            rec = DataRecord.from_measurement(m)
            rec.metadata.pop("technique", None)  # strip, governor must fix
            if i in corrupt_at:
                rec.values["plqy"] = float(rng.uniform(20.0, 60.0))
                corrupted.append(rec.record_id)
            fair_before.append(fair_score(rec).overall)
            stream.submit(rec)

    proc = sim.process(produce())
    sim.run(until=proc)
    sim.run(until=sim.now + 60.0)  # drain + index replication

    # -- M6: cross-institution discovery + fetch --------------------------------
    idp = fed.fabric.provider(labs[3].institution)
    token = idp.issue(f"agent@{labs[3].institution}")
    timings = {}

    def remote_ops():
        t0 = sim.now
        entries = yield from mesh.discover(
            "site-3", **{"metadata.technique": "photoluminescence"})
        timings["discover_s"] = sim.now - t0
        timings["found"] = len(entries)
        t1 = sim.now
        yield from mesh.fetch(entries[0]["record_id"], to_site="site-3",
                              token=token)
        timings["fetch_s"] = sim.now - t1

    proc = sim.process(remote_ops())
    sim.run(until=proc)

    # -- compliance: restricted record refuses export ----------------------------
    secret = DataRecord(source="spec.site-0", values={"plqy": 0.9},
                        sensitivity="restricted")
    node0.ingest(secret)
    sim.run(until=sim.now + 5.0)
    compliance = {}

    def exfiltrate():
        try:
            yield from mesh.fetch(secret.record_id, to_site="site-3",
                                  token=token)
            compliance["blocked"] = False
        except AccessDenied:
            compliance["blocked"] = True

    proc = sim.process(exfiltrate())
    sim.run(until=proc)

    # -- pass-by-reference savings -------------------------------------------------
    peers: dict = {}
    stores = {s: ProxyStore(sim, fed.network, s, peers)
              for s in ("site-0", "site-3")}
    image = np.zeros((512, 512))
    proxy = stores["site-0"].put(image)
    proxy_stats = {}

    def share():
        t0 = sim.now
        yield from stores["site-3"].resolve(proxy)
        proxy_stats["first_s"] = sim.now - t0
        t1 = sim.now
        yield from stores["site-3"].resolve(proxy)
        proxy_stats["cached_s"] = sim.now - t1

    proc = sim.process(share())
    sim.run(until=proc)

    fair_after = [fair_score(r, indexed=r.record_id in mesh.index,
                             schemas=node0.schemas,
                             provenance=node0.provenance).overall
                  for r in node0.local_records()]
    return dict(stream=stream, alerts=alerts, corrupted=corrupted,
                fair_before=float(np.mean(fair_before)),
                fair_after=float(np.mean(fair_after)),
                timings=timings, compliance=compliance,
                proxy_stats=proxy_stats, proxy=proxy)


def test_e09_data_mesh(bench_once):
    out = bench_once(_scenario)
    stream = out["stream"]
    caught = sum(1 for c in out["corrupted"] if c in out["alerts"])
    recall = caught / len(out["corrupted"])
    report(
        "E9a: near-real-time stream processing (M7)",
        ["records", "throughput (rec/s)", "reduction", "alert recall",
         "max backlog"],
        [[stream.stats["processed"], fmt(stream.throughput(), 0),
          fmt(stream.reduction_ratio(), 2), fmt(recall, 2),
          stream.stats["max_backlog"]]])
    report(
        "E9b: FAIR governance + cross-institutional discovery (M6)",
        ["FAIR before", "FAIR after", "discover (ms)", "fetch (ms)",
         "records found", "restricted blocked"],
        [[fmt(out["fair_before"], 2), fmt(out["fair_after"], 2),
          fmt(1000 * out["timings"]["discover_s"], 1),
          fmt(1000 * out["timings"]["fetch_s"], 1),
          out["timings"]["found"], out["compliance"]["blocked"]]])
    report(
        "E9c: pass-by-reference data movement",
        ["payload (MB)", "first fetch (ms)", "cached fetch (ms)"],
        [[fmt(out["proxy"].size_bytes / 1e6, 1),
          fmt(1000 * out["proxy_stats"]["first_s"], 1),
          fmt(1000 * out["proxy_stats"]["cached_s"], 3)]])

    assert stream.stats["processed"] == N_RECORDS + 0  # nothing dropped
    assert stream.throughput() > 100  # "high-velocity"
    assert recall >= 0.9              # corrupted records flagged
    assert 0.5 < stream.reduction_ratio() < 0.95  # intelligent reduction
    assert out["fair_after"] > out["fair_before"] + 0.1  # governance works
    assert out["timings"]["discover_s"] < 1.0
    assert out["compliance"]["blocked"] is True
    assert out["proxy_stats"]["cached_s"] == 0.0
