"""E4 (milestone M11): zero-trust communication latency and failover.

Paper target: "zero-trust communication infrastructure supporting
autonomous agent coordination with sub-second latency, automatic
failover, and continuous authentication across institutional boundaries".

Part A sweeps cross-site RPC under continuous per-call verification and
reports mean/p50/p95/p99 latency (sub-second required) straight from the
streaming histogram in the observability registry — no sample array.
Part B kills the primary of a replicated service and measures automatic
failover recovery time, ablated over heartbeat cadence.
"""

from benchmarks.conftest import fmt, report
from repro.comm import FailoverGroup, RpcClient, RpcServer
from repro.net import FaultInjector, Network, Topology
from repro.obs import MetricsRegistry
from repro.security import (FederatedIdentityProvider, Identity,
                            PolicyEngine, TrustFabric, ZeroTrustGateway)
from repro.security.abac import allow_all_within_federation
from repro.sim import RngRegistry, Simulator

N_CALLS = 300


def _secured_world(seed=5, n_sites=4):
    sim = Simulator()
    rngs = RngRegistry(seed)
    metrics = MetricsRegistry()
    topo = Topology.national_lab_testbed(n_sites, latency_s=0.02,
                                         jitter_s=0.004)
    net = Network(sim, topo, rngs.stream("net"), FaultInjector(sim),
                  metrics=metrics)
    fabric = TrustFabric()
    site_institution = {}
    for site in topo.sites():
        idp = FederatedIdentityProvider(sim, site.institution)
        idp.enroll(Identity.make(f"agent@{site.institution}",
                                 site.institution, role="agent"))
        fabric.add_provider(idp)
        site_institution[site.name] = site.institution
    fabric.federate()
    gateway = ZeroTrustGateway(sim, fabric, PolicyEngine(
        allow_all_within_federation()), site_institution=site_institution,
        verify_latency_s=0.001)
    return sim, rngs, net, fabric, gateway, metrics


def _latency_sweep():
    sim, rngs, net, fabric, gateway, metrics = _secured_world()
    server = RpcServer(sim, "svc", site="site-2", handler_delay_s=0.002)
    server.register("act", lambda p: p)
    token = fabric.provider("Lab 0").issue("agent@Lab 0", ttl_s=30.0)
    client = RpcClient(sim, net, site="site-0", gateway=gateway, token=token,
                       metrics=metrics)
    # Continuous auth: keep the short-lived token refreshed mid-sweep.
    idp = fabric.provider("Lab 0")
    sim.process(gateway.refresh_loop(idp, "agent@Lab 0", client))

    def sweep():
        for i in range(N_CALLS):
            yield from client.call(server, "act", {"i": i})
            yield sim.timeout(0.5)

    proc = sim.process(sweep())
    sim.run(until=proc)
    return client.latency_hist, gateway


def _failover(heartbeat_s: float):
    sim, rngs, net, fabric, gateway, _metrics = _secured_world(seed=6)
    replicas = []
    for i in range(3):
        srv = RpcServer(sim, f"rep-{i}", site=f"site-{i + 1}")
        srv.register("act", lambda p: p)
        FailoverGroup.install_health_endpoint(srv)
        replicas.append(srv)
    group = FailoverGroup(sim, replicas, heartbeat_interval_s=heartbeat_s,
                          heartbeat_misses=2)
    monitor_client = RpcClient(sim, net, site="site-0")
    group.start_monitor(monitor_client)

    def killer():
        yield sim.timeout(5.0)
        group.primary.kill()

    sim.process(killer())
    sim.run(until=20.0)
    return group.recovery_time()


def test_e04_zerotrust_latency(bench_once):
    def scenario():
        hist, gateway = _latency_sweep()
        recoveries = {hb: _failover(hb) for hb in (0.05, 0.1, 0.5)}
        return hist, gateway, recoveries

    hist, gateway, recoveries = bench_once(scenario)
    pcts = hist.percentiles()
    rows = [[
        hist.count, fmt(1000 * hist.mean, 1),
        fmt(1000 * pcts["p50"], 1),
        fmt(1000 * pcts["p95"], 1),
        fmt(1000 * pcts["p99"], 1),
        gateway.stats["verified"],
    ]]
    report(
        "E4a: cross-site RPC latency under continuous authentication "
        "(M11 target: sub-second)",
        ["calls", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)",
         "verifications"],
        rows)
    report(
        "E4b: automatic failover recovery vs heartbeat cadence",
        ["heartbeat (s)", "recovery (s)"],
        [[hb, fmt(rt, 2)] for hb, rt in sorted(recoveries.items())])

    assert hist.count == N_CALLS  # every call observed by the histogram
    assert pcts["p99"] < 1.0, "M11: sub-second p99"
    assert gateway.stats["verified"] >= N_CALLS  # every call verified
    for hb, rt in recoveries.items():
        assert rt is not None and rt < 1.0 + 4 * hb
    # Faster heartbeats -> faster recovery (the ablation's shape).
    assert recoveries[0.05] <= recoveries[0.5]
