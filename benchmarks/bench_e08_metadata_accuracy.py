"""E8 (milestone M5): AI-driven metadata annotation accuracy.

Paper target: "AI-driven metadata systems with automated annotation of
experimental data in multiple domains, achieving high accuracy without
human intervention".

A corpus of raw instrument payloads from four domains (optical
spectroscopy, diffraction, microscopy, liquid handling) is annotated by
the metadata extractor, which sees only the raw payloads + scalar values
(never the instrument's own technique label).  We report per-domain and
overall technique-identification accuracy, plus a confidence-threshold
ablation.
"""

import numpy as np

from benchmarks.conftest import fmt, report
from repro.data import MetadataExtractor
from repro.instruments import (ElectronMicroscope, LiquidHandler,
                               PLSpectrometer, XRayDiffractometer)
from repro.labsci import QuantumDotLandscape, Sample
from repro.sim import RngRegistry, Simulator

N_PER_DOMAIN = 50


def _build_corpus():
    """(raw, values, true_technique) triples across four domains."""
    sim = Simulator()
    rngs = RngRegistry(21)
    landscape = QuantumDotLandscape(seed=7)
    rng = np.random.default_rng(3)
    spec = PLSpectrometer(sim, "spec", "s", rngs, scan_time_s=1.0)
    xrd = XRayDiffractometer(sim, "xrd", "s", rngs, scan_time_s=1.0,
                             n_points=400)
    sem = ElectronMicroscope(sim, "sem", "s", rngs, image_time_s=1.0,
                             image_px=48)
    lh = LiquidHandler(sim, "lh", "s", rngs, time_per_transfer_s=1.0)
    corpus = []

    def produce():
        for i in range(N_PER_DOMAIN):
            sample = Sample.synthesize(landscape.space.sample(rng),
                                       landscape)
            m = yield from spec.measure(sample)
            corpus.append((m.raw, m.values, "photoluminescence"))
            m = yield from xrd.measure(sample)
            corpus.append((m.raw, m.values, "powder-xrd"))
            m = yield from sem.measure(sample)
            corpus.append((m.raw, m.values, "electron-microscopy"))
            m = yield from lh.prepare(f"mix-{i}", {"precursor": 50.0,
                                                   "ligand": 20.0})
            corpus.append((m.raw, m.values, "liquid-handling"))

    proc = sim.process(produce())
    sim.run(until=proc)
    return corpus


def test_e08_metadata_accuracy(bench_once):
    def scenario():
        corpus = _build_corpus()
        results = {}
        for threshold in (0.3, 0.6, 0.9):
            extractor = MetadataExtractor(min_confidence=threshold)
            predictions = [
                (extractor.extract(raw, values).technique, truth)
                for raw, values, truth in corpus]
            results[threshold] = predictions
        return results

    results = bench_once(scenario)
    domains = ("photoluminescence", "powder-xrd", "electron-microscopy",
               "liquid-handling")
    rows = []
    accuracy_at = {}
    for threshold, predictions in sorted(results.items()):
        per_domain = {}
        for domain in domains:
            subset = [(p, t) for p, t in predictions if t == domain]
            per_domain[domain] = (sum(p == t for p, t in subset)
                                  / len(subset))
        overall = sum(p == t for p, t in predictions) / len(predictions)
        coverage = sum(p != "unknown" for p, _ in predictions) \
            / len(predictions)
        accuracy_at[threshold] = overall
        rows.append([threshold,
                     *(fmt(per_domain[d], 2) for d in domains),
                     fmt(overall, 3), fmt(coverage, 2)])
    report(
        "E8: automated technique annotation accuracy (M5: high accuracy, "
        "no human intervention; 4 domains)",
        ["min conf", "PL", "XRD", "SEM", "liquid", "overall", "coverage"],
        rows)

    # "High accuracy in multiple domains" at the operating threshold.
    assert accuracy_at[0.3] >= 0.9
    # Raising the confidence bar trades coverage, never correctness of
    # what it does label (abstentions count against accuracy here).
    assert accuracy_at[0.9] <= accuracy_at[0.3]
