"""E10 (§1/§4 claim): "shorten the path from ideation to innovation...
accelerates discovery from decades to months".

The quantitative shape behind the rhetoric: the same materials-discovery
goal (reach a target PLQY) pursued three ways —

1. **traditional**: human-orchestrated batch synthesis (slow decisions
   during working hours, slow instrument, no verification);
2. **autonomous lab**: one AISLE site (fluidic SDL, agent orchestration);
3. **AISLE federation**: a lab joining a network whose knowledge base
   already carries two sister labs' campaigns (E3's mechanism).

We report time-to-target on the simulated clock and the acceleration
factors.  Absolute numbers are simulator-scale; the *ordering and rough
magnitude* (multiple orders of magnitude between traditional and
federated) is the claim under test.
"""

from benchmarks.conftest import fmt, report
from repro.core import (CampaignSpec, FederationManager, speedup,
                        time_to_target)
from repro.labsci import QuantumDotLandscape

TARGET = 0.40
BUDGET = 150
#: The human-paced arm gets a bigger experiment budget — time, not
#: experiment count, is what it runs out of.
TRADITIONAL_BUDGET = 400
DAY = 86_400.0


def _landscape(site: str) -> QuantumDotLandscape:
    return QuantumDotLandscape(seed=7)


def _traditional():
    fed = FederationManager(seed=23, n_sites=2, objective_key="plqy")
    lab = fed.add_lab("site-0", _landscape, synthesis_kind="batch")
    lab.evaluator.target = TARGET
    manual = fed.make_manual(lab, batch_size=6,
                             decision_delay_s=8 * 3600.0)
    spec = CampaignSpec(name="traditional", objective_key="plqy",
                        target=TARGET, max_experiments=TRADITIONAL_BUDGET)
    proc = fed.sim.process(manual.run_campaign(spec))
    return fed.sim.run(until=proc)


def _autonomous():
    fed = FederationManager(seed=23, n_sites=2, objective_key="plqy")
    lab = fed.add_lab("site-0", _landscape, synthesis_kind="flow")
    lab.evaluator.target = TARGET
    orch = fed.make_orchestrator(lab, verified=True)
    spec = CampaignSpec(name="autonomous", objective_key="plqy",
                        target=TARGET, max_experiments=BUDGET)
    proc = fed.sim.process(orch.run_campaign(spec))
    return fed.sim.run(until=proc)


def _federated():
    fed = FederationManager(seed=23, n_sites=3, objective_key="plqy")
    donors = [fed.add_lab(f"site-{i}", _landscape) for i in (0, 1)]
    joiner = fed.add_lab("site-2", _landscape)
    kb = fed.make_knowledge_base(policy="corrected")
    for lab in donors:
        orch = fed.make_orchestrator(lab, verified=True, knowledge=kb)
        spec = CampaignSpec(name=f"donor-{lab.name}", objective_key="plqy",
                            max_experiments=60)
        proc = fed.sim.process(orch.run_campaign(spec))
        fed.sim.run(until=proc)
    joiner.evaluator.target = TARGET
    orch = fed.make_orchestrator(joiner, verified=True, knowledge=kb)
    spec = CampaignSpec(name="federated", objective_key="plqy",
                        target=TARGET, max_experiments=BUDGET)
    t0 = fed.sim.now
    proc = fed.sim.process(orch.run_campaign(spec))
    result = fed.sim.run(until=proc)
    # The joiner's clock starts when it starts (donor history is sunk
    # cost of the *network*, not of this discovery).
    result.started = t0
    return result


def test_e10_discovery_acceleration(bench_once):
    def scenario():
        return {"traditional": _traditional(),
                "autonomous-lab": _autonomous(),
                "aisle-federation": _federated()}

    results = bench_once(scenario)
    times = {}
    rows = []
    for arm, result in results.items():
        t = time_to_target(result, TARGET)
        times[arm] = t
        rows.append([arm,
                     fmt((t or result.duration) / DAY, 2),
                     result.n_experiments
                     if t is not None else f">{result.n_experiments}",
                     fmt(result.best_value)])
    base = times["traditional"]
    for row, arm in zip(rows, results):
        row.append(f"{speedup(base, times[arm]):.0f}x"
                   if times[arm] and base else "-")
    report(
        f"E10: time to discover a PLQY>={TARGET} recipe "
        f"(paper: 'decades to months')",
        ["approach", "days to target", "experiments", "best found",
         "acceleration"],
        rows)

    t_trad, t_auto, t_fed = (times["traditional"],
                             times["autonomous-lab"],
                             times["aisle-federation"])
    assert t_trad is not None and t_auto is not None and t_fed is not None
    # The ordering the paper promises, with real factors between tiers.
    assert t_auto < t_trad / 10.0, "autonomy should win by >10x"
    assert t_fed < t_auto, "the federation should beat the lone lab"
    assert t_fed < t_trad / 20.0
