"""E2 (milestone M8): experimental correctness with verification tools.

Paper target: ">95% experimental correctness versus agent usage without
verification tools".

An LLM-direct planner with a 30% hallucination rate drives campaigns with
four verification configurations (the DESIGN.md ablation): none,
physics-constraints only, digital-twin only, and the full stack.
Correctness = fraction of executed experiments that produced usable,
physically sensible data.
"""

import pytest

from benchmarks.conftest import fmt, report
from repro.core import (CampaignSpec, FederationManager,
                        PhysicsConstraintVerifier, TwinVerifier,
                        VerificationStack)
from repro.labsci import QuantumDotLandscape

BUDGET = 40
SEEDS = (3, 17, 29)
HALLUCINATION = 0.3


def _stack_for(fed, lab, config: str):
    if config == "none":
        return None
    physics = PhysicsConstraintVerifier(
        lab.landscape.space, safety_envelope=lab.twin.safety_envelope,
        forbidden_combinations=lab.twin.forbidden_combinations,
        outcome_bounds={"objective": (0.0, 1.0)})
    twin = TwinVerifier(lab.twin, objective_key="plqy")
    verifiers = {"constraints": [physics], "twin": [twin],
                 "full": [physics, twin]}[config]
    return VerificationStack(fed.sim, verifiers)


def _run(config: str, seed: int):
    fed = FederationManager(seed=seed, n_sites=2, objective_key="plqy")
    lab = fed.add_lab("site-0", lambda s: QuantumDotLandscape(seed=7),
                      planner_mode="llm-direct",
                      hallucination_rate=HALLUCINATION)
    from repro.core.orchestrator import HierarchicalOrchestrator
    orch = HierarchicalOrchestrator(
        fed.sim, lab.planner, lab.executor, lab.evaluator,
        verification=_stack_for(fed, lab, config))
    spec = CampaignSpec(name=f"e2-{config}", objective_key="plqy",
                        max_experiments=BUDGET)
    proc = fed.sim.process(orch.run_campaign(spec))
    return fed.sim.run(until=proc)


def test_e02_verification_correctness(bench_once):
    configs = ("none", "constraints", "twin", "full")

    def scenario():
        out = {}
        for config in configs:
            runs = [_run(config, seed) for seed in SEEDS]
            out[config] = runs
        return out

    results = bench_once(scenario)
    rows = []
    correctness = {}
    for config in configs:
        runs = results[config]
        c = sum(r.correctness for r in runs) / len(runs)
        correctness[config] = c
        rejected = sum(r.counters.get("verification", {}).get("rejected", 0)
                       for r in runs)
        rows.append([config, fmt(c, 3), rejected,
                     fmt(sum(r.best_value or 0 for r in runs) / len(runs))])
    report(
        "E2: correctness vs verification config (M8 target: >95% with "
        "verification; hallucination rate 30%)",
        ["verification", "correctness", "plans rejected", "mean best"],
        rows)

    assert correctness["full"] >= 0.95, \
        f"full stack correctness {correctness['full']:.3f} < 0.95 (M8)"
    assert correctness["none"] < correctness["full"]
    # Each partial stack helps over nothing.
    assert correctness["constraints"] >= correctness["none"]
    assert correctness["twin"] >= correctness["none"]
