"""F1 (Figure 1): the five-dimension architecture operating as one system.

The paper's only figure shows the five critical dimensions connected
through a distributed data fabric with intelligent agents.  This
benchmark runs one integrated scenario that exercises every dimension at
once and accounts for the activity in each:

1. instruments & CI — vendor-dialect instruments behind the HAL;
2. agent-driven data management — mesh ingest, FAIR governance,
   provenance;
3. AI-agent orchestration — LLM-orchestrated verified campaign;
4. interoperable communication — zero-trust verified discovery +
   knowledge propagation over the WAN;
5. education & workforce — a trained operator wired into the
   verification stack with override authority.
"""

import numpy as np

from benchmarks.conftest import fmt, report
from repro.core import CampaignSpec, FederationManager
from repro.hitl import OperatorOverride, Trainee, TrustModel
from repro.labsci import QuantumDotLandscape


def _scenario():
    fed = FederationManager(seed=19, n_sites=3, objective_key="plqy",
                            secure=True, with_mesh=True)
    labs = [fed.add_lab(f"site-{i}", lambda s: QuantumDotLandscape(seed=7),
                        vendor=v)
            for i, v in enumerate(("kelvin-sci", "helios"))]
    kb = fed.make_knowledge_base(policy="corrected")

    # Dimension 5: a trained operator joins site-0's verification stack.
    operator_trainee = Trainee("operator", competencies={
        "ai-collaboration": 0.8, "lab-safety": 0.9,
        "instrument-operation": 0.7, "data-literacy": 0.7,
        "workflow-thinking": 0.7})
    operator = OperatorOverride(
        fed.sim, fed.rngs.stream("operator"),
        trust=TrustModel(initial=0.5),
        safety_envelope={"temperature": (0.0, 205.0)},
        detection_skill=0.6 + 0.4 * operator_trainee.competencies[
            "lab-safety"],
        review_time_s=30.0)

    orchestrators = []
    for lab in labs:
        stack = fed.verification_stack(lab)
        if lab is labs[0]:
            stack.verifiers.append(operator)
        from repro.core.orchestrator import HierarchicalOrchestrator
        orchestrators.append(HierarchicalOrchestrator(
            fed.sim, lab.planner, lab.executor, lab.evaluator,
            verification=stack, knowledge=kb, mesh_node=lab.mesh_node))

    # Both campaigns go through the multi-tenant service front door: one
    # facility slot per site, one tenant per site, admission + fair-share
    # + canonical CampaignReport results (and the sites genuinely run
    # concurrently, sharing knowledge mid-campaign).
    from repro.service import CampaignService, FacilitySlot
    service = CampaignService(
        fed.sim, [FacilitySlot(lab.name, orch.run_campaign)
                  for orch, lab in zip(orchestrators, labs)])
    handles = []
    for lab in labs:
        service.register_tenant(lab.name)
        spec = CampaignSpec(name=f"f1-{lab.name}", objective_key="plqy",
                            max_experiments=25)
        handles.append(service.submit(lab.name, spec))
    fed.sim.run()
    fed.sim.run(until=fed.sim.now + 30.0)  # index replication drain
    results = [h.result() for h in handles]
    return fed, labs, kb, operator, results


def test_f01_architecture(bench_once):
    fed, labs, kb, operator, results = bench_once(_scenario)

    instruments_ops = sum(lab.synthesis.stats["operations"]
                          + lab.characterization.stats["operations"]
                          for lab in labs)
    hal_requests = sum(
        adapter.stats["requests"]
        for lab in labs for adapter in lab.hal._adapters.values())
    mesh_records = sum(len(lab.mesh_node) for lab in labs)
    fair_scores = [lab.mesh_node.mean_fair_score() for lab in labs]
    prov_nodes = sum(len(lab.mesh_node.provenance) for lab in labs)
    llm_calls = sum(r.counters["llm"]["calls"] for r in results)
    verified_plans = sum(r.counters["verification"]["plans"]
                         for r in results)
    zt_verifications = fed.gateway.stats["verified"] if fed.gateway else 0
    knowledge_flow = kb.stats["propagated"]

    rows = [
        ["1. instruments & CI",
         f"{instruments_ops} instrument ops via {hal_requests} HAL "
         f"requests across 2 vendor dialects"],
        ["2. data management",
         f"{mesh_records} records in the mesh, mean FAIR "
         f"{np.mean(fair_scores):.2f}, {prov_nodes} provenance nodes"],
        ["3. AI orchestration",
         f"{sum(r.n_experiments for r in results)} experiments, "
         f"{llm_calls} LLM calls, {verified_plans} plans verified"],
        ["4. communication",
         f"{knowledge_flow} knowledge donations propagated, "
         f"{zt_verifications} zero-trust verifications"],
        ["5. education & HITL",
         f"operator reviewed {operator.stats['reviewed']} plans, "
         f"vetoed {operator.stats['vetoed']}"],
    ]
    report("F1: five-dimension architecture, one integrated run",
           ["dimension", "activity"], rows)

    # Every dimension must actually have been exercised.
    assert instruments_ops > 0 and hal_requests > 0
    assert mesh_records > 0 and prov_nodes > 0
    assert float(np.mean(fair_scores)) > 0.6
    assert llm_calls > 0 and verified_plans > 0
    assert knowledge_flow > 0
    assert operator.stats["presented"] > 0
    for r in results:
        assert r.correctness == 1.0  # verified campaigns stay clean
