"""E13 (milestones M13/M14): virtual-lab training with measurable outcomes.

Paper target: "educational infrastructure including immersive virtual
laboratory environments ... and assessment methodologies for human-AI
collaboration competencies with measurable learning outcomes".

A trainee cohort completes the virtual-lab curriculum; a control cohort
does not.  Both sit the same scenario-based human-AI collaboration
assessment.  We report competency growth, assessment accuracy/pass rate,
and the trust-calibration improvement of trained operators supervising a
(deliberately imperfect) autonomous system.
"""

import numpy as np

from benchmarks.conftest import fmt, report
from repro.hitl import (COMPETENCIES, CompetencyAssessment, Trainee,
                        TrustModel, VirtualLabCurriculum)
from repro.hitl.assessment import standard_battery
from repro.sim import RngRegistry, Simulator

COHORT = 12


def _train_cohort():
    """Two semesters through the virtual lab (repetition has diminishing
    returns built into the modules, so this is not double-counting)."""
    sim = Simulator()
    rngs = RngRegistry(17)
    curriculum = VirtualLabCurriculum(sim, rngs.stream("edu"))
    cohort = [Trainee(f"trained-{i}") for i in range(COHORT)]
    out = {}

    def go():
        yield from curriculum.train_cohort(cohort)
        out["cohort"] = yield from curriculum.train_cohort(cohort)

    proc = sim.process(go())
    sim.run(until=proc)
    return out["cohort"], sim.now


def _trust_calibration(trainee: Trainee, rng) -> float:
    """Final calibration error supervising an 85%-reliable system.

    Trained operators weigh evidence better: their effective update is
    closer to the ideal observer's.
    """
    skill = trainee.competencies["ai-collaboration"]
    trust = TrustModel(initial=0.5,
                       gain_success=0.01 + 0.04 * skill,
                       loss_failure=0.20 - 0.12 * skill)
    for _ in range(120):
        trust.observe(bool(rng.random() < 0.85))
    return trust.calibration_error


def test_e13_education(bench_once):
    def scenario():
        trained, train_time = _train_cohort()
        control = [Trainee(f"control-{i}") for i in range(COHORT)]
        rng = np.random.default_rng(5)
        assessment = CompetencyAssessment(
            rng, scenarios=standard_battery(rng, n=60))
        reports = {
            "trained": [assessment.administer(t) for t in trained],
            "control": [assessment.administer(t) for t in control],
        }
        summaries = {k: assessment.cohort_summary(v)
                     for k, v in reports.items()}
        calibration = {
            "trained": float(np.mean([_trust_calibration(t, rng)
                                      for t in trained])),
            "control": float(np.mean([_trust_calibration(t, rng)
                                      for t in control])),
        }
        growth = float(np.mean([t.overall() for t in trained]))
        return summaries, calibration, growth, train_time

    summaries, calibration, growth, train_time = bench_once(scenario)
    rows = []
    for cohort in ("control", "trained"):
        s = summaries[cohort]
        rows.append([cohort, fmt(s["mean_accuracy"], 3),
                     fmt(s["pass_rate"], 2), fmt(s["mean_over_trust"], 2),
                     fmt(s["mean_under_trust"], 2),
                     fmt(calibration[cohort], 3)])
    report(
        "E13: human-AI collaboration competency, trained vs control "
        "(M14: measurable learning outcomes)",
        ["cohort", "assessment accuracy", "pass rate", "over-trust",
         "under-trust", "trust calib. error"],
        rows)
    print(f"mean competency after curriculum: {growth:.2f} "
          f"(started at 0.10); training time "
          f"{train_time / 3600.0:.0f} h simulated")

    trained, control = summaries["trained"], summaries["control"]
    assert trained["mean_accuracy"] > control["mean_accuracy"] + 0.15
    assert trained["pass_rate"] >= 0.75
    assert trained["mean_over_trust"] < control["mean_over_trust"]
    assert calibration["trained"] < calibration["control"]
    assert growth > 0.4
