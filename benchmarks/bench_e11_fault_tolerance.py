"""E11 (milestone M3): fault-tolerant coordination under failures.

Paper target: "federated cyberinfrastructure with standardized frameworks,
fault-tolerant coordination mechanisms, and adaptive resource management".

Two measurements:

1. ``test_e11_fault_tolerance`` — a campaign on flaky infrastructure
   (short instrument MTBF, a mid-campaign WAN cut, a planner crash) with
   and without the fault-tolerance stack; metric: experiments completed
   in a fixed window, and campaign survival.
2. ``test_e11_chaos_fault_rate_sweep`` — fault-tolerant campaigns under
   :class:`~repro.resilience.ChaosController` instrument-fault storms of
   increasing intensity; per rate it records completion rate, retries,
   breaker trips, and p95 recovery latency, and emits ``BENCH_e11.json``
   at the repo root.  Sweep size is tunable for CI smoke runs via
   ``E11_SWEEP_BUDGET`` / ``E11_SWEEP_WINDOW_S`` / ``E11_SWEEP_RATES``.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import fmt, report, run_seeded
from repro import Testbed
from repro.agents import Supervisor
from repro.core import CampaignSpec
from repro.labsci import QuantumDotLandscape

WINDOW_S = 8 * 3600.0
BUDGET = 150
SEEDS = (2, 9)


def _run(seed: int, config: dict):
    """World entrypoint: one fault-injected campaign (picklable result)."""
    tolerant = bool(config["tolerant"])
    primary_site = (Testbed(seed=seed, n_sites=3)
                    .site("site-0",
                          landscape=lambda s: QuantumDotLandscape(seed=7))
                    .with_instruments(mtbf_hours=0.25, repair_time_s=1200.0))
    if tolerant:
        primary_site.with_fault_tolerance("site-1")
    built = (primary_site
             .site("site-1", landscape=lambda s: QuantumDotLandscape(seed=7))
             .build())
    fed = built.fed
    primary = built.lab("site-0")
    orch = built.orchestrator("site-0")

    for agent in (primary.planner, primary.executor, primary.evaluator):
        agent.start()
    if tolerant:
        sup = Supervisor(fed.sim, check_interval_s=10.0,
                         restart_delay_s=60.0)
        for agent in (primary.planner, primary.executor, primary.evaluator):
            sup.watch(agent)
        sup.start()

    fed.chaos.cut_link("site-0", "site-1", at_s=WINDOW_S * 0.25,
                       duration_s=1800.0)
    fed.chaos.crash_agent(primary.planner, at_s=WINDOW_S * 0.5)
    spec = CampaignSpec(name=f"e11-{tolerant}", objective_key="plqy",
                        max_experiments=BUDGET)
    proc = fed.sim.process(orch.run_campaign(spec))
    fed.sim.run(until=WINDOW_S)
    if not proc.is_alive:
        result = proc.value
        if isinstance(result, BaseException):  # pragma: no cover
            raise result
    else:
        # Window expired mid-campaign: interrupt and read partial state.
        proc.interrupt("window-over")
        fed.sim.run(until=fed.sim.now + 1.0)
        result = None
    records = (result.records if result is not None
               else orch.evaluator.eval_stats)
    n_done = (result.n_experiments if result is not None
              else orch.evaluator.eval_stats["evaluated"])
    survived = result is None or not result.stop_reason.startswith(
        "instrument-fault")
    best = orch.evaluator.best_value or 0.0
    return n_done, survived, best


def test_e11_fault_tolerance(bench_once):
    def scenario():
        return {tolerant: run_seeded(_run, SEEDS, {"tolerant": tolerant})
                for tolerant in (False, True)}

    results = bench_once(scenario)
    rows = []
    mean_done = {}
    for tolerant in (False, True):
        runs = results[tolerant]
        done = [n for n, _, _ in runs]
        mean_done[tolerant] = sum(done) / len(done)
        rows.append([
            "fault-tolerant" if tolerant else "baseline",
            " / ".join(map(str, done)),
            fmt(mean_done[tolerant], 1),
            all(s for _, s, _ in runs),
            fmt(sum(b for _, _, b in runs) / len(runs)),
        ])
    report(
        f"E11: campaign progress in an {WINDOW_S / 3600:.0f} h window "
        "under instrument faults + partition + agent crash (M3)",
        ["coordination", "experiments per seed", "mean", "survived all",
         "mean best"],
        rows)

    assert all(s for _, s, _ in results[True]), \
        "fault-tolerant campaigns must survive"
    assert any(not s for _, s, _ in results[False]), \
        "the baseline should die on at least one seed (else the fault " \
        "injection is too gentle to discriminate)"
    assert mean_done[True] > mean_done[False] * 1.5


# -- chaos fault-rate sweep ----------------------------------------------------

SWEEP_SEED = 4
SWEEP_RATES = tuple(
    float(r) for r in os.environ.get("E11_SWEEP_RATES", "0,2,6,12").split(","))
SWEEP_BUDGET = int(os.environ.get("E11_SWEEP_BUDGET", "60"))
SWEEP_WINDOW_S = float(os.environ.get("E11_SWEEP_WINDOW_S", 6 * 3600.0))
SWEEP_REPAIR_S = 900.0


def _sum_counters(snapshot: dict, prefix: str) -> float:
    return sum(v for name, v in snapshot["counters"].items()
               if name.startswith(prefix))


def _run_sweep_point(rate_per_hour: float) -> dict:
    built = (Testbed(seed=SWEEP_SEED, n_sites=3)
             .site("site-0", landscape=lambda s: QuantumDotLandscape(seed=7))
             .with_instruments(repair_time_s=SWEEP_REPAIR_S)
             .with_fault_tolerance("site-1")
             .site("site-1", landscape=lambda s: QuantumDotLandscape(seed=7))
             .build())
    fed = built.fed
    primary = built.lab("site-0")
    for agent in (primary.planner, primary.executor, primary.evaluator):
        agent.start()

    injected = built.chaos.instrument_fault_storm(
        primary.instruments(), rate_per_hour=rate_per_hour,
        until_s=SWEEP_WINDOW_S)

    orch = built.orchestrator("site-0")
    spec = CampaignSpec(name=f"e11-sweep-{rate_per_hour}",
                        objective_key="plqy", max_experiments=SWEEP_BUDGET)
    proc = fed.sim.process(orch.run_campaign(spec))
    fed.sim.run(until=SWEEP_WINDOW_S)
    if not proc.is_alive:
        result = proc.value
        if isinstance(result, BaseException):  # pragma: no cover
            raise result
        n_done = result.n_experiments
    else:
        proc.interrupt("window-over")
        fed.sim.run(until=fed.sim.now + 1.0)
        n_done = orch.evaluator.eval_stats["evaluated"]

    snap = built.metrics.snapshot()
    repair_hist = built.metrics.histogram("faulttol.repair_time",
                                          site="site-0")
    return {
        "fault_rate_per_hour": rate_per_hour,
        "faults_injected": injected,
        "experiments_done": int(n_done),
        "budget": SWEEP_BUDGET,
        "completion_rate": n_done / SWEEP_BUDGET,
        "retries": _sum_counters(snap, "resilience.call.retries"),
        "breaker_trips": _sum_counters(snap, "resilience.breaker.trips"),
        "repairs": _sum_counters(snap, "faulttol.repairs"),
        "p95_recovery_latency_s": repair_hist.quantile(0.95),
    }


def test_e11_chaos_fault_rate_sweep(bench_once):
    points = bench_once(lambda: [_run_sweep_point(r) for r in SWEEP_RATES])

    report(
        f"E11 sweep: fault-tolerant campaign vs chaos storm intensity "
        f"({SWEEP_WINDOW_S / 3600:.0f} h window, budget {SWEEP_BUDGET})",
        ["faults/h", "injected", "done", "completion", "retries",
         "breaker trips", "p95 recovery (s)"],
        [[fmt(p["fault_rate_per_hour"], 1), p["faults_injected"],
          p["experiments_done"], fmt(p["completion_rate"], 2),
          int(p["retries"]), int(p["breaker_trips"]),
          fmt(p["p95_recovery_latency_s"], 1)] for p in points])

    out = {
        "experiment": "E11",
        "description": "fault-tolerant campaign under chaos-controller "
                       "instrument fault storms",
        "seed": SWEEP_SEED,
        "window_s": SWEEP_WINDOW_S,
        "budget": SWEEP_BUDGET,
        "repair_time_s": SWEEP_REPAIR_S,
        "sweep": points,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_e11.json"
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")

    calm = points[0]
    assert calm["fault_rate_per_hour"] == 0.0
    assert calm["faults_injected"] == 0
    stormy = points[-1]
    assert stormy["faults_injected"] > 0
    # The fault-tolerance stack must keep making progress under the storm.
    assert stormy["experiments_done"] > 0
    assert stormy["completion_rate"] <= calm["completion_rate"] + 1e-9
