"""E11 (milestone M3): fault-tolerant coordination under failures.

Paper target: "federated cyberinfrastructure with standardized frameworks,
fault-tolerant coordination mechanisms, and adaptive resource management".

A campaign runs on flaky infrastructure — instrument MTBF of ~20
operating hours-equivalent, a mid-campaign WAN partition, and a planner
crash — with and without the fault-tolerance stack (retry/repair/failover
executor + heartbeat supervisor).  Metric: experiments completed within a
fixed simulated window, and campaign survival.
"""

from benchmarks.conftest import fmt, report
from repro import Testbed
from repro.agents import Supervisor
from repro.core import CampaignSpec
from repro.labsci import QuantumDotLandscape

WINDOW_S = 8 * 3600.0
BUDGET = 150
SEEDS = (2, 9)


def _run(tolerant: bool, seed: int):
    primary_site = (Testbed(seed=seed, n_sites=3)
                    .site("site-0",
                          landscape=lambda s: QuantumDotLandscape(seed=7))
                    .with_instruments(mtbf_hours=0.25, repair_time_s=1200.0))
    if tolerant:
        primary_site.with_fault_tolerance("site-1")
    built = (primary_site
             .site("site-1", landscape=lambda s: QuantumDotLandscape(seed=7))
             .build())
    fed = built.fed
    primary = built.lab("site-0")
    orch = built.orchestrator("site-0")

    for agent in (primary.planner, primary.executor, primary.evaluator):
        agent.start()
    if tolerant:
        sup = Supervisor(fed.sim, check_interval_s=10.0,
                         restart_delay_s=60.0)
        for agent in (primary.planner, primary.executor, primary.evaluator):
            sup.watch(agent)
        sup.start()

    def gremlin():
        yield fed.sim.timeout(WINDOW_S * 0.25)
        fed.faults.fail_link("site-0", "site-1", duration=1800.0)
        yield fed.sim.timeout(WINDOW_S * 0.25)
        primary.planner.crash()

    fed.sim.process(gremlin())
    spec = CampaignSpec(name=f"e11-{tolerant}", objective_key="plqy",
                        max_experiments=BUDGET)
    proc = fed.sim.process(orch.run_campaign(spec))
    fed.sim.run(until=WINDOW_S)
    if not proc.is_alive:
        result = proc.value
        if isinstance(result, BaseException):  # pragma: no cover
            raise result
    else:
        # Window expired mid-campaign: interrupt and read partial state.
        proc.interrupt("window-over")
        fed.sim.run(until=fed.sim.now + 1.0)
        result = None
    records = (result.records if result is not None
               else orch.evaluator.eval_stats)
    n_done = (result.n_experiments if result is not None
              else orch.evaluator.eval_stats["evaluated"])
    survived = result is None or not result.stop_reason.startswith(
        "instrument-fault")
    best = orch.evaluator.best_value or 0.0
    return n_done, survived, best


def test_e11_fault_tolerance(bench_once):
    def scenario():
        out = {}
        for tolerant in (False, True):
            out[tolerant] = [_run(tolerant, seed) for seed in SEEDS]
        return out

    results = bench_once(scenario)
    rows = []
    mean_done = {}
    for tolerant in (False, True):
        runs = results[tolerant]
        done = [n for n, _, _ in runs]
        mean_done[tolerant] = sum(done) / len(done)
        rows.append([
            "fault-tolerant" if tolerant else "baseline",
            " / ".join(map(str, done)),
            fmt(mean_done[tolerant], 1),
            all(s for _, s, _ in runs),
            fmt(sum(b for _, _, b in runs) / len(runs)),
        ])
    report(
        f"E11: campaign progress in an {WINDOW_S / 3600:.0f} h window "
        "under instrument faults + partition + agent crash (M3)",
        ["coordination", "experiments per seed", "mean", "survived all",
         "mean best"],
        rows)

    assert all(s for _, s, _ in results[True]), \
        "fault-tolerant campaigns must survive"
    assert any(not s for _, s, _ in results[False]), \
        "the baseline should die on at least one seed (else the fault " \
        "injection is too gentle to discriminate)"
    assert mean_done[True] > mean_done[False] * 1.5
