"""Shared helpers for the experiment-regeneration benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's per-experiment
index (the paper has no tables/figures; experiments target quantified
milestones and in-text claims).  Wall-clock timing comes from
pytest-benchmark; the scientific quantities are *simulated* metrics,
printed as the rows the paper would report and asserted on *shape* (who
wins, by roughly what factor) per the reproduction contract.
"""

import pytest

from repro.scale import WorldRunner, WorldSpec


def run_seeded(entrypoint, seeds, config=None, workers=None):
    """Fan a ``(seed, config) -> data`` world across seeds, in seed order.

    The sanctioned multi-seed path for benchmarks: honours the
    ``REPRO_WORKERS`` knob (default serial), and because every result
    carries a decision hash, ``REPRO_WORKERS=4`` runs are checkably
    identical to serial ones (see the CI ``parallel-equivalence`` job).
    Entrypoints must be module-level and return plain picklable data.
    """
    runner = WorldRunner(workers)
    batch = runner.run(WorldSpec(seed=int(s), entrypoint=entrypoint,
                                 config=dict(config or {})) for s in seeds)
    return batch.values


def report(title: str, header: list[str], rows: list[list]) -> None:
    """Print one experiment's results table."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) + 2
              for i, h in enumerate(header)] if rows else [len(h) + 2
                                                           for h in header]
    print(f"\n=== {title} ===")
    print("".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def bench_once(benchmark):
    """Run a scenario exactly once under pytest-benchmark timing.

    Campaign simulations are deterministic and heavy; repeated rounds
    would re-measure identical work.
    """
    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return run


def fmt(value, digits: int = 3):
    """Format numbers compactly; pass strings/None through."""
    if value is None:
        return "DNF"
    if isinstance(value, float):
        return round(value, digits)
    return value
