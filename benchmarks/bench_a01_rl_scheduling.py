"""A1 (ablation, §3.3): RL for dynamic experimental scheduling.

The paper lists "reinforcement learning for dynamic experimental
scheduling" among the specialized techniques agents orchestrate.  This
ablation shows where it earns its keep: routing experiments between a
fast-but-contended reactor (shared with another campaign that grabs it in
bursts) and a slower dedicated one.  Static policies either queue behind
the bursts (always-fast) or waste the fast machine (always-slow); the
tabular Q-learner observes queue pressure and learns burst-aware routing
online.
"""

import numpy as np

from benchmarks.conftest import fmt, report
from repro.instruments import FluidicReactor
from repro.labsci import QuantumDotLandscape
from repro.methods import QLearningScheduler
from repro.sim import RngRegistry, Simulator

WINDOW_S = 6 * 3600.0
BURST_PERIOD_S = 1200.0
BURST_LEN_S = 600.0


def _world():
    sim = Simulator()
    rngs = RngRegistry(33)
    landscape = QuantumDotLandscape(seed=7)
    fast = FluidicReactor(sim, "fast", "s", rngs, landscape,
                          sample_time_s=12.0, prime_time_s=0.0)
    slow = FluidicReactor(sim, "slow", "s", rngs, landscape,
                          sample_time_s=60.0, prime_time_s=0.0)

    def rival_campaign():
        # Another group's standing reservation: bursts on the fast rig.
        while True:
            yield sim.timeout(BURST_PERIOD_S - BURST_LEN_S)
            req = fast.duty.request()
            yield req
            yield sim.timeout(BURST_LEN_S)
            req.release()

    sim.process(rival_campaign())
    return sim, rngs, landscape, fast, slow


def _run_policy(policy: str):
    """One training window (RL learns online) + one greedy eval window.

    Static policies have nothing to learn, so only their eval window
    counts; the RL arm carries its Q-table (epsilon frozen at the floor)
    into evaluation — the standard train/deploy split.
    """
    sim, rngs, landscape, fast, slow = _world()
    rng = rngs.stream(f"router/{policy}")
    scheduler = QLearningScheduler(("fast", "slow"), rng, epsilon=0.3,
                                   alpha=0.3)
    completed = [0]
    learning = [policy == "rl"]

    def state():
        # At decision time the campaign itself holds nothing, so any
        # occupancy of the fast rig is the rival's burst.
        return min(fast.duty.queue_length + fast.duty.count, 2)

    def campaign():
        while True:
            params = landscape.space.sample(rng)
            if policy == "rl":
                s = state()
                action = (scheduler.choose(s) if learning[0]
                          else scheduler.policy(s))
            elif policy == "random":
                action = str(rng.choice(["fast", "slow"]))
            else:
                action = policy  # "fast" or "slow"
            rig = fast if action == "fast" else slow
            t0 = sim.now
            yield from rig.synthesize(params)
            completed[0] += 1
            if policy == "rl" and learning[0]:
                elapsed = sim.now - t0
                scheduler.update(s, action, reward=-elapsed / 60.0,
                                 next_state=state())

    sim.process(campaign())
    if policy == "rl":
        sim.run(until=WINDOW_S)       # training window
        learning[0] = False
    eval_start = sim.now
    completed[0] = 0
    sim.run(until=eval_start + WINDOW_S)  # evaluation window
    return completed[0], scheduler


def test_a01_rl_scheduling(bench_once):
    policies = ("fast", "slow", "random", "rl")

    def scenario():
        return {p: _run_policy(p) for p in policies}

    results = bench_once(scenario)
    rows = []
    counts = {}
    for policy in policies:
        n, scheduler = results[policy]
        counts[policy] = n
        rows.append([policy, n, fmt(n / (WINDOW_S / 3600.0), 1)])
    report(
        "A1 (ablation): dynamic scheduling under resource contention",
        ["routing policy", "experiments completed", "per hour"],
        rows)
    _, rl_sched = results["rl"]
    idle = rl_sched.policy(0)   # fast rig free
    busy = rl_sched.policy(1)   # rival burst holds the fast rig
    print(f"learned policy: fast-rig-free -> {idle}, "
          f"rival-burst -> {busy} "
          f"(epsilon decayed to {rl_sched.epsilon:.3f})")

    # The deployed RL router must beat both static policies and random.
    assert counts["rl"] > max(counts["fast"], counts["slow"])
    assert counts["rl"] > counts["random"]
    # And the learned policy is the burst-aware one.
    assert idle == "fast"
    assert busy == "slow"
