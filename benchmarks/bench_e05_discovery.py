"""E5 (milestone M12): self-discovering agent networks.

Paper target: "self-discovering agent networks using DNS-SD and
distributed service registries, enabling dynamic reconfiguration and
capability negotiation in geographically distributed research facilities".

Three measurements, swept over federation size:

1. announce -> cross-site visibility latency;
2. browse latency, cold vs cached;
3. dynamic reconfiguration: an instrument is withdrawn and replaced by a
   different vendor's unit — time until a remote agent has renegotiated
   a protocol agreement with the replacement.
"""

import numpy as np

from benchmarks.conftest import fmt, report
from repro.comm import (CapabilityOffer, DnsSd, Negotiator, RpcClient,
                        RpcServer, ServiceAnnouncement, ServiceRegistry)
from repro.net import FaultInjector, Network, Topology
from repro.sim import RngRegistry, Simulator

FLEET_SIZES = (10, 50, 200)


def _world(n_sites=5, seed=3):
    sim = Simulator()
    rngs = RngRegistry(seed)
    topo = Topology.national_lab_testbed(n_sites, latency_s=0.02,
                                         jitter_s=0.002)
    net = Network(sim, topo, rngs.stream("net"), FaultInjector(sim))
    registry = ServiceRegistry(sim)
    daemons = {f"site-{i}": DnsSd(sim, net, registry, "site-0",
                                  f"site-{i}", cache_ttl_s=5.0)
               for i in range(n_sites)}
    return sim, rngs, net, registry, daemons


def _measure_fleet(n_services: int):
    sim, rngs, net, registry, daemons = _world()
    sites = sorted(daemons)

    # Announce the fleet round-robin across sites.
    def announce_all():
        for i in range(n_services):
            d = daemons[sites[i % len(sites)]]
            yield from d.announce(ServiceAnnouncement(
                instance=f"inst-{i}", service_type="_instrument._aisle",
                capabilities={"technique": ["xrd", "pl", "sem"][i % 3]},
                ttl_s=1e9))

    t0 = sim.now
    proc = sim.process(announce_all())
    sim.run(until=proc)
    announce_total = sim.now - t0

    # Cold and cached browse from a remote site.
    times = {}

    def browse_twice():
        t0 = sim.now
        recs = yield from daemons["site-3"].browse("_instrument._aisle")
        times["cold"] = sim.now - t0
        times["n"] = len(recs)
        t1 = sim.now
        yield from daemons["site-3"].browse("_instrument._aisle",
                                            technique="pl")
        times["cached"] = sim.now - t1

    proc = sim.process(browse_twice())
    sim.run(until=proc)
    return announce_total / n_services, times


def _reconfiguration_time():
    """Instrument swap: withdraw, replace with new vendor, renegotiate."""
    sim, rngs, net, registry, daemons = _world()
    initiator_offer = CapabilityOffer(
        protocols={"grpc": [3, 2], "amqp": [1]})
    replacement_offer = CapabilityOffer(protocols={"grpc": [2]})

    out = {}

    def lifecycle():
        # Original unit online.
        yield from daemons["site-1"].announce(ServiceAnnouncement(
            instance="xrd-old", service_type="_instrument._aisle",
            capabilities={"vendor": "kelvin-sci"}, ttl_s=1e9))
        # Swap: withdraw old, announce replacement from a new vendor.
        t_swap = sim.now
        yield from daemons["site-1"].withdraw("xrd-old")
        yield from daemons["site-1"].announce(ServiceAnnouncement(
            instance="xrd-new", service_type="_instrument._aisle",
            capabilities={"vendor": "helios"}, ttl_s=1e9))
        # A remote agent notices (cache invalidated by subscription),
        # rediscovers, and renegotiates.
        agent_daemon = daemons["site-3"]
        events = []
        agent_daemon.subscribe("_instrument._aisle",
                               lambda ev, rec: events.append(ev))
        recs = yield from agent_daemon.browse("_instrument._aisle",
                                              use_cache=False)
        server = RpcServer(sim, recs[0].instance, site="site-1")
        responder = Negotiator(sim, replacement_offer)
        responder.serve(server)
        client = RpcClient(sim, net, site="site-3")
        negotiator = Negotiator(sim, initiator_offer)
        agreement = yield from negotiator.negotiate(client, server)
        out["reconfig_s"] = sim.now - t_swap
        out["agreement"] = agreement

    proc = sim.process(lifecycle())
    sim.run(until=proc)
    return out


def test_e05_discovery(bench_once):
    def scenario():
        fleet = {n: _measure_fleet(n) for n in FLEET_SIZES}
        reconfig = _reconfiguration_time()
        return fleet, reconfig

    fleet, reconfig = bench_once(scenario)
    rows = []
    for n in FLEET_SIZES:
        per_announce, times = fleet[n]
        rows.append([n, fmt(1000 * per_announce, 1),
                     fmt(1000 * times["cold"], 1),
                     fmt(1000 * times["cached"], 3), times["n"]])
    report(
        "E5: DNS-SD service discovery vs fleet size (M12)",
        ["services", "announce (ms/svc)", "cold browse (ms)",
         "cached browse (ms)", "found"],
        rows)
    report(
        "E5b: dynamic reconfiguration after instrument swap",
        ["reconfig time (s)", "protocol", "version", "rounds"],
        [[fmt(reconfig["reconfig_s"], 3), reconfig["agreement"].protocol,
          reconfig["agreement"].version, reconfig["agreement"].rounds]])

    for n in FLEET_SIZES:
        _, times = fleet[n]
        assert times["n"] == n               # everything discoverable
        assert times["cold"] < 1.0           # sub-second discovery
        assert times["cached"] == 0.0        # cache serves instantly
    assert reconfig["reconfig_s"] < 2.0      # swap-to-renegotiated < 2 s
    assert reconfig["agreement"].version == 2  # common grpc version
