"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.comm.bus import topic_matches
from repro.core.metrics import reduction_fraction, speedup
from repro.data import DataRecord, fair_score
from repro.data.schema import _UNIT_CONVERSIONS, SchemaError, convert_unit
from repro.labsci import ContinuousDim, DiscreteDim, ParameterSpace
from repro.sim import PriorityStore, Simulator

# -- topic matching --------------------------------------------------------------

_segment = st.text(alphabet="abcxyz", min_size=1, max_size=4)
_topic = st.lists(_segment, min_size=1, max_size=5).map(".".join)


@given(_topic)
@settings(max_examples=80, deadline=None)
def test_property_topic_matches_itself(topic):
    assert topic_matches(topic, topic)
    assert topic_matches("#", topic)


@given(_topic)
@settings(max_examples=80, deadline=None)
def test_property_star_matches_any_single_segment(topic):
    segments = topic.split(".")
    for i in range(len(segments)):
        pattern = ".".join(segments[:i] + ["*"] + segments[i + 1:])
        assert topic_matches(pattern, topic)


@given(_topic, _segment)
@settings(max_examples=80, deadline=None)
def test_property_extra_segment_breaks_exact_match(topic, extra):
    assert not topic_matches(topic, topic + "." + extra)
    assert topic_matches(topic + ".#", topic + "." + extra)


# -- unit conversion --------------------------------------------------------------

@given(st.sampled_from(sorted(_UNIT_CONVERSIONS)),
       st.floats(min_value=-1e6, max_value=1e6,
                 allow_nan=False, allow_infinity=False))
@settings(max_examples=100, deadline=None)
def test_property_unit_conversion_round_trips(unit, value):
    canonical, _fn = _UNIT_CONVERSIONS[unit]
    forward = convert_unit(value, unit, canonical)
    back = convert_unit(forward, canonical, unit)
    assert back == pytest.approx(value, rel=1e-9, abs=1e-6)


# -- parameter spaces ------------------------------------------------------------------

@st.composite
def _spaces(draw):
    n_cont = draw(st.integers(1, 3))
    n_disc = draw(st.integers(0, 2))
    dims = []
    for i in range(n_cont):
        lo = draw(st.floats(-100, 100, allow_nan=False))
        width = draw(st.floats(0.1, 100, allow_nan=False))
        dims.append(ContinuousDim(f"c{i}", lo, lo + width))
    for i in range(n_disc):
        k = draw(st.integers(2, 4))
        dims.append(DiscreteDim(f"d{i}", tuple(f"v{j}" for j in range(k))))
    return ParameterSpace(dims)


@given(_spaces(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_property_samples_encode_into_unit_box(space, seed):
    rng = np.random.default_rng(seed)
    p = space.sample(rng)
    space.validate(p)
    v = space.encode(p)
    assert v.shape == (space.encoded_size,)
    assert np.all(v >= 0.0) and np.all(v <= 1.0)
    # discrete one-hot blocks sum to 1 each
    offset = len(space.continuous)
    for d in space.discrete:
        block = v[offset:offset + len(d.choices)]
        assert block.sum() == pytest.approx(1.0)
        offset += len(d.choices)


@given(_spaces(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_property_discrete_key_round_trip(space, seed):
    rng = np.random.default_rng(seed)
    p = space.sample(rng)
    key = space.discrete_key(p)
    cont = {d.name: p[d.name] for d in space.continuous}
    assert space.with_discrete(key, cont) == p


# -- metrics ---------------------------------------------------------------------------

@given(st.floats(0.001, 1e9), st.floats(0.001, 1e9))
@settings(max_examples=80, deadline=None)
def test_property_speedup_reduction_consistency(base, improved):
    s = speedup(base, improved)
    r = reduction_fraction(base, improved)
    assert s is not None and r is not None
    # speedup > 1 <=> positive reduction
    assert (s > 1.0) == (r > 0.0)
    assert r == pytest.approx(1.0 - 1.0 / s)


# -- FAIR score bounds -------------------------------------------------------------------

@given(st.booleans(), st.text(max_size=8), st.text(max_size=8),
       st.sampled_from(["", "open", "restricted"]),
       st.booleans())
@settings(max_examples=80, deadline=None)
def test_property_fair_scores_bounded(indexed, license_, technique,
                                      sensitivity, with_quality):
    rec = DataRecord(source="s", values={"x": 1.0},
                     license=license_, sensitivity=sensitivity,
                     metadata={"technique": technique} if technique else {},
                     quality={"score": 0.5} if with_quality else None)
    report = fair_score(rec, indexed=indexed)
    for attr in ("findable", "accessible", "interoperable", "reusable"):
        assert 0.0 <= getattr(report, attr) <= 1.0
    assert 0.0 <= report.overall <= 1.0


def test_property_fair_monotone_in_enrichment():
    bare = DataRecord(source="s", values={"x": 1.0})
    rich = DataRecord(source="s", values={"x": 1.0}, license="MIT",
                      metadata={"technique": "xrd", "units": {"x": "u"}},
                      quality={"score": 1.0})
    assert fair_score(rich, indexed=True).overall \
        > fair_score(bare, indexed=False).overall


# -- priority store total order -----------------------------------------------------------

@given(st.lists(st.tuples(st.integers(-100, 100), st.integers(0, 1000)),
                min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_property_priority_store_yields_sorted(items):
    sim = Simulator()
    store = PriorityStore(sim)
    for it in items:
        store.put(it)
    got = []

    def consumer():
        for _ in range(len(items)):
            got.append((yield store.get()))

    sim.process(consumer())
    sim.run()
    assert got == sorted(items)
