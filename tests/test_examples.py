"""Smoke tests: every shipped example must run end-to-end.

Slow examples get their module constants shrunk first — the point is that
the public API wiring works, not the full-scale result.
"""

import importlib

import pytest


def _run_main(module_name: str, monkeypatch, **overrides):
    mod = importlib.import_module(module_name)
    for name, value in overrides.items():
        monkeypatch.setattr(mod, name, value, raising=True)
    mod.main()


def test_quickstart_runs(capsys, monkeypatch):
    _run_main("examples.quickstart", monkeypatch)
    out = capsys.readouterr().out
    assert "campaign summary" in out
    assert "best recipe found" in out


def test_federated_campaign_runs(capsys, monkeypatch):
    _run_main("examples.federated_campaign", monkeypatch,
              DONOR_BUDGET=15, JOINER_BUDGET=25, TARGET=0.25)
    out = capsys.readouterr().out
    assert "experiments to target" in out
    assert "knowledge integration" in out


def test_smart_dope_runs(capsys, monkeypatch):
    _run_main("examples.smart_dope", monkeypatch, BUDGET=30)
    out = capsys.readouterr().out
    assert "synthesis condition space" in out
    assert "oracle optimum" in out


def test_resilient_operations_runs(capsys, monkeypatch):
    _run_main("examples.resilient_operations", monkeypatch)
    out = capsys.readouterr().out
    assert "campaign under fire" in out
    assert "still completed" in out


def test_data_fabric_tour_runs(capsys, monkeypatch):
    _run_main("examples.data_fabric_tour", monkeypatch)
    out = capsys.readouterr().out
    assert "near-real-time stream processing" in out
    assert "restricted record export blocked: True" in out


def test_cross_facility_workflow_runs(capsys, monkeypatch):
    _run_main("examples.cross_facility_workflow", monkeypatch)
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "analysis verdict" in out


def test_campaign_service_runs(capsys, monkeypatch):
    # The example itself asserts the replayed run reproduces the same
    # decision hash — the acceptance criterion for repro.service.
    _run_main("examples.campaign_service", monkeypatch)
    out = capsys.readouterr().out
    assert "reason=queue-full" in out
    assert "'expired': 1" in out
    assert "cancelled par-7" in out
    assert "decision hash reproduced" in out


def test_observability_tour_runs(capsys, monkeypatch):
    # The example itself asserts its two seeded runs export byte-identical
    # JSON-lines traces — the acceptance criterion for repro.obs.
    _run_main("examples.observability_tour", monkeypatch)
    out = capsys.readouterr().out
    assert "span tree" in out
    assert "byte-identical = True" in out
    assert "latency histograms" in out
