"""Tests for attribute-based access control."""

import pytest

from repro.security import Decision, Policy, PolicyEngine, Rule
from repro.security.abac import (allow_all_within_federation,
                                 standard_lab_policy)


def test_rule_action_patterns():
    rule = Rule(effect=Decision.ALLOW, actions=("data:*", "rpc:run"))
    assert rule.matches({}, "data:read", {}, {})
    assert rule.matches({}, "rpc:run", {}, {})
    assert not rule.matches({}, "rpc:stop", {}, {})


def test_rule_subject_and_resource_match():
    rule = Rule(effect=Decision.ALLOW,
                subject_match={"role": "agent"},
                resource_match={"kind": "instrument"})
    assert rule.matches({"role": "agent"}, "x", {"kind": "instrument"}, {})
    assert not rule.matches({"role": "human"}, "x", {"kind": "instrument"}, {})
    assert not rule.matches({"role": "agent"}, "x", {"kind": "dataset"}, {})


def test_rule_condition_predicate():
    rule = Rule(effect=Decision.ALLOW,
                condition=lambda s, a, r, e: e.get("time", 0) < 100)
    assert rule.matches({}, "x", {}, {"time": 50})
    assert not rule.matches({}, "x", {}, {"time": 150})


def test_policy_first_match_wins():
    policy = Policy("p").add(
        Rule(effect=Decision.DENY, actions=("danger",))
    ).add(
        Rule(effect=Decision.ALLOW)
    )
    assert policy.evaluate({}, "danger", {})[0] is Decision.DENY
    assert policy.evaluate({}, "safe", {})[0] is Decision.ALLOW


def test_policy_no_match_returns_none():
    policy = Policy("p").add(Rule(effect=Decision.ALLOW, actions=("only",)))
    assert policy.evaluate({}, "other", {}) is None


def test_engine_default_deny():
    engine = PolicyEngine(Policy("empty"))
    decision, reason = engine.decide({}, "anything", {})
    assert decision is Decision.DENY
    assert reason == "default-deny"


def test_engine_institution_policy_precedes_federation():
    engine = PolicyEngine(allow_all_within_federation())
    engine.set_policy("ornl", Policy("ornl").add(
        Rule(effect=Decision.DENY, actions=("data:export",),
             description="ornl blocks exports")))
    decision, reason = engine.decide(
        {"institution": "anl"}, "data:export", {"institution": "ornl"})
    assert decision is Decision.DENY
    assert "ornl" in reason
    # other actions fall through to the permissive federation policy
    decision, _ = engine.decide(
        {"institution": "anl"}, "data:read", {"institution": "ornl"})
    assert decision is Decision.ALLOW


def test_engine_stats():
    engine = PolicyEngine(allow_all_within_federation())
    engine.decide({}, "x", {})
    engine.decide({}, "y", {})
    assert engine.stats["evaluations"] == 2
    assert engine.stats["allows"] == 2


# -- the representative lab policy ---------------------------------------------

@pytest.fixture
def engine():
    eng = PolicyEngine(allow_all_within_federation())
    eng.set_policy("ornl", standard_lab_policy("ornl"))
    return eng


def test_lab_policy_local_full_access(engine):
    d, _ = engine.decide({"institution": "ornl"}, "data:export",
                         {"institution": "ornl", "sensitivity": "restricted"})
    assert d is Decision.ALLOW


def test_lab_policy_blocks_restricted_export_by_outsiders(engine):
    d, reason = engine.decide(
        {"institution": "anl", "role": "agent"}, "data:export",
        {"institution": "ornl", "sensitivity": "restricted"})
    assert d is Decision.DENY
    assert "restricted" in reason


def test_lab_policy_federated_agent_can_run_instruments(engine):
    d, _ = engine.decide({"institution": "anl", "role": "agent"},
                         "instrument:acquire", {"institution": "ornl"})
    assert d is Decision.ALLOW


def test_lab_policy_only_operators_override(engine):
    d, _ = engine.decide({"institution": "anl", "role": "agent"},
                         "instrument:override", {"institution": "ornl"})
    assert d is Decision.DENY
    d, _ = engine.decide({"institution": "anl", "role": "operator"},
                         "instrument:override", {"institution": "ornl"})
    assert d is Decision.ALLOW


def test_lab_policy_unknown_role_outsider_falls_to_federation(engine):
    # Not an agent, not local: institution policy has no match, the open
    # federation policy allows.
    d, _ = engine.decide({"institution": "anl", "role": "student"},
                         "data:read", {"institution": "ornl"})
    assert d is Decision.ALLOW
