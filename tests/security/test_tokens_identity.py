"""Tests for tokens, identity providers, and the trust fabric."""

import pytest

from repro.security import FederatedIdentityProvider, Identity, TrustFabric
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def idp(sim):
    idp = FederatedIdentityProvider(sim, "ornl", default_ttl_s=100.0)
    idp.enroll(Identity.make("agent-1@ornl", "ornl", role="agent"))
    return idp


def test_issue_and_validate(sim, idp):
    tok = idp.issue("agent-1@ornl")
    assert idp.validate(tok)
    assert tok.subject == "agent-1@ornl"
    assert tok.attr("role") == "agent"


def test_enroll_wrong_institution_rejected(sim, idp):
    with pytest.raises(ValueError):
        idp.enroll(Identity.make("spy@anl", "anl"))


def test_issue_unknown_subject_rejected(sim, idp):
    with pytest.raises(KeyError):
        idp.issue("ghost@ornl")


def test_token_expires(sim, idp):
    tok = idp.issue("agent-1@ornl", ttl_s=10.0)
    assert idp.validate(tok)
    sim.run(until=20.0)
    assert not idp.validate(tok)
    assert tok.expired(sim.now)


def test_tampered_token_fails_verification(sim, idp):
    tok = idp.issue("agent-1@ornl")
    forged = tok.tampered_with(subject="admin@ornl")
    assert not idp.validate(forged)
    extended = tok.tampered_with(expires_at=tok.expires_at + 1e6)
    assert not idp.validate(extended)


def test_foreign_idp_cannot_validate(sim, idp):
    other = FederatedIdentityProvider(sim, "anl")
    tok = idp.issue("agent-1@ornl")
    assert not other.validate(tok)


def test_revoke_token(sim, idp):
    tok = idp.issue("agent-1@ornl")
    idp.revoke(tok)
    assert not idp.validate(tok)
    # a freshly issued token still works
    assert idp.validate(idp.issue("agent-1@ornl"))


def test_revoke_subject(sim, idp):
    tok = idp.issue("agent-1@ornl")
    idp.revoke_subject("agent-1@ornl")
    assert not idp.validate(tok)
    with pytest.raises(KeyError):
        idp.issue("agent-1@ornl")


def test_token_scopes():
    from repro.security.tokens import Token
    tok = Token.mint(b"k", "s", "i", ("data:*", "rpc:run"), {}, 0.0, 10.0)
    assert tok.permits("data:read")
    assert tok.permits("rpc:run")
    assert not tok.permits("rpc:stop")
    wild = Token.mint(b"k", "s", "i", ("*",), {}, 0.0, 10.0)
    assert wild.permits("anything")


def test_identity_attr_access():
    ident = Identity.make("x@y", "y", role="operator", clearance=3)
    assert ident.attr("role") == "operator"
    assert ident.attr("clearance") == 3
    assert ident.attr("nope") is None


# -- trust fabric ------------------------------------------------------------------

def make_fabric(sim):
    fabric = TrustFabric()
    for inst in ("ornl", "anl", "slac"):
        idp = FederatedIdentityProvider(sim, inst)
        idp.enroll(Identity.make(f"agent@{inst}", inst, role="agent"))
        fabric.add_provider(idp)
    return fabric


def test_self_trust_is_automatic(sim):
    fabric = make_fabric(sim)
    tok = fabric.provider("ornl").issue("agent@ornl")
    assert fabric.validate_at("ornl", tok)


def test_cross_institution_requires_explicit_trust(sim):
    fabric = make_fabric(sim)
    tok = fabric.provider("ornl").issue("agent@ornl")
    assert not fabric.validate_at("anl", tok)
    fabric.trust("anl", "ornl")
    assert fabric.validate_at("anl", tok)
    # trust is directional
    tok2 = fabric.provider("anl").issue("agent@anl")
    assert not fabric.validate_at("ornl", tok2)


def test_federate_creates_clique(sim):
    fabric = make_fabric(sim)
    fabric.federate()
    tok = fabric.provider("slac").issue("agent@slac")
    for inst in ("ornl", "anl", "slac"):
        assert fabric.validate_at(inst, tok)


def test_distrust_revokes_federation_edge(sim):
    fabric = make_fabric(sim)
    fabric.federate()
    fabric.distrust("ornl", "anl")
    tok = fabric.provider("anl").issue("agent@anl")
    assert not fabric.validate_at("ornl", tok)
    # self-trust cannot be removed
    fabric.distrust("anl", "anl")
    assert fabric.validate_at("anl", tok)


def test_unknown_issuer_rejected(sim):
    fabric = make_fabric(sim)
    from repro.security.tokens import Token
    rogue = Token.mint(b"rogue", "evil", "rogue-inst", ("*",), {}, 0.0, 1e9)
    fabric._trusts.add(("ornl", "rogue-inst"))  # even with trust edge
    assert not fabric.validate_at("ornl", rogue)
