"""Tests for the zero-trust gateway and audit log."""

import pytest

from repro.comm import Envelope, Message, Performative
from repro.security import (AuditLog, Decision, FederatedIdentityProvider,
                            Identity, Policy, PolicyEngine, Rule,
                            SecurityError, TrustFabric, ZeroTrustGateway)
from repro.security.abac import allow_all_within_federation
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def world(sim):
    fabric = TrustFabric()
    for inst in ("ornl", "anl"):
        idp = FederatedIdentityProvider(sim, inst, default_ttl_s=100.0)
        idp.enroll(Identity.make(f"agent@{inst}", inst, role="agent"))
        fabric.add_provider(idp)
    fabric.federate()
    engine = PolicyEngine(allow_all_within_federation())
    gateway = ZeroTrustGateway(
        sim, fabric, engine,
        site_institution={"site-ornl": "ornl", "site-anl": "anl"},
        verify_latency_s=0.002)
    return fabric, engine, gateway


def envelope(sim, token, dst="site-anl"):
    msg = Message(Performative.REQUEST, "agent@ornl", "target")
    return Envelope(message=msg, src_site="site-ornl", dst_site=dst,
                    token=token, enqueued_at=sim.now)


def test_valid_token_allows_and_charges_latency(sim, world):
    fabric, _, gateway = world
    tok = fabric.provider("ornl").issue("agent@ornl")
    delay = gateway.verify(envelope(sim, tok), action="rpc:run")
    assert delay == 0.002
    assert gateway.stats["verified"] == 1


def test_missing_token_rejected(sim, world):
    _, _, gateway = world
    with pytest.raises(SecurityError, match="no token"):
        gateway.verify(envelope(sim, None), action="rpc:run")
    assert gateway.stats["rejected_authn"] == 1


def test_expired_token_rejected(sim, world):
    fabric, _, gateway = world
    tok = fabric.provider("ornl").issue("agent@ornl", ttl_s=1.0)
    sim.run(until=5.0)
    with pytest.raises(SecurityError, match="expired"):
        gateway.verify(envelope(sim, tok), action="rpc:run")


def test_untrusted_issuer_rejected(sim, world):
    fabric, _, gateway = world
    fabric.distrust("anl", "ornl")
    tok = fabric.provider("ornl").issue("agent@ornl")
    with pytest.raises(SecurityError, match="not honoured"):
        gateway.verify(envelope(sim, tok, dst="site-anl"), action="rpc:run")


def test_out_of_scope_token_rejected(sim, world):
    fabric, _, gateway = world
    tok = fabric.provider("ornl").issue("agent@ornl", scopes=("data:read",))
    with pytest.raises(SecurityError, match="scope"):
        gateway.verify(envelope(sim, tok), action="instrument:fire")
    assert gateway.stats["rejected_authz"] == 1


def test_policy_denial_rejected(sim, world):
    fabric, engine, gateway = world
    engine.set_policy("anl", Policy("anl").add(Rule(
        effect=Decision.DENY, actions=("rpc:secret",),
        description="anl forbids this")))
    tok = fabric.provider("ornl").issue("agent@ornl")
    with pytest.raises(SecurityError, match="forbids"):
        gateway.verify(envelope(sim, tok), action="rpc:secret")


def test_every_decision_audited(sim, world):
    fabric, _, gateway = world
    tok = fabric.provider("ornl").issue("agent@ornl")
    gateway.verify(envelope(sim, tok), action="rpc:a")
    gateway.verify(envelope(sim, tok), action="rpc:b")
    with pytest.raises(SecurityError):
        gateway.verify(envelope(sim, None), action="rpc:c")
    entries = gateway.audit.entries()
    assert len(entries) == 3
    assert [e.decision for e in entries] == ["allow", "allow", "deny"]
    assert gateway.audit.denial_rate() == pytest.approx(1 / 3)


def test_refresh_loop_keeps_token_fresh(sim, world):
    fabric, _, gateway = world

    class Holder:
        token = None

    holder = Holder()
    idp = fabric.provider("ornl")
    sim.process(gateway.refresh_loop(idp, "agent@ornl", holder))
    sim.run(until=500.0)  # 5x the 100 s ttl
    assert holder.token is not None
    assert not holder.token.expired(sim.now)


def test_tampered_token_rejected_by_gateway(sim, world):
    fabric, _, gateway = world
    tok = fabric.provider("ornl").issue("agent@ornl")
    forged = tok.tampered_with(subject="admin@ornl")
    with pytest.raises(SecurityError):
        gateway.verify(envelope(sim, forged), action="rpc:run")


# -- audit log ------------------------------------------------------------------

def test_audit_query_filters(sim):
    log = AuditLog(sim)
    log.record("a", "i", "read", "r", "allow")
    log.record("b", "i", "write", "r", "deny", reason="nope")
    log.record("a", "i", "write", "r", "allow")
    assert len(log.query(subject="a")) == 2
    assert len(log.query(action="write")) == 2
    assert len(log.query(decision="deny")) == 1
    assert len(log.query(subject="a", action="write")) == 1


def test_audit_bounded_capacity_drops_oldest(sim):
    log = AuditLog(sim, capacity=2)
    for i in range(5):
        log.record(f"s{i}", "i", "a", "r", "allow")
    assert len(log) == 2
    assert log.dropped == 3
    assert [e.subject for e in log.entries()] == ["s3", "s4"]


def test_audit_query_since(sim):
    log = AuditLog(sim)
    log.record("a", "i", "x", "r", "allow")
    sim.run(until=10.0)
    log.record("b", "i", "x", "r", "allow")
    assert [e.subject for e in log.query(since=5.0)] == ["b"]
