"""Incremental (rank-1) GP updates must match batch refits.

The campaign layer streams observations through
:meth:`~repro.methods.gp.GaussianProcess.observe`; these tests pin the
contract that makes that safe: an observe chain is numerically equivalent
to one ``fit`` on the concatenated data — posterior means/stds to 1e-8
and, crucially for decision parity, the same acquisition argmax — and it
never pays an O(n³) refactorization.
"""

import numpy as np
import pytest

import repro.methods.gp as gp_mod
from repro.methods import GaussianProcess, Matern52, RBF


def _make_problem(seed: int):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 40))
    d = int(rng.integers(1, 6))
    X = rng.random((n, d))
    y = np.sin(4 * X[:, 0]) + 0.3 * rng.standard_normal(n)
    Xq = rng.random((256, d))
    return X, y, Xq


@pytest.mark.parametrize("seed", range(20))
def test_observe_chain_matches_batch_fit(seed):
    X, y, Xq = _make_problem(seed)
    kernel = RBF(lengthscale=0.3) if seed % 2 else Matern52(lengthscale=0.3)

    batch = GaussianProcess(kernel, noise=0.05).fit(X, y)
    inc = GaussianProcess(kernel, noise=0.05)
    for x, v in zip(X, y):
        inc.observe(x, v)

    mean_b, std_b = batch.predict(Xq)
    mean_i, std_i = inc.predict(Xq)
    np.testing.assert_allclose(mean_i, mean_b, atol=1e-8)
    np.testing.assert_allclose(std_i, std_b, atol=1e-8)
    # The decision a campaign would make is identical.
    assert int(np.argmax(mean_i + std_i)) == int(np.argmax(mean_b + std_b))
    assert inc.n_incremental_updates == len(y) - 1


def test_observe_chain_never_refactorizes(monkeypatch):
    """The O(n²) promise: no cho_factor calls while streaming points."""
    rng = np.random.default_rng(3)
    X = rng.random((30, 4))
    y = np.sin(3 * X[:, 0])
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=0.05).fit(X[:20], y[:20])

    real = gp_mod.cho_factor
    calls = []

    def counting(K, *a, **kw):
        calls.append(K.shape)
        return real(K, *a, **kw)

    monkeypatch.setattr(gp_mod, "cho_factor", counting)
    for i in range(20, 30):
        gp.observe(X[i], y[i])
    assert calls == []
    assert gp.n_incremental_updates == 10
    assert gp.n_observations == 30


def test_observe_duplicate_point_falls_back_to_fit():
    """A degenerate append refactors instead of poisoning the factor."""
    rng = np.random.default_rng(0)
    X = rng.random((10, 2))
    y = rng.standard_normal(10)
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=1e-6).fit(X, y)
    before = gp.n_factorizations
    gp.observe(X[0], y[0])  # exact duplicate: rank-1 update would be singular
    assert gp.n_factorizations == before + 1
    assert gp.n_observations == 11
    mean, std = gp.predict(X)
    assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))
