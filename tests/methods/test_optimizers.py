"""Tests for acquisition functions, baselines, BO, and nested BO."""

import numpy as np
import pytest

from repro.labsci import (ContinuousDim, DiscreteDim, ParameterSpace,
                          SyntheticLandscape)
from repro.methods import (BayesianOptimizer, GridSearch, LatinHypercube,
                           NestedBayesianOptimizer, RandomSearch,
                           expected_improvement, probability_of_improvement,
                           upper_confidence_bound)
from repro.methods.acquisition import score_candidates
from repro.methods.gp import GaussianProcess
from repro.methods.kernels import RBF


@pytest.fixture
def cont_space():
    return ParameterSpace([ContinuousDim("x", 0.0, 1.0),
                           ContinuousDim("y", 0.0, 1.0)])


@pytest.fixture
def mixed_space():
    return ParameterSpace([
        DiscreteDim("chem", ("a", "b", "c", "d")),
        ContinuousDim("x", 0.0, 1.0),
        ContinuousDim("y", 0.0, 1.0),
    ])


def optimize(opt, landscape, budget):
    for _ in range(budget):
        p = opt.ask()
        opt.tell(p, landscape.objective_value(p))
    return opt.best[0]


# -- acquisition functions ------------------------------------------------------

def test_ei_zero_when_certain_and_worse():
    ei = expected_improvement(np.array([0.1]), np.array([1e-12]), best=0.5)
    assert ei[0] == pytest.approx(0.0, abs=1e-9)


def test_ei_positive_when_uncertain():
    ei = expected_improvement(np.array([0.1]), np.array([0.3]), best=0.5)
    assert ei[0] > 0


def test_ei_monotone_in_mean():
    std = np.array([0.1, 0.1])
    ei = expected_improvement(np.array([0.4, 0.6]), std, best=0.5)
    assert ei[1] > ei[0]


def test_ucb_tradeoff():
    assert upper_confidence_bound(np.array([0.5]), np.array([0.2]),
                                  beta=2.0)[0] == pytest.approx(0.9)


def test_pi_bounded():
    pi = probability_of_improvement(np.array([0.0, 10.0]),
                                    np.array([0.1, 0.1]), best=0.5)
    assert 0.0 <= pi[0] < 0.01
    assert pi[1] > 0.99


def test_score_candidates_dispatch():
    rng = np.random.default_rng(0)
    X = rng.random((20, 2))
    y = X[:, 0]
    gp = GaussianProcess(RBF(0.3), noise=0.05).fit(X, y)
    Xc = rng.random((15, 2))
    for name in ("ei", "ucb", "pi", "thompson"):
        scores = score_candidates(name, gp, Xc, best=0.8, rng=rng)
        assert scores.shape == (15,)
    with pytest.raises(ValueError):
        score_candidates("magic", gp, Xc, best=0.8, rng=rng)


# -- baselines -------------------------------------------------------------------

def test_random_search_valid_and_tracks_best(cont_space):
    land = SyntheticLandscape(cont_space, seed=1)
    rs = RandomSearch(cont_space, np.random.default_rng(0))
    best = optimize(rs, land, 50)
    assert rs.n_observed == 50
    assert best == max(v for _, v in rs.history)
    traj = rs.best_trajectory()
    assert traj == sorted(traj)  # monotone non-decreasing


def test_grid_search_covers_grid(mixed_space):
    gs = GridSearch(mixed_space, points_per_dim=3)
    assert gs.grid_size == 4 * 3 * 3
    seen = {tuple(sorted(gs.ask().items())) for _ in range(gs.grid_size)}
    assert len(seen) == gs.grid_size
    # wraps around deterministically
    again = gs.ask()
    assert tuple(sorted(again.items())) in seen


def test_grid_search_validation(mixed_space):
    with pytest.raises(ValueError):
        GridSearch(mixed_space, points_per_dim=1)


def test_latin_hypercube_stratifies(cont_space):
    lhs = LatinHypercube(cont_space, np.random.default_rng(0), block=16)
    xs = sorted(lhs.ask()["x"] for _ in range(16))
    # one sample per stratum of width 1/16
    strata = {int(v * 16) for v in xs}
    assert len(strata) == 16


def test_latin_hypercube_discrete_balanced(mixed_space):
    lhs = LatinHypercube(mixed_space, np.random.default_rng(0), block=16)
    from collections import Counter
    counts = Counter(lhs.ask()["chem"] for _ in range(16))
    assert set(counts) == {"a", "b", "c", "d"}
    assert max(counts.values()) == 4


# -- Bayesian optimization ----------------------------------------------------------

def test_bo_beats_random_on_smooth_landscape(cont_space):
    budget = 40
    results = {}
    for name, make in [
        ("bo", lambda rng: BayesianOptimizer(cont_space, rng, n_init=8)),
        ("rs", lambda rng: RandomSearch(cont_space, rng)),
    ]:
        scores = []
        for seed in range(4):
            land = SyntheticLandscape(cont_space, seed=17, n_peaks=3)
            opt = make(np.random.default_rng(seed))
            scores.append(optimize(opt, land, budget))
        results[name] = float(np.mean(scores))
    assert results["bo"] >= results["rs"]


def test_bo_respects_space(cont_space):
    bo = BayesianOptimizer(cont_space, np.random.default_rng(0), n_init=4)
    land = SyntheticLandscape(cont_space, seed=3)
    for _ in range(20):
        p = bo.ask()
        assert cont_space.contains(p)
        bo.tell(p, land.objective_value(p))


def test_bo_absorb_external_observations(cont_space):
    land = SyntheticLandscape(cont_space, seed=9)
    donor = RandomSearch(cont_space, np.random.default_rng(1))
    for _ in range(30):
        p = donor.ask()
        donor.tell(p, land.objective_value(p))
    bo = BayesianOptimizer(cont_space, np.random.default_rng(2), n_init=8)
    for p, v in donor.history:
        bo.absorb(p, v)
    # External knowledge means the surrogate is active from ask #1.
    p = bo.ask()
    assert cont_space.contains(p)
    assert bo.n_observed == 0  # absorbed data is not "ours"


def test_bo_acquisition_variants_run(cont_space):
    land = SyntheticLandscape(cont_space, seed=5)
    for acq in ("ei", "ucb", "pi", "thompson"):
        bo = BayesianOptimizer(cont_space, np.random.default_rng(0),
                               acquisition=acq, n_init=4, n_candidates=64)
        optimize(bo, land, 12)
        assert bo.best is not None


def test_bo_posterior_at(cont_space):
    land = SyntheticLandscape(cont_space, seed=5)
    bo = BayesianOptimizer(cont_space, np.random.default_rng(0), n_init=4)
    mean, std = bo.posterior_at({"x": 0.5, "y": 0.5})
    assert std == float("inf")  # no data yet
    optimize(bo, land, 15)
    mean, std = bo.posterior_at({"x": 0.5, "y": 0.5})
    assert np.isfinite(mean) and np.isfinite(std)


# -- nested BO -------------------------------------------------------------------------

def test_nested_requires_discrete(cont_space):
    with pytest.raises(ValueError):
        NestedBayesianOptimizer(cont_space, np.random.default_rng(0))


def test_nested_explores_then_concentrates(mixed_space):
    land = SyntheticLandscape(mixed_space, seed=21, n_peaks=3)
    nbo = NestedBayesianOptimizer(mixed_space, np.random.default_rng(0),
                                  arm_subset=8)
    optimize(nbo, land, 60)
    assert nbo.n_arms_visited >= 2  # explored several chemistries
    summary = nbo.arm_summary()
    pulls = {k: p for k, p, _ in summary}
    best_arm = summary[0][0]
    # the best chemistry got the most attention
    assert pulls[best_arm] == max(pulls.values())


def test_nested_tracks_history_and_best(mixed_space):
    land = SyntheticLandscape(mixed_space, seed=2)
    nbo = NestedBayesianOptimizer(mixed_space, np.random.default_rng(1))
    best = optimize(nbo, land, 30)
    assert nbo.n_observed == 30
    assert best == max(v for _, v in nbo.history)


def test_nested_absorb_routes_to_arm(mixed_space):
    nbo = NestedBayesianOptimizer(mixed_space, np.random.default_rng(0))
    nbo.absorb({"chem": "b", "x": 0.5, "y": 0.5}, 0.9)
    arm = nbo._arms[("b",)]
    assert arm.best_value == 0.9
    assert arm.pulls == 0  # donations are not pulls


def test_nested_on_quantum_dot_scale(qd_landscape):
    # Smoke test on the real 10^13 space: it must run and improve.
    nbo = NestedBayesianOptimizer(qd_landscape.space,
                                  np.random.default_rng(3), arm_subset=16)
    traj = []
    for _ in range(40):
        p = nbo.ask()
        v = qd_landscape.objective_value(p)
        nbo.tell(p, v)
        traj.append(nbo.best[0])
    assert traj[-1] >= traj[5]


# -- std == 0 regression (posterior collapses at observed points) ---------------

def test_ei_finite_at_exact_zero_std():
    ei = expected_improvement(np.array([0.1, 0.5, 0.9]),
                              np.array([0.0, 0.0, 0.0]), best=0.5)
    assert np.all(np.isfinite(ei))
    # At/below the incumbent with zero uncertainty: no improvement.
    assert ei[0] == pytest.approx(0.0, abs=1e-9)
    assert ei[1] == pytest.approx(0.0, abs=1e-9)
    # Certainly better: EI collapses to the mean gap.
    assert ei[2] == pytest.approx(0.9 - 0.5 - 0.01, abs=1e-6)


def test_pi_finite_at_exact_zero_std():
    pi = probability_of_improvement(np.array([0.1, 0.9]),
                                    np.array([0.0, 0.0]), best=0.5)
    assert np.all(np.isfinite(pi))
    assert pi[0] == pytest.approx(0.0, abs=1e-9)
    assert pi[1] == pytest.approx(1.0, abs=1e-9)


def test_score_candidates_finite_on_observed_points():
    """Scoring the training points themselves must not produce NaN/inf."""
    X = np.array([[0.1, 0.2], [0.8, 0.9], [0.4, 0.5]])
    y = np.array([0.3, 0.7, 0.5])
    gp = GaussianProcess(kernel=RBF(lengthscale=0.3), noise=1e-6).fit(X, y)
    rng = np.random.default_rng(0)
    for name in ("ei", "ucb", "pi"):
        scores = score_candidates(name, gp, X, best=0.7, rng=rng)
        assert np.all(np.isfinite(scores)), name


# -- batched ask determinism ----------------------------------------------------

def _run_campaign(seed):
    from repro.scale import decision_hash
    land = SyntheticLandscape(
        ParameterSpace([DiscreteDim("chem", ("a", "b", "c")),
                        ContinuousDim("x", 0.0, 1.0),
                        ContinuousDim("y", 0.0, 1.0)]), seed=5)
    opt = BayesianOptimizer(land.space, np.random.default_rng(seed),
                            n_init=4, n_candidates=64)
    decisions = []
    for _ in range(16):
        p = opt.ask()
        v = land.objective_value(p)
        opt.tell(p, v)
        decisions.append((p, v))
    return decision_hash(decisions)


def test_ask_decision_hash_stable_across_same_seed_worlds():
    """Two same-seed campaigns in one process make identical decisions."""
    assert _run_campaign(42) == _run_campaign(42)
    assert _run_campaign(42) != _run_campaign(43)


def test_perturb_batch_stays_in_bounds(mixed_space):
    opt = BayesianOptimizer(mixed_space, np.random.default_rng(1),
                            n_candidates=32)
    incumbent = {"chem": "b", "x": 0.01, "y": 0.99}
    raw = opt._perturb_batch(incumbent)
    n_copies = len(opt._JITTER_SCALES) * opt._JITTER_COPIES
    assert raw.shape == (n_copies, len(mixed_space))
    for p in mixed_space.decode_batch(raw):
        mixed_space.validate(p)
        assert p["chem"] == "b"  # discrete coordinates never jittered
