"""Tests for kernels and Gaussian-process regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.methods import GaussianProcess, Matern52, RBF


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# -- kernels ------------------------------------------------------------------

@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_diagonal_is_amplitude_squared(kernel_cls):
    k = kernel_cls(lengthscale=0.3, amplitude=2.0)
    X = np.random.default_rng(0).random((5, 3))
    K = k(X, X)
    assert np.allclose(np.diag(K), 4.0)


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_symmetric_psd(kernel_cls):
    k = kernel_cls(lengthscale=0.5)
    X = np.random.default_rng(1).random((20, 4))
    K = k(X, X)
    assert np.allclose(K, K.T)
    eigvals = np.linalg.eigvalsh(K)
    assert eigvals.min() > -1e-8


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_decays_with_distance(kernel_cls):
    k = kernel_cls(lengthscale=0.2)
    a = np.zeros((1, 2))
    near = np.array([[0.05, 0.0]])
    far = np.array([[0.9, 0.9]])
    assert k(a, near)[0, 0] > k(a, far)[0, 0]


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_param_validation(kernel_cls):
    with pytest.raises(ValueError):
        kernel_cls(lengthscale=0.0)
    with pytest.raises(ValueError):
        kernel_cls(amplitude=-1.0)


# -- GP regression -----------------------------------------------------------------

def test_gp_interpolates_training_data(rng):
    X = rng.random((15, 2))
    y = np.sin(4 * X[:, 0]) + X[:, 1]
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=1e-3)
    gp.fit(X, y)
    mean, std = gp.predict(X)
    assert np.allclose(mean, y, atol=0.05)
    assert np.all(std < 0.1)


def test_gp_uncertainty_grows_away_from_data(rng):
    X = rng.random((10, 1)) * 0.3  # data clustered in [0, 0.3]
    y = np.sin(5 * X[:, 0])
    gp = GaussianProcess(RBF(lengthscale=0.2), noise=1e-2).fit(X, y)
    _, std_near = gp.predict(np.array([[0.15]]))
    _, std_far = gp.predict(np.array([[0.95]]))
    assert std_far[0] > std_near[0] * 2


def test_gp_prediction_reasonable_between_points(rng):
    X = np.linspace(0, 1, 20)[:, None]
    y = np.sin(2 * np.pi * X[:, 0])
    gp = GaussianProcess(Matern52(lengthscale=0.2), noise=1e-2).fit(X, y)
    xq = np.array([[0.525]])
    mean, _ = gp.predict(xq)
    assert mean[0] == pytest.approx(np.sin(2 * np.pi * 0.525), abs=0.1)


def test_gp_shape_validation(rng):
    gp = GaussianProcess()
    with pytest.raises(ValueError):
        gp.fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        gp.fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(RuntimeError):
        gp.predict(np.zeros((1, 2)))


def test_gp_noise_validation():
    with pytest.raises(ValueError):
        GaussianProcess(noise=0.0)


def test_gp_normalization_handles_large_targets(rng):
    X = rng.random((20, 2))
    y = 1e4 + 100 * np.sin(3 * X[:, 0])
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=1e-2).fit(X, y)
    mean, _ = gp.predict(X)
    assert np.allclose(mean, y, rtol=0.01)


def test_gp_lml_prefers_true_lengthscale(rng):
    X = rng.random((40, 1))
    y = np.sin(2 * np.pi * X[:, 0])  # characteristic scale ~0.15-0.3
    lmls = {}
    for l in (0.01, 0.2, 5.0):
        gp = GaussianProcess(RBF(lengthscale=l), noise=0.05).fit(X, y)
        lmls[l] = gp.log_marginal_likelihood()
    assert lmls[0.2] > lmls[0.01]
    assert lmls[0.2] > lmls[5.0]


def test_gp_hyperparameter_fit_improves_lml(rng):
    X = rng.random((30, 2))
    y = np.sin(6 * X[:, 0]) * np.cos(3 * X[:, 1])
    gp = GaussianProcess(RBF(lengthscale=5.0), noise=0.05)
    gp.fit(X, y)
    before = gp.log_marginal_likelihood()
    gp.fit_hyperparameters(X, y)
    after = gp.log_marginal_likelihood()
    assert after >= before


def test_gp_posterior_samples_match_moments(rng):
    X = rng.random((12, 1))
    y = np.sin(4 * X[:, 0])
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=1e-2).fit(X, y)
    Xq = np.linspace(0, 1, 7)[:, None]
    mean, std = gp.predict(Xq)
    draws = gp.sample_posterior(Xq, rng, n_samples=3000)
    assert draws.shape == (3000, 7)
    assert np.allclose(draws.mean(axis=0), mean, atol=0.05)
    assert np.allclose(draws.std(axis=0), std, atol=0.08)


@given(st.integers(min_value=2, max_value=25), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_property_gp_std_nonnegative_and_finite(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    y = rng.normal(size=n)
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=0.05).fit(X, y)
    mean, std = gp.predict(rng.random((10, 2)))
    assert np.all(np.isfinite(mean))
    assert np.all(std >= 0)
