"""Tests for kernels and Gaussian-process regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.methods import GaussianProcess, Matern52, RBF


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# -- kernels ------------------------------------------------------------------

@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_diagonal_is_amplitude_squared(kernel_cls):
    k = kernel_cls(lengthscale=0.3, amplitude=2.0)
    X = np.random.default_rng(0).random((5, 3))
    K = k(X, X)
    assert np.allclose(np.diag(K), 4.0)


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_symmetric_psd(kernel_cls):
    k = kernel_cls(lengthscale=0.5)
    X = np.random.default_rng(1).random((20, 4))
    K = k(X, X)
    assert np.allclose(K, K.T)
    eigvals = np.linalg.eigvalsh(K)
    assert eigvals.min() > -1e-8


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_decays_with_distance(kernel_cls):
    k = kernel_cls(lengthscale=0.2)
    a = np.zeros((1, 2))
    near = np.array([[0.05, 0.0]])
    far = np.array([[0.9, 0.9]])
    assert k(a, near)[0, 0] > k(a, far)[0, 0]


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_param_validation(kernel_cls):
    with pytest.raises(ValueError):
        kernel_cls(lengthscale=0.0)
    with pytest.raises(ValueError):
        kernel_cls(amplitude=-1.0)


# -- GP regression -----------------------------------------------------------------

def test_gp_interpolates_training_data(rng):
    X = rng.random((15, 2))
    y = np.sin(4 * X[:, 0]) + X[:, 1]
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=1e-3)
    gp.fit(X, y)
    mean, std = gp.predict(X)
    assert np.allclose(mean, y, atol=0.05)
    assert np.all(std < 0.1)


def test_gp_uncertainty_grows_away_from_data(rng):
    X = rng.random((10, 1)) * 0.3  # data clustered in [0, 0.3]
    y = np.sin(5 * X[:, 0])
    gp = GaussianProcess(RBF(lengthscale=0.2), noise=1e-2).fit(X, y)
    _, std_near = gp.predict(np.array([[0.15]]))
    _, std_far = gp.predict(np.array([[0.95]]))
    assert std_far[0] > std_near[0] * 2


def test_gp_prediction_reasonable_between_points(rng):
    X = np.linspace(0, 1, 20)[:, None]
    y = np.sin(2 * np.pi * X[:, 0])
    gp = GaussianProcess(Matern52(lengthscale=0.2), noise=1e-2).fit(X, y)
    xq = np.array([[0.525]])
    mean, _ = gp.predict(xq)
    assert mean[0] == pytest.approx(np.sin(2 * np.pi * 0.525), abs=0.1)


def test_gp_shape_validation(rng):
    gp = GaussianProcess()
    with pytest.raises(ValueError):
        gp.fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        gp.fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(RuntimeError):
        gp.predict(np.zeros((1, 2)))


def test_gp_noise_validation():
    with pytest.raises(ValueError):
        GaussianProcess(noise=0.0)


def test_gp_normalization_handles_large_targets(rng):
    X = rng.random((20, 2))
    y = 1e4 + 100 * np.sin(3 * X[:, 0])
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=1e-2).fit(X, y)
    mean, _ = gp.predict(X)
    assert np.allclose(mean, y, rtol=0.01)


def test_gp_lml_prefers_true_lengthscale(rng):
    X = rng.random((40, 1))
    y = np.sin(2 * np.pi * X[:, 0])  # characteristic scale ~0.15-0.3
    lmls = {}
    for l in (0.01, 0.2, 5.0):
        gp = GaussianProcess(RBF(lengthscale=l), noise=0.05).fit(X, y)
        lmls[l] = gp.log_marginal_likelihood()
    assert lmls[0.2] > lmls[0.01]
    assert lmls[0.2] > lmls[5.0]


def test_gp_hyperparameter_fit_improves_lml(rng):
    X = rng.random((30, 2))
    y = np.sin(6 * X[:, 0]) * np.cos(3 * X[:, 1])
    gp = GaussianProcess(RBF(lengthscale=5.0), noise=0.05)
    gp.fit(X, y)
    before = gp.log_marginal_likelihood()
    gp.fit_hyperparameters(X, y)
    after = gp.log_marginal_likelihood()
    assert after >= before


def test_gp_posterior_samples_match_moments(rng):
    X = rng.random((12, 1))
    y = np.sin(4 * X[:, 0])
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=1e-2).fit(X, y)
    Xq = np.linspace(0, 1, 7)[:, None]
    mean, std = gp.predict(Xq)
    draws = gp.sample_posterior(Xq, rng, n_samples=3000)
    assert draws.shape == (3000, 7)
    assert np.allclose(draws.mean(axis=0), mean, atol=0.05)
    assert np.allclose(draws.std(axis=0), std, atol=0.08)


@given(st.integers(min_value=2, max_value=25), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_property_gp_std_nonnegative_and_finite(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    y = rng.normal(size=n)
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=0.05).fit(X, y)
    mean, std = gp.predict(rng.random((10, 2)))
    assert np.all(np.isfinite(mean))
    assert np.all(std >= 0)


# -- fast-path behaviors (incremental stack, PR 4) -----------------------------

def test_unfitted_lml_raises_runtime_error():
    gp = GaussianProcess()
    with pytest.raises(RuntimeError):
        gp.log_marginal_likelihood()


def test_predict_mean_only_skips_cholesky(rng):
    X = rng.random((25, 3))
    y = np.sin(5 * X[:, 0]) + X[:, 1]
    Xq = rng.random((40, 3))
    gp = GaussianProcess(RBF(lengthscale=0.3), noise=0.05).fit(X, y)
    mean_full, std_full = gp.predict(Xq, return_std=True)
    # Poison the factor: the mean-only path must never touch it.
    gp._chol = None
    mean_only, std_zero = gp.predict(Xq, return_std=False)
    assert np.array_equal(mean_only, mean_full)
    assert np.all(std_zero == 0.0)
    assert np.all(std_full > 0.0)


def test_failed_grid_never_half_swaps_kernel(rng, monkeypatch):
    """A grid search that dies mid-scan must not mutate the incumbent."""
    import repro.methods.gp as gp_mod

    X = rng.random((15, 2))
    y = np.sin(4 * X[:, 0])
    original = RBF(lengthscale=0.33, amplitude=1.7)
    gp = GaussianProcess(original, noise=0.05)

    def always_fails(K, lower=True, **kw):
        raise np.linalg.LinAlgError("synthetic factorization failure")

    monkeypatch.setattr(gp_mod, "cho_factor", always_fails)
    with pytest.raises(np.linalg.LinAlgError):
        gp.fit_hyperparameters(X, y)
    assert gp.kernel is original
    assert gp.kernel.lengthscale == 0.33
    assert gp.kernel.amplitude == 1.7


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_diag_matches_full_matrix(kernel_cls, rng):
    k = kernel_cls(lengthscale=0.4, amplitude=1.3)
    X = rng.random((12, 5))
    assert np.allclose(k.diag(X), np.diag(k(X, X)))


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
def test_kernel_from_unit_sqdist_matches_call(kernel_cls, rng):
    from repro.methods.kernels import _sqdist
    k = kernel_cls(lengthscale=0.17, amplitude=2.1)
    a, b = rng.random((9, 4)), rng.random((7, 4))
    derived = k.from_unit_sqdist(_sqdist(a, b, 1.0))
    assert np.allclose(derived, k(a, b), rtol=1e-12)


def test_grid_derived_mode_selects_same_kernel(rng):
    X = rng.random((30, 3))
    y = np.sin(6 * X[:, 0]) * np.cos(3 * X[:, 1])
    exact = GaussianProcess(noise=0.05).fit_hyperparameters(X, y)
    derived = GaussianProcess(noise=0.05).fit_hyperparameters(X, y,
                                                              exact=False)
    assert exact.kernel.lengthscale == derived.kernel.lengthscale
    assert exact.kernel.amplitude == derived.kernel.amplitude
    np.testing.assert_allclose(exact.log_marginal_likelihood(),
                               derived.log_marginal_likelihood(), rtol=1e-9)


def test_grid_early_exit_keeps_incumbent(rng):
    X = rng.random((25, 2))
    y = np.sin(5 * X[:, 0])
    gp = GaussianProcess(noise=0.05).fit_hyperparameters(X, y)
    winner = gp.kernel
    before = gp.n_factorizations
    gp.fit_hyperparameters(X, y, early_exit_tol=1.0)
    assert gp.kernel is winner  # incumbent re-scored, grid skipped
    assert gp.n_factorizations == before + 1
