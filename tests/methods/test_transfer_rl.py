"""Tests for the transfer adapter and the RL scheduler."""

import numpy as np
import pytest

from repro.labsci import ContinuousDim, ParameterSpace
from repro.methods import QLearningScheduler, TransferAdapter
from repro.methods.rl_scheduler import SchedulingState


@pytest.fixture
def space():
    return ParameterSpace([ContinuousDim("x", 0.0, 1.0)])


# -- transfer adapter ------------------------------------------------------------

def test_offset_estimated_from_coincident_pairs(space):
    ta = TransferAdapter(space, min_pairs=3, neighbor_scale=0.05)
    # Local truth: f(x) = x; foreign site reads 0.2 lower systematically.
    for x in (0.1, 0.3, 0.5, 0.7):
        ta.observe_local({"x": x}, x)
        ta.receive("site-b", {"x": x}, x - 0.2)
    offsets = ta.offset_estimates()
    assert offsets["site-b"] == pytest.approx(0.2, abs=0.02)


def test_corrected_donations_apply_offset(space):
    ta = TransferAdapter(space, min_pairs=2, neighbor_scale=0.05)
    for x in (0.2, 0.4, 0.6):
        ta.observe_local({"x": x}, x)
        ta.receive("b", {"x": x}, x - 0.1)
    donations = ta.corrected_donations("b")
    for params, value in donations:
        assert value == pytest.approx(params["x"], abs=0.02)
    assert ta.stats["corrected"] == 3


def test_passthrough_without_enough_pairs(space):
    ta = TransferAdapter(space, min_pairs=5)
    ta.receive("b", {"x": 0.5}, 0.4)
    donations = ta.corrected_donations("b")
    assert donations == [({"x": 0.5}, 0.4)]
    assert ta.stats["passthrough"] == 1


def test_distant_observations_do_not_pair(space):
    ta = TransferAdapter(space, min_pairs=1, neighbor_scale=0.01)
    ta.observe_local({"x": 0.1}, 0.1)
    ta.receive("b", {"x": 0.9}, 0.5)  # nowhere near local data
    assert ta.offset_estimates()["b"] is None


def test_all_corrected_merges_sources(space):
    ta = TransferAdapter(space, min_pairs=99)
    ta.receive("b", {"x": 0.1}, 0.1)
    ta.receive("c", {"x": 0.2}, 0.2)
    assert len(ta.all_corrected()) == 2


def test_offset_robust_to_outlier(space):
    ta = TransferAdapter(space, min_pairs=3, neighbor_scale=0.05)
    for x in (0.1, 0.3, 0.5, 0.7, 0.9):
        ta.observe_local({"x": x}, x)
        ta.receive("b", {"x": x}, x - 0.2)
    ta.observe_local({"x": 0.95}, 0.95)
    ta.receive("b", {"x": 0.95}, 5.0)  # one corrupted donation
    # median keeps the estimate near the true offset
    assert ta.offset_estimates()["b"] == pytest.approx(0.2, abs=0.05)


# -- scheduling state -----------------------------------------------------------------

def test_state_discretization_bounds():
    s = SchedulingState.discretize(queue_length=0, frac_budget_used=0.0,
                                   recent_improvement=0.5)
    assert (s.queue_pressure, s.budget_phase, s.confidence) == (0, 0, 0)
    s = SchedulingState.discretize(queue_length=10, frac_budget_used=0.9,
                                   recent_improvement=0.0)
    assert (s.queue_pressure, s.budget_phase, s.confidence) == (2, 2, 2)


def test_state_hashable():
    a = SchedulingState(1, 1, 1)
    b = SchedulingState(1, 1, 1)
    assert a == b and hash(a) == hash(b)


# -- Q-learning -------------------------------------------------------------------------

def test_q_learning_learns_best_action():
    rng = np.random.default_rng(0)
    sched = QLearningScheduler(("flow", "batch", "simulate"), rng,
                               epsilon=0.3)
    state = SchedulingState(1, 1, 1)
    rewards = {"flow": 1.0, "batch": 0.2, "simulate": 0.5}
    for _ in range(300):
        action = sched.choose(state)
        sched.update(state, action, rewards[action])
    assert sched.policy(state) == "flow"


def test_q_learning_state_dependent_policy():
    rng = np.random.default_rng(1)
    sched = QLearningScheduler(("fast", "accurate"), rng, epsilon=0.4)
    early, late = SchedulingState(0, 0, 0), SchedulingState(0, 2, 2)
    for _ in range(400):
        for state, best in ((early, "fast"), (late, "accurate")):
            action = sched.choose(state)
            reward = 1.0 if action == best else 0.0
            sched.update(state, action, reward)
    assert sched.policy(early) == "fast"
    assert sched.policy(late) == "accurate"


def test_epsilon_decays():
    sched = QLearningScheduler(("a", "b"), np.random.default_rng(0),
                               epsilon=0.5, epsilon_decay=0.9,
                               min_epsilon=0.05)
    for _ in range(100):
        sched.update("s", "a", 1.0)
    assert sched.epsilon == pytest.approx(0.05)


def test_choose_respects_available_subset():
    sched = QLearningScheduler(("a", "b", "c"), np.random.default_rng(0),
                               epsilon=0.0)
    sched.update("s", "a", 10.0)
    # "a" is best but unavailable (e.g. instrument faulted):
    assert sched.choose("s", available=("b", "c")) in ("b", "c")


def test_validation():
    with pytest.raises(ValueError):
        QLearningScheduler((), np.random.default_rng(0))
    sched = QLearningScheduler(("a",), np.random.default_rng(0))
    with pytest.raises(ValueError):
        sched.choose("s", available=())


def test_terminal_update_ignores_future():
    sched = QLearningScheduler(("a",), np.random.default_rng(0), alpha=1.0,
                               epsilon=0.0)
    sched.update("s", "a", 1.0, next_state=None)
    assert sched.q("s", "a") == pytest.approx(1.0)
