"""Runtime race-auditor tests: ties, registry contention, hook chaining."""

from repro.analysis import RaceAuditor, WatchedRegistry
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import Simulator


def make_auditor(sim=None):
    sim = sim or Simulator()
    auditor = RaceAuditor(sim).install()
    return sim, auditor


# -- same-time / cross-process ties -------------------------------------------

def test_no_ties_when_times_differ():
    sim, auditor = make_auditor()
    sim.schedule_callback(1.0, lambda: None)
    sim.schedule_callback(2.0, lambda: None)
    sim.run()
    assert auditor.summary() == {"same_time_ties": 0,
                                 "cross_process_ties": 0,
                                 "registry_races": 0}


def test_same_time_ties_counted():
    sim, auditor = make_auditor()
    for _ in range(3):
        sim.schedule_callback(5.0, lambda: None)
    sim.run()
    # Three pops at t=5: the 2nd and 3rd are ties with their predecessor.
    assert auditor.ties.value == 2
    # All scheduled from kernel context — not cross-process.
    assert auditor.cross_ties.value == 0


def test_cross_process_tie_detected_and_recorded():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)

    def build():
        # Two *processes* each schedule an event landing at t=5; their
        # relative pop order is fixed only by the kernel tie-break.
        sim.process(worker(sim))
        sim.process(worker(sim))

    sim.schedule_callback(0.0, build)
    auditor = RaceAuditor(sim).install()
    sim.run()
    assert auditor.cross_ties.value >= 1
    kinds = {f.kind for f in auditor.findings}
    assert "cross-process-tie" in kinds
    cross = [f for f in auditor.findings if f.kind == "cross-process-tie"]
    # Both the tied timeouts and the tied process-completion events are
    # reported; every one of them lands at t=5.
    assert cross and all(f.time == 5.0 for f in cross)
    assert "worker#1" in cross[0].detail and "worker#2" in cross[0].detail


def test_single_process_ties_are_not_cross_process():
    sim = Simulator()

    def worker(sim):
        a = sim.timeout(5.0)
        b = sim.timeout(5.0)
        yield sim.all_of([a, b])

    sim.process(worker(sim))
    auditor = RaceAuditor(sim).install()
    sim.run()
    assert auditor.ties.value >= 1
    assert auditor.cross_ties.value == 0


# -- registry watching --------------------------------------------------------

def test_registry_race_flagged_for_two_writers_in_one_timestep():
    sim = Simulator()
    auditor = RaceAuditor(sim).install()
    catalog = auditor.watch("catalog")

    def writer(sim, key):
        yield sim.timeout(3.0)
        catalog[key] = key

    sim.process(writer(sim, "a"))
    sim.process(writer(sim, "b"))
    sim.run()
    assert auditor.registry_races.value == 1
    (finding,) = [f for f in auditor.findings if f.kind == "registry-race"]
    assert "catalog" in finding.detail


def test_single_writer_many_keys_is_clean():
    sim = Simulator()
    auditor = RaceAuditor(sim).install()
    catalog = auditor.watch("catalog")

    def writer(sim):
        yield sim.timeout(3.0)
        catalog["a"] = 1
        catalog["b"] = 2
        del catalog["a"]

    sim.process(writer(sim))
    sim.run()
    assert auditor.registry_races.value == 0
    assert dict(catalog) == {"b": 2}


def test_same_writer_different_timesteps_is_clean():
    sim = Simulator()
    auditor = RaceAuditor(sim).install()
    catalog = auditor.watch("catalog")

    def writer(sim, key, delay):
        yield sim.timeout(delay)
        catalog[key] = key

    sim.process(writer(sim, "a", 1.0))
    sim.process(writer(sim, "b", 2.0))
    sim.run()
    assert auditor.registry_races.value == 0


def test_watched_registry_wraps_existing_backing():
    sim = Simulator()
    auditor = RaceAuditor(sim).install()
    backing = {"seed": 1}
    reg = auditor.watch("peers", backing)
    assert isinstance(reg, WatchedRegistry)
    assert reg["seed"] == 1
    reg["new"] = 2
    assert backing == {"seed": 1, "new": 2}
    assert len(reg) == 2 and set(reg) == {"seed", "new"}


# -- hook lifecycle -----------------------------------------------------------

def test_auditor_chains_with_existing_hooks():
    sim = Simulator()
    stepped, scheduled = [], []
    sim.step_hook = lambda t, ev: stepped.append(t)
    sim.schedule_hook = lambda t, ev: scheduled.append(t)
    auditor = RaceAuditor(sim).install()
    sim.schedule_callback(1.0, lambda: None)
    sim.schedule_callback(1.0, lambda: None)
    sim.run()
    # The pre-existing hooks still fired for every event...
    assert stepped == [1.0, 1.0]
    assert scheduled == [1.0, 1.0]
    # ...and the auditor observed the tie on top.
    assert auditor.ties.value == 1


def test_uninstall_restores_previous_hooks():
    sim = Simulator()
    prev_step = lambda t, ev: None
    sim.step_hook = prev_step
    auditor = RaceAuditor(sim).install()
    assert sim.step_hook is not prev_step
    auditor.uninstall()
    assert sim.step_hook is prev_step
    # Idempotent: a second uninstall is a no-op.
    auditor.uninstall()
    assert sim.step_hook is prev_step


def test_install_is_idempotent():
    sim = Simulator()
    auditor = RaceAuditor(sim)
    assert auditor.install() is auditor.install()
    auditor.uninstall()
    assert sim.step_hook is None


def test_counters_report_into_shared_metrics_registry():
    metrics = MetricsRegistry()
    sim = Simulator()
    auditor = RaceAuditor(sim, metrics=metrics).install()
    sim.schedule_callback(2.0, lambda: None)
    sim.schedule_callback(2.0, lambda: None)
    sim.run()
    assert metrics.counter("audit.same_time_ties").value == 1
    assert auditor.summary()["same_time_ties"] == 1


def test_findings_are_bounded():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)

    def build():
        for _ in range(8):
            sim.process(worker(sim))

    sim.schedule_callback(0.0, build)
    auditor = RaceAuditor(sim, max_findings=2).install()
    sim.run()
    assert auditor.cross_ties.value > 2
    assert len(auditor.findings) == 2
