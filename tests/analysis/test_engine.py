"""Engine tests: pragmas, config, JSON schema, CLI, and the self-check
that keeps the repo detlint-clean."""

import json
from pathlib import Path

import pytest

from repro.analysis import (DetlintConfig, lint_paths, lint_source,
                            load_config)
from repro.analysis.__main__ import main
from repro.analysis.engine import REPORT_VERSION

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = Path(__file__).parent / "fixtures" / "detlint_cases.py"

DIRTY = "import itertools\n_ids = itertools.count(1)\n"


# -- pragma suppression -------------------------------------------------------

def test_pragma_same_line_suppresses():
    src = "import itertools\n_ids = itertools.count(1)  # detlint: ignore[D001] legacy\n"
    (finding,) = lint_source(src)
    assert finding.suppressed


def test_pragma_comment_line_above_suppresses():
    src = ("import itertools\n"
           "# detlint: ignore[D001] — migrated in PR 9\n"
           "_ids = itertools.count(1)\n")
    (finding,) = lint_source(src)
    assert finding.suppressed


def test_pragma_bare_ignore_suppresses_all_codes():
    src = "import itertools\n_ids = itertools.count(1)  # detlint: ignore\n"
    (finding,) = lint_source(src)
    assert finding.suppressed


def test_pragma_wrong_code_does_not_suppress():
    src = "import itertools\n_ids = itertools.count(1)  # detlint: ignore[D004]\n"
    (finding,) = lint_source(src)
    assert not finding.suppressed


def test_pragma_multiple_codes():
    src = ("import time\n"
           "def f():\n"
           "    return time.time()  # detlint: ignore[D001,D002]\n")
    (finding,) = lint_source(src)
    assert finding.suppressed


def test_pragma_on_distant_line_does_not_suppress():
    src = ("# detlint: ignore[D001]\n"
           "import itertools\n"
           "_ids = itertools.count(1)\n")
    (finding,) = lint_source(src)
    assert not finding.suppressed


# -- config -------------------------------------------------------------------

def test_load_config_reads_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.detlint]\nexclude = ['vendored']\n"
        "select = ['D001']\nignore = ['D004']\n")
    cfg = load_config(tmp_path)
    assert cfg.exclude == ("vendored",)
    assert cfg.select == ("D001",)
    assert cfg.ignore == ("D004",)


def test_load_config_searches_parents(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.detlint]\nexclude = ['deep']\n")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert load_config(nested).exclude == ("deep",)


def test_load_config_defaults_without_table(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    assert load_config(tmp_path) == DetlintConfig()


def test_config_select_and_ignore_filter_rules():
    cfg = DetlintConfig(select=("D001", "D002"), ignore=("D002",))
    assert [r.code for r in cfg.rules()] == ["D001"]


def test_config_unknown_code_raises():
    with pytest.raises(ValueError, match="D999"):
        DetlintConfig(select=("D999",)).rules()


def test_exclude_skips_files(tmp_path):
    bad = tmp_path / "vendored" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(DIRTY)
    report = lint_paths([tmp_path], DetlintConfig(exclude=("vendored",)))
    assert report.files_scanned == 0
    assert report.findings == []


# -- JSON report schema -------------------------------------------------------

def test_json_report_schema(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY +
                      "_ok = itertools.count(1)  # detlint: ignore[D001]\n")
    payload = lint_paths([target]).to_dict()
    assert payload["version"] == REPORT_VERSION
    assert payload["tool"] == "detlint"
    assert payload["summary"] == {
        "files_scanned": 1, "findings": 2, "unsuppressed": 1,
        "suppressed": 1, "by_code": {"D001": 1},
    }
    unsuppressed = [f for f in payload["findings"] if not f["suppressed"]]
    (finding,) = unsuppressed
    assert set(finding) == {"path", "line", "col", "code", "message",
                            "hint", "suppressed"}
    assert finding["code"] == "D001"
    assert finding["line"] == 2
    # Round-trips through json.
    assert json.loads(lint_paths([target]).to_json())["version"] == 1


def test_exit_code_semantics(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 5\n")
    assert lint_paths([clean]).exit_code == 0
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    assert lint_paths([dirty]).exit_code == 1
    broken = tmp_path / "broken.py"
    broken.write_text("def (:\n")
    report = lint_paths([broken])
    assert report.exit_code == 1
    # Parse failures surface as D000 findings, not out-of-band errors.
    assert report.parse_errors == []
    assert [f.code for f in report.findings] == ["D000"]


# -- CLI ----------------------------------------------------------------------

def test_cli_clean_run_exits_zero(tmp_path, capsys):
    mod = tmp_path / "ok.py"
    mod.write_text("X = 1\n")
    assert main([str(mod), "--no-config"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_findings_exit_one_and_json(tmp_path, capsys):
    mod = tmp_path / "bad.py"
    mod.write_text(DIRTY)
    out_json = tmp_path / "report.json"
    assert main([str(mod), "--no-config", "--json", str(out_json)]) == 1
    text = capsys.readouterr().out
    assert "D001" in text and "hint:" in text
    payload = json.loads(out_json.read_text())
    assert payload["summary"]["unsuppressed"] == 1


def test_cli_select_limits_rules(tmp_path):
    mod = tmp_path / "bad.py"
    mod.write_text(DIRTY + "import time\ndef f():\n    return time.time()\n")
    assert main([str(mod), "--no-config", "--select", "D002"]) == 1
    assert main([str(mod), "--no-config", "--select", "D004"]) == 0


def test_cli_missing_path_and_bad_code(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py"), "--no-config"]) == 2
    mod = tmp_path / "ok.py"
    mod.write_text("X = 1\n")
    assert main([str(mod), "--no-config", "--select", "D999"]) == 2
    assert "D999" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("D001", "D002", "D003", "D004", "D005", "D006"):
        assert code in out


# -- the fixture + the self-check ---------------------------------------------

def test_fixture_triggers_every_rule():
    findings = lint_source(FIXTURE.read_text(), FIXTURE.as_posix())
    fired = {f.code for f in findings if not f.suppressed}
    assert fired == {"D001", "D002", "D003", "D004", "D005", "D006"}
    # The sanctioned patterns at the bottom of the fixture stay silent:
    # nothing fires at or after the clean-counterpart function.
    clean_start = FIXTURE.read_text().splitlines().index(
        "def sanctioned_patterns(sim, rngs):") + 1
    assert all(f.line < clean_start for f in findings)


def test_detlint_self_check_repo_is_clean():
    """The acceptance gate: src/benchmarks/examples carry zero
    unsuppressed findings under the project config."""
    config = load_config(REPO_ROOT)
    report = lint_paths([REPO_ROOT / "src", REPO_ROOT / "benchmarks",
                         REPO_ROOT / "examples"], config)
    assert report.files_scanned > 100
    assert report.parse_errors == []
    offenders = "\n".join(f.render() for f in report.unsuppressed)
    assert not report.unsuppressed, f"detlint findings:\n{offenders}"
    # Every suppression in the tree carries its pragma deliberately; the
    # inventory is pinned so a new pragma is an explicit decision here:
    # - sim/ids.py D001: the documented no-world fallback sequencer;
    # - perf/harness.py D002: the perf harness's one wall-clock read;
    # - analysis/__main__.py D002: CLI elapsed-time display;
    # - scale/runner.py D006: the sanctioned process-pool call site;
    # - C003 pragmas on loops detlint's D-rules don't flag but the
    #   contract analyzer does (they ride the same pragma syntax, so
    #   they surface here as suppressions of nothing — path-pinned).
    sanctioned = {("ids.py", "D001"), ("harness.py", "D002"),
                  ("__main__.py", "D002"), ("runner.py", "D006")}
    suppressed = [f for f in report.findings if f.suppressed]
    assert suppressed, "expected the sanctioned pragmas to be exercised"
    for f in suppressed:
        assert any(f.path.endswith(name) and f.code == code
                   for name, code in sanctioned), f.render()


# -- multi-line statements ----------------------------------------------------

def test_pragma_on_stmt_first_line_covers_continuation_lines():
    src = ("import time\n"
           "def f():\n"
           "    return (  # detlint: ignore[D002] host clock OK in tooling\n"
           "        time.time())\n")
    (finding,) = lint_source(src)
    assert finding.line == 4
    assert finding.suppressed


def test_comment_above_wrapped_statement_covers_it():
    src = ("import time\n"
           "def f():\n"
           "    # detlint: ignore[D002] host clock OK in tooling\n"
           "    return (\n"
           "        time.time())\n")
    (finding,) = lint_source(src)
    assert finding.line == 5
    assert finding.suppressed


def test_wrong_code_on_stmt_first_line_does_not_suppress():
    src = ("import time\n"
           "def f():\n"
           "    return (  # detlint: ignore[D004]\n"
           "        time.time())\n")
    (finding,) = lint_source(src)
    assert not finding.suppressed


# -- parse errors as findings (D000) ------------------------------------------

def test_syntax_error_is_a_d000_finding(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n    pass\n", "utf-8")
    (tmp_path / "fine.py").write_text(DIRTY, "utf-8")
    report = lint_paths([tmp_path])
    assert report.parse_errors == []
    assert report.files_scanned == 2
    codes = sorted(f.code for f in report.findings)
    assert codes == ["D000", "D001"]
    d000 = next(f for f in report.findings if f.code == "D000")
    assert d000.path.endswith("broken.py")
    assert d000.line == 1
    assert "does not parse" in d000.message
    assert report.exit_code == 1


def test_d000_locates_error_line(tmp_path):
    (tmp_path / "late.py").write_text("x = 1\ny = 2\nz = (\n", "utf-8")
    report = lint_paths([tmp_path])
    (finding,) = report.findings
    assert finding.code == "D000"
    assert finding.line == 3
