"""Contract-analyzer tests: facts, rules on the seeded fixture tree,
the incremental cache, the baseline ratchet, SARIF, and the CLI."""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.contracts import (Baseline, ContractReport,
                                      analyze_contracts, build_project,
                                      extract_facts, run_contract_rules,
                                      template_matches)
from repro.analysis.contracts.facts import ANY_SEGMENT

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures" / "contracts_demo"


def fixture_findings(select=()):
    return analyze_contracts([FIXTURES], refs=(), cache_path=None,
                             select=select).findings


# -- template matching --------------------------------------------------------

@pytest.mark.parametrize("pattern,topic,expected", [
    (["telemetry", "*", "xrd"], ["telemetry", "site-a", "xrd"], True),
    (["telemetry", "#"], ["telemetry", "a", "b", "c"], True),
    (["alerts", "#"], ["telemetry", "a"], False),
    # A placeholder topic segment may take any value -> may-match.
    (["telemetry", "site-a", "xrd"], ["telemetry", ANY_SEGMENT, "xrd"], True),
    # ...but cannot stretch across segment counts without a '#'.
    (["telemetry", "xrd"], ["telemetry", ANY_SEGMENT, "xrd"], False),
    # A placeholder pattern segment matches exactly one topic segment.
    ([ANY_SEGMENT, "#"], ["anything", "a", "b"], True),
    ([ANY_SEGMENT], ["a", "b"], False),
])
def test_template_matches(pattern, topic, expected):
    assert template_matches(pattern, topic) is expected


# -- fact extraction ----------------------------------------------------------

def test_fstring_topic_extracts_placeholder_segments():
    src = ("def go(bus, site, msg):\n"
           "    yield from bus.publish('main', site,"
           " f'telemetry.{site}.xrd', msg)\n")
    facts = extract_facts(src, "m.py", "m")
    (pub,) = facts.publishes
    assert pub.segments == ["telemetry", ANY_SEGMENT, "xrd"]


def test_metric_read_accessor_marks_fact_as_read():
    src = ("def report(registry):\n"
           "    emitted = registry.counter('a.total')\n"
           "    emitted.inc()\n"
           "    return registry.counter('a.total').value\n")
    facts = extract_facts(src, "m.py", "m")
    reads = sorted(m.line for m in facts.metrics if m.read)
    emits = sorted(m.line for m in facts.metrics if not m.read)
    assert reads == [4] and emits == [2]


# -- the seeded fixture tree --------------------------------------------------

def test_fixture_tree_seeds_every_rule():
    findings = fixture_findings()
    keys = {(f.code, f.key) for f in findings}
    assert ("C001", "pub:commands.site-a.start") in keys
    assert ("C001", "sub:alerts.#") in keys
    assert ("C002", "collision:demo.mixed_kind") in keys
    assert ("C002", "unread:demo.orphan_total") in keys
    assert ("C003", "nodeadline:call_without_deadline") in keys
    assert ("C003", "retry:bare_retry") in keys
    assert any(code == "C004" and key.endswith("Postings")
               for code, key in keys)


def test_fixture_correct_twins_stay_clean():
    text = " ".join(f.key + f.message for f in fixture_findings())
    assert "telemetry" not in text          # matched pub/sub pair
    assert "consumed_total" not in text     # read metric
    assert "call_with_deadline" not in text
    assert "bounded_scan" not in text       # handler re-raises
    assert "TallySet" not in text           # has merge_from


def test_select_narrows_rules():
    findings = fixture_findings(select=("C004",))
    assert findings and all(f.code in ("C000", "C004") for f in findings)


def test_unparsable_file_is_a_c000_finding(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n", "utf-8")
    report = analyze_contracts([tmp_path], refs=(), cache_path=None)
    (finding,) = report.findings
    assert finding.code == "C000" and finding.line == 1
    assert report.exit_code == 1


# -- pragma suppression -------------------------------------------------------

def test_pragma_suppresses_contract_finding(tmp_path):
    (tmp_path / "m.py").write_text(
        "def emit(registry):\n"
        "    registry.counter('x.total').inc()"
        "  # detlint: ignore[C002] write-only audit tally\n", "utf-8")
    report = analyze_contracts([tmp_path], refs=(), cache_path=None)
    (finding,) = report.findings
    assert finding.suppressed
    assert report.exit_code == 0


def test_pragma_on_first_line_covers_wrapped_statement(tmp_path):
    # The finding lands on the continuation line holding the factory
    # call; the pragma sits on the statement's first line.
    (tmp_path / "m.py").write_text(
        "def emit(registry):\n"
        "    tally = (  # detlint: ignore[C002] dashboard-only\n"
        "        registry.counter('x.lonely_total'))\n"
        "    tally.inc()\n", "utf-8")
    report = analyze_contracts([tmp_path], refs=(), cache_path=None)
    (finding,) = report.findings
    assert finding.line == 3
    assert finding.suppressed


def test_comment_above_wrapped_statement_covers_it(tmp_path):
    (tmp_path / "m.py").write_text(
        "def emit(registry):\n"
        "    # detlint: ignore[C002] dashboard-only\n"
        "    tally = (\n"
        "        registry.counter('x.lonely_total'))\n"
        "    tally.inc()\n", "utf-8")
    report = analyze_contracts([tmp_path], refs=(), cache_path=None)
    (finding,) = report.findings
    assert finding.line == 4
    assert finding.suppressed


# -- incremental cache --------------------------------------------------------

def test_cache_warm_run_parses_nothing(tmp_path):
    cache = tmp_path / "cache.json"
    cold = build_project([FIXTURES], cache_path=cache)
    assert cold.files_reparsed == cold.files_scanned > 0
    warm = build_project([FIXTURES], cache_path=cache)
    assert warm.files_reparsed == 0
    assert warm.cache_hits == warm.files_scanned == cold.files_scanned
    # Same facts either way.
    assert {f.key for f in run_contract_rules(warm)} == \
        {f.key for f in run_contract_rules(cold)}


def test_cache_reparses_only_changed_file(tmp_path):
    src_dir = tmp_path / "proj"
    src_dir.mkdir()
    (src_dir / "a.py").write_text("A = 1\n", "utf-8")
    (src_dir / "b.py").write_text("B = 2\n", "utf-8")
    cache = tmp_path / "cache.json"
    build_project([src_dir], cache_path=cache)
    (src_dir / "a.py").write_text("A = 3\n", "utf-8")
    again = build_project([src_dir], cache_path=cache)
    assert again.files_reparsed == 1 and again.cache_hits == 1


def test_warm_full_tree_run_is_subsecond(tmp_path):
    cache = tmp_path / "cache.json"
    src = REPO_ROOT / "src"
    build_project([src], cache_path=cache)
    started = time.perf_counter()
    index = build_project([src], cache_path=cache)
    run_contract_rules(index)
    assert time.perf_counter() - started < 1.0
    assert index.files_reparsed == 0


# -- baseline ratchet ---------------------------------------------------------

def test_baseline_absorbs_known_findings_and_flags_new(tmp_path):
    findings = fixture_findings()
    baseline = Baseline.from_findings(
        findings, notes={f.fingerprint: "seeded fixture debt"
                         for f in findings})
    path = tmp_path / "baseline.json"
    baseline.save(path)
    report = analyze_contracts([FIXTURES], refs=(), cache_path=None,
                               baseline_path=path)
    assert report.new_findings == []
    assert report.exit_code == 0
    assert report.baseline.unexplained() == []
    # Dropping one entry makes exactly that finding "new" again.
    shrunk = Baseline.load(path)
    victim = sorted(shrunk.entries)[0]
    del shrunk.entries[victim]
    shrunk.save(path)
    report = analyze_contracts([FIXTURES], refs=(), cache_path=None,
                               baseline_path=path)
    assert [f.fingerprint for f in report.new_findings] == [victim]
    assert report.exit_code == 1


def test_baseline_reports_stale_and_unexplained_entries(tmp_path):
    findings = fixture_findings()
    baseline = Baseline.from_findings(findings)
    baseline.entries["C999:gone.py:x"] = {
        "fingerprint": "C999:gone.py:x", "code": "C999", "path": "gone.py",
        "key": "x", "severity": "warn", "note": "historical"}
    path = tmp_path / "baseline.json"
    baseline.save(path)
    report = analyze_contracts([FIXTURES], refs=(), cache_path=None,
                               baseline_path=path)
    assert report.stale_baseline == ["C999:gone.py:x"]
    assert len(report.baseline.unexplained()) == len(findings)


def test_update_baseline_preserves_existing_notes(tmp_path):
    findings = fixture_findings()
    first = Baseline.from_findings(
        findings, notes={findings[0].fingerprint: "keep me"})
    refreshed = Baseline.from_findings(findings, previous=first)
    assert refreshed.entries[findings[0].fingerprint]["note"] == "keep me"


def test_committed_baseline_has_no_unexplained_entries():
    baseline = Baseline.load(REPO_ROOT / "analysis_baseline.json")
    assert baseline.entries, "committed ratchet should exist"
    assert baseline.unexplained() == []


# -- SARIF --------------------------------------------------------------------

def test_sarif_output_shape():
    report = ContractReport(findings=fixture_findings())
    sarif = json.loads(report.to_sarif())
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {"C001", "C002", "C003", "C004"} <= set(rule_ids)
    assert len(run["results"]) == len(report.unsuppressed)
    for result in run["results"]:
        assert result["baselineState"] == "new"
        assert result["level"] in ("error", "warning")
        assert result["partialFingerprints"]["contractKey/v1"]


def test_sarif_marks_baselined_results_unchanged(tmp_path):
    findings = fixture_findings()
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings[:1]).save(path)
    report = analyze_contracts([FIXTURES], refs=(), cache_path=None,
                               baseline_path=path)
    states = {r["partialFingerprints"]["contractKey/v1"]:
              r["baselineState"]
              for r in json.loads(report.to_sarif())["runs"][0]["results"]}
    assert states[findings[0].fingerprint] == "unchanged"
    assert sorted(set(states.values())) == ["new", "unchanged"]


# -- CLI ----------------------------------------------------------------------

def test_cli_exits_nonzero_on_seeded_fixture(tmp_path, capsys):
    code = main(["--contracts", str(FIXTURES), "--no-baseline",
                 "--cache", str(tmp_path / "c.json"), "--refs", ""])
    assert code == 1
    out = capsys.readouterr().out
    assert "C001" in out and "C004" in out


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    clean = tmp_path / "proj"
    clean.mkdir()
    (clean / "m.py").write_text("def f():\n    return 1\n", "utf-8")
    code = main(["--contracts", str(clean), "--no-baseline", "--no-cache",
                 "--refs", ""])
    assert code == 0


def test_cli_json_and_sarif_outputs(tmp_path, capsys):
    out_json = tmp_path / "report.json"
    main(["--contracts", str(FIXTURES), "--no-baseline", "--no-cache",
          "--refs", "", "--format", "json", "--output", str(out_json)])
    data = json.loads(out_json.read_text("utf-8"))
    assert data["summary"]["findings"] > 0
    out_sarif = tmp_path / "report.sarif"
    main(["--contracts", str(FIXTURES), "--no-baseline", "--no-cache",
          "--refs", "", "--format", "sarif", "--output", str(out_sarif)])
    sarif = json.loads(out_sarif.read_text("utf-8"))
    assert sarif["version"] == "2.1.0"


def test_cli_unknown_path_is_usage_error(capsys):
    assert main(["--contracts", "definitely/not/here"]) == 2


def test_cli_update_baseline_roundtrip(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    proj = tmp_path / "proj"
    proj.mkdir()
    (proj / "m.py").write_text(
        "def emit(registry):\n"
        "    registry.counter('z.total').inc()\n", "utf-8")
    baseline = tmp_path / "baseline.json"
    assert main(["--contracts", str(proj), "--no-cache", "--refs", "",
                 "--baseline", str(baseline)]) == 1
    assert main(["--contracts", str(proj), "--no-cache", "--refs", "",
                 "--baseline", str(baseline), "--update-baseline"]) == 0
    assert main(["--contracts", str(proj), "--no-cache", "--refs", "",
                 "--baseline", str(baseline)]) == 0


# -- the repo's own contract hygiene ------------------------------------------

def test_repo_tree_has_no_new_findings(tmp_path):
    report = analyze_contracts(
        [REPO_ROOT / "src"],
        refs=[REPO_ROOT / p for p in ("tests", "benchmarks", "examples")],
        baseline_path=REPO_ROOT / "analysis_baseline.json",
        cache_path=tmp_path / "cache.json")
    assert report.new_findings == []
    assert report.stale_baseline == []
