"""C003 seeds: a deadline-less resilient_call, a bare retry loop, and
compliant twins of each."""

from repro.resilience import Deadline, resilient_call


def call_without_deadline(sim, attempt, policy):
    # Violation: no deadline= — retries may consume unbounded sim time.
    return resilient_call(sim, attempt, policy=policy)


def call_with_deadline(sim, attempt, policy):
    return resilient_call(sim, attempt, policy=policy,
                          deadline=Deadline(sim, 60.0))


def bare_retry(flaky):
    # Violation: loop + swallowed exception + re-invoke, outside
    # repro.resilience.
    while True:
        try:
            return flaky()
        except ValueError:
            continue


def bounded_scan(items, handler):
    out = []
    for item in items:
        try:
            out.append(handler(item))
        except ValueError as exc:
            raise RuntimeError(f"bad item {item}") from exc
    return out
