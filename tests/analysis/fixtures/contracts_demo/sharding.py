"""C004 seeds: a per-shard component without a merge protocol, next to
one that implements it."""


class Postings:
    """Mutates collective state, no merge_from/state -> C004."""

    def __init__(self):
        self._ids = {}

    def add(self, key, record_id):
        self._ids.setdefault(key, []).append(record_id)


class TallySet:
    """Mutates state but implements the merge protocol -> clean."""

    def __init__(self):
        self._counts = {}

    def add(self, key):
        self._counts[key] = self._counts.get(key, 0) + 1

    def merge_from(self, other):
        for key, n in other._counts.items():
            self._counts[key] = self._counts.get(key, 0) + n


class ShardedDiscoveryIndex:
    """Fan-out root: everything it instantiates is stored per-shard."""

    def __init__(self, n_shards):
        self.postings = [Postings() for _ in range(n_shards)]
        self.tallies = [TallySet() for _ in range(n_shards)]

    def merge_from(self, other):
        for ours, theirs in zip(self.tallies, other.tallies):
            ours.merge_from(theirs)
