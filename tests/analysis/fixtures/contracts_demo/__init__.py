"""Seeded contract violations — one per C-rule — for the analyzer tests.

Every module here contains both a deliberate violation and a nearby
correct twin, so the tests pin false-negative AND false-positive
behavior.  The tree is excluded from detlint/contracts CI runs via
``[tool.detlint] exclude``; only ``tests/analysis/test_contracts.py``
points the analyzer at it.
"""
