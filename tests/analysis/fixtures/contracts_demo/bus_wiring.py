"""C001 seeds: one orphaned publish, one dead binding, one matched pair."""


def wire(broker, bus, msg):
    broker.declare_queue("telemetry")
    # Matched pair: the publish below lands on this binding.
    broker.bind("telemetry", "telemetry.*.xrd")
    # Dead binding: nothing in this fixture tree publishes alerts.
    broker.bind("telemetry", "alerts.#")

    def producer():
        # Matched publish.
        yield from bus.publish("main", "site-a", "telemetry.site-a.xrd", msg)
        # Orphaned publish: no pattern matches a 'commands.' prefix.
        yield from bus.publish("main", "site-a", "commands.site-a.start", msg)

    return producer
