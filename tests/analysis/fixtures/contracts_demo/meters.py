"""C002 seeds: a kind collision, an unread counter, and a read twin."""


def emit(registry, n):
    # Kind collision: the same name registered as counter AND gauge.
    registry.counter("demo.mixed_kind").inc(n)
    registry.gauge("demo.mixed_kind").set(n)
    # Unread: emitted here, mentioned nowhere else in the fixture tree.
    registry.counter("demo.orphan_total").inc()
    # Read twin: consumed by the report below, so no finding.
    registry.counter("demo.consumed_total").inc()


def report(registry):
    return {"consumed": registry.counter("demo.consumed_total").value}
