"""Seeded detlint fixture: every rule D001–D006 fires in this file.

This module is *intentionally dirty*.  It is excluded from the repo
sweep via ``[tool.detlint] exclude`` in pyproject.toml and exists so the
analysis test suite can assert each rule against realistic code shapes
(see tests/analysis/test_engine.py::test_fixture_triggers_every_rule).
It is never imported by product code.
"""

import itertools
# D006 shape 1: importing multiprocessing at all is a finding.
import multiprocessing
import random
import time
from concurrent.futures import ProcessPoolExecutor
from datetime import datetime

import numpy as np

from repro.scale import WorldRunner

# D001 shape 1: module-level itertools.count id factory.
_widget_ids = itertools.count(1)

# D001 shape 2: a bare module-level counter rebound through `global`.
_n_widgets = 0

# D001 shape 3: a module-level cache mutated at runtime.
_RESULT_CACHE = {}


def make_widget():
    global _n_widgets
    _n_widgets += 1
    widget_id = f"widget-{next(_widget_ids)}"
    # D002: wall-clock reads inside "sim" code.
    _RESULT_CACHE[widget_id] = time.time()
    stamped = datetime.now()
    return widget_id, stamped


def noisy_value():
    # D003: process-global RNG state (stdlib and numpy legacy API).
    a = random.random()
    b = np.random.normal(0.0, 1.0)
    np.random.seed(0)
    return a + b


def emit_events(pending):
    # D004: iteration order over a set feeds emission order.
    ready = set(pending)
    out = []
    for item in ready:
        out.append(item)
    out.extend(x for x in {"b", "a"})
    return out


def tie_break(events):
    # D005: id()/hash() as ordering keys.
    events.sort(key=id)
    return sorted(events, key=lambda e: (0.0, id(e)))


def fan_out(seeds):
    # D006 shape 2: raw process pools bypass the hash-verified runner —
    # results arrive in completion order and no decision hash is kept.
    ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=4, mp_context=ctx) as pool:
        return list(pool.map(str, seeds))


def sanctioned_patterns(sim, rngs):
    """The clean counterparts: none of these may fire."""
    rng = rngs.stream("demo")                  # named deterministic stream
    seeded = np.random.default_rng(42)         # explicitly seeded
    label = sim.ids.label("widget")            # world-scoped id
    ordered = sorted({"b", "a"})               # sorted() normalizes sets
    worlds = WorldRunner(2).map(               # the sanctioned fan-out
        "repro.scale.worlds:bo_world", [0, 1], {"budget": 2})
    return rng.random(), seeded.random(), label, ordered, worlds, sim.now
