"""Per-rule unit tests: one positive and one negative per shape."""

import pytest

from repro.analysis import lint_source


def codes(source, path="snippet.py"):
    return [f.code for f in lint_source(source, path)]


def lines(source, code):
    return [f.line for f in lint_source(source) if f.code == code]


# -- D001: module-level id/sequence factories ---------------------------------

def test_d001_itertools_count_module_level():
    src = "import itertools\n_ids = itertools.count(1)\n"
    assert codes(src) == ["D001"]


def test_d001_count_imported_directly():
    src = "from itertools import count\n_ids = count()\n"
    assert codes(src) == ["D001"]


def test_d001_instance_count_is_clean():
    src = ("import itertools\n"
           "class C:\n"
           "    def __init__(self):\n"
           "        self._ids = itertools.count(1)\n")
    assert codes(src) == []


def test_d001_bare_global_counter():
    src = ("_n = 0\n"
           "def bump():\n"
           "    global _n\n"
           "    _n += 1\n"
           "    return _n\n")
    assert codes(src) == ["D001"]


def test_d001_module_int_without_rebind_is_clean():
    assert codes("LIMIT = 5\ndef f():\n    return LIMIT\n") == []


def test_d001_module_cache_mutated_at_runtime():
    src = ("_CACHE = {}\n"
           "def put(k, v):\n"
           "    _CACHE[k] = v\n")
    assert codes(src) == ["D001"]


def test_d001_mutating_method_call_detected():
    src = ("_SEEN = set()\n"
           "def mark(x):\n"
           "    _SEEN.add(x)\n")
    assert codes(src) == ["D001"]


def test_d001_readonly_module_table_is_clean():
    src = ("TABLE = {'a': 1, 'b': 2}\n"
           "def get(k):\n"
           "    return TABLE[k]\n")
    assert codes(src) == []


def test_d001_counterish_constructor_heuristic():
    src = "from x import IdSequencer\n_fallback = IdSequencer()\n"
    assert codes(src) == ["D001"]


# -- D002: wall clock ---------------------------------------------------------

@pytest.mark.parametrize("call", [
    "time.time()", "time.monotonic()", "time.perf_counter()",
    "time.time_ns()",
])
def test_d002_time_module(call):
    src = f"import time\ndef f():\n    return {call}\n"
    assert codes(src) == ["D002"]


def test_d002_datetime_now_and_utcnow():
    src = ("from datetime import datetime\n"
           "def f():\n"
           "    return datetime.now(), datetime.utcnow()\n")
    assert codes(src) == ["D002", "D002"]


def test_d002_import_datetime_module_form():
    src = "import datetime\ndef f():\n    return datetime.datetime.now()\n"
    assert codes(src) == ["D002"]


def test_d002_sim_now_is_clean():
    assert codes("def f(sim):\n    return sim.now\n") == []


def test_d002_unrelated_time_attribute_is_clean():
    # A local object that happens to have a .time() method is not the
    # stdlib module.
    assert codes("def f(m):\n    return m.time()\n") == []


# -- D003: unseeded randomness ------------------------------------------------

def test_d003_stdlib_random():
    src = "import random\ndef f():\n    return random.random()\n"
    assert codes(src) == ["D003"]


def test_d003_random_seed_flagged():
    src = "import random\ndef f():\n    random.seed(0)\n"
    assert codes(src) == ["D003"]


def test_d003_from_random_import():
    src = "from random import choice\ndef f(xs):\n    return choice(xs)\n"
    assert codes(src) == ["D003"]


def test_d003_numpy_legacy_api():
    src = "import numpy as np\ndef f():\n    return np.random.rand(3)\n"
    assert codes(src) == ["D003"]


def test_d003_default_rng_allowed():
    src = ("import numpy as np\n"
           "def f():\n"
           "    return np.random.default_rng(7).random()\n")
    assert codes(src) == []


def test_d003_registry_stream_allowed():
    src = "def f(rngs):\n    return rngs.stream('x').normal()\n"
    assert codes(src) == []


# -- D004: set iteration ------------------------------------------------------

def test_d004_for_over_set_call():
    src = "def f(xs):\n    for x in set(xs):\n        print(x)\n"
    assert codes(src) == ["D004"]


def test_d004_for_over_set_literal():
    src = "def f():\n    for x in {1, 2}:\n        print(x)\n"
    assert codes(src) == ["D004"]


def test_d004_named_set_binding():
    src = ("def f(xs):\n"
           "    ready = set(xs)\n"
           "    for x in ready:\n"
           "        print(x)\n")
    assert codes(src) == ["D004"]


def test_d004_comprehension_over_set():
    src = "def f(xs):\n    return [x for x in set(xs)]\n"
    assert codes(src) == ["D004"]


def test_d004_set_union_tainted():
    src = ("def f(a, b):\n"
           "    for x in set(a) | set(b):\n"
           "        print(x)\n")
    assert codes(src) == ["D004"]


def test_d004_sorted_set_is_clean():
    src = "def f(xs):\n    for x in sorted(set(xs)):\n        print(x)\n"
    assert codes(src) == []


def test_d004_list_iteration_is_clean():
    assert codes("def f(xs):\n    for x in list(xs):\n        pass\n") == []


def test_d004_same_name_in_other_function_not_tainted():
    # `ready` is a set only inside g(); f()'s `ready` is a list.
    src = ("def g(xs):\n"
           "    ready = set(xs)\n"
           "    return sorted(ready)\n"
           "def f(xs):\n"
           "    ready = list(xs)\n"
           "    for x in ready:\n"
           "        print(x)\n")
    assert codes(src) == []


# -- D005: identity ordering --------------------------------------------------

def test_d005_sort_key_id():
    assert codes("def f(xs):\n    xs.sort(key=id)\n") == ["D005"]


def test_d005_sorted_key_hash():
    assert codes("def f(xs):\n    return sorted(xs, key=hash)\n") == ["D005"]


def test_d005_lambda_key_with_id():
    src = "def f(xs):\n    return sorted(xs, key=lambda o: (0, id(o)))\n"
    assert codes(src) == ["D005"]


def test_d005_min_max_keys():
    src = ("def f(xs):\n"
           "    return min(xs, key=id), max(xs, key=hash)\n")
    assert codes(src) == ["D005", "D005"]


def test_d005_attribute_key_is_clean():
    src = "def f(xs):\n    return sorted(xs, key=lambda o: o.seq)\n"
    assert codes(src) == []


def test_d005_plain_sort_is_clean():
    assert codes("def f(xs):\n    return sorted(xs)\n") == []


# -- D006: process fan-out outside the runner ---------------------------------

def test_d006_process_pool_executor_call():
    src = ("from concurrent.futures import ProcessPoolExecutor\n"
           "def f(xs):\n"
           "    with ProcessPoolExecutor() as pool:\n"
           "        return list(pool.map(str, xs))\n")
    assert codes(src) == ["D006"]


def test_d006_futures_module_form():
    src = ("from concurrent import futures\n"
           "def f(xs):\n"
           "    pool = futures.ProcessPoolExecutor(max_workers=2)\n"
           "    return pool\n")
    assert codes(src) == ["D006"]


def test_d006_multiprocessing_import_and_calls():
    src = ("import multiprocessing\n"
           "def f(xs):\n"
           "    ctx = multiprocessing.get_context('spawn')\n"
           "    return multiprocessing.Pool(2)\n")
    # The import fires once, each spawn primitive call fires once.
    assert codes(src) == ["D006", "D006", "D006"]


def test_d006_from_multiprocessing_import():
    src = "from multiprocessing import Pool\n"
    assert codes(src) == ["D006"]


def test_d006_os_fork():
    src = "import os\ndef f():\n    return os.fork()\n"
    assert codes(src) == ["D006"]


def test_d006_world_runner_is_clean():
    src = ("from repro.scale import WorldRunner\n"
           "def f(seeds):\n"
           "    return WorldRunner(4).map('pkg.mod:world', seeds)\n")
    assert codes(src) == []


def test_d006_thread_pool_is_clean():
    # Threads share the process; the rule targets process fan-out only.
    src = ("from concurrent.futures import ThreadPoolExecutor\n"
           "def f(xs):\n"
           "    with ThreadPoolExecutor() as pool:\n"
           "        return list(pool.map(str, xs))\n")
    assert codes(src) == []


# -- ordering / multiple rules ------------------------------------------------

def test_findings_sorted_by_position():
    src = ("import itertools\n"
           "import time\n"
           "_ids = itertools.count()\n"
           "def f():\n"
           "    return time.time()\n")
    found = lint_source(src)
    assert [f.code for f in found] == ["D001", "D002"]
    assert found[0].line < found[1].line
