"""Tests for schemas, evolution, negotiation, and unit conversion."""

import pytest

from repro.data import FieldSpec, Schema, SchemaNegotiator, SchemaRegistry
from repro.data.schema import SchemaError, convert_unit


@pytest.fixture
def pl_schema():
    return Schema(name="pl-spectrum", version=1, fields=(
        FieldSpec("plqy", unit="fraction", lo=0.0, hi=1.0),
        FieldSpec("emission_nm", unit="nm", lo=200.0, hi=2000.0,
                  aliases=("wavelength", "peak_nm")),
        FieldSpec("temperature", unit="C", required=False),
    ))


# -- unit conversion ---------------------------------------------------------

@pytest.mark.parametrize("value,frm,to,expected", [
    (373.15, "K", "C", 100.0),
    (212.0, "F", "C", 100.0),
    (2.0, "min", "s", 120.0),
    (1.0, "hr", "s", 3600.0),
    (500.0, "uL", "mL", 0.5),
    (50.0, "percent", "fraction", 0.5),
    (5.0, "C", "C", 5.0),
])
def test_convert_unit(value, frm, to, expected):
    assert convert_unit(value, frm, to) == pytest.approx(expected)


def test_convert_unit_reverse_direction():
    assert convert_unit(100.0, "C", "K") == pytest.approx(373.15)
    assert convert_unit(120.0, "s", "min") == pytest.approx(2.0)


def test_convert_unknown_unit_raises():
    with pytest.raises(SchemaError):
        convert_unit(1.0, "furlong", "m")


# -- validation ------------------------------------------------------------------

def test_schema_validate_ok(pl_schema):
    assert pl_schema.is_valid({"plqy": 0.5, "emission_nm": 520.0})


def test_schema_validate_missing_required(pl_schema):
    problems = pl_schema.validate({"plqy": 0.5})
    assert any("emission_nm" in p for p in problems)


def test_schema_validate_range(pl_schema):
    problems = pl_schema.validate({"plqy": 1.7, "emission_nm": 520.0})
    assert any("plqy" in p for p in problems)


def test_schema_validate_non_numeric(pl_schema):
    problems = pl_schema.validate({"plqy": "high", "emission_nm": 520.0})
    assert any("not numeric" in p for p in problems)


def test_optional_field_not_required(pl_schema):
    assert pl_schema.is_valid({"plqy": 0.1, "emission_nm": 400.0})


# -- evolution --------------------------------------------------------------------

def test_evolve_bumps_version(pl_schema):
    v2 = pl_schema.evolve(add=(FieldSpec("fwhm_nm", unit="nm",
                                         required=False),))
    assert v2.version == 2
    assert v2.schema_id == "pl-spectrum@2"
    assert v2.field("fwhm_nm") is not None
    assert pl_schema.version == 1  # original untouched


def test_evolve_drop_field(pl_schema):
    v2 = pl_schema.evolve(drop=("temperature",))
    assert v2.field("temperature") is None


def test_evolve_duplicate_rejected(pl_schema):
    with pytest.raises(SchemaError):
        pl_schema.evolve(add=(FieldSpec("plqy"),))


def test_compatibility(pl_schema):
    v2 = pl_schema.evolve(add=(FieldSpec("fwhm_nm", required=False),))
    assert v2.compatible_with(pl_schema)  # new optional field: compatible
    v3 = pl_schema.evolve(add=(FieldSpec("fwhm_nm", required=True),))
    assert not v3.compatible_with(pl_schema)


# -- registry ---------------------------------------------------------------------------

def test_registry_versions(pl_schema):
    reg = SchemaRegistry()
    reg.register(pl_schema)
    v2 = pl_schema.evolve(add=(FieldSpec("x", required=False),))
    reg.register(v2)
    assert reg.latest("pl-spectrum").version == 2
    assert reg.get("pl-spectrum@1") is pl_schema
    assert "pl-spectrum@1" in reg
    assert len(reg) == 2


def test_registry_duplicate_rejected(pl_schema):
    reg = SchemaRegistry()
    reg.register(pl_schema)
    with pytest.raises(SchemaError):
        reg.register(pl_schema)


def test_registry_unknown(pl_schema):
    with pytest.raises(SchemaError):
        SchemaRegistry().get("ghost@1")


# -- negotiation ------------------------------------------------------------------------------

def test_negotiate_exact_match(pl_schema):
    neg = SchemaNegotiator()
    mappings = neg.negotiate({"plqy": "fraction", "emission_nm": "nm"},
                             pl_schema)
    out = neg.apply(mappings, {"plqy": 0.4, "emission_nm": 520.0})
    assert out == {"plqy": 0.4, "emission_nm": 520.0}


def test_negotiate_alias(pl_schema):
    neg = SchemaNegotiator()
    mappings = neg.negotiate({"plqy": "fraction", "wavelength": "nm"},
                             pl_schema)
    out = neg.apply(mappings, {"plqy": 0.4, "wavelength": 530.0})
    assert out["emission_nm"] == 530.0


def test_negotiate_alias_with_unit_conversion(pl_schema):
    neg = SchemaNegotiator()
    mappings = neg.negotiate({"plqy": "percent", "peak_nm": "A"}, pl_schema)
    out = neg.apply(mappings, {"plqy": 40.0, "peak_nm": 5200.0})
    assert out["plqy"] == pytest.approx(0.4)
    assert out["emission_nm"] == pytest.approx(520.0)


def test_negotiate_unit_suffix_heuristic(pl_schema):
    # Producer exports temperature_K; the consumer wants temperature in C.
    neg = SchemaNegotiator()
    mappings = neg.negotiate(
        {"plqy": "fraction", "emission_nm": "nm", "temperature_K": ""},
        pl_schema)
    out = neg.apply(mappings, {"plqy": 0.1, "emission_nm": 500.0,
                               "temperature_K": 373.15})
    assert out["temperature"] == pytest.approx(100.0)


def test_negotiate_default_for_missing_optional(pl_schema):
    neg = SchemaNegotiator()
    mappings = neg.negotiate({"plqy": "fraction", "emission_nm": "nm"},
                             pl_schema, defaults={"temperature": 25.0})
    out = neg.apply(mappings, {"plqy": 0.1, "emission_nm": 500.0})
    assert out["temperature"] == 25.0


def test_negotiate_required_unmappable_fails(pl_schema):
    neg = SchemaNegotiator()
    with pytest.raises(SchemaError, match="plqy"):
        neg.negotiate({"intensity": "counts"}, pl_schema)
    assert neg.stats["failures"] == 1


def test_negotiate_missing_optional_skipped(pl_schema):
    neg = SchemaNegotiator()
    mappings = neg.negotiate({"plqy": "fraction", "emission_nm": "nm"},
                             pl_schema)
    fields = {m.consumer_field for m in mappings}
    assert "temperature" not in fields
