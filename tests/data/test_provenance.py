"""Tests for the PROV-O-style provenance graph."""

import pytest

from repro.data import ProvenanceGraph


@pytest.fixture
def campaign_graph():
    """A small realistic lineage: plan -> synthesize -> measure -> record."""
    g = ProvenanceGraph()
    g.agent("planner-agent", kind="llm-planner")
    g.agent("robot-1", kind="synthesis-robot")
    g.agent("spec-1", kind="spectrometer")
    g.activity("plan-1", started=0.0, ended=1.0)
    g.was_associated_with("plan-1", "planner-agent")
    g.entity("recipe-1")
    g.was_generated_by("recipe-1", "plan-1")
    g.activity("synth-1", started=1.0, ended=100.0)
    g.was_associated_with("synth-1", "robot-1")
    g.used("synth-1", "recipe-1")
    g.was_informed_by("synth-1", "plan-1")
    g.entity("sample-1")
    g.was_generated_by("sample-1", "synth-1")
    g.activity("meas-1", started=100.0, ended=145.0)
    g.was_associated_with("meas-1", "spec-1")
    g.used("meas-1", "sample-1")
    g.entity("rec-1")
    g.was_generated_by("rec-1", "meas-1")
    g.was_derived_from("rec-1", "sample-1")
    return g


def test_node_types(campaign_graph):
    assert campaign_graph.node_type("planner-agent") == "agent"
    assert campaign_graph.node_type("synth-1") == "activity"
    assert campaign_graph.node_type("rec-1") == "entity"
    assert len(campaign_graph) == 9


def test_type_conflict_rejected(campaign_graph):
    with pytest.raises(ValueError):
        campaign_graph.entity("planner-agent")


def test_relation_requires_known_nodes(campaign_graph):
    with pytest.raises(KeyError):
        campaign_graph.used("synth-1", "ghost")


def test_lineage_reaches_back_to_plan(campaign_graph):
    lineage = campaign_graph.lineage("rec-1")
    for ancestor in ("meas-1", "sample-1", "synth-1", "recipe-1", "plan-1",
                     "planner-agent", "robot-1", "spec-1"):
        assert ancestor in lineage


def test_responsible_agents(campaign_graph):
    agents = campaign_graph.responsible_agents("rec-1")
    assert set(agents) == {"planner-agent", "robot-1", "spec-1"}


def test_generating_activity(campaign_graph):
    assert campaign_graph.generating_activity("rec-1") == "meas-1"
    assert campaign_graph.generating_activity("sample-1") == "synth-1"


def test_derived_products(campaign_graph):
    assert "rec-1" in campaign_graph.derived_products("sample-1")


def test_completeness_full(campaign_graph):
    assert campaign_graph.completeness("rec-1") == 1.0


def test_completeness_partial():
    g = ProvenanceGraph()
    g.entity("orphan")
    assert g.completeness("orphan") == 0.0
    g.activity("act", ended=0.0)  # no end time, no agent, no inputs
    g.entity("rec")
    g.was_generated_by("rec", "act")
    assert g.completeness("rec") == 0.25


def test_completeness_unknown_entity():
    assert ProvenanceGraph().completeness("ghost") == 0.0


def test_export_to_dict(campaign_graph):
    d = campaign_graph.to_dict()
    assert len(d["nodes"]) == 9
    kinds = {e["kind"] for e in d["edges"]}
    assert "wasGeneratedBy" in kinds
    assert "used" in kinds
    ids = [n["id"] for n in d["nodes"]]
    assert ids == sorted(ids)  # deterministic export order


# -- completeness edge cases (satellite coverage) ---------------------------


def test_completeness_no_generating_activity():
    g = ProvenanceGraph()
    g.entity("a")
    g.entity("b")
    g.was_derived_from("a", "b")  # derivation alone: no generating activity
    assert g.completeness("a") == 0.0


def test_completeness_derived_from_only_inputs_count():
    # Inputs recorded solely via wasDerivedFrom on the entity (no `used`
    # edge on the activity) must still earn the inputs quarter-point.
    g = ProvenanceGraph()
    g.entity("parent")
    g.entity("child")
    g.activity("make", started=1.0, ended=2.0)
    g.was_generated_by("child", "make")
    g.was_derived_from("child", "parent")
    assert g.completeness("child") == 0.75  # all but the agent check


def test_completeness_zero_ended_timestamp_not_credited():
    g = ProvenanceGraph()
    g.agent("robot")
    g.entity("in")
    g.entity("out")
    g.activity("act", started=5.0, ended=0.0)  # never closed
    g.was_generated_by("out", "act")
    g.was_associated_with("act", "robot")
    g.used("act", "in")
    assert g.completeness("out") == 0.75  # timestamp quarter withheld


# -- shard merge + cross-shard stitching ------------------------------------


def _shard(site, rec, parent=None):
    from repro.data.provenance import qualified
    g = ProvenanceGraph()
    g.entity(rec)
    g.activity(f"make-{rec}", started=0.0, ended=1.0)
    g.was_generated_by(rec, f"make-{rec}")
    if parent is not None:
        g.was_derived_from(rec, qualified(parent[0], parent[1]),
                           cross_shard=True)
    return g


def test_cross_shard_pending_until_merge():
    g = _shard("site-b", "rec-b", parent=("site-a", "rec-a"))
    assert g.pending_stitches == [("rec-b", "site-a::rec-a",
                                   "wasDerivedFrom")]
    assert g.edge_count == 1  # only the local wasGeneratedBy


def test_cross_shard_requires_local_entity():
    g = ProvenanceGraph()
    with pytest.raises(KeyError):
        g.was_derived_from("ghost", "site-a::rec-a", cross_shard=True)


def test_merge_shards_stitches_cross_references():
    a = _shard("site-a", "rec-a")
    b = _shard("site-b", "rec-b", parent=("site-a", "rec-a"))
    merged = ProvenanceGraph.merge_shards({"site-a": a, "site-b": b})
    assert merged.pending_stitches == []
    assert "site-a::rec-a" in merged
    assert "site-b::rec-b" in merged
    assert "site-a::rec-a" in merged.lineage("site-b::rec-b")


def test_merge_order_is_irrelevant_for_stitching():
    # The derived shard merging before its parent must still stitch once
    # the parent arrives.
    a = _shard("site-a", "rec-a")
    b = _shard("site-b", "rec-b", parent=("site-a", "rec-a"))
    merged = ProvenanceGraph()
    merged.merge_from(b, namespace="site-b")
    assert len(merged.pending_stitches) == 1
    stitched = merged.merge_from(a, namespace="site-a")
    assert stitched == 1
    assert merged.pending_stitches == []


def test_merge_without_namespace_keeps_ids():
    a = ProvenanceGraph()
    a.entity("rec-1")
    merged = ProvenanceGraph()
    merged.merge_from(a)
    assert "rec-1" in merged


def test_merge_type_collision_rejected():
    a = ProvenanceGraph()
    a.entity("x")
    b = ProvenanceGraph()
    b.agent("x")
    merged = ProvenanceGraph()
    merged.merge_from(a, namespace="s")
    with pytest.raises(ValueError):
        merged.merge_from(b, namespace="s")


def test_to_dict_carries_pending_and_from_dict_roundtrips():
    b = _shard("site-b", "rec-b", parent=("site-a", "rec-a"))
    d = b.to_dict()
    assert d["pending"] == [{"src": "rec-b", "dst": "site-a::rec-a",
                             "kind": "wasDerivedFrom"}]
    rebuilt = ProvenanceGraph.from_dict(d)
    assert rebuilt.to_dict() == d
    assert rebuilt.pending_stitches == b.pending_stitches


def test_from_dict_roundtrip_full_graph(campaign_graph):
    d = campaign_graph.to_dict()
    rebuilt = ProvenanceGraph.from_dict(d)
    assert rebuilt.to_dict() == d
    assert rebuilt.completeness("rec-1") == 1.0
