"""Tests for the PROV-O-style provenance graph."""

import pytest

from repro.data import ProvenanceGraph


@pytest.fixture
def campaign_graph():
    """A small realistic lineage: plan -> synthesize -> measure -> record."""
    g = ProvenanceGraph()
    g.agent("planner-agent", kind="llm-planner")
    g.agent("robot-1", kind="synthesis-robot")
    g.agent("spec-1", kind="spectrometer")
    g.activity("plan-1", started=0.0, ended=1.0)
    g.was_associated_with("plan-1", "planner-agent")
    g.entity("recipe-1")
    g.was_generated_by("recipe-1", "plan-1")
    g.activity("synth-1", started=1.0, ended=100.0)
    g.was_associated_with("synth-1", "robot-1")
    g.used("synth-1", "recipe-1")
    g.was_informed_by("synth-1", "plan-1")
    g.entity("sample-1")
    g.was_generated_by("sample-1", "synth-1")
    g.activity("meas-1", started=100.0, ended=145.0)
    g.was_associated_with("meas-1", "spec-1")
    g.used("meas-1", "sample-1")
    g.entity("rec-1")
    g.was_generated_by("rec-1", "meas-1")
    g.was_derived_from("rec-1", "sample-1")
    return g


def test_node_types(campaign_graph):
    assert campaign_graph.node_type("planner-agent") == "agent"
    assert campaign_graph.node_type("synth-1") == "activity"
    assert campaign_graph.node_type("rec-1") == "entity"
    assert len(campaign_graph) == 9


def test_type_conflict_rejected(campaign_graph):
    with pytest.raises(ValueError):
        campaign_graph.entity("planner-agent")


def test_relation_requires_known_nodes(campaign_graph):
    with pytest.raises(KeyError):
        campaign_graph.used("synth-1", "ghost")


def test_lineage_reaches_back_to_plan(campaign_graph):
    lineage = campaign_graph.lineage("rec-1")
    for ancestor in ("meas-1", "sample-1", "synth-1", "recipe-1", "plan-1",
                     "planner-agent", "robot-1", "spec-1"):
        assert ancestor in lineage


def test_responsible_agents(campaign_graph):
    agents = campaign_graph.responsible_agents("rec-1")
    assert set(agents) == {"planner-agent", "robot-1", "spec-1"}


def test_generating_activity(campaign_graph):
    assert campaign_graph.generating_activity("rec-1") == "meas-1"
    assert campaign_graph.generating_activity("sample-1") == "synth-1"


def test_derived_products(campaign_graph):
    assert "rec-1" in campaign_graph.derived_products("sample-1")


def test_completeness_full(campaign_graph):
    assert campaign_graph.completeness("rec-1") == 1.0


def test_completeness_partial():
    g = ProvenanceGraph()
    g.entity("orphan")
    assert g.completeness("orphan") == 0.0
    g.activity("act", ended=0.0)  # no end time, no agent, no inputs
    g.entity("rec")
    g.was_generated_by("rec", "act")
    assert g.completeness("rec") == 0.25


def test_completeness_unknown_entity():
    assert ProvenanceGraph().completeness("ghost") == 0.0


def test_export_to_dict(campaign_graph):
    d = campaign_graph.to_dict()
    assert len(d["nodes"]) == 9
    kinds = {e["kind"] for e in d["edges"]}
    assert "wasGeneratedBy" in kinds
    assert "used" in kinds
    ids = [n["id"] for n in d["nodes"]]
    assert ids == sorted(ids)  # deterministic export order
