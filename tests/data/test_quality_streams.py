"""Tests for quality assessment and the stream processor."""

import numpy as np
import pytest

from repro.data import (AnomalyDetector, DataRecord, FieldSpec,
                        QualityAssessor, Schema, StreamProcessor)


def rec(plqy, source="spec-1", **kw):
    return DataRecord(source=source, values={"plqy": plqy}, **kw)


# -- anomaly detector ------------------------------------------------------------

def test_detector_needs_history():
    det = AnomalyDetector(min_history=8)
    assert det.observe("k", 1.0) is None  # not enough history yet


def test_detector_flags_outlier():
    det = AnomalyDetector(min_history=8, z_threshold=4.0)
    rng = np.random.default_rng(0)
    for _ in range(30):
        det.observe("k", float(rng.normal(0.5, 0.01)))
    z = det.observe("k", 5.0)
    assert det.is_anomalous(z)
    # ... and the outlier did not poison the baseline:
    z2 = det.observe("k", 0.5)
    assert not det.is_anomalous(z2)


def test_detector_accepts_routine_values():
    det = AnomalyDetector(min_history=8)
    rng = np.random.default_rng(1)
    zs = [det.observe("k", float(rng.normal(0.5, 0.01))) for _ in range(50)]
    flagged = [z for z in zs if det.is_anomalous(z)]
    assert len(flagged) <= 2


def test_detector_per_key_isolation():
    det = AnomalyDetector(min_history=4)
    for i in range(10):
        det.observe("a", 1.0)
        det.observe("b", 100.0)
    assert not det.is_anomalous(det.observe("a", 1.0))
    assert not det.is_anomalous(det.observe("b", 100.0))


# -- quality assessor ----------------------------------------------------------------

@pytest.fixture
def assessor():
    schema = Schema("pl", 1, (FieldSpec("plqy", lo=0.0, hi=1.0),))
    return QualityAssessor(schema=schema,
                           detector=AnomalyDetector(min_history=8))


def test_clean_record_scores_one(assessor):
    report = assessor.assess(rec(0.5))
    assert report.score == 1.0
    assert not report.flags


def test_schema_violation_penalized(assessor):
    report = assessor.assess(rec(1.8))
    assert report.score < 1.0
    assert any("schema" in f for f in report.flags)


def test_non_finite_value_penalized(assessor):
    report = assessor.assess(rec(float("nan")))
    assert report.score < 1.0
    assert any("non-finite" in f for f in report.flags)


def test_outlier_detected_and_stamped(assessor):
    rng = np.random.default_rng(0)
    for _ in range(30):
        assessor.assess(rec(float(rng.normal(0.5, 0.005))))
    record = rec(0.95)
    report = assessor.assess(record)
    assert report.anomalous
    assert record.quality["anomalous"]
    assert assessor.stats["anomalies"] == 1


def test_instrument_state_discounts(assessor):
    r1 = assessor.assess(rec(0.5), instrument_state={"status": "fault"})
    assert r1.score <= 0.5
    r2 = assessor.assess(rec(0.5),
                         instrument_state={"calibration_bias": 0.4})
    assert any("drifted" in f for f in r2.flags)


# -- stream processor ------------------------------------------------------------------

def make_stream(sim, keep_every=5, **kw):
    assessor = QualityAssessor(detector=AnomalyDetector(min_history=8))
    alerts = []
    sp = StreamProcessor(sim, assessor, keep_every=keep_every,
                         per_record_s=0.001,
                         on_alert=lambda r, rep: alerts.append(r.record_id),
                         **kw)
    return sp, alerts


def test_stream_reduces_routine_traffic(sim):
    sp, alerts = make_stream(sim, keep_every=5)
    sp.start()
    rng = np.random.default_rng(0)
    for _ in range(100):
        sp.submit(rec(float(rng.normal(0.5, 0.005))))
    sim.run()
    assert sp.stats["processed"] == 100
    assert sp.stats["retained"] == pytest.approx(20, abs=3)
    assert 0.7 < sp.reduction_ratio() < 0.9
    assert not alerts


def test_stream_always_keeps_anomalies(sim):
    sp, alerts = make_stream(sim, keep_every=1000)
    sp.start()
    rng = np.random.default_rng(0)
    for i in range(60):
        sp.submit(rec(float(rng.normal(0.5, 0.005))))
    sp.submit(rec(42.0))  # scream-level outlier
    sim.run()
    assert len(alerts) == 1
    retained_ids = {r.record_id for r in sp.retained}
    assert alerts[0] in retained_ids


def test_stream_backlog_tracked(sim):
    sp, _ = make_stream(sim)
    sp.start()
    for _ in range(50):
        sp.submit(rec(0.5))
    assert sp.backlog > 0  # nothing drained yet (no sim time elapsed)
    sim.run()
    assert sp.backlog == 0
    assert sp.stats["max_backlog"] == 50


def test_stream_throughput_reflects_cost(sim):
    sp, _ = make_stream(sim)
    sp.start()
    for _ in range(100):
        sp.submit(rec(0.5))
    sim.run()
    assert sp.throughput() == pytest.approx(1000.0, rel=0.05)  # 1/0.001s


def test_stream_keep_every_validation(sim):
    from repro.data import QualityAssessor
    with pytest.raises(ValueError):
        StreamProcessor(sim, QualityAssessor(), keep_every=0)


def test_stream_double_start_rejected(sim):
    sp, _ = make_stream(sim)
    sp.start()
    with pytest.raises(RuntimeError):
        sp.start()
