"""Tests for time-travel campaign replay (record -> archive -> re-drive)."""

import json

import pytest

from repro.data import (CampaignArchive, ReplayTimeline, record_campaign,
                        replay_campaign)
from repro.data.replay import ARCHIVE_VERSION, ReplayMismatch

CONFIG = {"n_facilities": 4, "n_shards": 2, "records_per_facility": 2,
          "max_trace_events": 64}
SEEDS = [0, 1]


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("campaign"))
    manifest = record_campaign("mesh", SEEDS, CONFIG, root, workers=1)
    return CampaignArchive(root), manifest


def test_record_writes_manifest_and_shards(archive):
    arc, manifest = archive
    assert arc.exists()
    assert manifest["version"] == ARCHIVE_VERSION
    assert manifest["world"] == "mesh"
    assert arc.seeds == SEEDS
    for seed in SEEDS:
        assert manifest["shards"][str(seed)]["trace"] == f"trace-{seed}.jsonl"
        assert (manifest["shards"][str(seed)]["provenance"]
                == f"provenance-{seed}.json")
        assert arc.trace_events(seed)
    # Spill keys are side-channels, not part of the recorded config.
    assert "trace_spill" not in manifest["config"]
    assert "provenance_out" not in manifest["config"]


def test_provenance_shard_loads(archive):
    arc, _ = archive
    graph = arc.provenance(0)
    assert graph is not None
    assert len(graph) > 0
    assert graph.pending_stitches == []  # merged graph is fully stitched
    assert arc.provenance(999) is None
    assert arc.trace_events(999) == []


def test_timeline_reconstruction(archive):
    arc, _ = archive
    tl = arc.timeline()
    assert len(tl) == sum(len(arc.trace_events(s)) for s in SEEDS)
    times = [t for t, _, _ in tl]
    assert times == sorted(times)
    assert tl.span_s >= 0.0
    counts = tl.counts()
    assert sum(counts.values()) == len(tl)
    assert "ingest" in counts and "discover" in counts
    one_seed = arc.timeline(seeds=[0])
    assert len(one_seed) == len(arc.trace_events(0))


def test_timeline_between_and_named(archive):
    arc, _ = archive
    tl = arc.timeline()
    t0 = tl.entries[0][0]
    early = tl.between(t0, t0 + 2.0)
    assert 0 < len(early) <= len(tl)
    assert all(t0 <= t < t0 + 2.0 for t, _, _ in early)
    name = tl.entries[0][2].name
    assert all(ev.name == name for _, _, ev in tl.named(name))


def test_timeline_order_is_total():
    ev = [dict(seq=i, t=5.0, name="x", kind="instant") for i in range(3)]
    from repro.obs.trace import TraceEvent
    shards = {"seed-1": [TraceEvent(**ev[2]), TraceEvent(**ev[0])],
              "seed-0": [TraceEvent(**ev[1])]}
    tl = ReplayTimeline.from_shards(shards)
    keys = [(t, shard, e.seq) for t, shard, e in tl]
    assert keys == sorted(keys)


def test_replay_reproduces_hashes(archive):
    arc, manifest = archive
    report = replay_campaign(arc.root, workers=1)
    assert report["ok"]
    assert report["mismatches"] == []
    assert report["combined_replayed"] == manifest["combined"]


def test_tampered_manifest_is_detected(archive, tmp_path):
    arc, manifest = archive
    tampered = json.loads(json.dumps(manifest))
    tampered["hashes"]["0"] = "0" * 64
    CampaignArchive(str(tmp_path)).write_manifest(tampered)
    report = replay_campaign(str(tmp_path), workers=1)
    assert not report["ok"]
    assert [m["seed"] for m in report["mismatches"]] == [0]
    with pytest.raises(ReplayMismatch):
        replay_campaign(str(tmp_path), workers=1, strict=True)


def test_unsupported_archive_version_rejected(tmp_path):
    arc = CampaignArchive(str(tmp_path))
    arc.write_manifest({"version": 999, "seeds": []})
    with pytest.raises(ValueError):
        arc.load_manifest()


def test_unknown_world_rejected(tmp_path):
    with pytest.raises(ValueError):
        record_campaign("no-such-world", [0], {}, str(tmp_path))
