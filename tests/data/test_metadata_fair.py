"""Tests for metadata extraction (M5) and FAIR scoring/governance (M6)."""

import numpy as np
import pytest

from repro.data import (DataRecord, FairGovernor, FieldSpec, MetadataExtractor,
                        ProvenanceGraph, Schema, SchemaRegistry, fair_score)
from repro.instruments import (ElectronMicroscope, LiquidHandler,
                               PLSpectrometer, XRayDiffractometer)
from repro.labsci import Sample


def run(sim, gen):
    out = {}

    def proc():
        out["r"] = yield from gen
    sim.process(proc())
    sim.run()
    return out["r"]


@pytest.fixture
def extractor():
    return MetadataExtractor()


# -- extraction on real instrument payloads -----------------------------------

def test_extract_pl_spectrum(sim, rngs, qd_landscape, qd_params, extractor):
    spec = PLSpectrometer(sim, "spec", "ornl", rngs, scan_time_s=1.0)
    m = run(sim, spec.measure(Sample.synthesize(qd_params, qd_landscape)))
    ann = extractor.extract(m.raw, m.values)
    assert ann.technique == "photoluminescence"
    assert "plqy" in ann.quantities
    assert ann.confidence > 0.3


def test_extract_xrd(sim, rngs, qd_landscape, qd_params, extractor):
    xrd = XRayDiffractometer(sim, "xrd", "ornl", rngs, scan_time_s=1.0,
                             n_points=200)
    m = run(sim, xrd.measure(Sample.synthesize(qd_params, qd_landscape)))
    ann = extractor.extract(m.raw, m.values)
    assert ann.technique == "powder-xrd"
    assert "crystallinity" in ann.quantities


def test_extract_micrograph(sim, rngs, qd_landscape, qd_params, extractor):
    mic = ElectronMicroscope(sim, "sem", "ornl", rngs, image_time_s=1.0,
                             image_px=32)
    m = run(sim, mic.measure(Sample.synthesize(qd_params, qd_landscape)))
    ann = extractor.extract(m.raw, m.values)
    assert ann.technique == "electron-microscopy"
    assert ("raw.image" in ann.array_shapes)


def test_extract_plate_map(sim, rngs, extractor):
    lh = LiquidHandler(sim, "lh", "ornl", rngs, time_per_transfer_s=1.0)
    m = run(sim, lh.prepare("mix-1", {"precursor": 100.0}))
    ann = extractor.extract(m.raw, m.values)
    assert ann.technique == "liquid-handling"


def test_extract_unknown_payload(extractor):
    ann = extractor.extract({"blob": [1, 2, 3]}, {})
    assert ann.technique == "unknown"
    assert extractor.stats["unknowns"] == 1


def test_extract_unit_suffix_detection(extractor):
    ann = extractor.extract({"temperature_K": 373.15}, {})
    assert ann.quantities.get("temperature") == "K"


def test_extract_high_threshold_more_conservative():
    strict = MetadataExtractor(min_confidence=0.95)
    ann = strict.extract({"emission_nm": 520.0}, {})
    assert ann.technique == "unknown"


def test_extract_deterministic(sim, rngs, qd_landscape, qd_params, extractor):
    spec = PLSpectrometer(sim, "spec", "ornl", rngs, scan_time_s=1.0)
    m = run(sim, spec.measure(Sample.synthesize(qd_params, qd_landscape)))
    a1 = extractor.extract(m.raw, m.values)
    a2 = extractor.extract(m.raw, m.values)
    assert a1.technique == a2.technique
    assert a1.confidence == a2.confidence


# -- FAIR scoring -------------------------------------------------------------------

def make_record(**kw):
    defaults = dict(source="spec-1", values={"plqy": 0.5}, site="ornl",
                    institution="ornl")
    defaults.update(kw)
    return DataRecord(**defaults)


def test_bare_record_scores_low():
    report = fair_score(make_record())
    assert report.overall < 0.6
    assert "interoperable" in report.gaps()


def test_fully_dressed_record_scores_high():
    schemas = SchemaRegistry()
    schemas.register(Schema("pl", 1, (FieldSpec("plqy", unit="fraction"),)))
    prov = ProvenanceGraph()
    prov.entity("rec-x")
    prov.agent("planner")
    prov.activity("meas-1", ended=10.0)
    prov.used("meas-1", prov.entity("sample-1"))
    prov.was_generated_by("rec-x", "meas-1")
    prov.was_associated_with("meas-1", "planner")
    rec = make_record(schema_id="pl@1", license="CC-BY-4.0",
                      provenance_id="rec-x",
                      metadata={"technique": "photoluminescence",
                                "units": {"plqy": "fraction"}},
                      quality={"score": 0.9})
    report = fair_score(rec, indexed=True, schemas=schemas, provenance=prov)
    assert report.overall > 0.9
    assert report.findable == 1.0
    assert report.reusable == 1.0


def test_unregistered_schema_does_not_count():
    schemas = SchemaRegistry()
    rec = make_record(schema_id="ghost@9")
    report = fair_score(rec, schemas=schemas)
    assert report.interoperable < 0.6


# -- FAIR governor ----------------------------------------------------------------------

def test_governor_improves_score(sim, rngs, qd_landscape, qd_params):
    spec = PLSpectrometer(sim, "spec", "ornl", rngs, scan_time_s=1.0)
    m = run(sim, spec.measure(Sample.synthesize(qd_params, qd_landscape)))
    rec = DataRecord.from_measurement(m)
    rec.metadata.pop("technique", None)  # strip what the instrument knew
    rec.metadata.pop("units", None)
    schemas = SchemaRegistry()
    schemas.register(Schema("pl", 1, (
        FieldSpec("plqy", unit="fraction"),
        FieldSpec("emission_nm", unit="nm"),
    )))
    governor = FairGovernor()
    before = fair_score(rec, schemas=schemas).overall
    report = governor.audit(rec, schemas=schemas)
    assert report.overall > before
    assert rec.license == "CC-BY-4.0"
    assert rec.schema_id == "pl@1"
    assert rec.metadata["technique"] == "photoluminescence"
    assert governor.stats["repairs"] == 1
    assert governor.mean_improvement() > 0


def test_governor_schema_requires_all_required_fields():
    schemas = SchemaRegistry()
    schemas.register(Schema("pl", 1, (
        FieldSpec("plqy"), FieldSpec("emission_nm"),
    )))
    rec = make_record(values={"plqy": 0.5})  # missing emission_nm
    FairGovernor().audit(rec, schemas=schemas)
    assert rec.schema_id == ""  # no schema fits


def test_governor_noop_on_compliant_record():
    rec = make_record(license="MIT",
                      metadata={"technique": "photoluminescence"})
    g = FairGovernor()
    g.audit(rec)
    assert g.stats["repairs"] == 0
