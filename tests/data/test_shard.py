"""Tests for the facility-sharded discovery index."""

import pytest

from repro.data import DiscoveryIndex, ShardedDiscoveryIndex, shard_for
from repro.data.shard import ShardedDiscoveryIndex as _Direct


def entry(i, site, technique="powder-xrd", institution="inst-0"):
    return {"record_id": f"rec-{i:04d}", "schema_id": "synthesis@1",
            "site": site, "institution": institution, "source": "spec-1",
            "sensitivity": "open",
            "metadata": {"technique": technique}}


@pytest.fixture
def sharded():
    idx = ShardedDiscoveryIndex(n_shards=4)
    for i in range(20):
        idx.publish(entry(i, f"site-{i % 5}",
                          technique=("powder-xrd" if i % 2 else "uv-vis"),
                          institution=f"inst-{i % 3}"))
    return idx


def test_shard_for_is_deterministic_and_bounded():
    assert shard_for("site-0", 8) == shard_for("site-0", 8)
    for n in (1, 2, 7, 32):
        for i in range(40):
            assert 0 <= shard_for(f"site-{i}", n) < n


def test_shard_for_rejects_bad_count():
    with pytest.raises(ValueError):
        shard_for("site-0", 0)
    with pytest.raises(ValueError):
        ShardedDiscoveryIndex(0)


def test_reexport_is_same_class():
    assert _Direct is ShardedDiscoveryIndex


def test_same_site_lands_on_one_shard(sharded):
    rows = sharded.query(site="site-2")
    shard = sharded.shard_id("site-2")
    for row in rows:
        assert row["record_id"] in sharded.shards[shard]


def test_len_contains_get(sharded):
    assert len(sharded) == 20
    assert "rec-0003" in sharded
    assert "rec-9999" not in sharded
    assert sharded.get("rec-0003")["site"] == "site-3"
    assert sharded.get("rec-9999") is None


def test_query_matches_flat_index(sharded):
    flat = DiscoveryIndex()
    for i in range(20):
        flat.publish(entry(i, f"site-{i % 5}",
                           technique=("powder-xrd" if i % 2 else "uv-vis"),
                           institution=f"inst-{i % 3}"))
    for filters in ({}, {"site": "site-1"},
                    {"metadata.technique": "uv-vis"},
                    {"institution": "inst-2"},
                    {"record_id": "rec-0007"},
                    {"metadata.technique": "powder-xrd",
                     "institution": "inst-1"}):
        assert ([e["record_id"] for e in sharded.query(**filters)]
                == [e["record_id"] for e in flat.query(**filters)])


def test_results_sorted_by_record_id(sharded):
    ids = [e["record_id"] for e in sharded.query()]
    assert ids == sorted(ids)


def test_site_and_pk_queries_route_fanouts_counted(sharded):
    before = dict(sharded.stats)
    sharded.query(site="site-1")
    sharded.query(record_id="rec-0002")
    sharded.query(**{"metadata.technique": "uv-vis"})
    stats = sharded.stats
    assert stats["routed_queries"] == before["routed_queries"] + 2
    assert stats["fanout_queries"] == before["fanout_queries"] + 1


def test_pk_query_for_unknown_record_is_empty(sharded):
    assert sharded.query(record_id="rec-9999") == []


def test_moved_site_republish_drops_stale_copy(sharded):
    moved = entry(3, "site-4")
    old_shard = sharded.shard_id("site-3")
    sharded.publish(moved)
    assert len(sharded) == 20
    assert sharded.get("rec-0003")["site"] == "site-4"
    assert ("rec-0003" in sharded.shards[old_shard]) == (
        old_shard == sharded.shard_id("site-4"))
    assert [e["record_id"] for e in sharded.query(site="site-3")
            if e["record_id"] == "rec-0003"] == []


def test_remove(sharded):
    sharded.remove("rec-0000")
    assert "rec-0000" not in sharded
    assert sharded.get("rec-0000") is None
    sharded.remove("rec-0000")  # idempotent
    assert len(sharded) == 19


def test_stats_aggregate_shard_counters(sharded):
    assert sharded.stats["publishes"] == 20
    sharded.query(site="site-0")
    assert sharded.stats["queries"] >= 1
    assert sharded.stats["index_hits"] >= 1


def test_shard_sizes_cover_all_entries(sharded):
    assert sum(sharded.shard_sizes()) == 20
    assert len(sharded.shard_sizes()) == 4


def test_index_hits_for_secondary_filters(sharded):
    hits_before = sharded.stats["index_hits"]
    misses_before = sharded.stats["index_misses"]
    sharded.query(**{"metadata.technique": "uv-vis"})
    assert sharded.stats["index_hits"] > hits_before
    assert sharded.stats["index_misses"] == misses_before


def test_unindexed_filter_scans(sharded):
    misses_before = sharded.stats["index_misses"]
    rows = sharded.query(**{"metadata.color": "blue"})
    assert rows == []
    assert sharded.stats["index_misses"] > misses_before


# -- shard fan-in (merge protocol) -------------------------------------------


def test_discovery_index_merge_from_combines_entries_and_stats():
    left, right = DiscoveryIndex(), DiscoveryIndex()
    for i in range(4):
        left.publish(entry(i, "site-0"))
    for i in range(4, 7):
        right.publish(entry(i, "site-1"))
    right.query(site="site-1")
    left.merge_from(right)
    assert len(left) == 7
    assert left.get("rec-0005")["site"] == "site-1"
    assert left.stats["publishes"] == 7
    assert left.stats["queries"] == 1
    # Secondary indexes cover the merged entries too.
    assert len(left.query(site="site-1")) == 3


def test_discovery_index_merge_conflict_incoming_wins():
    left, right = DiscoveryIndex(), DiscoveryIndex()
    left.publish(entry(0, "site-0", technique="uv-vis"))
    right.publish(entry(0, "site-0", technique="powder-xrd"))
    left.merge_from(right)
    assert len(left) == 1
    assert left.get("rec-0000")["metadata"]["technique"] == "powder-xrd"
    assert [e["record_id"] for e in
            left.query(**{"metadata.technique": "uv-vis"})] == []


def test_discovery_index_state_is_deterministic_snapshot():
    idx = DiscoveryIndex()
    for i in (3, 1, 2):
        idx.publish(entry(i, "site-0"))
    state = idx.state()
    assert [e["record_id"] for e in state["entries"]] == [
        "rec-0001", "rec-0002", "rec-0003"]
    assert state["stats"]["publishes"] == 3


def test_sharded_merge_matches_single_index(sharded):
    other = ShardedDiscoveryIndex(n_shards=4)
    for i in range(20, 30):
        other.publish(entry(i, f"site-{i % 5}"))
    sharded.merge_from(other)
    assert len(sharded) == 30
    assert sum(sharded.shard_sizes()) == 30
    # Merged entries are query-routable exactly like locally-published ones.
    assert sharded.get("rec-0025")["site"] == "site-0"
    assert any(e["record_id"] == "rec-0025"
               for e in sharded.query(site="site-0"))
    flat_state = sharded.state()
    assert flat_state["n_shards"] == 4
    assert sum(len(s["entries"]) for s in flat_state["shards"]) == 30


def test_sharded_merge_rejects_mismatched_shard_counts(sharded):
    with pytest.raises(ValueError):
        sharded.merge_from(ShardedDiscoveryIndex(n_shards=8))
