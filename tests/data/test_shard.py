"""Tests for the facility-sharded discovery index."""

import pytest

from repro.data import DiscoveryIndex, ShardedDiscoveryIndex, shard_for
from repro.data.shard import ShardedDiscoveryIndex as _Direct


def entry(i, site, technique="powder-xrd", institution="inst-0"):
    return {"record_id": f"rec-{i:04d}", "schema_id": "synthesis@1",
            "site": site, "institution": institution, "source": "spec-1",
            "sensitivity": "open",
            "metadata": {"technique": technique}}


@pytest.fixture
def sharded():
    idx = ShardedDiscoveryIndex(n_shards=4)
    for i in range(20):
        idx.publish(entry(i, f"site-{i % 5}",
                          technique=("powder-xrd" if i % 2 else "uv-vis"),
                          institution=f"inst-{i % 3}"))
    return idx


def test_shard_for_is_deterministic_and_bounded():
    assert shard_for("site-0", 8) == shard_for("site-0", 8)
    for n in (1, 2, 7, 32):
        for i in range(40):
            assert 0 <= shard_for(f"site-{i}", n) < n


def test_shard_for_rejects_bad_count():
    with pytest.raises(ValueError):
        shard_for("site-0", 0)
    with pytest.raises(ValueError):
        ShardedDiscoveryIndex(0)


def test_reexport_is_same_class():
    assert _Direct is ShardedDiscoveryIndex


def test_same_site_lands_on_one_shard(sharded):
    rows = sharded.query(site="site-2")
    shard = sharded.shard_id("site-2")
    for row in rows:
        assert row["record_id"] in sharded.shards[shard]


def test_len_contains_get(sharded):
    assert len(sharded) == 20
    assert "rec-0003" in sharded
    assert "rec-9999" not in sharded
    assert sharded.get("rec-0003")["site"] == "site-3"
    assert sharded.get("rec-9999") is None


def test_query_matches_flat_index(sharded):
    flat = DiscoveryIndex()
    for i in range(20):
        flat.publish(entry(i, f"site-{i % 5}",
                           technique=("powder-xrd" if i % 2 else "uv-vis"),
                           institution=f"inst-{i % 3}"))
    for filters in ({}, {"site": "site-1"},
                    {"metadata.technique": "uv-vis"},
                    {"institution": "inst-2"},
                    {"record_id": "rec-0007"},
                    {"metadata.technique": "powder-xrd",
                     "institution": "inst-1"}):
        assert ([e["record_id"] for e in sharded.query(**filters)]
                == [e["record_id"] for e in flat.query(**filters)])


def test_results_sorted_by_record_id(sharded):
    ids = [e["record_id"] for e in sharded.query()]
    assert ids == sorted(ids)


def test_site_and_pk_queries_route_fanouts_counted(sharded):
    before = dict(sharded.stats)
    sharded.query(site="site-1")
    sharded.query(record_id="rec-0002")
    sharded.query(**{"metadata.technique": "uv-vis"})
    stats = sharded.stats
    assert stats["routed_queries"] == before["routed_queries"] + 2
    assert stats["fanout_queries"] == before["fanout_queries"] + 1


def test_pk_query_for_unknown_record_is_empty(sharded):
    assert sharded.query(record_id="rec-9999") == []


def test_moved_site_republish_drops_stale_copy(sharded):
    moved = entry(3, "site-4")
    old_shard = sharded.shard_id("site-3")
    sharded.publish(moved)
    assert len(sharded) == 20
    assert sharded.get("rec-0003")["site"] == "site-4"
    assert ("rec-0003" in sharded.shards[old_shard]) == (
        old_shard == sharded.shard_id("site-4"))
    assert [e["record_id"] for e in sharded.query(site="site-3")
            if e["record_id"] == "rec-0003"] == []


def test_remove(sharded):
    sharded.remove("rec-0000")
    assert "rec-0000" not in sharded
    assert sharded.get("rec-0000") is None
    sharded.remove("rec-0000")  # idempotent
    assert len(sharded) == 19


def test_stats_aggregate_shard_counters(sharded):
    assert sharded.stats["publishes"] == 20
    sharded.query(site="site-0")
    assert sharded.stats["queries"] >= 1
    assert sharded.stats["index_hits"] >= 1


def test_shard_sizes_cover_all_entries(sharded):
    assert sum(sharded.shard_sizes()) == 20
    assert len(sharded.shard_sizes()) == 4


def test_index_hits_for_secondary_filters(sharded):
    hits_before = sharded.stats["index_hits"]
    misses_before = sharded.stats["index_misses"]
    sharded.query(**{"metadata.technique": "uv-vis"})
    assert sharded.stats["index_hits"] > hits_before
    assert sharded.stats["index_misses"] == misses_before


def test_unindexed_filter_scans(sharded):
    misses_before = sharded.stats["index_misses"]
    rows = sharded.query(**{"metadata.color": "blue"})
    assert rows == []
    assert sharded.stats["index_misses"] > misses_before
