"""Tests for the federated data mesh and the proxy store."""

import numpy as np
import pytest

from repro.data import (DataRecord, FederatedDataMesh, ProxyStore)
from repro.data.mesh import AccessDenied
from repro.security import (FederatedIdentityProvider, Identity, PolicyEngine,
                            TrustFabric, ZeroTrustGateway)
from repro.security.abac import (allow_all_within_federation,
                                 standard_lab_policy)


@pytest.fixture
def mesh(sim, testbed_network):
    mesh = FederatedDataMesh(sim, testbed_network)
    for i in range(3):
        mesh.make_node(f"site-{i}", institution=f"inst-{i}",
                       index_latency_s=0.5)
    return mesh


def run(sim, gen):
    out = {}

    def proc():
        out["r"] = yield from gen
    sim.process(proc())
    sim.run()
    return out["r"]


def rec(**kw):
    defaults = dict(source="spec-1", values={"plqy": 0.4})
    defaults.update(kw)
    return DataRecord(**defaults)


def test_ingest_sets_site_and_institution(mesh, sim):
    node = mesh.nodes["site-0"]
    r = node.ingest(rec())
    assert r.site == "site-0"
    assert r.institution == "inst-0"
    assert node.has(r.record_id)


def test_index_replication_is_asynchronous(mesh, sim):
    node = mesh.nodes["site-0"]
    r = node.ingest(rec())
    assert r.record_id not in mesh.index  # not yet replicated
    sim.run(until=1.0)
    assert r.record_id in mesh.index


def test_cross_site_discovery(mesh, sim):
    mesh.nodes["site-1"].ingest(rec(metadata={"technique": "powder-xrd"}))
    mesh.nodes["site-2"].ingest(rec(metadata={"technique": "pl"}))
    sim.run(until=1.0)
    entries = run(sim, mesh.discover("site-0",
                                     **{"metadata.technique": "powder-xrd"}))
    assert len(entries) == 1
    assert entries[0]["site"] == "site-1"


def test_index_never_carries_raw_payload(mesh, sim):
    big = np.zeros(10_000)
    node = mesh.nodes["site-0"]
    r = node.ingest(rec(raw={"image": big}))
    sim.run(until=1.0)
    entry = mesh.index.query(record_id=r.record_id)[0]
    assert "raw" not in entry
    assert "image" not in str(entry.get("keys"))


def test_fetch_from_remote_site(mesh, sim):
    node1 = mesh.nodes["site-1"]
    r = node1.ingest(rec())
    sim.run(until=1.0)
    got = run(sim, mesh.fetch(r.record_id, to_site="site-0"))
    assert got.record_id == r.record_id
    assert node1.stats["served"] == 1


def test_fetch_before_index_replication_falls_back(mesh, sim):
    r = mesh.nodes["site-2"].ingest(rec())
    got = run(sim, mesh.fetch(r.record_id, to_site="site-0"))
    assert got.record_id == r.record_id


def test_fetch_unknown_record(mesh, sim):
    def proc():
        with pytest.raises(KeyError):
            yield from mesh.fetch("ghost", to_site="site-0")
    sim.process(proc())
    sim.run()


def test_discovery_query_predicate(mesh, sim):
    mesh.nodes["site-0"].ingest(rec(values={"plqy": 0.9}))
    mesh.nodes["site-0"].ingest(rec(values={"gfa": 0.2}))
    sim.run(until=1.0)
    entries = mesh.index.query(predicate=lambda e: "plqy" in e["keys"])
    assert len(entries) == 1


def test_duplicate_node_rejected(mesh, sim):
    with pytest.raises(ValueError):
        mesh.make_node("site-0", institution="other")


# -- sovereignty via zero trust --------------------------------------------------------

@pytest.fixture
def secured_mesh(sim, testbed_network):
    fabric = TrustFabric()
    for inst in ("inst-0", "inst-1"):
        idp = FederatedIdentityProvider(sim, inst)
        idp.enroll(Identity.make(f"agent@{inst}", inst, role="agent"))
        fabric.add_provider(idp)
    fabric.federate()
    engine = PolicyEngine(allow_all_within_federation())
    engine.set_policy("inst-1", standard_lab_policy("inst-1"))
    gateway = ZeroTrustGateway(
        sim, fabric, engine,
        site_institution={"site-0": "inst-0", "site-1": "inst-1"})
    mesh = FederatedDataMesh(sim, testbed_network)
    mesh.make_node("site-0", institution="inst-0", gateway=gateway)
    mesh.make_node("site-1", institution="inst-1", gateway=gateway)
    return mesh, fabric


def test_restricted_data_never_leaves_institution(secured_mesh, sim):
    mesh, fabric = secured_mesh
    node1 = mesh.nodes["site-1"]
    r = node1.ingest(rec(sensitivity="restricted"))
    sim.run(until=1.0)
    token = fabric.provider("inst-0").issue("agent@inst-0")

    def proc():
        with pytest.raises(AccessDenied):
            yield from mesh.fetch(r.record_id, to_site="site-0", token=token)

    sim.process(proc())
    sim.run()
    assert node1.stats["denied"] == 1


def test_open_data_flows_with_valid_token(secured_mesh, sim):
    mesh, fabric = secured_mesh
    r = mesh.nodes["site-1"].ingest(rec(sensitivity="open"))
    sim.run(until=1.0)
    token = fabric.provider("inst-0").issue("agent@inst-0")
    got = run(sim, mesh.fetch(r.record_id, to_site="site-0", token=token))
    assert got.record_id == r.record_id


def test_local_principal_can_export_restricted(secured_mesh, sim):
    mesh, fabric = secured_mesh
    idp = fabric.provider("inst-1")
    idp.enroll(Identity.make("local@inst-1", "inst-1", role="agent"))
    r = mesh.nodes["site-1"].ingest(rec(sensitivity="restricted"))
    sim.run(until=1.0)
    token = idp.issue("local@inst-1")
    got = run(sim, mesh.fetch(r.record_id, to_site="site-0", token=token))
    assert got.record_id == r.record_id


# -- proxy store -------------------------------------------------------------------------

@pytest.fixture
def stores(sim, testbed_network):
    peers: dict = {}
    return {f"site-{i}": ProxyStore(sim, testbed_network, f"site-{i}", peers)
            for i in range(3)}


def test_proxy_is_tiny(stores):
    big = np.zeros(100_000)
    proxy = stores["site-0"].put(big)
    assert proxy.wire_size() < 200
    assert proxy.size_bytes > 700_000


def test_local_resolution_instant(sim, stores):
    obj = {"x": 1}
    proxy = stores["site-0"].put(obj)
    got = run(sim, stores["site-0"].resolve(proxy))
    assert got is obj
    assert sim.now == 0.0


def test_remote_resolution_pays_transfer_once(sim, stores):
    big = np.zeros(1_000_000)  # 8 MB
    proxy = stores["site-0"].put(big)
    remote = stores["site-2"]

    def proc():
        t0 = sim.now
        got = yield from remote.resolve(proxy)
        first = sim.now - t0
        assert got is big
        t1 = sim.now
        yield from remote.resolve(proxy)
        second = sim.now - t1
        assert first > 0.005  # real transfer time for 8 MB over WAN
        assert second == 0.0  # cached

    sim.process(proc())
    sim.run()
    assert remote.stats["remote_fetches"] == 1
    assert remote.stats["cache_hits"] == 1


def test_evicted_object_unresolvable(sim, stores):
    proxy = stores["site-0"].put([1, 2, 3])
    stores["site-0"].evict(proxy)

    def proc():
        with pytest.raises(KeyError):
            yield from stores["site-1"].resolve(proxy)

    sim.process(proc())
    sim.run()


def test_unknown_home_site(sim, stores):
    from repro.data.proxystore import Proxy
    orphan = Proxy(key="proxy-x", home_site="nowhere", size_bytes=10.0)

    def proc():
        with pytest.raises(KeyError):
            yield from stores["site-0"].resolve(orphan)

    sim.process(proc())
    sim.run()


# -- PR 7 satellites: index routing stats + explicit index hosting ----------


def test_explicit_index_site_constructor(sim, testbed_network):
    mesh = FederatedDataMesh(sim, testbed_network, index_site="site-2")
    for i in range(3):
        mesh.make_node(f"site-{i}", institution=f"inst-{i}")
    assert mesh.index_site == "site-2"  # not overwritten by add_node


def test_default_index_site_is_first_registered_node(mesh):
    assert mesh.index_site == "site-0"


def test_pure_record_id_query_is_an_index_hit(mesh, sim):
    r = mesh.nodes["site-0"].ingest(rec())
    sim.run(until=1.0)
    before = dict(mesh.index.stats)
    [entry] = mesh.index.query(record_id=r.record_id)
    assert entry["record_id"] == r.record_id
    assert mesh.index.stats["index_hits"] == before["index_hits"] + 1
    assert mesh.index.stats["index_misses"] == before["index_misses"]


def test_fetch_counts_index_hit(mesh, sim):
    r = mesh.nodes["site-1"].ingest(rec())
    sim.run(until=1.0)
    before = mesh.index.stats["index_hits"]
    fetched = run(sim, mesh.fetch(r.record_id, to_site="site-0"))
    assert fetched.record_id == r.record_id
    assert mesh.index.stats["index_hits"] == before + 1


def test_fetch_fallback_counts_index_miss(mesh, sim):
    r = mesh.nodes["site-1"].ingest(rec())
    # No sim.run: index replication has not happened yet.
    before = mesh.index.stats["index_misses"]
    fetched = run(sim, mesh.fetch(r.record_id, to_site="site-0"))
    assert fetched.record_id == r.record_id
    assert mesh.index.stats["index_misses"] == before + 1


def test_mesh_accepts_sharded_index(sim, testbed_network):
    from repro.data import ShardedDiscoveryIndex
    mesh = FederatedDataMesh(sim, testbed_network,
                             index=ShardedDiscoveryIndex(n_shards=2))
    for i in range(3):
        mesh.make_node(f"site-{i}", institution=f"inst-{i}")
    r = mesh.nodes["site-1"].ingest(rec(metadata={"technique": "saxs"}))
    sim.run(until=1.0)
    entries = run(sim, mesh.discover("site-0",
                                     **{"metadata.technique": "saxs"}))
    assert [e["record_id"] for e in entries] == [r.record_id]
    fetched = run(sim, mesh.fetch(r.record_id, to_site="site-2"))
    assert fetched.record_id == r.record_id


def test_failed_normalize_never_schedules_publish(mesh, sim):
    from repro.data.schema import SchemaError
    node = mesh.nodes["site-0"]
    bad = rec(values={"unmappable": 1.0})
    with pytest.raises(SchemaError):
        node.normalize_and_ingest(bad, "ghost-schema")
    sim.run()
    assert len(mesh.index) == 0
    assert node.stats["ingested"] == 0


def test_merged_provenance_namespaces_by_site(mesh, sim):
    from repro.data.provenance import qualified
    r0 = mesh.nodes["site-0"].ingest(rec())
    mesh.nodes["site-0"].provenance.entity(r0.record_id)
    r1 = mesh.nodes["site-1"].ingest(rec())
    mesh.nodes["site-1"].provenance.entity(r1.record_id)
    mesh.nodes["site-1"].provenance.was_derived_from(
        r1.record_id, qualified("site-0", r0.record_id), cross_shard=True)
    merged = mesh.merged_provenance(namespaced=True)
    assert qualified("site-0", r0.record_id) in merged
    assert merged.pending_stitches == []
    assert qualified("site-0", r0.record_id) in merged.lineage(
        qualified("site-1", r1.record_id))
