"""ChaosController: declarative, deterministic failure injection."""

import pytest

from repro.net.faults import FaultInjector
from repro.resilience import ChaosController
from repro.sim.rng import RngRegistry


class FakeStatus:
    def __init__(self, value):
        self.value = value


class FakeInstrument:
    def __init__(self, name):
        self.name = name
        self.status = FakeStatus("idle")
        self.faults = 0

    def inject_fault(self):
        self.faults += 1
        self.status = FakeStatus("fault")


class FakeAgent:
    def __init__(self, name):
        self.name = name
        self.crashed = False

    def crash(self):
        self.crashed = True


def test_network_chaos_fires_at_scheduled_times(sim):
    faults = FaultInjector(sim)
    chaos = ChaosController(sim, faults)
    chaos.cut_link("a", "b", at_s=10.0, duration_s=5.0)
    chaos.fail_site("c", at_s=20.0)
    chaos.partition(["a"], ["b", "c"], at_s=30.0)
    chaos.degrade_link("a", "c", extra_loss=0.5, at_s=40.0)
    assert chaos.stats["scheduled"] == 4
    assert chaos.log == []  # nothing fired yet
    sim.run()
    assert [(t, kind) for t, kind, _ in chaos.log] == [
        (10.0, "link_faults"), (20.0, "site_faults"),
        (30.0, "partitions"), (40.0, "degradations")]
    kinds = [kind for _, kind, _ in faults.history]
    assert kinds == ["fail_link", "fail_site", "partition", "degrade_link"]


def test_network_chaos_requires_injector(sim):
    chaos = ChaosController(sim)
    with pytest.raises(ValueError):
        chaos.cut_link("a", "b")


def test_instrument_fault_skips_already_faulted(sim):
    chaos = ChaosController(sim)
    inst = FakeInstrument("xrd")
    chaos.fault_instrument(inst, at_s=1.0)
    chaos.fault_instrument(inst, at_s=2.0)  # already faulted by then
    sim.run()
    assert inst.faults == 1
    assert chaos.stats["instrument_faults"] == 2  # both scheduled+logged


def test_fault_storm_is_deterministic_and_bounded(sim):
    insts = [FakeInstrument("a"), FakeInstrument("b")]

    def storm(seed):
        chaos = ChaosController(sim, rngs=RngRegistry(seed))
        n = chaos.instrument_fault_storm(insts, rate_per_hour=6.0,
                                         until_s=3600.0)
        return n

    n1, n2 = storm(5), storm(5)
    assert n1 == n2
    assert n1 > 0
    # zero rate schedules nothing; negative rejects
    chaos = ChaosController(sim, rngs=RngRegistry(5))
    assert chaos.instrument_fault_storm(insts, rate_per_hour=0.0,
                                        until_s=3600.0) == 0
    with pytest.raises(ValueError):
        chaos.instrument_fault_storm(insts, rate_per_hour=-1.0,
                                     until_s=3600.0)


def test_fault_storm_needs_rngs(sim):
    chaos = ChaosController(sim)
    with pytest.raises(ValueError):
        chaos.instrument_fault_storm([FakeInstrument("a")],
                                     rate_per_hour=1.0, until_s=10.0)


def test_crash_agent(sim):
    chaos = ChaosController(sim)
    agent = FakeAgent("planner")
    chaos.crash_agent(agent, at_s=7.0)
    sim.run()
    assert agent.crashed
    assert chaos.stats["agent_crashes"] == 1
    assert chaos.log == [(7.0, "agent_crashes", "planner")]
