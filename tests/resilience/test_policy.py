"""RetryPolicy / Deadline / CircuitBreaker unit behaviour."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience import (UNLIMITED_ATTEMPTS, CircuitBreaker, CircuitState,
                              Deadline, RetryPolicy)
from repro.sim.rng import RngRegistry


class TestRetryPolicy:
    def test_exponential_schedule(self):
        p = RetryPolicy(5, base_delay_s=0.1, multiplier=2.0)
        assert [p.delay(i) for i in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.8]

    def test_cap(self):
        p = RetryPolicy(10, base_delay_s=1.0, multiplier=10.0, max_delay_s=5.0)
        assert p.delay(1) == 1.0
        assert p.delay(2) == 5.0
        assert p.delay(5) == 5.0

    def test_attempt_budget(self):
        p = RetryPolicy(3)
        assert p.should_retry(0) and p.should_retry(2)
        assert not p.should_retry(3)

    def test_fixed_is_flat_and_unbounded(self):
        p = RetryPolicy.fixed(30.0)
        assert p.max_attempts == UNLIMITED_ATTEMPTS
        assert p.delay(1) == p.delay(7) == 30.0

    def test_immediate_has_no_pause(self):
        p = RetryPolicy.immediate(4)
        assert p.delay(1) == 0.0 and p.delay(3) == 0.0
        assert not p.should_retry(4)

    def test_jitter_needs_rng(self):
        with pytest.raises(ValueError):
            RetryPolicy(3, jitter=0.2)

    def test_jitter_is_deterministic_per_stream(self):
        def delays(seed):
            rng = RngRegistry(seed).stream("retry/test")
            p = RetryPolicy(9, base_delay_s=1.0, jitter=0.5, rng=rng)
            return [p.delay(i) for i in range(1, 8)]

        a, b = delays(11), delays(11)
        assert a == b
        assert delays(11) != delays(12)
        # Jitter stays inside the documented band.
        p = RetryPolicy(9, base_delay_s=1.0, multiplier=1.0, jitter=0.5,
                        rng=RngRegistry(0).stream("retry/band"))
        for i in range(1, 50):
            assert 0.5 <= p.delay(i) <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(0)
        with pytest.raises(ValueError):
            RetryPolicy(3, base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(3).delay(0)


class TestDeadline:
    def test_budget_accounting(self, sim):
        d = Deadline(sim, 5.0)
        assert not d.expired and d.finite
        assert d.remaining() == 5.0
        assert d.clamp(10.0) == 5.0
        assert d.clamp(2.0) == 2.0
        sim.schedule_callback(5.0, lambda: None)
        sim.run()
        assert d.expired and d.remaining() == 0.0

    def test_infinite_budget(self, sim):
        d = Deadline(sim)
        assert not d.finite
        assert d.remaining() == math.inf
        assert d.clamp(3.0) == 3.0


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self, sim):
        br = CircuitBreaker(sim, failure_threshold=3)
        br.record_failure()
        br.record_failure()
        assert br.state is CircuitState.CLOSED
        br.record_failure()
        assert br.state is CircuitState.OPEN
        assert not br.allow()
        assert br.stats["trips"] == 1
        assert br.stats["rejections"] == 1

    def test_success_resets_the_count(self, sim):
        br = CircuitBreaker(sim, failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state is CircuitState.CLOSED

    def test_half_open_probe_cycle(self, sim):
        br = CircuitBreaker(sim, failure_threshold=1, recovery_time_s=10.0)
        br.record_failure()
        assert br.state is CircuitState.OPEN
        sim.schedule_callback(10.0, lambda: None)
        sim.run()
        assert br.state is CircuitState.HALF_OPEN
        assert br.allow()
        # A failed probe goes straight back to quarantine...
        br.record_failure()
        assert br.state is CircuitState.OPEN
        sim.schedule_callback(10.0, lambda: None)
        sim.run()
        # ...and a successful probe re-closes.
        assert br.state is CircuitState.HALF_OPEN
        br.record_success()
        assert br.state is CircuitState.CLOSED

    def test_stats_live_in_shared_registry(self, sim):
        reg = MetricsRegistry()
        br = CircuitBreaker(sim, failure_threshold=1, name="db",
                            metrics=reg)
        br.record_failure()
        snap = reg.snapshot()
        assert snap["counters"]["resilience.breaker.trips{breaker=db}"] == 1
