"""resilient_call: the one attempt loop every reliability layer shares."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.resilience import (CircuitBreaker, CircuitOpen, Deadline,
                              DeadlineExceeded, RetriesExhausted, RetryPolicy,
                              resilient_call)


class Flaky(Exception):
    pass


def run(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


def flaky_then_ok(sim, fail_times, *, duration_s=0.0,
                  exc_type=Flaky, attempts_seen=None):
    """Attempt factory failing the first ``fail_times`` tries."""

    def attempt(n):
        if attempts_seen is not None:
            attempts_seen.append((sim.now, n))
        if duration_s > 0:
            yield sim.timeout(duration_s)
        if n <= fail_times:
            raise exc_type(f"attempt {n}")
        return f"ok@{n}"
        yield  # pragma: no cover - make non-delayed variants generators

    return attempt


def test_retry_then_succeed_with_backoff(sim):
    seen = []
    policy = RetryPolicy(5, base_delay_s=1.0, multiplier=2.0)

    def driver():
        result = yield from resilient_call(
            sim, flaky_then_ok(sim, 2, attempts_seen=seen), policy=policy)
        return result

    assert run(sim, driver()) == "ok@3"
    # Attempts at t=0, t=1 (base), t=3 (base*2 later).
    assert seen == [(0.0, 1), (1.0, 2), (3.0, 3)]


def test_non_retryable_exception_propagates(sim):
    policy = RetryPolicy(5, base_delay_s=0.0)

    def driver():
        yield from resilient_call(
            sim, flaky_then_ok(sim, 99, exc_type=KeyError), policy=policy,
            retry_on=(Flaky,))

    with pytest.raises(KeyError):
        run(sim, driver())


def test_retries_exhausted_carries_last_error(sim):
    policy = RetryPolicy(3, base_delay_s=0.0)

    def driver():
        yield from resilient_call(
            sim, flaky_then_ok(sim, 99), policy=policy, name="doomed")

    with pytest.raises(RetriesExhausted) as ei:
        run(sim, driver())
    assert ei.value.attempts == 3
    assert isinstance(ei.value.last_error, Flaky)
    assert "doomed" in str(ei.value)


def test_deadline_interrupts_in_flight_attempt(sim):
    policy = RetryPolicy(1)

    def driver():
        yield from resilient_call(
            sim, flaky_then_ok(sim, 0, duration_s=10.0), policy=policy,
            deadline=Deadline(sim, 0.5))

    with pytest.raises(DeadlineExceeded):
        run(sim, driver())
    assert sim.now == pytest.approx(0.5)


def test_deadline_caps_backoff_and_stops_loop(sim):
    seen = []
    policy = RetryPolicy(100, base_delay_s=4.0)

    def driver():
        yield from resilient_call(
            sim, flaky_then_ok(sim, 99, duration_s=0.25, attempts_seen=seen),
            policy=policy, deadline=Deadline(sim, 1.0))

    with pytest.raises(RetriesExhausted):
        run(sim, driver())
    # First attempt at 0 (fails at 0.25); backoff clamped to the remaining
    # 0.75 budget, after which the deadline closes the loop.
    assert seen == [(0.0, 1)]
    assert sim.now == pytest.approx(1.0)


def test_open_breaker_short_circuits(sim):
    breaker = CircuitBreaker(sim, failure_threshold=1, recovery_time_s=60.0)
    breaker.record_failure()  # trip it
    calls = []

    def driver():
        yield from resilient_call(
            sim, flaky_then_ok(sim, 0, attempts_seen=calls),
            policy=RetryPolicy(3), breaker=breaker)

    with pytest.raises(CircuitOpen):
        run(sim, driver())
    assert calls == []  # never attempted


def test_breaker_records_outcomes(sim):
    breaker = CircuitBreaker(sim, failure_threshold=10)

    def driver():
        result = yield from resilient_call(
            sim, flaky_then_ok(sim, 2), policy=RetryPolicy(5, base_delay_s=0),
            breaker=breaker)
        return result

    assert run(sim, driver()) == "ok@3"
    assert breaker.stats["failures"] == 2
    assert breaker.stats["successes"] == 1


def test_recover_hook_runs_before_each_retry(sim):
    recovered = []

    def recover(exc, next_attempt):
        recovered.append((sim.now, str(exc), next_attempt))
        yield sim.timeout(5.0)

    def driver():
        result = yield from resilient_call(
            sim, flaky_then_ok(sim, 1),
            policy=RetryPolicy(3, base_delay_s=0.0), recover=recover)
        return result

    assert run(sim, driver()) == "ok@2"
    assert recovered == [(0.0, "attempt 1", 2)]
    assert sim.now == pytest.approx(5.0)


def test_registry_counters_and_on_retry(sim):
    reg = MetricsRegistry()
    retries = []

    def driver():
        result = yield from resilient_call(
            sim, flaky_then_ok(sim, 2),
            policy=RetryPolicy(5, base_delay_s=0.0), name="unit",
            metrics=reg, on_retry=lambda n, exc: retries.append(n))
        return result

    run(sim, driver())
    snap = reg.snapshot()["counters"]
    assert snap["resilience.call.calls{call=unit}"] == 1
    assert snap["resilience.call.attempts{call=unit}"] == 3
    assert snap["resilience.call.retries{call=unit}"] == 2
    assert snap["resilience.call.successes{call=unit}"] == 1
    assert snap["resilience.call.failures{call=unit}"] == 0
    assert retries == [2, 3]


def test_attempts_run_inside_tracer_spans(sim):
    tracer = Tracer(sim, run_id="t")

    def driver():
        yield from resilient_call(
            sim, flaky_then_ok(sim, 1),
            policy=RetryPolicy(3, base_delay_s=0.0), name="traced",
            tracer=tracer)

    run(sim, driver())
    starts = [e for e in tracer.events
              if e.kind == "span-start" and e.name == "resilience.attempt"]
    assert [e.attrs["attempt"] for e in starts] == [1, 2]
    assert all(e.attrs["call"] == "traced" for e in starts)
