"""The id half of the determinism contract, end to end.

Two same-seed worlds built in ONE process must mint identical identifiers
for every id-bearing object — measurements, HPC jobs, proxies, records,
samples, tokens, and messages — no matter how the worlds' lifetimes
interleave.  Before the per-world :class:`repro.sim.ids.IdSequencer`,
these ids came from module-global ``itertools.count`` factories and the
interleaved case diverged (world A and world B split one shared sequence
between them).
"""

from repro.comm.message import Message, Performative
from repro.data.proxystore import ProxyStore
from repro.data.record import DataRecord
from repro.instruments.hpc import HpcCluster
from repro.instruments.spectrometer import PLSpectrometer
from repro.labsci.sample import Sample
from repro.security.identity import FederatedIdentityProvider, Identity
from repro.sim import ids as ids_mod
from repro.sim.kernel import EmptySchedule, Simulator
from repro.sim.rng import RngRegistry

STREAMS = ("measurements", "jobs", "proxies", "records", "samples",
           "tokens", "messages")


def build_world(seed):
    """One lab-in-a-box world exercising every id-bearing object."""
    sim = Simulator()
    rngs = RngRegistry(seed)
    spectrometer = PLSpectrometer(sim, "pl-1", "site-a", rngs)
    hpc = HpcCluster(sim, "hpc-1", "site-a", rngs)
    store = ProxyStore(sim, None, "site-a", {})
    idp = FederatedIdentityProvider(sim, "site-a")
    idp.enroll(Identity.make("agent-1", "site-a", role="agent"))
    minted = {stream: [] for stream in STREAMS}

    def campaign(sim):
        for i in range(3):
            # Bare dataclasses draw from the *ambient* (= this world's)
            # sequencer because construction happens inside a step.
            sample = Sample(params={"i": i},
                            _true_properties={"plqy": 0.55,
                                              "emission_nm": 602.0})
            minted["samples"].append(sample.sample_id)
            measurement = yield from spectrometer.measure(sample)
            minted["measurements"].append(measurement.measurement_id)
            job = yield from hpc.run_job(walltime_s=30.0)
            minted["jobs"].append(job.job_id)
            minted["proxies"].append(store.put({"spectrum": i}).key)
            record = DataRecord(source="pl-1",
                                values=dict(measurement.values))
            minted["records"].append(record.record_id)
            minted["tokens"].append(idp.issue("agent-1").token_id)
            message = Message(performative=Performative.INFORM,
                              sender="pl-1", recipient="planner",
                              payload={"i": i})
            minted["messages"].append(message.msg_id)
            yield sim.timeout(1.0)

    sim.process(campaign(sim))
    return sim, minted


def drain(sim):
    sim.run()


def test_one_world_mints_sequential_ids():
    sim, minted = build_world(seed=7)
    drain(sim)
    assert minted["samples"] == ["sample-1", "sample-2", "sample-3"]
    assert minted["measurements"] == ["meas-1", "meas-2", "meas-3"]
    assert minted["jobs"] == ["job-1", "job-2", "job-3"]
    assert minted["proxies"] == ["proxy-1", "proxy-2", "proxy-3"]
    assert minted["records"] == ["rec-1", "rec-2", "rec-3"]
    assert minted["tokens"] == ["tok-1", "tok-2", "tok-3"]
    assert minted["messages"] == [1, 2, 3]


def test_same_seed_worlds_sequential():
    sim_a, minted_a = build_world(seed=42)
    drain(sim_a)
    sim_b, minted_b = build_world(seed=42)
    drain(sim_b)
    assert minted_a == minted_b


def test_same_seed_worlds_interleaved():
    """The regression the counter migration exists for: alternate single
    steps between two live same-seed worlds."""
    sim_a, minted_a = build_world(seed=42)
    sim_b, minted_b = build_world(seed=42)
    live = [sim_a, sim_b]
    while live:
        for sim in list(live):
            try:
                sim.step()
            except EmptySchedule:
                live.remove(sim)
    for stream in STREAMS:
        assert minted_a[stream] == minted_b[stream], stream
    assert sim_a.ids.snapshot() == sim_b.ids.snapshot()


def test_interleaved_matches_sequential():
    sim_a, minted_seq = build_world(seed=9)
    drain(sim_a)
    sim_b, minted_il = build_world(seed=9)
    sim_c, _ = build_world(seed=9)
    live = [sim_b, sim_c]
    while live:
        for sim in list(live):
            try:
                sim.step()
            except EmptySchedule:
                live.remove(sim)
    assert minted_il == minted_seq


def test_simulation_never_touches_the_process_fallback():
    before = ids_mod._NO_WORLD_FALLBACK.snapshot()
    sim, minted = build_world(seed=3)
    drain(sim)
    assert all(len(minted[stream]) == 3 for stream in STREAMS)
    assert ids_mod._NO_WORLD_FALLBACK.snapshot() == before
