"""Tests for the bus -> mesh telemetry pipeline (dimensions 2 + 4)."""

import numpy as np
import pytest

from repro.comm import Message, MessageBus, Performative
from repro.data import (AnomalyDetector, DiscoveryIndex, FederatedDataMesh,
                        QualityAssessor, StreamProcessor)
from repro.data.ingest import (MeshIngestor, TelemetryPublisher,
                               wire_site_telemetry)
from repro.labsci import Sample


@pytest.fixture
def pipeline(sim, testbed_network, rngs, qd_landscape):
    bus = MessageBus(sim, testbed_network)
    bus.add_broker("hub", site="site-0")
    mesh = FederatedDataMesh(sim, testbed_network)
    node = mesh.make_node("site-1", institution="inst-1")
    stream = StreamProcessor(
        sim, QualityAssessor(detector=AnomalyDetector(min_history=8)),
        sink=node, keep_every=1, per_record_s=0.001)
    stream.start()
    publisher, ingestor = wire_site_telemetry(
        sim, bus, "hub", "site-1", "inst-1", stream)
    ingestor.start()
    from repro.instruments import PLSpectrometer
    spec = PLSpectrometer(sim, "spec.site-1", "site-1", rngs,
                          scan_time_s=5.0)
    return bus, node, stream, publisher, ingestor, spec


def measure_and_publish(sim, spec, publisher, qd_landscape, n, rng):
    def proc():
        for _ in range(n):
            sample = Sample.synthesize(qd_landscape.space.sample(rng),
                                       qd_landscape, site="site-1")
            m = yield from spec.measure(sample)
            yield from publisher.publish(m)
    p = sim.process(proc())
    return p


def test_measurements_flow_to_mesh(sim, pipeline, qd_landscape):
    bus, node, stream, publisher, ingestor, spec = pipeline
    rng = np.random.default_rng(0)
    p = measure_and_publish(sim, spec, publisher, qd_landscape, 10, rng)
    sim.run(until=p)
    sim.run(until=sim.now + 10.0)  # drain consumer + index
    assert publisher.stats["published"] == 10
    assert ingestor.stats["consumed"] == 10
    assert len(node) == 10
    record = node.local_records()[0]
    assert record.institution == "inst-1"
    assert "plqy" in record.values


def test_queue_acked_after_ingest(sim, pipeline, qd_landscape):
    bus, node, stream, publisher, ingestor, spec = pipeline
    rng = np.random.default_rng(1)
    p = measure_and_publish(sim, spec, publisher, qd_landscape, 5, rng)
    sim.run(until=p)
    sim.run(until=sim.now + 10.0)
    queue = bus.brokers["hub"].queues["telemetry.site-1"]
    assert queue.unacked_count == 0
    assert queue.stats["acked"] == 5


def test_malformed_telemetry_dead_letters(sim, pipeline):
    bus, node, stream, publisher, ingestor, spec = pipeline

    def rogue():
        msg = Message(Performative.INFORM, "rogue", "telemetry.site-1.junk",
                      payload={"not": "a measurement"})
        yield from bus.publish("hub", "site-2", "telemetry.site-1.junk", msg)

    sim.process(rogue())
    sim.run(until=20.0)
    queue = bus.brokers["hub"].queues["telemetry.site-1"]
    assert ingestor.stats["malformed"] == 1
    assert len(queue.dead_letters) == 1
    assert len(node) == 0


def test_broker_outage_backoff_and_recovery(sim, pipeline, qd_landscape):
    bus, node, stream, publisher, ingestor, spec = pipeline
    broker = bus.brokers["hub"]
    rng = np.random.default_rng(2)

    def script():
        # Publish two, kill the broker, fail a publish, revive, publish more.
        for _ in range(2):
            sample = Sample.synthesize(qd_landscape.space.sample(rng),
                                       qd_landscape, site="site-1")
            m = yield from spec.measure(sample)
            yield from publisher.publish(m)
        broker.kill()
        sample = Sample.synthesize(qd_landscape.space.sample(rng),
                                   qd_landscape, site="site-1")
        m = yield from spec.measure(sample)
        n = yield from publisher.publish(m)
        assert n == 0  # swallowed, counted as failed
        yield sim.timeout(30.0)
        broker.revive()
        sample = Sample.synthesize(qd_landscape.space.sample(rng),
                                   qd_landscape, site="site-1")
        m = yield from spec.measure(sample)
        yield from publisher.publish(m)

    p = sim.process(script())
    sim.run(until=p)
    sim.run(until=sim.now + 30.0)
    assert publisher.stats["failed"] == 1
    # At-least-once across the outage: everything that ever reached the
    # broker is eventually consumed (the outage-time publish never did).
    assert ingestor.stats["consumed"] == 3
    assert len(node) == 3
    queue = bus.brokers["hub"].queues["telemetry.site-1"]
    assert queue.unacked_count == 0  # nothing stuck in unacked limbo


def test_ingestor_double_start_rejected(sim, pipeline):
    *_, ingestor, _spec = pipeline
    with pytest.raises(RuntimeError):
        ingestor.start()


def test_topic_binding_isolates_sites(sim, pipeline, qd_landscape, rngs):
    """site-2's telemetry does not leak into site-1's queue."""
    bus, node, stream, publisher, ingestor, spec = pipeline
    from repro.instruments import PLSpectrometer
    spec2 = PLSpectrometer(sim, "spec.site-2", "site-2", rngs,
                           scan_time_s=5.0)
    pub2 = TelemetryPublisher(sim, bus, "hub", "site-2")
    rng = np.random.default_rng(3)

    def proc():
        sample = Sample.synthesize(qd_landscape.space.sample(rng),
                                   qd_landscape, site="site-2")
        m = yield from spec2.measure(sample)
        routed = yield from pub2.publish(m)
        assert routed == 0  # nothing bound to telemetry.site-2.#

    p = sim.process(proc())
    sim.run(until=p)
    sim.run(until=sim.now + 5.0)
    assert len(node) == 0
