"""Cross-domain campaigns: the other three landscapes driven end-to-end.

The headline experiments run on quantum dots and perovskites; these tests
exercise the breadth the paper's vision requires — metallic-glass
screening, polymer film processing with a thermal post-step, and a
perovskite emission-targeting run — through the same public API.
"""

import numpy as np
import pytest

from repro.labsci import (MetallicGlassLandscape, PerovskiteLandscape,
                          PolymerFilmLandscape)
from repro.methods import BayesianOptimizer, LatinHypercube
from repro.sim import RngRegistry, Simulator


def test_metallic_glass_screening_finds_glass_formers():
    """BO-driven composition screening: find a glass-forming region."""
    land = MetallicGlassLandscape(seed=2)
    bo = BayesianOptimizer(land.space, np.random.default_rng(0), n_init=10,
                           n_candidates=256)
    found = []
    for _ in range(60):
        p = bo.ask()
        props = land.evaluate(p)
        bo.tell(p, props["gfa"])
        if props["is_glass"]:
            found.append(p)
    assert found, "screening should locate at least one glass former"
    best_v, best_p = bo.best
    assert best_v >= 0.5
    # The best composition is physical (inside the simplex).
    assert best_p["frac_zr"] + best_p["frac_cu"] <= 1.0


def test_metallic_glass_bo_beats_space_filling():
    land = MetallicGlassLandscape(seed=2)

    def run(opt, budget=60):
        for _ in range(budget):
            p = opt.ask()
            opt.tell(p, land.evaluate(p)["gfa"])
        return opt.best[0]

    bo = run(BayesianOptimizer(land.space, np.random.default_rng(1),
                               n_init=10))
    lhs = run(LatinHypercube(land.space, np.random.default_rng(1)))
    assert bo >= lhs * 0.9  # BO at least matches space filling here


def test_polymer_pipeline_with_anneal_step(sim, rngs):
    """Coat -> anneal -> image: the furnace transform changes the film."""
    from repro.instruments import ElectronMicroscope, TubeFurnace
    from repro.labsci import Sample
    land = PolymerFilmLandscape(seed=4)
    furnace = TubeFurnace(sim, "furnace", "s", rngs,
                          optimal_anneal_C=180.0, ramp_rate_C_per_s=5.0)
    sem = ElectronMicroscope(sim, "sem", "s", rngs, image_time_s=60.0,
                             image_px=32)
    params = {"solvent_blend": "chlorobenzene", "coating_speed": 5.0,
              "anneal_temp": 150.0, "dopant_fraction": 0.15}
    sample = Sample.synthesize(params, land, site="s")
    before = sample.true_property("conductivity")
    out = {}

    def pipeline():
        factor = yield from furnace.anneal(sample, temperature=180.0,
                                           hold_time_s=600.0)
        m = yield from sem.measure(sample)
        out["factor"] = factor
        out["m"] = m

    sim.process(pipeline())
    sim.run()
    assert out["factor"] > 1.0
    assert sample.true_property("conductivity") == pytest.approx(
        before * out["factor"])
    assert out["m"].values["uniformity"] >= 0.0
    # Provenance threads through both instruments.
    ops = [op for _, _, op in sample.provenance]
    assert "anneal" in ops and "measure" in ops


def test_polymer_campaign_improves_conductivity():
    land = PolymerFilmLandscape(seed=4)
    bo = BayesianOptimizer(land.space, np.random.default_rng(2), n_init=10)
    for _ in range(50):
        p = bo.ask()
        bo.tell(p, land.objective_value(p))
    best_v, best_p = bo.best
    # A competent campaign lands well above the random-median film.
    rng = np.random.default_rng(3)
    median = float(np.median([land.objective_value(land.space.sample(rng))
                              for _ in range(300)]))
    assert best_v > 4 * max(median, 1.0)


def test_perovskite_emission_targeting():
    """Optimize 'quality' (PLQY x wavelength match) toward 520 nm."""
    land = PerovskiteLandscape(seed=5, target_nm=520.0)
    bo = BayesianOptimizer(land.space, np.random.default_rng(4), n_init=10)
    for _ in range(60):
        p = bo.ask()
        bo.tell(p, land.evaluate(p)["quality"])
    best_v, best_p = bo.best
    props = land.evaluate(best_p)
    assert best_v > 0.1
    # The found recipe actually emits near the target wavelength.
    assert abs(props["emission_nm"] - 520.0) < 60.0
