"""Tests for remote instrument microservices (M10)."""

import numpy as np
import pytest

from repro.instruments import (BatchSynthesisRobot, HardwareAbstractionLayer,
                               OperationRequest, PLSpectrometer,
                               make_vendor_protocol)
from repro.instruments.errors import VendorError
from repro.instruments.service import (InstrumentService,
                                       RemoteInstrumentClient)
from repro.labsci import Sample


@pytest.fixture
def service(sim, rngs, qd_landscape):
    hal = HardwareAbstractionLayer()
    robot = BatchSynthesisRobot(sim, "robot-1", "b", rngs, qd_landscape,
                                batch_time_s=120.0)
    spec = PLSpectrometer(sim, "spec-1", "b", rngs, scan_time_s=30.0)
    hal.register(make_vendor_protocol(robot, "kelvin-sci"))
    hal.register(make_vendor_protocol(spec, "helios"))
    return InstrumentService(sim, hal, site="b")


@pytest.fixture
def remote(sim, network, service):
    return RemoteInstrumentClient(sim, network, site="a", service=service)


def run(sim, gen):
    out = {}

    def proc():
        out["r"] = yield from gen
    sim.process(proc())
    sim.run()
    return out["r"]


def test_remote_synthesis_round_trip(sim, remote, qd_params):
    req = OperationRequest(operation="synthesize", params=dict(qd_params),
                           requester="remote-agent")
    sample = run(sim, remote.execute("robot-1", req))
    assert isinstance(sample, Sample)
    assert sample.params["temperature"] == pytest.approx(
        qd_params["temperature"])
    # Network legs + 120 s batch: the wall clock reflects both.
    assert sim.now > 120.0


def test_remote_measurement(sim, remote, qd_landscape, qd_params):
    sample = Sample.synthesize(qd_params, qd_landscape, site="b")
    req = OperationRequest(operation="measure", sample=sample)
    m = run(sim, remote.execute("spec-1", req))
    assert m.kind == "pl-spectrum"
    assert m.sample_id == sample.sample_id


def test_remote_inventory(sim, remote):
    inv = run(sim, remote.inventory())
    assert set(inv) == {"robot-1", "spec-1"}
    assert inv["robot-1"]["vendor"] == "kelvin-sci"


def test_remote_unknown_instrument_propagates_error(sim, remote, qd_params):
    from repro.comm import RpcError

    def proc():
        with pytest.raises(RpcError, match="no HAL adapter"):
            yield from remote.execute(
                "ghost", OperationRequest(operation="synthesize",
                                          params=dict(qd_params)))

    sim.process(proc())
    sim.run()


def test_remote_unsupported_operation(sim, remote):
    from repro.comm import RpcError

    def proc():
        with pytest.raises(RpcError, match="does not support"):
            yield from remote.execute(
                "robot-1", OperationRequest(operation="measure"))

    sim.process(proc())
    sim.run()


def test_service_announcement_shape(service):
    ann = service.announcement()
    assert ann.service_type == InstrumentService.SERVICE_TYPE
    assert ann.capabilities["instruments"] == ["robot-1", "spec-1"]


def test_remote_with_zero_trust_gateway(sim, network, service, qd_params):
    from repro.security import (FederatedIdentityProvider, Identity,
                                PolicyEngine, SecurityError, TrustFabric,
                                ZeroTrustGateway)
    from repro.security.abac import allow_all_within_federation
    fabric = TrustFabric()
    idp = FederatedIdentityProvider(sim, "Lab A")
    idp.enroll(Identity.make("agent@Lab A", "Lab A", role="agent"))
    fabric.add_provider(idp)
    idp_b = FederatedIdentityProvider(sim, "Lab B")
    fabric.add_provider(idp_b)
    fabric.federate()
    gateway = ZeroTrustGateway(
        sim, fabric, PolicyEngine(allow_all_within_federation()),
        site_institution={"a": "Lab A", "b": "Lab B"})
    token = idp.issue("agent@Lab A")
    remote = RemoteInstrumentClient(sim, network, site="a", service=service,
                                    gateway=gateway, token=token)
    req = OperationRequest(operation="synthesize", params=dict(qd_params))
    sample = run(sim, remote.execute("robot-1", req))
    assert isinstance(sample, Sample)
    assert gateway.stats["verified"] >= 1

    # And with a revoked credential, the call is refused at the edge.
    idp.revoke(token)

    def proc():
        with pytest.raises(SecurityError):
            yield from remote.execute("robot-1", req)

    sim.process(proc())
    sim.run()


def test_executor_agent_can_use_remote_instruments(sim, rngs, network,
                                                   service, qd_landscape,
                                                   qd_params):
    """The M2 payoff: the standard ExecutorAgent drives a remote HAL."""
    from repro.agents import AgentRuntime, ExecutorAgent
    from repro.agents.planner import ExperimentPlan

    class RemoteCharacterization:
        """Adapter giving measure() the local-instrument call shape."""

        def __init__(self, remote):
            self.remote = remote

        def measure(self, sample, requester=""):
            result = yield from self.remote.execute(
                "spec-1", OperationRequest(operation="measure",
                                           sample=sample,
                                           requester=requester))
            return result

    remote = RemoteInstrumentClient(sim, network, site="a", service=service)
    runtime = AgentRuntime(sim, network)
    executor = ExecutorAgent(sim, "exec", "a", runtime, remote, "robot-1",
                             RemoteCharacterization(remote),
                             objective_key="plqy")
    outcome = run(sim, executor.execute(ExperimentPlan(params=qd_params)))
    assert outcome.valid
    assert outcome.objective is not None
