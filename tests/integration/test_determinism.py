"""The DESIGN.md determinism contract: same seed, same campaign,
event-for-event."""

import numpy as np

from repro.core import CampaignSpec, FederationManager
from repro.labsci import QuantumDotLandscape


def _run(seed: int):
    fed = FederationManager(seed=seed, n_sites=3, objective_key="plqy")
    lab = fed.add_lab("site-0", lambda s: QuantumDotLandscape(seed=7),
                      planner_mode="llm-direct", hallucination_rate=0.3)
    kb = fed.make_knowledge_base(policy="corrected")
    orch = fed.make_orchestrator(lab, verified=True, knowledge=kb)
    spec = CampaignSpec(name="determinism", objective_key="plqy",
                        max_experiments=20)
    proc = fed.sim.process(orch.run_campaign(spec))
    result = fed.sim.run(until=proc)
    return result, fed.sim.now


def _fingerprint(result):
    return [
        (r.index, tuple(sorted((k, v) for k, v in r.params.items())),
         r.valid, r.objective, r.source, r.started, r.finished)
        for r in result.records
    ]


def test_same_seed_reproduces_campaign_exactly():
    r1, t1 = _run(seed=99)
    r2, t2 = _run(seed=99)
    assert t1 == t2
    assert r1.best_value == r2.best_value
    assert r1.counters == r2.counters
    assert _fingerprint(r1) == _fingerprint(r2)


def test_different_seed_diverges():
    r1, _ = _run(seed=99)
    r2, _ = _run(seed=100)
    assert _fingerprint(r1) != _fingerprint(r2)


def test_adding_unrelated_component_does_not_perturb_streams():
    """The RngRegistry name-keyed property, end to end: wiring an extra
    lab at another site must not change site-0's campaign."""
    def run(extra_lab: bool):
        fed = FederationManager(seed=7, n_sites=3, objective_key="plqy")
        lab = fed.add_lab("site-0", lambda s: QuantumDotLandscape(seed=7))
        if extra_lab:
            fed.add_lab("site-2", lambda s: QuantumDotLandscape(seed=7))
        orch = fed.make_orchestrator(lab, verified=True)
        spec = CampaignSpec(name="iso", objective_key="plqy",
                            max_experiments=12)
        proc = fed.sim.process(orch.run_campaign(spec))
        return fed.sim.run(until=proc)

    assert _fingerprint(run(False)) == _fingerprint(run(True))
