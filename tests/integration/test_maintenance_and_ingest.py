"""Tests: automated calibration maintenance (M4) + schema-negotiated
ingest + secured message bus."""

import numpy as np
import pytest

from repro.comm import Envelope, Message, MessageBus, Performative
from repro.data import DataRecord, FederatedDataMesh, FieldSpec, Schema
from repro.data.schema import SchemaError
from repro.instruments import (CalibrationModel, MaintenanceAgent,
                               PLSpectrometer)
from repro.labsci import QuantumDotLandscape, Sample


# -- maintenance agent -----------------------------------------------------------

@pytest.fixture
def drifty_spec(sim, rngs):
    cal = CalibrationModel(rngs.stream("cal"), drift_per_hour=0.08,
                           procedure_time_s=300.0)
    return PLSpectrometer(sim, "spec-1", "s", rngs, scan_time_s=600.0,
                          calibration=cal)


def test_maintenance_requires_calibration_model(sim, rngs):
    agent = MaintenanceAgent(sim)
    spec = PLSpectrometer(sim, "raw", "s", rngs)  # no calibration model
    with pytest.raises(ValueError):
        agent.watch(spec)


def test_maintenance_bounds_drift(sim, rngs, drifty_spec, qd_landscape,
                                  qd_params):
    agent = MaintenanceAgent(sim, check_interval_s=1800.0,
                             bias_tolerance=0.05)
    agent.watch(drifty_spec)
    agent.start()
    sample = Sample.synthesize(qd_params, qd_landscape)

    def grind():
        while True:
            yield from drifty_spec.measure(sample)

    sim.process(grind())
    sim.run(until=200 * 3600.0)
    assert agent.stats["calibrations"] >= 1
    # The fleet's drift stays bounded near the tolerance (it can exceed
    # briefly between sweeps, never run away).
    assert agent.worst_bias() < 0.2
    assert drifty_spec.calibration.calibrations == agent.stats["calibrations"]


def test_maintenance_without_agent_drift_runs_away(sim, rngs, qd_landscape,
                                                   qd_params):
    cal = CalibrationModel(rngs.stream("cal2"), drift_per_hour=0.08,
                           procedure_time_s=300.0, max_abs_bias=5.0)
    spec = PLSpectrometer(sim, "spec-2", "s", rngs, scan_time_s=600.0,
                          calibration=cal)
    sample = Sample.synthesize(qd_params, qd_landscape)

    def grind():
        while True:
            yield from spec.measure(sample)

    sim.process(grind())
    sim.run(until=200 * 3600.0)
    # 200 operating hours of unattended random walk: typically way past
    # any QA tolerance (this is the contrast for the test above).
    assert abs(cal.bias()) > 0.05


def test_maintenance_double_start(sim):
    agent = MaintenanceAgent(sim)
    agent.start()
    with pytest.raises(RuntimeError):
        agent.start()


# -- schema-negotiated ingest ----------------------------------------------------------

@pytest.fixture
def mesh_node(sim, testbed_network):
    mesh = FederatedDataMesh(sim, testbed_network)
    node = mesh.make_node("site-0", institution="inst-0")
    node.schemas.register(Schema("pl", 1, (
        FieldSpec("plqy", unit="fraction", lo=0.0, hi=1.0),
        FieldSpec("emission_nm", unit="nm",
                  aliases=("wavelength", "peak_nm")),
        FieldSpec("temperature", unit="C", required=False),
    )))
    return node


def test_normalize_and_ingest_foreign_dialect(mesh_node):
    # A kelvin-sci-style payload: percent PLQY, angstrom peak, kelvin temp.
    rec = DataRecord(source="foreign-spec",
                     values={"plqy": 45.0, "peak_nm": 5230.0,
                             "temperature_K": 373.15},
                     metadata={"units": {"plqy": "percent",
                                         "peak_nm": "A"}})
    mesh_node.normalize_and_ingest(rec, "pl")
    assert rec.schema_id == "pl@1"
    assert rec.values["plqy"] == pytest.approx(0.45)
    assert rec.values["emission_nm"] == pytest.approx(523.0)
    assert rec.values["temperature"] == pytest.approx(100.0)
    assert mesh_node.has(rec.record_id)
    assert rec.metadata["units"]["emission_nm"] == "nm"


def test_normalize_and_ingest_unmappable_fails(mesh_node):
    rec = DataRecord(source="junk", values={"intensity": 3.0})
    with pytest.raises(SchemaError, match="plqy"):
        mesh_node.normalize_and_ingest(rec, "pl")
    assert len(mesh_node) == 0


def test_normalize_and_ingest_unknown_schema(mesh_node):
    rec = DataRecord(source="x", values={"plqy": 0.5})
    with pytest.raises(SchemaError, match="no schema named"):
        mesh_node.normalize_and_ingest(rec, "ghost")


# -- secured message bus -------------------------------------------------------------------

def test_bus_publish_requires_valid_token(sim, testbed_network):
    from repro.security import (FederatedIdentityProvider, Identity,
                                PolicyEngine, SecurityError, TrustFabric,
                                ZeroTrustGateway)
    from repro.security.abac import allow_all_within_federation
    fabric = TrustFabric()
    idp = FederatedIdentityProvider(sim, "inst-0")
    idp.enroll(Identity.make("agent@inst-0", "inst-0", role="agent"))
    fabric.add_provider(idp)
    fabric.federate()
    gateway = ZeroTrustGateway(
        sim, fabric, PolicyEngine(allow_all_within_federation()),
        site_institution={"site-0": "inst-0"})
    bus = MessageBus(sim, testbed_network, gateway=gateway)
    broker = bus.add_broker("hub", site="site-0")
    broker.declare_queue("q")
    broker.bind("q", "t.#")
    token = idp.issue("agent@inst-0")
    outcomes = {}

    def proc():
        msg = Message(Performative.INFORM, "agent@inst-0", "t.x")
        n = yield from bus.publish("hub", "site-1", "t.x", msg, token=token)
        outcomes["with_token"] = n
        with pytest.raises(SecurityError):
            yield from bus.publish("hub", "site-1", "t.x",
                                   Message(Performative.INFORM, "spy", "t.x"))

    sim.process(proc())
    sim.run()
    assert outcomes["with_token"] == 1
    assert len(broker.queues["q"]) == 1  # only the authenticated message
    assert gateway.stats["rejected_authn"] == 1
