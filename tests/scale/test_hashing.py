"""Tests for canonical decision hashing."""

import dataclasses

import numpy as np
import pytest

from repro.scale import canonical_bytes, combine_hashes, decision_hash


def test_hash_is_deterministic():
    value = {"seed": 3, "best": 0.71, "decisions": [1, 2, 3]}
    assert decision_hash(value) == decision_hash(value)
    assert decision_hash(dict(value)) == decision_hash(value)


def test_dict_insertion_order_does_not_leak():
    a = {"x": 1, "y": 2, "z": 3}
    b = {"z": 3, "y": 2, "x": 1}
    assert decision_hash(a) == decision_hash(b)


def test_set_iteration_order_does_not_leak():
    assert decision_hash({"a", "b", "c"}) == decision_hash({"c", "b", "a"})


def test_type_tags_distinguish_lookalikes():
    # Same surface repr, different type/structure: all distinct digests.
    values = [1, 1.0, "1", True, [1], (1,), {1}, {"1": None}, b"1"]
    digests = {decision_hash(v) for v in values}
    assert len(digests) == len(values)


def test_length_framing_prevents_concat_collisions():
    assert decision_hash(["ab"]) != decision_hash(["a", "b"])
    assert decision_hash([["a"], "b"]) != decision_hash([["a", "b"]])


def test_ndarray_content_dtype_and_shape_all_matter():
    base = np.arange(6, dtype=np.float64)
    assert decision_hash(base) == decision_hash(base.copy())
    assert decision_hash(base) != decision_hash(base.astype(np.float32))
    assert decision_hash(base) != decision_hash(base.reshape(2, 3))
    bumped = base.copy()
    bumped[3] += 1e-12
    assert decision_hash(base) != decision_hash(bumped)


def test_non_contiguous_array_equals_contiguous_copy():
    arr = np.arange(20, dtype=np.float64)[::2]
    assert decision_hash(arr) == decision_hash(np.ascontiguousarray(arr))


def test_numpy_scalars_hash_like_python_scalars():
    assert decision_hash(np.float64(0.5)) == decision_hash(0.5)
    assert decision_hash(np.int64(7)) == decision_hash(7)


def test_dataclasses_encode_by_name_and_fields():
    @dataclasses.dataclass
    class Point:
        x: float
        y: float

    assert decision_hash(Point(1.0, 2.0)) == decision_hash(Point(1.0, 2.0))
    assert decision_hash(Point(1.0, 2.0)) != decision_hash(Point(2.0, 1.0))
    assert decision_hash(Point(1.0, 2.0)) != decision_hash(
        {"x": 1.0, "y": 2.0})


def test_unsupported_types_raise_not_fallback_to_repr():
    # repr() of these embeds a memory address; falling back would make
    # the digest a function of the allocator.
    class Opaque:
        pass

    with pytest.raises(TypeError, match="plain data"):
        decision_hash(Opaque())
    with pytest.raises(TypeError):
        decision_hash({"fn": print})


def test_deep_nesting_raises_instead_of_recursing_forever():
    deep: list = []
    node = deep
    for _ in range(100):
        inner: list = []
        node.append(inner)
        node = inner
    with pytest.raises(ValueError, match="nested deeper"):
        canonical_bytes(deep)


def test_combine_hashes_is_order_sensitive():
    h1, h2 = decision_hash(1), decision_hash(2)
    assert combine_hashes([h1, h2]) != combine_hashes([h2, h1])
    assert combine_hashes([h1]) != combine_hashes([h1, h1])
