"""Tests for the deterministic parallel world runner."""

import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.scale import (DeterminismError, WorldBatch, WorldFailure,
                         WorldRunner, WorldSpec, combine_hashes,
                         decision_hash, resolve_workers)
from repro.scale.__main__ import main as scale_main


def square_world(seed, config):
    """Module-level (hence picklable) toy world."""
    return {"seed": seed, "value": seed * seed + config.get("offset", 0)}


def failing_world(seed, config):
    if seed == config.get("bad_seed", 1):
        raise RuntimeError("boom")
    return {"seed": seed}


def pid_world(seed, config):
    # Deliberately process-dependent: used to prove verify=True catches
    # nondeterminism (the parallel child's pid differs from the parent's).
    return {"seed": seed, "pid": os.getpid()}


# -- resolve_workers -----------------------------------------------------------

def test_resolve_workers_default_is_parallel_capped(monkeypatch):
    # Unset env -> real parallelism by default, capped at 8 workers.
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == min(8, os.cpu_count() or 1)


def test_resolve_workers_env_one_means_serial(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "1")
    assert resolve_workers(None) == 1


def test_resolve_workers_env_and_explicit(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert resolve_workers(None) == 3
    assert resolve_workers(7) == 7  # explicit beats env


def test_resolve_workers_auto_and_zero(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "auto")
    assert resolve_workers(None) == (os.cpu_count() or 1)
    assert resolve_workers(0) == (os.cpu_count() or 1)


def test_resolve_workers_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "many")
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        resolve_workers(None)
    with pytest.raises(ValueError):
        resolve_workers(-1)


# -- serial execution ----------------------------------------------------------

def test_run_returns_results_in_spec_order():
    runner = WorldRunner(1)
    specs = [WorldSpec(seed=s, entrypoint=square_world, config={})
             for s in (5, 2, 9)]
    batch = runner.run(specs)
    assert [r.seed for r in batch] == [5, 2, 9]
    assert batch.values == [square_world(s, {}) for s in (5, 2, 9)]
    assert batch.workers == 1


def test_result_hashes_are_decision_hashes():
    batch = WorldRunner(1).run([WorldSpec(seed=4, entrypoint=square_world)])
    (result,) = batch.results
    assert result.decision_hash == decision_hash(square_world(4, {}))
    assert batch.combined_hash == combine_hashes(batch.hashes)


def test_map_sugar():
    values = WorldRunner(1).map(square_world, [1, 2], {"offset": 10})
    assert values == [{"seed": 1, "value": 11}, {"seed": 2, "value": 14}]


def test_string_entrypoint_resolves():
    batch = WorldRunner(1).run([WorldSpec(
        seed=0, entrypoint="tests.scale.test_runner:square_world")])
    assert batch.values == [{"seed": 0, "value": 0}]


def test_bad_string_entrypoint_rejected():
    # Entrypoint resolution happens inside the world, so the shape error
    # surfaces as that world's failure (with the offending seed attached).
    with pytest.raises(WorldFailure, match="pkg.mod:fn"):
        WorldRunner(1).run([WorldSpec(seed=0, entrypoint="no-colon")])


def test_strict_failure_raises_with_seed():
    specs = [WorldSpec(seed=s, entrypoint=failing_world,
                       config={"bad_seed": 2}) for s in (1, 2, 3)]
    with pytest.raises(WorldFailure, match="seed=2.*boom"):
        WorldRunner(1).run(specs)


def test_non_strict_keeps_failures_as_data():
    specs = [WorldSpec(seed=s, entrypoint=failing_world,
                       config={"bad_seed": 2}) for s in (1, 2, 3)]
    batch = WorldRunner(1, strict=False).run(specs)
    assert [r.ok for r in batch] == [True, False, True]
    failed = batch.results[1]
    assert "boom" in failed.error and failed.decision_hash == ""
    with pytest.raises(WorldFailure):
        batch.raise_on_failure()


def test_runner_reports_metrics():
    metrics = MetricsRegistry()
    runner = WorldRunner(1, metrics=metrics)
    runner.run([WorldSpec(seed=s, entrypoint=square_world) for s in (1, 2)])
    assert metrics.counter("scale.worlds").value == 2
    assert metrics.counter("scale.batches").value == 1
    assert metrics.gauge("scale.workers").value == 1


def test_spec_label():
    assert WorldSpec(seed=3, entrypoint=square_world).label == "world-3"
    assert WorldSpec(seed=3, entrypoint=square_world,
                     name="bo-a").label == "bo-a"


# -- parallel execution --------------------------------------------------------

def test_parallel_matches_serial_hashes():
    specs = [WorldSpec(seed=s, entrypoint=square_world, config={"offset": 1})
             for s in range(6)]
    serial = WorldRunner(1).run(specs)
    parallel = WorldRunner(2).run(specs)
    assert parallel.workers == 2
    assert parallel.hashes == serial.hashes
    assert parallel.combined_hash == serial.combined_hash
    assert [r.seed for r in parallel] == [r.seed for r in serial]


def test_parallel_real_world_matches_serial():
    from repro.scale.worlds import bo_world
    config = {"budget": 4, "n_init": 2, "n_candidates": 16}
    specs = [WorldSpec(seed=s, entrypoint=bo_world, config=config)
             for s in (0, 1)]
    serial = WorldRunner(1).run(specs)
    parallel = WorldRunner(2, verify=True).run(specs)  # verify replays too
    assert parallel.hashes == serial.hashes


def test_verify_catches_process_dependent_world():
    specs = [WorldSpec(seed=s, entrypoint=pid_world) for s in (0, 1)]
    with pytest.raises(DeterminismError, match="diverged"):
        WorldRunner(2, verify=True).run(specs)


def test_parallel_failure_still_strict():
    specs = [WorldSpec(seed=s, entrypoint=failing_world,
                       config={"bad_seed": 1}) for s in (0, 1, 2)]
    with pytest.raises(WorldFailure, match="seed=1"):
        WorldRunner(2).run(specs)


def test_single_spec_never_spawns_a_pool():
    batch = WorldRunner(8).run([WorldSpec(seed=0, entrypoint=square_world)])
    assert batch.workers == 1  # pool skipped for one world


def test_empty_specs():
    batch = WorldRunner(4).run([])
    assert isinstance(batch, WorldBatch)
    assert len(batch) == 0
    assert batch.values == []


# -- warm persistent pool ------------------------------------------------------

def test_pool_persists_across_batches():
    metrics = MetricsRegistry()
    specs = [WorldSpec(seed=s, entrypoint=square_world) for s in range(4)]
    with WorldRunner(2, metrics=metrics) as runner:
        first = runner.run(specs)
        second = runner.run(specs)
    assert first.hashes == second.hashes
    # One fork, then reuse: the second batch must not pay startup again.
    assert metrics.counter("scale.pools_forked").value == 1
    assert metrics.counter("scale.pool_reuses").value >= 1


def test_warm_preforks_pool_and_counts_one_fork():
    metrics = MetricsRegistry()
    runner = WorldRunner(2, metrics=metrics).warm()
    try:
        assert metrics.counter("scale.pools_forked").value == 1
        runner.run([WorldSpec(seed=s, entrypoint=square_world)
                    for s in range(4)])
        assert metrics.counter("scale.pools_forked").value == 1
        assert metrics.counter("scale.pool_reuses").value >= 1
    finally:
        runner.close()
    assert runner._pool is None


def test_warm_is_noop_for_serial_runner():
    metrics = MetricsRegistry()
    runner = WorldRunner(1, metrics=metrics).warm()
    assert runner._pool is None
    assert metrics.counter("scale.pools_forked").value == 0
    runner.close()  # harmless with no pool


def test_chunked_dispatch_reports_chunksize():
    metrics = MetricsRegistry()
    specs = [WorldSpec(seed=s, entrypoint=square_world) for s in range(16)]
    with WorldRunner(2, metrics=metrics) as runner:
        batch = runner.run(specs)
    assert [r.seed for r in batch] == list(range(16))  # spec order kept
    assert metrics.gauge("scale.dispatch_chunksize").value == 2  # 16//(2*4)


# -- the CLI / parallel-equivalence shape --------------------------------------

def test_cli_manifest_identical_across_worker_counts(tmp_path, capsys):
    args = ["--world", "bo", "--seeds", "2,5", "--budget", "3"]
    p1, p2 = tmp_path / "w1.json", tmp_path / "w2.json"
    assert scale_main([*args, "--workers", "1", "--json", str(p1)]) == 0
    assert scale_main([*args, "--workers", "2", "--verify",
                       "--json", str(p2)]) == 0
    assert p1.read_text() == p2.read_text()
    out = capsys.readouterr().out
    assert "combined:" in out
