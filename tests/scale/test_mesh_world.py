"""Mesh world determinism + per-shard metrics merge across the runner."""

from repro.obs.metrics import MetricsRegistry
from repro.scale.hashing import decision_hash
from repro.scale.runner import WorldRunner, WorldSpec
from repro.scale.worlds import WORLD_KINDS, mesh_world

SMALL = {"n_facilities": 4, "n_shards": 2, "records_per_facility": 2}


def test_mesh_world_registered():
    assert WORLD_KINDS["mesh"] is mesh_world


def test_same_seed_same_hash():
    assert (decision_hash(mesh_world(7, SMALL))
            == decision_hash(mesh_world(7, SMALL)))


def test_different_seed_different_hash():
    assert (decision_hash(mesh_world(7, SMALL))
            != decision_hash(mesh_world(8, SMALL)))


def test_parallel_matches_serial():
    specs = [WorldSpec(seed=s, entrypoint=mesh_world, config=SMALL)
             for s in (0, 1)]
    serial = WorldRunner(1).run(specs)
    parallel = WorldRunner(2).run(specs)
    assert serial.hashes == parallel.hashes


def test_spill_paths_do_not_change_hash(tmp_path):
    small = dict(SMALL, max_trace_events=4)
    plain = mesh_world(3, small)
    spilled = mesh_world(3, dict(
        small,
        trace_spill=str(tmp_path / "trace.jsonl"),
        provenance_out=str(tmp_path / "prov.json")))
    assert decision_hash(plain) == decision_hash(spilled)
    assert (tmp_path / "trace.jsonl").is_file()
    assert (tmp_path / "prov.json").is_file()


def test_output_shape():
    out = mesh_world(0, SMALL)
    assert out["records"] == 8
    assert out["provenance"]["pending"] == 0  # merge stitched everything
    assert 0.0 < out["provenance"]["completeness"] <= 1.0
    assert sum(out["shard_sizes"]) == out["records"]
    assert out["trace"]["retained"] <= out["trace"]["events"]
    assert out["rollup"]["total"] == 8.0
    assert len(out["decisions"]) == SMALL["n_facilities"]


def test_trace_ring_is_bounded():
    out = mesh_world(0, dict(SMALL, max_trace_events=5))
    assert out["trace"]["retained"] == 5
    assert out["trace"]["events"] > 5


# -- merged per-shard metrics --------------------------------------------------

def metrics_world(seed, config):
    """Picklable toy world that reports a per-shard metrics dump."""
    registry = MetricsRegistry()
    registry.counter("world.widgets", seed=str(seed)).inc(seed + 1)
    registry.counter("world.total").inc(10.0)
    registry.histogram("world.latency").observe(0.1 * (seed + 1))
    return {"seed": seed, "metrics_state": registry.state()}


def test_merged_metrics_aggregates_across_workers():
    specs = [WorldSpec(seed=s, entrypoint=metrics_world) for s in (0, 1, 2)]
    merged = WorldRunner(2).run(specs).merged_metrics()
    assert merged.counter("world.total").value == 30.0
    assert merged.counter("world.widgets", seed="2").value == 3.0
    assert merged.histogram("world.latency").summary()["count"] == 3.0


def test_merged_metrics_tolerates_worlds_without_dump():
    specs = [WorldSpec(seed=0, entrypoint=metrics_world),
             WorldSpec(seed=1, entrypoint=mesh_world, config=SMALL)]
    merged = WorldRunner(1).run(specs).merged_metrics()
    assert merged.counter("world.total").value == 10.0
