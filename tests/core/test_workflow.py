"""Tests for the workflow DAG executor."""

import pytest

from repro.core import WorkflowDAG
from repro.core.workflow import WorkflowError


def make_step(sim, duration, value=None, fail=False):
    def factory(results):
        def gen():
            yield sim.timeout(duration)
            if fail:
                raise RuntimeError("step exploded")
            return value
        return gen()
    return factory


def test_linear_workflow_runs_in_order(sim):
    wf = WorkflowDAG(sim, "linear")
    wf.add("a", make_step(sim, 10.0, "A"))
    wf.add("b", make_step(sim, 5.0, "B"), deps=("a",))
    wf.add("c", make_step(sim, 1.0, "C"), deps=("b",))
    out = {}

    def proc():
        out["r"] = yield from wf.run()

    sim.process(proc())
    sim.run()
    assert out["r"] == {"a": "A", "b": "B", "c": "C"}
    assert sim.now == pytest.approx(16.0)
    assert wf.critical_path() == ["a", "b", "c"]


def test_independent_steps_run_in_parallel(sim):
    wf = WorkflowDAG(sim)
    wf.add("a", make_step(sim, 10.0))
    wf.add("b", make_step(sim, 10.0))
    wf.add("join", make_step(sim, 1.0), deps=("a", "b"))

    def proc():
        yield from wf.run()

    sim.process(proc())
    sim.run()
    assert sim.now == pytest.approx(11.0)  # not 21: a and b overlapped


def test_step_receives_upstream_results(sim):
    wf = WorkflowDAG(sim)
    wf.add("synth", make_step(sim, 1.0, {"sample": 42}))

    def analyze_factory(results):
        def gen():
            yield sim.timeout(1.0)
            return results["synth"]["sample"] * 2
        return gen()

    wf.add("analyze", analyze_factory, deps=("synth",))
    out = {}

    def proc():
        out["r"] = yield from wf.run()

    sim.process(proc())
    sim.run()
    assert out["r"]["analyze"] == 84


def test_required_failure_aborts(sim):
    wf = WorkflowDAG(sim)
    wf.add("bad", make_step(sim, 1.0, fail=True))
    wf.add("after", make_step(sim, 1.0), deps=("bad",))

    def proc():
        with pytest.raises(WorkflowError, match="bad"):
            yield from wf.run()

    sim.process(proc())
    sim.run()
    assert "bad" in wf.failures


def test_optional_failure_skips_downstream(sim):
    wf = WorkflowDAG(sim)
    wf.add("main", make_step(sim, 1.0, "ok"))
    wf.add("extra", make_step(sim, 1.0, fail=True), optional=True)
    wf.add("uses-extra", make_step(sim, 1.0), deps=("extra",))
    out = {}

    def proc():
        out["r"] = yield from wf.run()

    sim.process(proc())
    sim.run()
    assert out["r"] == {"main": "ok"}
    assert wf.failures["uses-extra"] == "upstream failure"


def test_retries_recover_flaky_step(sim):
    attempts = []

    def flaky_factory(results):
        def gen():
            yield sim.timeout(1.0)
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("flake")
            return "finally"
        return gen()

    wf = WorkflowDAG(sim)
    wf.add("flaky", flaky_factory, retries=3)
    out = {}

    def proc():
        out["r"] = yield from wf.run()

    sim.process(proc())
    sim.run()
    assert out["r"]["flaky"] == "finally"
    assert len(attempts) == 3


def test_duplicate_and_unknown_dep_rejected(sim):
    wf = WorkflowDAG(sim)
    wf.add("a", make_step(sim, 1.0))
    with pytest.raises(WorkflowError, match="duplicate"):
        wf.add("a", make_step(sim, 1.0))
    with pytest.raises(WorkflowError, match="unknown"):
        wf.add("b", make_step(sim, 1.0), deps=("ghost",))


def test_diamond_dependency(sim):
    wf = WorkflowDAG(sim)
    wf.add("src", make_step(sim, 1.0, 1))
    wf.add("left", make_step(sim, 5.0, 2), deps=("src",))
    wf.add("right", make_step(sim, 3.0, 3), deps=("src",))
    wf.add("sink", make_step(sim, 1.0, 4), deps=("left", "right"))

    def proc():
        yield from wf.run()

    sim.process(proc())
    sim.run()
    assert sim.now == pytest.approx(7.0)  # 1 + max(5,3) + 1
    assert wf.critical_path() == ["src", "left", "sink"]
