"""CampaignReport: the unified result type and its deprecated wrappers."""

import warnings

import pytest

from repro.core.campaign import (CampaignResult, CampaignSpec,
                                 ExperimentRecord)
from repro.core.metrics import CampaignMetrics
from repro.core.report import REPORT_SCHEMA, CampaignReport
from repro.scale.hashing import decision_hash


def _record(i, objective, valid=True, started=None, finished=None):
    return ExperimentRecord(
        index=i, params={"x": float(i)}, valid=valid, objective=objective,
        source="test", started=started if started is not None else 100.0 * i,
        finished=finished if finished is not None else 100.0 * i + 50.0)


def _result(target=None):
    spec = CampaignSpec(name="camp", objective_key="plqy", target=target,
                        max_experiments=10)
    records = [
        _record(0, 0.2),
        _record(1, None, valid=False),
        _record(2, 0.55),
        _record(3, 0.8),
    ]
    return CampaignResult(
        spec=spec, records=records, best_value=0.8,
        best_params={"x": 3.0}, started=0.0, finished=350.0,
        stop_reason="budget-exhausted", counters={"planned": 4})


# -- construction --------------------------------------------------------------

def test_from_result_derives_everything():
    rep = CampaignReport.from_result(_result(target=0.5))
    assert rep.campaign == "camp"
    assert rep.n_experiments == 4
    assert rep.n_valid == 3
    assert rep.correctness == pytest.approx(0.75)
    assert rep.best_value == pytest.approx(0.8)
    assert rep.best_params == {"x": 3.0}
    assert rep.stop_reason == "budget-exhausted"
    assert rep.duration == pytest.approx(350.0)
    # Target 0.5 first met by record index 2 (3rd experiment).
    assert rep.time_to_target == pytest.approx(250.0)
    assert rep.experiments_to_target == 3
    assert len(rep.decisions) == 4
    # Invalid experiment encodes as nan objective, valid flag 0.
    import math
    assert math.isnan(rep.decisions[1][1])
    assert rep.decisions[1][4] == 0.0


def test_target_defaults_to_spec_target():
    rep = CampaignReport.from_result(_result(target=0.5))
    rep2 = CampaignReport.from_result(_result(target=None))
    assert rep.target == 0.5
    assert rep2.target is None
    assert rep2.time_to_target is None


def test_with_tenant_and_sim_seconds():
    rep = CampaignReport.from_result(_result(), tenant="lab-a",
                                     sim_seconds=1000.0)
    assert rep.tenant == "lab-a"
    assert rep.sim_seconds == 1000.0
    assert rep.with_tenant("lab-b").tenant == "lab-b"
    # sim_seconds defaults to the finish time.
    assert CampaignReport.from_result(_result()).sim_seconds == 350.0


def test_to_dict_is_stable_superset_of_legacy_summary_shape():
    d = CampaignReport.from_result(_result()).to_dict()
    assert d["schema"] == REPORT_SCHEMA
    legacy_keys = {"campaign", "objective_key", "n_experiments", "n_valid",
                   "best_value", "stop_reason", "sim_seconds", "decisions"}
    assert legacy_keys <= set(d)
    digest = decision_hash(d)
    assert isinstance(digest, str) and len(digest) == 64


def test_summary_matches_legacy_shape_and_rounding():
    rep = CampaignReport.from_result(_result())
    s = rep.summary()
    assert s == {"campaign": "camp", "experiments": 4, "valid": 3,
                 "correctness": 0.75, "best": 0.8, "duration_s": 350.0,
                 "stop_reason": "budget-exhausted", "planned": 4}


def test_metrics_view_supports_arm_comparisons():
    m = CampaignReport.from_result(_result(target=0.5)).metrics()
    assert isinstance(m, CampaignMetrics)
    assert m.time_to_target == pytest.approx(250.0)
    assert m.experiments_to_target == 3
    baseline = CampaignMetrics(time_to_target=750.0,
                               experiments_to_target=9, duration=900.0,
                               n_experiments=9, best_value=0.6)
    assert m.speedup_vs(baseline) == pytest.approx(3.0)
    assert m.reduction_vs(baseline) == pytest.approx(1.0 - 3.0 / 9.0)


# -- deprecated wrappers -------------------------------------------------------

def test_result_summary_warns_and_matches_report():
    result = _result()
    with pytest.warns(DeprecationWarning, match="CampaignResult.summary"):
        legacy = result.summary()
    assert legacy == result.report().summary()


def test_metrics_from_result_warns_and_matches_report():
    result = _result(target=0.5)
    with pytest.warns(DeprecationWarning, match="from_result"):
        legacy = CampaignMetrics.from_result(result, target=0.5)
    assert legacy == result.report(target=0.5).metrics()


def test_module_level_metric_helpers_stay_silent():
    from repro.core.metrics import experiments_to_target, time_to_target
    result = _result(target=0.5)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert time_to_target(result, 0.5) == pytest.approx(250.0)
        assert experiments_to_target(result, 0.5) == 3


def test_report_method_stays_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        rep = _result().report()
    assert rep.n_experiments == 4
