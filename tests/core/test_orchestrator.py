"""Integration tests: campaign loop, manual baseline, fault tolerance,
federation builder, and the campaign/metrics accounting."""

import pytest

from repro.core import (CampaignResult, CampaignSpec, ExperimentRecord,
                        FederationManager, experiments_to_target, speedup,
                        time_to_target)
from repro.core.metrics import reduction_fraction
from repro.labsci import QuantumDotLandscape


def qd_factory(seed=3):
    return lambda site: QuantumDotLandscape(seed=seed)


def run_campaign(fed, orchestrator, spec):
    proc = fed.sim.process(orchestrator.run_campaign(spec))
    return fed.sim.run(until=proc)


# -- campaign spec/result ----------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError):
        CampaignSpec(name="x", objective_key="plqy", max_experiments=0)


def test_result_correctness_and_trajectory():
    spec = CampaignSpec(name="x", objective_key="plqy", max_experiments=5)
    result = CampaignResult(spec=spec)
    for i, (valid, obj) in enumerate([(True, 0.2), (False, None),
                                      (True, 0.5), (True, 0.3)]):
        result.records.append(ExperimentRecord(
            index=i, params={}, valid=valid, objective=obj, source="t",
            started=0.0, finished=1.0))
    assert result.correctness == 0.75
    assert result.best_trajectory() == [0.2, 0.2, 0.5, 0.5]
    assert result.n_valid == 3


def test_empty_result_correctness_is_one():
    spec = CampaignSpec(name="x", objective_key="plqy")
    assert CampaignResult(spec=spec).correctness == 1.0


# -- metrics ----------------------------------------------------------------------

def make_result(objectives, dt=10.0):
    spec = CampaignSpec(name="m", objective_key="o",
                        max_experiments=len(objectives))
    result = CampaignResult(spec=spec, started=0.0)
    t = 0.0
    for i, obj in enumerate(objectives):
        t += dt
        result.records.append(ExperimentRecord(
            index=i, params={}, valid=obj is not None, objective=obj,
            source="t", started=t - dt, finished=t))
    result.finished = t
    return result


def test_time_and_experiments_to_target():
    r = make_result([0.1, 0.3, 0.6, 0.9])
    assert time_to_target(r, 0.5) == pytest.approx(30.0)
    assert experiments_to_target(r, 0.5) == 3
    assert time_to_target(r, 0.95) is None
    assert experiments_to_target(r, 0.95) is None


def test_invalid_records_do_not_count_toward_target():
    r = make_result([0.1, None, 0.6])
    assert experiments_to_target(r, 0.5) == 3


def test_speedup_and_reduction():
    assert speedup(300.0, 100.0) == pytest.approx(3.0)
    assert speedup(None, 100.0) is None
    assert speedup(100.0, None) is None
    assert reduction_fraction(100.0, 60.0) == pytest.approx(0.4)
    assert reduction_fraction(None, 60.0) is None


def test_campaign_metrics_from_result():
    r = make_result([0.1, 0.3, 0.6, 0.9])
    m = r.report(target=0.5).metrics()
    assert m.time_to_target == pytest.approx(30.0)
    assert m.experiments_to_target == 3
    assert m.duration == r.duration
    assert m.n_experiments == 4
    assert m.best_value == r.best_value
    assert m.target == 0.5
    dnf = r.report(target=0.95).metrics()
    assert dnf.time_to_target is None and dnf.experiments_to_target is None


def test_campaign_metrics_target_defaults_to_spec():
    r = make_result([0.1, 0.9])
    r.spec = CampaignSpec(name="m", objective_key="o", target=0.5,
                          max_experiments=2)
    m = r.report().metrics()
    assert m.target == 0.5 and m.experiments_to_target == 2


def test_campaign_metrics_comparisons():
    slow = make_result([0.1, 0.2, 0.3, 0.6]).report(target=0.5).metrics()
    fast = make_result([0.6]).report(target=0.5).metrics()
    assert fast.speedup_vs(slow) == pytest.approx(4.0)
    assert fast.reduction_vs(slow) == pytest.approx(0.75)
    # Raw-number baselines and DNF propagation.
    assert fast.speedup_vs(20.0) == pytest.approx(2.0)
    dnf = make_result([0.1]).report(target=0.5).metrics()
    assert dnf.speedup_vs(slow) is None
    assert fast.speedup_vs(dnf) is None
    assert fast.reduction_vs(None) is None


# -- the hierarchical loop ---------------------------------------------------------------

def test_campaign_reaches_budget_and_accounts(qd_landscape):
    fed = FederationManager(seed=5, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory())
    orch = fed.make_orchestrator(lab, verified=True)
    spec = CampaignSpec(name="t", objective_key="plqy", max_experiments=15)
    result = run_campaign(fed, orch, spec)
    assert result.n_experiments == 15
    assert result.stop_reason == "budget-exhausted"
    assert result.correctness == 1.0
    assert result.best_value is not None
    assert result.counters["verification"]["plans"] >= 15
    assert result.duration > 0
    # The emitted campaign counters are part of the observability
    # contract (rule C002): every executed experiment lands in
    # campaign.experiments, and nothing was skipped on the happy path.
    assert fed.metrics.counter("campaign.experiments",
                               site="site-0").value == 15
    assert fed.metrics.counter("campaign.skipped_plans",
                               site="site-0").value == 0


def test_campaign_stops_at_target():
    fed = FederationManager(seed=5, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory())
    orch = fed.make_orchestrator(lab, verified=False)
    # Trivially low target: first valid experiment should end it.
    spec = CampaignSpec(name="t", objective_key="plqy",
                        max_experiments=50, target=0.001)
    lab.evaluator.target = 0.001
    result = run_campaign(fed, orch, spec)
    assert result.stop_reason == "target-reached"
    assert result.n_experiments < 50


def test_campaign_converges_with_patience():
    fed = FederationManager(seed=5, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory())
    lab.evaluator.patience = 3
    lab.evaluator.min_improvement = 2.0  # unattainable improvement
    orch = fed.make_orchestrator(lab, verified=False)
    spec = CampaignSpec(name="t", objective_key="plqy", max_experiments=50,
                        patience=3)
    result = run_campaign(fed, orch, spec)
    assert result.stop_reason == "converged"
    assert result.n_experiments <= 10


def test_unverified_llm_direct_executes_garbage():
    fed = FederationManager(seed=11, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory(), planner_mode="llm-direct",
                      hallucination_rate=0.5)
    orch = fed.make_orchestrator(lab, verified=False)
    spec = CampaignSpec(name="t", objective_key="plqy", max_experiments=30)
    result = run_campaign(fed, orch, spec)
    assert result.correctness < 1.0  # hallucinations executed


def test_verified_llm_direct_is_correct():
    fed = FederationManager(seed=11, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory(), planner_mode="llm-direct",
                      hallucination_rate=0.5)
    orch = fed.make_orchestrator(lab, verified=True)
    spec = CampaignSpec(name="t", objective_key="plqy", max_experiments=30)
    result = run_campaign(fed, orch, spec)
    assert result.correctness >= 0.95  # M8's target
    assert result.counters["verification"]["rejected"] > 0


def test_campaign_with_mesh_builds_provenance():
    fed = FederationManager(seed=5, n_sites=2, with_mesh=True)
    lab = fed.add_lab("site-0", qd_factory())
    orch = fed.make_orchestrator(lab, verified=False)
    spec = CampaignSpec(name="t", objective_key="plqy", max_experiments=8)
    result = run_campaign(fed, orch, spec)
    node = lab.mesh_node
    assert len(node) == result.n_valid
    rec = node.local_records()[0]
    assert node.provenance.completeness(rec.record_id) >= 0.75
    assert lab.planner.name in node.provenance.responsible_agents(
        rec.record_id)
    # FAIR governor did its job on ingest.
    assert rec.license


# -- manual baseline -----------------------------------------------------------------------

def test_manual_orchestrator_much_slower():
    fed = FederationManager(seed=7, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory())
    manual = fed.make_manual(lab, batch_size=4,
                             decision_delay_s=4 * 3600.0)
    spec = CampaignSpec(name="m", objective_key="plqy", max_experiments=12)
    result = run_campaign(fed, manual, spec)
    assert result.n_experiments == 12
    # 3 decision cycles of ~4h dominate the ~20 min of actual lab work.
    assert result.duration > 3 * 3600.0
    assert result.counters["planner_mode"] == "manual"


def test_manual_respects_working_hours():
    fed = FederationManager(seed=7, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory())
    manual = fed.make_manual(lab, batch_size=2,
                             decision_delay_s=20 * 3600.0)
    # First decision lands ~20h in, i.e. outside the 9-17 window ->
    # pushed to next morning 9:00 or later.
    spec = CampaignSpec(name="m", objective_key="plqy", max_experiments=2)
    result = run_campaign(fed, manual, spec)
    first_start = result.records[0].started
    hour = (first_start % 86400.0) / 3600.0
    assert 9.0 <= hour <= 17.0


# -- fault tolerance ---------------------------------------------------------------------------

def test_fault_aborts_campaign_without_tolerance():
    fed = FederationManager(seed=3, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory(), mtbf_hours=0.02,
                      repair_time_s=600.0)
    orch = fed.make_orchestrator(lab, verified=False, fault_tolerant=False)
    spec = CampaignSpec(name="f", objective_key="plqy", max_experiments=200)
    result = run_campaign(fed, orch, spec)
    assert result.stop_reason.startswith("instrument-fault")
    assert result.n_experiments < 200


def test_fault_tolerant_campaign_survives_faults():
    fed = FederationManager(seed=3, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory(), mtbf_hours=0.3,
                      repair_time_s=600.0)
    orch = fed.make_orchestrator(lab, verified=False, fault_tolerant=True)
    spec = CampaignSpec(name="f", objective_key="plqy", max_experiments=40)
    result = run_campaign(fed, orch, spec)
    assert result.n_experiments == 40
    assert result.counters["fault_tolerance"]["faults_handled"] > 0
    assert result.counters["fault_tolerance"]["repairs"] > 0


def test_fault_tolerant_failover_to_alternate_site():
    fed = FederationManager(seed=3, n_sites=2)
    lab0 = fed.add_lab("site-0", qd_factory(), mtbf_hours=0.02,
                       repair_time_s=1e7)  # effectively unrepairable
    lab1 = fed.add_lab("site-1", qd_factory())
    orch = fed.make_orchestrator(lab0, verified=False, fault_tolerant=True,
                                 alternates=[lab1])
    spec = CampaignSpec(name="f", objective_key="plqy", max_experiments=25)
    result = run_campaign(fed, orch, spec)
    assert result.n_experiments == 25
    assert result.counters["fault_tolerance"]["failovers"] > 0


# -- federation builder -----------------------------------------------------------------------

def test_federation_builder_validation():
    fed = FederationManager(seed=1, n_sites=2)
    with pytest.raises(KeyError):
        fed.add_lab("nowhere", qd_factory())
    fed.add_lab("site-0", qd_factory())
    with pytest.raises(ValueError):
        fed.add_lab("site-0", qd_factory())
    with pytest.raises(ValueError):
        fed.add_lab("site-1", qd_factory(), synthesis_kind="teleporter")


def test_federation_registers_instruments():
    fed = FederationManager(seed=1, n_sites=3)
    fed.add_lab("site-0", qd_factory())
    fed.add_lab("site-1", qd_factory())
    records = fed.registry.lookup("_instrument._aisle")
    assert len(records) == 2


def test_ship_sample_takes_time():
    fed = FederationManager(seed=1, n_sites=2)
    lab = fed.add_lab("site-0", qd_factory())
    from repro.labsci import Sample
    import numpy as np
    sample = Sample.synthesize(
        lab.landscape.space.sample(np.random.default_rng(0)),
        lab.landscape, site="site-0")
    out = {}

    def proc():
        s = yield from fed.ship_sample(sample, "site-1")
        out["site"] = s.site

    fed.sim.process(proc())
    fed.sim.run()
    assert out["site"] == "site-1"
    assert fed.sim.now == pytest.approx(24 * 3600.0)
    assert any("shipped" in op for _, _, op in sample.provenance)


def test_secure_federation_wires_gateway():
    fed = FederationManager(seed=1, n_sites=2, secure=True, with_mesh=True)
    lab = fed.add_lab("site-0", qd_factory())
    assert fed.gateway is not None
    assert lab.mesh_node.gateway is fed.gateway
    # Tokens from one institution validate federation-wide.
    idp = fed.fabric.provider(lab.institution)
    token = idp.issue(f"agent@{lab.institution}")
    assert fed.fabric.validate_at("Lab 1", token)
