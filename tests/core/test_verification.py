"""Tests for the verification stack."""

import numpy as np
import pytest

from repro.agents.planner import ExperimentPlan
from repro.core import (PhysicsConstraintVerifier,
                        SurrogateConsistencyVerifier, TwinVerifier,
                        VerificationStack)
from repro.instruments import DigitalTwin, FluidicReactor
from repro.labsci import ContinuousDim, ParameterSpace, SyntheticLandscape
from repro.methods import BayesianOptimizer


@pytest.fixture
def physics(qd_landscape):
    return PhysicsConstraintVerifier(
        qd_landscape.space,
        safety_envelope={"temperature": (60.0, 200.0)},
        forbidden_combinations=[{"solvent": "DMF",
                                 "temperature": (160.0, None)}],
        outcome_bounds={"objective": (0.0, 1.0)})


def plan(params, expected=None):
    return ExperimentPlan(params=dict(params), expected=dict(expected or {}))


def good_params(qd_landscape, seed=0):
    p = qd_landscape.space.sample(np.random.default_rng(seed))
    p["temperature"] = 150.0
    p["solvent"] = "octadecene"
    return p


def test_physics_accepts_good_plan(physics, qd_landscape):
    assert physics.check(plan(good_params(qd_landscape))) == []


def test_physics_rejects_invalid_space(physics, qd_landscape):
    p = good_params(qd_landscape)
    p["dopant"] = "unobtainium-1"
    reasons = physics.check(plan(p))
    assert any("invalid parameters" in r for r in reasons)


def test_physics_rejects_unsafe_envelope(physics, qd_landscape):
    p = good_params(qd_landscape)
    p["temperature"] = 215.0  # valid for the space, unsafe per envelope
    reasons = physics.check(plan(p))
    assert any("safe envelope" in r for r in reasons)


def test_physics_rejects_forbidden_combo(physics, qd_landscape):
    p = good_params(qd_landscape)
    p["solvent"] = "DMF"
    p["temperature"] = 180.0
    reasons = physics.check(plan(p))
    assert any("forbidden" in r for r in reasons)


def test_physics_rejects_impossible_claim(physics, qd_landscape):
    reasons = physics.check(plan(good_params(qd_landscape),
                                 expected={"objective": 50.0}))
    assert any("physically impossible" in r for r in reasons)
    assert physics.stats["rejections"] == 1


# -- twin verifier ------------------------------------------------------------------

@pytest.fixture
def twin_verifier(sim, rngs, qd_landscape):
    reactor = FluidicReactor(sim, "r", "site-0", rngs, qd_landscape)
    twin = DigitalTwin(reactor, landscape=qd_landscape, rngs=rngs,
                       safety_envelope={"temperature": (60.0, 200.0)},
                       check_time_s=2.0)
    return TwinVerifier(twin, objective_key="plqy")


def run(sim, gen):
    out = {}

    def proc():
        out["r"] = yield from gen
    sim.process(proc())
    sim.run()
    return out["r"]


def test_twin_verifier_passes_honest_plan(sim, twin_verifier, qd_landscape):
    p = good_params(qd_landscape)
    honest = qd_landscape.evaluate(p)["plqy"]
    reasons = run(sim, twin_verifier.validate(
        plan(p, expected={"objective": honest})))
    assert reasons == []
    assert sim.now == pytest.approx(2.0)


def test_twin_verifier_rejects_wild_claim(sim, twin_verifier, qd_landscape):
    p = good_params(qd_landscape)
    reasons = run(sim, twin_verifier.validate(
        plan(p, expected={"objective": 0.99})))
    # A random recipe almost never hits 0.99 PLQY; the twin disagrees.
    truth = qd_landscape.evaluate(p)["plqy"]
    if truth < 0.4:
        assert reasons
        assert twin_verifier.stats["rejections"] == 1


# -- surrogate consistency -----------------------------------------------------------

def test_surrogate_verifier_flags_inconsistent_claim():
    space = ParameterSpace([ContinuousDim("x", 0.0, 1.0)])
    land = SyntheticLandscape(space, seed=4)
    bo = BayesianOptimizer(space, np.random.default_rng(0), n_init=4)
    for _ in range(20):
        p = bo.ask()
        bo.tell(p, land.objective_value(p))
    ver = SurrogateConsistencyVerifier(bo, z_threshold=4.0)
    mean, _ = bo.posterior_at({"x": 0.5})
    sane = ver.check(plan({"x": 0.5}, expected={"objective": mean}))
    assert sane == []
    crazy = ver.check(plan({"x": 0.5}, expected={"objective": 1e6}))
    assert crazy and "sigma" in crazy[0]


def test_surrogate_verifier_passes_without_data():
    space = ParameterSpace([ContinuousDim("x", 0.0, 1.0)])
    bo = BayesianOptimizer(space, np.random.default_rng(0))
    ver = SurrogateConsistencyVerifier(bo)
    assert ver.check(plan({"x": 0.5}, expected={"objective": 1e6})) == []


# -- the stack ----------------------------------------------------------------------------

def test_stack_short_circuits_cheap_first(sim, physics, twin_verifier,
                                          qd_landscape):
    stack = VerificationStack(sim, [physics, twin_verifier])
    p = good_params(qd_landscape)
    p["temperature"] = 500.0  # caught by physics instantly
    result = run(sim, stack.verify(plan(p)))
    assert not result.ok
    assert result.checked_by == ["physics-constraints"]
    assert result.time_spent == 0.0  # twin never consulted
    assert stack.rejection_rate == 1.0


def test_stack_passes_good_plan_through_both(sim, physics, twin_verifier,
                                             qd_landscape):
    stack = VerificationStack(sim, [physics, twin_verifier])
    p = good_params(qd_landscape)
    result = run(sim, stack.verify(plan(p)))
    assert result.ok
    assert "digital-twin" in result.checked_by
    assert result.time_spent == pytest.approx(2.0)


def test_stack_marks_plan_verified(sim, physics, qd_landscape):
    stack = VerificationStack(sim, [physics])
    pl = plan(good_params(qd_landscape))
    result = run(sim, stack.verify(pl))
    assert result.ok and pl.verified
