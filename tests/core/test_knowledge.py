"""Tests for the cross-facility knowledge base (M9 substrate)."""

import numpy as np
import pytest

from repro.core import KnowledgeBase
from repro.labsci import ContinuousDim, ParameterSpace
from repro.methods import BayesianOptimizer


@pytest.fixture
def space():
    return ParameterSpace([ContinuousDim("x", 0.0, 1.0)])


def make_kb(sim, network, space, policy, sites=("site-0", "site-1", "site-2")):
    kb = KnowledgeBase(sim, network, policy=policy)
    optimizers = {}
    for s in sites:
        opt = BayesianOptimizer(space, np.random.default_rng(hash(s) % 100),
                                n_init=4)
        kb.register(s, opt, space)
        optimizers[s] = opt
    return kb, optimizers


def test_policy_validation(sim, testbed_network):
    with pytest.raises(ValueError):
        KnowledgeBase(sim, testbed_network, policy="telepathy")


def test_duplicate_site_rejected(sim, testbed_network, space):
    kb, _ = make_kb(sim, testbed_network, space, "raw")
    with pytest.raises(ValueError):
        kb.register("site-0", None, space)


def test_none_policy_isolates_sites(sim, testbed_network, space):
    kb, opts = make_kb(sim, testbed_network, space, "none")
    kb.publish("site-0", {"x": 0.5}, 0.7)
    sim.run(until=10.0)
    assert kb.total_donations_at("site-1") == 0
    assert kb.sync("site-1") == 0


def test_raw_policy_propagates_with_latency(sim, testbed_network, space):
    kb, opts = make_kb(sim, testbed_network, space, "raw")
    kb.publish("site-0", {"x": 0.5}, 0.7)
    # Before the WAN latency elapses nothing has arrived.
    assert kb.total_donations_at("site-1") == 0
    sim.run(until=1.0)
    assert kb.total_donations_at("site-1") == 1
    assert kb.total_donations_at("site-2") == 1
    absorbed = kb.sync("site-1")
    assert absorbed == 1
    assert len(opts["site-1"]._external) == 1


def test_sync_absorbs_each_donation_once(sim, testbed_network, space):
    kb, opts = make_kb(sim, testbed_network, space, "raw")
    for i in range(5):
        kb.publish("site-0", {"x": 0.1 * i}, 0.5)
    sim.run(until=1.0)
    assert kb.sync("site-1") == 5
    assert kb.sync("site-1") == 0  # idempotent
    kb.publish("site-2", {"x": 0.9}, 0.2)
    sim.run(until=2.0)
    assert kb.sync("site-1") == 1
    assert len(opts["site-1"]._external) == 6


def test_corrected_policy_interleaved_sources_no_double_absorb(
        sim, testbed_network, space):
    kb, opts = make_kb(sim, testbed_network, space, "corrected")
    kb.publish("site-1", {"x": 0.2}, 0.5)
    kb.publish("site-2", {"x": 0.4}, 0.6)
    sim.run(until=1.0)
    assert kb.sync("site-0") == 2
    kb.publish("site-1", {"x": 0.6}, 0.7)
    sim.run(until=2.0)
    assert kb.sync("site-0") == 1
    assert len(opts["site-0"]._external) == 3


def test_corrected_policy_applies_bias_correction(sim, testbed_network,
                                                  space):
    kb, opts = make_kb(sim, testbed_network, space, "corrected")
    # site-0 observes truth f(x) = x locally; site-1 reads 0.2 low.
    for x in (0.1, 0.3, 0.5, 0.7):
        kb.publish("site-0", {"x": x}, x)         # local truth
        kb.publish("site-1", {"x": x}, x - 0.2)   # biased remote
    sim.run(until=5.0)
    kb.sync("site-0")
    # site-0's optimizer received site-1's donations corrected upward.
    donated = {p["x"]: v for p, v in opts["site-0"]._external}
    for x, v in donated.items():
        assert v == pytest.approx(x, abs=0.05)


def test_unreachable_peer_donation_lost(sim, testbed_topo, rngs, space):
    from repro.net import FaultInjector, Network
    faults = FaultInjector(sim)
    network = Network(sim, testbed_topo, rngs.stream("net"), faults)
    kb, _ = make_kb(sim, network, space, "raw")
    faults.fail_site("site-1")
    kb.publish("site-0", {"x": 0.5}, 0.7)
    sim.run(until=5.0)
    assert kb.total_donations_at("site-1") == 0
    assert kb.total_donations_at("site-2") == 1


def test_reasoning_traces_collected(sim, testbed_network, space):
    kb, _ = make_kb(sim, testbed_network, space, "raw")
    kb.publish("site-0", {"x": 0.5}, 0.7, trace="plan-1: BO argmax")
    kb.publish("site-1", {"x": 0.2}, 0.3, trace="plan-2: explore")
    traces = kb.reasoning_traces()
    assert len(traces) == 2
    assert any("BO argmax" in t for t in traces)
