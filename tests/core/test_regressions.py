"""Regression tests for failure modes found during benchmark bring-up.

Each test pins a bug that once existed:

1. verification stalemate — an optimizer pinned against a region the
   verifier forbids used to spin the campaign loop forever;
2. repair diversification — repairs of rejected *optimizer* plans used to
   re-ask for the same point;
3. safety-clipped search spaces — the federation builder used to hand
   optimizers the full space, proposing into the unsafe band;
4. failover probe deadlines — aggressive heartbeat cadences used to
   declare healthy primaries dead because the probe deadline was shorter
   than the WAN round trip.
"""

import numpy as np
import pytest

from repro.agents import (AgentRuntime, EvaluatorAgent, ExecutorAgent,
                          PlannerAgent, SimulatedLLM)
from repro.agents.planner import ExperimentPlan
from repro.core import (CampaignSpec, FederationManager,
                        PhysicsConstraintVerifier, VerificationStack)
from repro.core.federation import (DEFAULT_SAFETY_ENVELOPE,
                                   clip_space_to_envelope)
from repro.core.orchestrator import HierarchicalOrchestrator
from repro.labsci import ContinuousDim, ParameterSpace, QuantumDotLandscape


def test_clip_space_to_envelope_intersects_bounds(qd_landscape):
    safe = clip_space_to_envelope(qd_landscape.space,
                                  {"temperature": (0.0, 205.0)})
    t = safe.dim("temperature")
    assert t.low == 60.0   # space bound tighter than envelope low
    assert t.high == 205.0  # envelope tighter than space high
    # Other dims untouched; discrete dims pass through.
    assert safe.dim("dopant") is qd_landscape.space.dim("dopant")
    # Samples from the clipped space are valid in the original space.
    rng = np.random.default_rng(0)
    for _ in range(50):
        assert qd_landscape.space.contains(safe.sample(rng))


def test_federation_optimizer_searches_safe_space():
    fed = FederationManager(seed=1, n_sites=2)
    lab = fed.add_lab("site-0", lambda s: QuantumDotLandscape(seed=7))
    t = lab.optimizer.space.dim("temperature")
    assert t.high == DEFAULT_SAFETY_ENVELOPE["temperature"][1]


def test_campaign_stops_on_verification_stalemate():
    """A verifier that rejects everything must end the campaign, not hang."""
    fed = FederationManager(seed=2, n_sites=2)
    lab = fed.add_lab("site-0", lambda s: QuantumDotLandscape(seed=7))

    class RejectEverything:
        name = "reject-everything"

        def check(self, plan):
            return ["nope"]

    stack = VerificationStack(fed.sim, [RejectEverything()])
    orch = HierarchicalOrchestrator(fed.sim, lab.planner, lab.executor,
                                    lab.evaluator, verification=stack)
    spec = CampaignSpec(name="stalemate", objective_key="plqy",
                        max_experiments=50)
    proc = fed.sim.process(orch.run_campaign(spec))
    result = fed.sim.run(until=proc)
    assert result.stop_reason == "verification-stalemate"
    assert result.n_experiments == 0
    assert result.counters["skipped_plans"] == 25


def test_repair_of_optimizer_plan_diversifies(sim, rngs, qd_landscape,
                                              testbed_network):
    from repro.methods import NestedBayesianOptimizer
    runtime = AgentRuntime(sim, testbed_network)
    optimizer = NestedBayesianOptimizer(qd_landscape.space,
                                        rngs.stream("opt"))
    llm = SimulatedLLM(sim, rngs.stream("llm"), hallucination_rate=0.0)
    planner = PlannerAgent(sim, "p", "site-0", runtime, optimizer, llm)
    rejected = ExperimentPlan(
        params=qd_landscape.space.sample(np.random.default_rng(0)),
        source="optimizer")
    out = {}

    def proc():
        out["repair"] = yield from planner.repair_plan(rejected)

    sim.process(proc())
    sim.run()
    # The repair did not re-ask the optimizer (which would return the
    # same pinned acquisition argmax); it sampled fresh.
    assert out["repair"].params != rejected.params
    assert out["repair"].repaired
    assert qd_landscape.space.contains(out["repair"].params)


def test_repair_of_llm_plan_uses_optimizer(sim, rngs, qd_landscape,
                                           testbed_network):
    from repro.methods import NestedBayesianOptimizer
    runtime = AgentRuntime(sim, testbed_network)
    optimizer = NestedBayesianOptimizer(qd_landscape.space,
                                        rngs.stream("opt"))
    llm = SimulatedLLM(sim, rngs.stream("llm"))
    planner = PlannerAgent(sim, "p", "site-0", runtime, optimizer, llm,
                           mode="llm-direct")
    rejected = ExperimentPlan(params={}, source="llm")
    out = {}

    def proc():
        out["repair"] = yield from planner.repair_plan(rejected)

    sim.process(proc())
    sim.run()
    assert out["repair"].source == "optimizer-repair"
    assert qd_landscape.space.contains(out["repair"].params)


def test_failover_probe_deadline_survives_aggressive_heartbeat(
        sim, testbed_network):
    """A healthy primary over a ~45 ms WAN must not be declared dead at a
    50 ms heartbeat cadence."""
    from repro.comm import FailoverGroup, RpcClient, RpcServer
    replicas = []
    for i in range(2):
        srv = RpcServer(sim, f"r{i}", site=f"site-{i + 1}")
        FailoverGroup.install_health_endpoint(srv)
        replicas.append(srv)
    group = FailoverGroup(sim, replicas, heartbeat_interval_s=0.05,
                          heartbeat_misses=2)
    client = RpcClient(sim, testbed_network, site="site-0")
    group.start_monitor(client)
    sim.run(until=10.0)
    assert group.primary.name == "r0"  # never spuriously promoted
    assert not any(kind == "promote" for _, kind, _ in group.events)


def test_verified_campaign_with_default_wiring_never_stalls():
    """End-to-end guard: the standard federation wiring completes a
    verified campaign within a bounded number of planner invocations."""
    fed = FederationManager(seed=5, n_sites=2)
    lab = fed.add_lab("site-0", lambda s: QuantumDotLandscape(seed=7))
    orch = fed.make_orchestrator(lab, verified=True)
    spec = CampaignSpec(name="guard", objective_key="plqy",
                        max_experiments=25)
    proc = fed.sim.process(orch.run_campaign(spec))
    result = fed.sim.run(until=proc)
    assert result.n_experiments == 25
    assert result.counters["plans"]["plans"] < 25 * 4
