"""Tests for vendor dialects, the HAL, HPC, and digital twins."""

import numpy as np
import pytest

from repro.instruments import (BatchSynthesisRobot, DigitalTwin,
                               HardwareAbstractionLayer, HpcCluster,
                               OperationRequest, PLSpectrometer, TubeFurnace,
                               VENDOR_DIALECTS, VendorError,
                               make_vendor_protocol)
from repro.labsci import Sample


def run(sim, gen):
    out = {}

    def proc():
        out["r"] = yield from gen
    sim.process(proc())
    sim.run()
    return out["r"]


# -- dialect encode/decode round trips -------------------------------------------

@pytest.mark.parametrize("vendor", sorted(VENDOR_DIALECTS))
def test_dialect_roundtrip(vendor):
    dialect = VENDOR_DIALECTS[vendor]
    params = {"temperature": 150.0, "residence_time": 120.0,
              "dopant": "Ag", "flow_ratio": 0.4}
    decoded = dialect.decode(dialect.encode(dict(params)))
    assert decoded["dopant"] == "Ag"
    assert decoded["flow_ratio"] == 0.4
    assert decoded["temperature"] == pytest.approx(150.0)
    assert decoded["residence_time"] == pytest.approx(120.0)


def test_kelvin_dialect_wire_format():
    enc = VENDOR_DIALECTS["kelvin-sci"].encode(
        {"temperature": 100.0, "residence_time": 60.0})
    assert enc["temperature_K"] == pytest.approx(373.15)
    assert enc["residence_time_min"] == pytest.approx(1.0)


def test_helios_dialect_wire_format():
    enc = VENDOR_DIALECTS["helios"].encode({"temperature": 100.0})
    assert enc["recipe"]["T_setpoint_F"] == pytest.approx(212.0)
    assert enc["schema"] == "helios/v2"


def test_customlab_dialect_wire_format():
    enc = VENDOR_DIALECTS["custom-lab"].encode({"hold_time": 7200.0})
    assert ("hold_time_hr", pytest.approx(2.0)) in [
        (k, pytest.approx(v)) for k, v in enc]


def test_decode_rejects_malformed_payloads():
    with pytest.raises(VendorError):
        VENDOR_DIALECTS["helios"].decode({"no_recipe": 1})
    with pytest.raises(VendorError):
        VENDOR_DIALECTS["custom-lab"].decode({"not": "a list"})
    with pytest.raises(VendorError):
        VENDOR_DIALECTS["aisle-ref"].decode([1, 2])


# -- vendor protocol --------------------------------------------------------------

def test_protocol_rejects_unknown_command(sim, rngs, qd_landscape):
    robot = BatchSynthesisRobot(sim, "r", "ornl", rngs, qd_landscape,
                                batch_time_s=10.0)
    proto = make_vendor_protocol(robot, "kelvin-sci")

    def proc():
        with pytest.raises(VendorError, match="does not understand"):
            # Canonical command name sent to a kelvin-sci device.
            yield from proto.invoke("synthesize", {"temperature_K": 400.0})

    sim.process(proc())
    sim.run()
    assert proto.stats["errors"] == 1


def test_protocol_native_command_works(sim, rngs, qd_landscape, qd_params):
    robot = BatchSynthesisRobot(sim, "r", "ornl", rngs, qd_landscape,
                                batch_time_s=10.0)
    proto = make_vendor_protocol(robot, "kelvin-sci")
    payload = VENDOR_DIALECTS["kelvin-sci"].encode(dict(qd_params))
    sample = run(sim, proto.invoke("StartSynthesis", payload))
    assert isinstance(sample, Sample)
    # Decoded temperature equals the canonical request.
    assert sample.params["temperature"] == pytest.approx(
        qd_params["temperature"])


def test_unknown_vendor_rejected(sim, rngs, qd_landscape):
    robot = BatchSynthesisRobot(sim, "r", "ornl", rngs, qd_landscape)
    with pytest.raises(KeyError, match="unknown vendor"):
        make_vendor_protocol(robot, "nonexistent")


# -- HAL ------------------------------------------------------------------------------

@pytest.fixture
def hal_with_four_vendors(sim, rngs, qd_landscape):
    hal = HardwareAbstractionLayer()
    robots = {}
    for i, vendor in enumerate(sorted(VENDOR_DIALECTS)):
        robot = BatchSynthesisRobot(sim, f"robot-{vendor}", "ornl", rngs,
                                    qd_landscape, batch_time_s=10.0)
        hal.register(make_vendor_protocol(robot, vendor))
        robots[vendor] = robot
    return hal, robots


def test_hal_same_canonical_request_all_vendors(sim, hal_with_four_vendors,
                                                qd_params):
    hal, robots = hal_with_four_vendors
    results = {}

    def proc():
        for vendor in sorted(robots):
            req = OperationRequest(operation="synthesize",
                                   params=dict(qd_params))
            sample = yield from hal.execute(f"robot-{vendor}", req)
            results[vendor] = sample

    sim.process(proc())
    sim.run()
    assert len(results) == 4
    # All vendors produced the *same* material from the canonical recipe.
    props = [s.true_properties()["plqy"] for s in results.values()]
    assert all(p == pytest.approx(props[0]) for p in props)


def test_without_hal_only_matching_dialect_works(sim, hal_with_four_vendors,
                                                 qd_params):
    _, robots = hal_with_four_vendors
    outcomes = {}

    def proc():
        for vendor, robot in sorted(robots.items()):
            proto = make_vendor_protocol(robot, vendor)
            try:
                # A client that only speaks canonical AISLE: canonical
                # command name, canonical flat params.
                yield from proto.invoke("synthesize", dict(qd_params))
                outcomes[vendor] = "ok"
            except VendorError:
                outcomes[vendor] = "error"

    sim.process(proc())
    sim.run()
    assert outcomes["aisle-ref"] == "ok"
    assert outcomes["kelvin-sci"] == "error"
    assert outcomes["custom-lab"] == "error"
    # helios: 'execute' != 'synthesize' -> also an error
    assert outcomes["helios"] == "error"


def test_hal_unsupported_operation(sim, hal_with_four_vendors):
    hal, _ = hal_with_four_vendors

    def proc():
        with pytest.raises(VendorError, match="does not support"):
            yield from hal.execute("robot-helios",
                                   OperationRequest(operation="measure"))

    sim.process(proc())
    sim.run()


def test_hal_inventory(sim, hal_with_four_vendors):
    hal, _ = hal_with_four_vendors
    assert len(hal.instruments()) == 4
    assert hal.instruments(operation="synthesize") == hal.instruments()
    assert hal.instruments(operation="measure") == []
    desc = hal.describe()
    assert desc["robot-helios"]["vendor"] == "helios"


def test_hal_duplicate_registration_rejected(sim, rngs, qd_landscape):
    hal = HardwareAbstractionLayer()
    robot = BatchSynthesisRobot(sim, "r", "ornl", rngs, qd_landscape)
    hal.register(make_vendor_protocol(robot, "aisle-ref"))
    with pytest.raises(ValueError):
        hal.register(make_vendor_protocol(robot, "helios"))


def test_hal_unknown_instrument(sim):
    hal = HardwareAbstractionLayer()
    with pytest.raises(KeyError, match="no HAL adapter"):
        hal.adapter("ghost")


def test_hal_measure_through_vendor(sim, rngs, qd_landscape, qd_params):
    hal = HardwareAbstractionLayer()
    spec = PLSpectrometer(sim, "spec-1", "ornl", rngs, scan_time_s=5.0)
    hal.register(make_vendor_protocol(spec, "kelvin-sci"))
    sample = Sample.synthesize(qd_params, qd_landscape)
    req = OperationRequest(operation="measure", sample=sample)
    m = run(sim, hal.execute("spec-1", req))
    assert m.kind == "pl-spectrum"


def test_hal_anneal_through_vendor(sim, rngs, qd_landscape, qd_params):
    hal = HardwareAbstractionLayer()
    furnace = TubeFurnace(sim, "furnace-1", "ornl", rngs,
                          ramp_rate_C_per_s=10.0)
    hal.register(make_vendor_protocol(furnace, "custom-lab"))
    sample = Sample.synthesize(qd_params, qd_landscape)
    req = OperationRequest(operation="anneal", sample=sample,
                           params={"temperature": 180.0, "hold_time": 60.0})
    factor = run(sim, hal.execute("furnace-1", req))
    assert factor > 1.0


# -- HPC -------------------------------------------------------------------------------

def test_hpc_job_queues_when_full(sim, rngs):
    hpc = HpcCluster(sim, "hpc", "ornl", rngs, n_nodes=2)
    finish = []

    def proc(tag):
        result = yield from hpc.run_job(walltime_s=100.0, n_nodes=2)
        finish.append((tag, sim.now, result.queued_s))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert finish[0] == ("a", pytest.approx(100.0), 0.0)
    assert finish[1][1] == pytest.approx(200.0)
    assert finish[1][2] == pytest.approx(100.0)


def test_hpc_oversized_job_rejected(sim, rngs):
    hpc = HpcCluster(sim, "hpc", "ornl", rngs, n_nodes=4)
    with pytest.raises(ValueError):
        next(hpc.run_job(10.0, n_nodes=8))


def test_hpc_simulate_fidelity_tradeoff(sim, rngs, qd_landscape, qd_params):
    hpc = HpcCluster(sim, "hpc", "ornl", rngs, n_nodes=16,
                     model_bias=0.05, model_noise=0.02)
    truth = qd_landscape.evaluate(qd_params)["plqy"]

    def errs(fidelity, n=10):
        out = []

        def proc():
            for _ in range(n):
                r = yield from hpc.simulate(qd_landscape, qd_params, fidelity)
                out.append(abs(r.values["plqy"] - truth))
        sim.process(proc())
        sim.run()
        return np.mean(out)

    low = errs("low")
    high = errs("high")
    assert high < low


def test_hpc_unknown_fidelity(sim, rngs, qd_landscape, qd_params):
    hpc = HpcCluster(sim, "hpc", "ornl", rngs)
    with pytest.raises(ValueError):
        next(hpc.simulate(qd_landscape, qd_params, "ultra"))


# -- digital twin ------------------------------------------------------------------------

@pytest.fixture
def twin(sim, rngs, qd_landscape):
    robot = BatchSynthesisRobot(sim, "r", "ornl", rngs, qd_landscape,
                                batch_time_s=10.0)
    return DigitalTwin(
        robot, landscape=qd_landscape, rngs=rngs,
        safety_envelope={"temperature": (60.0, 220.0)},
        forbidden_combinations=[{"solvent": "DMF",
                                 "temperature": (160.0, None)}],
        twin_error=0.05, check_time_s=1.0)


def test_twin_accepts_safe_params(twin, qd_params):
    verdict = twin.check(qd_params)
    assert verdict.ok
    assert not verdict.reasons


def test_twin_rejects_unsafe_temperature(twin, qd_params):
    bad = dict(qd_params, temperature=350.0)  # inside interlock, outside safe
    verdict = twin.check(bad)
    assert not verdict.ok
    assert any("safe envelope" in r for r in verdict.reasons)


def test_twin_rejects_forbidden_combination(twin, qd_params):
    bad = dict(qd_params, solvent="DMF", temperature=200.0)
    verdict = twin.check(bad)
    assert not verdict.ok
    assert any("forbidden" in r for r in verdict.reasons)
    ok = dict(qd_params, solvent="DMF", temperature=100.0)
    assert twin.check(ok).ok


def test_twin_prediction_close_to_truth(twin, qd_landscape, qd_params):
    pred = twin.predict(qd_params)
    truth = qd_landscape.evaluate(qd_params)
    assert pred["plqy"] == pytest.approx(truth["plqy"], rel=0.3)


def test_twin_validate_flags_ungrounded_claims(sim, twin, qd_params):
    out = {}

    def proc():
        # Planner claims an absurd PLQY for a mediocre recipe.
        v = yield from twin.validate(qd_params, expected={"plqy": 50.0},
                                     tolerance=0.5)
        out["bogus"] = v
        v = yield from twin.validate(
            qd_params, expected=twin.landscape.evaluate(qd_params),
            tolerance=0.5)
        out["honest"] = v

    sim.process(proc())
    sim.run()
    assert not out["bogus"].ok
    assert out["honest"].ok
    assert sim.now == pytest.approx(2.0)  # two checks at 1 s each
