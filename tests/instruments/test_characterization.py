"""Tests for spectrometer, XRD, microscope, furnace, liquid handler, flow."""

import numpy as np
import pytest

from repro.instruments import (BatchSynthesisRobot, ElectronMicroscope,
                               FluidicReactor, LiquidHandler, PLSpectrometer,
                               TubeFurnace, XRayDiffractometer)
from repro.labsci import Sample


def bright_params(landscape, min_plqy=0.3):
    """A recipe with decent PLQY so optical signals beat the noise floor."""
    rng = np.random.default_rng(42)
    for _ in range(5000):
        p = landscape.space.sample(rng)
        if landscape.evaluate(p)["plqy"] >= min_plqy:
            return p
    raise RuntimeError("no bright recipe found")


@pytest.fixture
def sample(qd_landscape, qd_params):
    return Sample.synthesize(qd_params, qd_landscape, site="ornl")


@pytest.fixture(scope="module")
def _bright(qd_landscape):
    return bright_params(qd_landscape)


@pytest.fixture
def bright_sample(qd_landscape, _bright):
    return Sample.synthesize(_bright, qd_landscape, site="ornl")


def run(sim, gen):
    out = {}

    def proc():
        out["r"] = yield from gen
    sim.process(proc())
    sim.run()
    return out["r"]


# -- spectrometer -----------------------------------------------------------

def test_spectrometer_measures_near_truth(sim, rngs, sample):
    spec = PLSpectrometer(sim, "spec-1", "ornl", rngs, scan_time_s=45.0)
    m = run(sim, spec.measure(sample, requester="agent-1"))
    assert sim.now == pytest.approx(45.0)
    assert m.kind == "pl-spectrum"
    assert abs(m.values["plqy"] - sample.true_property("plqy")) < 0.1
    assert abs(m.values["emission_nm"]
               - sample.true_property("emission_nm")) < 5.0
    assert m.sample_id == sample.sample_id
    assert m.metadata["operator"] == "agent-1"


def test_spectrometer_raw_spectrum_has_peak_at_emission(sim, rngs,
                                                        bright_sample):
    spec = PLSpectrometer(sim, "spec-1", "ornl", rngs)
    m = run(sim, spec.measure(bright_sample))
    wl, intensity = m.raw["spectrum"]
    peak_nm = wl[np.argmax(intensity)]
    assert abs(peak_nm - m.values["emission_nm"]) < 25.0


def test_spectrometer_noise_varies_between_scans(sim, rngs, bright_sample):
    spec = PLSpectrometer(sim, "spec-1", "ornl", rngs)
    m1 = run(sim, spec.measure(bright_sample))
    m2 = run(sim, spec.measure(bright_sample))
    assert m1.values["plqy"] != m2.values["plqy"]
    assert m1.measurement_id != m2.measurement_id


# -- XRD --------------------------------------------------------------------------

def test_xrd_pattern_shape_and_crystallinity(sim, rngs, sample):
    xrd = XRayDiffractometer(sim, "xrd-1", "ornl", rngs, scan_time_s=900.0)
    m = run(sim, xrd.measure(sample))
    assert sim.now == pytest.approx(900.0)
    assert m.raw["two_theta"].shape == m.raw["counts"].shape
    assert 0.0 <= m.values["crystallinity"] <= 1.0


def test_xrd_same_phase_diffracts_alike(sim, rngs, qd_landscape, _bright):
    xrd = XRayDiffractometer(sim, "xrd-1", "ornl", rngs, n_points=500)
    s1 = Sample.synthesize(_bright, qd_landscape)
    s2 = Sample.synthesize(_bright, qd_landscape)
    m1 = run(sim, xrd.measure(s1))
    m2 = run(sim, xrd.measure(s2))
    # Same phase, independent scans: dominant reflection coincides.
    top1 = int(np.argmax(m1.raw["counts"]))
    top2 = int(np.argmax(m2.raw["counts"]))
    assert abs(top1 - top2) < 10


# -- microscope ----------------------------------------------------------------------

def test_microscope_image_and_uniformity(sim, rngs, sample):
    mic = ElectronMicroscope(sim, "sem-1", "ornl", rngs, image_time_s=300.0,
                             image_px=64)
    m = run(sim, mic.measure(sample))
    assert m.raw["image"].shape == (64, 64)
    assert 0.0 <= m.values["uniformity"] <= 1.0
    assert m.values["grain_density"] > 0


# -- furnace ------------------------------------------------------------------------------

def test_furnace_anneal_improves_near_optimum(sim, rngs, sample):
    furnace = TubeFurnace(sim, "furnace-1", "ornl", rngs,
                          optimal_anneal_C=180.0, ramp_rate_C_per_s=10.0)
    before = sample.true_property("plqy")
    factor = run(sim, furnace.anneal(sample, temperature=180.0,
                                     hold_time_s=600.0))
    assert factor == pytest.approx(1.3)
    assert sample.true_property("plqy") == pytest.approx(before * 1.3)


def test_furnace_overheating_degrades(sim, rngs, sample):
    furnace = TubeFurnace(sim, "furnace-1", "ornl", rngs,
                          optimal_anneal_C=180.0, ramp_rate_C_per_s=10.0)
    factor = run(sim, furnace.anneal(sample, temperature=1100.0,
                                     hold_time_s=60.0))
    assert factor < 1.0


def test_furnace_time_includes_ramps(sim, rngs, sample):
    furnace = TubeFurnace(sim, "f", "ornl", rngs, ramp_rate_C_per_s=1.0)
    run(sim, furnace.anneal(sample, temperature=225.0, hold_time_s=100.0))
    # ramp = 200 s each way + 100 s hold
    assert sim.now == pytest.approx(500.0)


# -- liquid handler -----------------------------------------------------------------------

def test_liquid_handler_prepare(sim, rngs):
    lh = LiquidHandler(sim, "lh-1", "ornl", rngs, time_per_transfer_s=10.0)
    m = run(sim, lh.prepare("mix-1", {"precursor": 100.0, "ligand": 50.0}))
    assert sim.now == pytest.approx(20.0)
    assert lh.has_mixture("mix-1")
    assert m.kind == "plate-map"
    # dispensed volumes are near nominal
    plate = m.raw["plate"]["mix-1"]
    assert plate["precursor"] == pytest.approx(100.0, rel=0.1)


def test_liquid_handler_deck_eviction(sim, rngs):
    lh = LiquidHandler(sim, "lh-1", "ornl", rngs, deck_slots=2,
                       time_per_transfer_s=1.0)

    def proc():
        for i in range(3):
            yield from lh.prepare(f"mix-{i}", {"r": 10.0})

    sim.process(proc())
    sim.run()
    assert not lh.has_mixture("mix-0")
    assert lh.has_mixture("mix-1") and lh.has_mixture("mix-2")


# -- flow reactor (E7 precondition) ----------------------------------------------------------

def test_flow_reactor_fast_and_frugal(sim, rngs, qd_landscape, qd_params):
    flow = FluidicReactor(sim, "flow-1", "ornl", rngs, qd_landscape,
                          sample_time_s=12.0, prime_time_s=120.0,
                          reagent_per_sample_mL=0.05)
    samples = run(sim, flow.sweep([qd_params] * 10))
    assert len(samples) == 10
    # First condition pays priming; the rest are 12 s each.
    assert sim.now == pytest.approx(120.0 + 10 * 12.0)
    assert flow.reagent_used_mL == pytest.approx(0.5)


def test_flow_reactor_reprimes_on_chemistry_change(sim, rngs, qd_landscape):
    flow = FluidicReactor(sim, "flow-1", "ornl", rngs, qd_landscape,
                          sample_time_s=10.0, prime_time_s=100.0)
    rng = np.random.default_rng(0)
    p1 = qd_landscape.space.sample(rng)
    p2 = dict(p1)
    # change a discrete dimension -> chemistry swap -> re-prime
    other = next(d for d in qd_landscape.space.discrete)
    p2[other.name] = next(c for c in other.choices if c != p1[other.name])

    def proc():
        yield from flow.synthesize(p1)
        t1 = sim.now
        yield from flow.synthesize(p1)  # same chemistry: no prime
        assert sim.now - t1 == pytest.approx(10.0)
        t2 = sim.now
        yield from flow.synthesize(p2)  # new chemistry: prime again
        assert sim.now - t2 == pytest.approx(110.0)

    sim.process(proc())
    sim.run()


def test_flow_vs_batch_acquisition_rate(sim, rngs, qd_landscape, qd_params):
    # The structural precondition of E7: flow makes >100x samples per
    # reagent unit and far more per unit time.
    batch = BatchSynthesisRobot(sim, "batch-1", "ornl", rngs, qd_landscape,
                                batch_time_s=1800.0,
                                reagent_per_sample_mL=10.0)
    flow = FluidicReactor(sim, "flow-1", "ornl", rngs, qd_landscape,
                          sample_time_s=12.0, reagent_per_sample_mL=0.05)
    assert (batch.batch_time_s / flow.sample_time_s) > 100
    assert (batch.reagent_per_sample_mL / flow.reagent_per_sample_mL) > 100
