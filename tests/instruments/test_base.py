"""Tests for the common instrument model and calibration."""

import numpy as np
import pytest

from repro.instruments import (BatchSynthesisRobot, CalibrationModel,
                               InstrumentFault, InstrumentStatus, OutOfSpec)
from repro.sim import RngRegistry, Simulator


def make_robot(sim, rngs, landscape, **kw):
    return BatchSynthesisRobot(sim, "robot-1", "ornl", rngs, landscape,
                               batch_time_s=100.0, **kw)


def test_synthesize_spends_time_and_returns_sample(sim, rngs, qd_landscape,
                                                   qd_params):
    robot = make_robot(sim, rngs, qd_landscape)
    out = {}

    def proc():
        out["sample"] = yield from robot.synthesize(qd_params, requester="t")

    sim.process(proc())
    sim.run()
    assert sim.now == pytest.approx(100.0)
    assert out["sample"].params == qd_params
    assert robot.samples_made == 1
    assert robot.stats["operations"] == 1
    assert robot.reagent_used_mL == 10.0


def test_duty_cycle_serializes_concurrent_use(sim, rngs, qd_landscape,
                                              qd_params):
    robot = make_robot(sim, rngs, qd_landscape)
    finish = []

    def proc(tag):
        yield from robot.synthesize(qd_params)
        finish.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert finish == [("a", pytest.approx(100.0)),
                      ("b", pytest.approx(200.0))]


def test_interlock_rejects_out_of_envelope(sim, rngs, qd_landscape,
                                           qd_params):
    robot = make_robot(sim, rngs, qd_landscape)
    bad = dict(qd_params, temperature=1000.0)  # > 400 C interlock

    def proc():
        with pytest.raises(OutOfSpec):
            yield from robot.synthesize(bad)

    sim.process(proc())
    sim.run()
    assert sim.now == 0.0  # rejected before any time was spent
    assert robot.stats["rejected"] == 1


def test_fault_model_faults_eventually(sim, rngs, qd_landscape, qd_params):
    robot = make_robot(sim, rngs, qd_landscape, mtbf_hours=0.01)
    faults = []

    def proc():
        for _ in range(50):
            try:
                yield from robot.synthesize(qd_params)
            except InstrumentFault:
                faults.append(sim.now)
                return

    sim.process(proc())
    sim.run()
    assert faults
    assert robot.status is InstrumentStatus.FAULT


def test_faulted_instrument_refuses_work_until_repaired(sim, rngs,
                                                        qd_landscape,
                                                        qd_params):
    robot = make_robot(sim, rngs, qd_landscape, repair_time_s=500.0)
    robot.inject_fault()
    trail = []

    def proc():
        with pytest.raises(InstrumentFault):
            yield from robot.synthesize(qd_params)
        yield from robot.repair()
        trail.append(("repaired", sim.now))
        yield from robot.synthesize(qd_params)
        trail.append(("made", sim.now))

    sim.process(proc())
    sim.run()
    assert trail[0] == ("repaired", pytest.approx(500.0))
    assert trail[1] == ("made", pytest.approx(600.0))
    assert robot.stats["repairs"] == 1


def test_repair_noop_when_not_faulted(sim, rngs, qd_landscape):
    robot = make_robot(sim, rngs, qd_landscape)

    def proc():
        yield from robot.repair()

    sim.process(proc())
    sim.run()
    assert sim.now == 0.0


def test_capability_descriptor_shape(sim, rngs, qd_landscape):
    robot = make_robot(sim, rngs, qd_landscape)
    desc = robot.capability_descriptor()
    assert desc["kind"] == "synthesis-robot"
    assert "synthesize" in desc["operations"]
    assert "temperature" in desc["envelope"]


# -- calibration ---------------------------------------------------------------

def test_calibration_drift_accumulates():
    rng = np.random.default_rng(0)
    cal = CalibrationModel(rng, drift_per_hour=0.1)
    assert cal.bias() == 0.0
    for _ in range(50):
        cal.accumulate(1.0)
    assert cal.bias() != 0.0
    assert cal.hours_since_calibration == 50.0


def test_calibration_reset():
    rng = np.random.default_rng(0)
    cal = CalibrationModel(rng, drift_per_hour=0.1)
    cal.accumulate(100.0)
    cal.reset()
    assert cal.bias() == 0.0
    assert cal.calibrations == 1


def test_calibration_bias_bounded():
    rng = np.random.default_rng(0)
    cal = CalibrationModel(rng, drift_per_hour=10.0, max_abs_bias=0.2)
    for _ in range(100):
        cal.accumulate(1.0)
    assert abs(cal.bias()) <= 0.2


def test_needs_calibration_threshold():
    rng = np.random.default_rng(0)
    cal = CalibrationModel(rng, drift_per_hour=0.0, initial_bias=0.3)
    assert cal.needs_calibration(0.1)
    assert not cal.needs_calibration(0.5)


def test_auto_calibrate_resets_drift(sim, rngs, qd_landscape, qd_params):
    cal = CalibrationModel(rngs.stream("cal"), drift_per_hour=5.0,
                           procedure_time_s=300.0)
    robot = BatchSynthesisRobot(sim, "robot-1", "ornl", rngs, qd_landscape,
                                batch_time_s=3600.0, calibration=cal)

    def proc():
        yield from robot.synthesize(qd_params)
        assert cal.bias() != 0.0
        t0 = sim.now
        yield from robot.auto_calibrate()
        assert sim.now - t0 == pytest.approx(300.0)

    sim.process(proc())
    sim.run()
    assert cal.bias() == 0.0
