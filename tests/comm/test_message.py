"""Tests for messages, envelopes, and size estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import Envelope, Message, Performative, estimate_size


def test_message_ids_unique():
    a = Message(Performative.INFORM, "x", "y")
    b = Message(Performative.INFORM, "x", "y")
    assert a.msg_id != b.msg_id


def test_reply_correlates_conversation():
    req = Message(Performative.REQUEST, "alice", "bob", payload="hi",
                  reply_to="alice")
    resp = req.reply(Performative.INFORM, payload="hello")
    assert resp.sender == "bob"
    assert resp.recipient == "alice"
    assert resp.conversation_id == str(req.msg_id)


def test_reply_keeps_existing_conversation():
    req = Message(Performative.REQUEST, "a", "b", conversation_id="conv-7")
    assert req.reply(Performative.ACCEPT).conversation_id == "conv-7"


def test_message_size_includes_payload():
    small = Message(Performative.INFORM, "a", "b", payload="x")
    big = Message(Performative.INFORM, "a", "b", payload="x" * 10_000)
    assert big.size_bytes() > small.size_bytes() + 9_000


def test_envelope_size_exceeds_message_size():
    msg = Message(Performative.INFORM, "a", "b", payload=[1, 2, 3])
    env = Envelope(message=msg, src_site="s1", dst_site="s2")
    assert env.size_bytes() > msg.size_bytes()


# -- estimate_size ------------------------------------------------------------

def test_estimate_size_scalars():
    assert estimate_size(None) == 1.0
    assert estimate_size(True) == 1.0
    assert estimate_size(3) == 8.0
    assert estimate_size(3.14) == 8.0


def test_estimate_size_string_tracks_length():
    assert estimate_size("abcd") == pytest.approx(8.0)
    assert estimate_size("é") == pytest.approx(6.0)  # 2 utf-8 bytes + 4


def test_estimate_size_numpy_uses_nbytes():
    arr = np.zeros(1000, dtype=np.float64)
    assert estimate_size(arr) == pytest.approx(8064.0)


def test_estimate_size_nested_containers():
    nested = {"a": [1, 2, 3], "b": {"c": "xyz"}}
    assert estimate_size(nested) > estimate_size({"a": [1]})


def test_estimate_size_unknown_object():
    class Thing:
        pass
    assert estimate_size(Thing()) >= 64.0

    class WithDict:
        def __init__(self):
            self.data = "x" * 100
    assert estimate_size(WithDict()) > 100.0


def test_estimate_size_shared_array_counted_once():
    # Regression: the same 8 KB array referenced twice used to be billed
    # twice; the memo charges the second reference a flat pointer cost.
    arr = np.zeros(1000, dtype=np.float64)
    once = estimate_size({"a": arr})
    twice = estimate_size({"a": arr, "b": arr})
    assert twice < once + 100.0
    assert twice > once  # the extra key + reference still cost something
    # Two *distinct* equal arrays are genuinely written twice.
    distinct = estimate_size({"a": arr, "b": arr.copy()})
    assert distinct > 2 * arr.nbytes


def test_estimate_size_shared_dict_counted_once():
    shared = {"w": list(range(200))}
    single = estimate_size([shared])
    double = estimate_size([shared, shared])
    assert double < single + 100.0


def test_estimate_size_memo_is_per_call():
    # Identity memoization must not leak across calls: the same object
    # costs the same in two separate calls.
    payload = {"x": np.ones(64)}
    assert estimate_size(payload) == estimate_size(payload)


def test_estimate_size_equal_strings_not_deduplicated():
    # Strings are written per occurrence; interning must not shrink them.
    s = "spectrum-channel"
    assert estimate_size([s, s]) == pytest.approx(
        8.0 + 2 * (len(s) + 4.0))


def test_estimate_size_recursion_bounded():
    lst: list = []
    lst.append(lst)  # self-referential
    # depth cap prevents infinite recursion
    assert estimate_size(lst) > 0


@given(st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
              st.text(max_size=20)),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=5), children, max_size=5)),
    max_leaves=20))
@settings(max_examples=60, deadline=None)
def test_property_estimate_size_positive_and_deterministic(obj):
    s1 = estimate_size(obj)
    s2 = estimate_size(obj)
    assert s1 == s2
    assert s1 > 0
