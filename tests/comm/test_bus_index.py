"""Tests for the compiled route index: trie-vs-oracle equivalence and
broker-side invalidation (bind after traffic, kill/revive, overlap dedup).
"""

import numpy as np
import pytest

from repro.comm import Message, MessageBus, Performative
from repro.comm.bus import RouteIndex, topic_matches


# -- RouteIndex vs the linear-scan oracle --------------------------------------

def _oracle_match(bindings, topic):
    """The pre-index semantics: scan every binding, dedup by queue,
    first-binding order."""
    seen, out = set(), []
    for pattern, qname in bindings:
        if qname not in seen and topic_matches(pattern, topic):
            seen.add(qname)
            out.append(qname)
    return tuple(out)


def _random_tables(seed, n_bindings=120, n_topics=300):
    rng = np.random.default_rng(seed)
    alphabet = ("a", "b", "c", "*", "#")
    bindings = []
    for i in range(n_bindings):
        n_seg = int(rng.integers(1, 6))
        segs = [alphabet[int(rng.integers(len(alphabet)))]
                for _ in range(n_seg)]
        bindings.append((".".join(segs), f"q-{int(rng.integers(20))}"))
    topics = []
    for _ in range(n_topics):
        n_seg = int(rng.integers(1, 7))
        topics.append(".".join(
            ("a", "b", "c")[int(rng.integers(3))] for _ in range(n_seg)))
    return bindings, topics


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_route_index_equals_oracle_on_random_tables(seed):
    bindings, topics = _random_tables(seed)
    index = RouteIndex(bindings)
    for topic in topics:
        assert index.match(topic) == _oracle_match(bindings, topic), topic


def test_route_index_empty_bindings():
    assert RouteIndex([]).match("a.b.c") == ()


def test_route_index_dedups_in_first_binding_order():
    bindings = [("lab.#", "late"), ("lab.*.xrd", "early"),
                ("lab.a.#", "late"), ("#", "early")]
    # 'late' first binding precedes 'early' first binding? No: 'late' is
    # binding 0, 'early' is binding 1 — delivery order follows that.
    assert RouteIndex(bindings).match("lab.a.xrd") == ("late", "early")


def test_route_index_hash_tail_and_middle():
    bindings = [("a.#", "q1"), ("a.#.z", "q2"), ("#.z", "q3")]
    index = RouteIndex(bindings)
    assert index.match("a") == ("q1",)
    assert index.match("a.z") == ("q1", "q2", "q3")
    assert index.match("a.b.c.z") == ("q1", "q2", "q3")
    assert index.match("z") == ("q3",)


def test_route_index_adversarial_hash_patterns_fast():
    # The worst cases for the old recursive matcher stay linear here.
    bindings = [(".".join(["#"] * 12 + ["end"]), "q")]
    index = RouteIndex(bindings)
    long_topic = ".".join(["x"] * 80)
    assert index.match(long_topic) == ()
    assert index.match(long_topic + ".end") == ("q",)


# -- broker-side invalidation --------------------------------------------------

def make_bus(sim, network):
    bus = MessageBus(sim, network)
    broker = bus.add_broker("main", site="a")
    return bus, broker


def _publish(bus, topic, results, key):
    msg = Message(Performative.INFORM, "src", topic)
    results[key] = yield from bus.publish("main", "b", topic, msg)


def test_bind_after_traffic_invalidates_index(sim, network):
    bus, broker = make_bus(sim, network)
    broker.declare_queue("q1")
    broker.bind("q1", "lab.*.xrd")
    results = {}

    def scenario(sim, bus):
        yield from _publish(bus, "lab.a.xrd", results, "before")
        # Index is now compiled; a late subscriber must still be seen.
        broker.declare_queue("q2")
        broker.bind("q2", "lab.#")
        yield from _publish(bus, "lab.a.xrd", results, "after")

    sim.process(scenario(sim, bus))
    sim.run()
    assert results["before"] == 1
    assert results["after"] == 2
    assert len(broker.queues["q2"]) == 1


def test_kill_revive_invalidates_and_restores_routing(sim, network):
    bus, broker = make_bus(sim, network)
    broker.declare_queue("q")
    broker.bind("q", "t.#")
    results = {}

    def scenario(sim, bus):
        yield from _publish(bus, "t.x", results, "first")
        broker.kill()
        broker.revive()
        # Binds applied while the index was already compiled pre-kill.
        broker.declare_queue("q2")
        broker.bind("q2", "t.x")
        yield from _publish(bus, "t.x", results, "second")

    sim.process(scenario(sim, bus))
    sim.run()
    assert results["first"] == 1
    assert results["second"] == 2


def test_overlapping_patterns_deliver_exactly_once(sim, network):
    bus, broker = make_bus(sim, network)
    queue = broker.declare_queue("q")
    # Three patterns, all matching the same topic, all to one queue.
    for pattern in ("lab.#", "lab.*.xrd", "lab.a.xrd"):
        broker.bind("q", pattern)
    results = {}

    def scenario(sim, bus):
        yield from _publish(bus, "lab.a.xrd", results, "n")

    sim.process(scenario(sim, bus))
    sim.run()
    assert results["n"] == 1
    assert len(queue) == 1
    assert broker.stats["routed"] == 1


def test_index_hit_and_rebuild_counters(sim, network):
    bus, broker = make_bus(sim, network)
    broker.declare_queue("q")
    broker.bind("q", "t")
    hits = broker.metrics.counter("bus.route_index_hits",
                                  broker="main", site="a")
    rebuilds = broker.metrics.counter("bus.route_index_rebuilds",
                                      broker="main", site="a")
    results = {}

    def scenario(sim, bus):
        yield from _publish(bus, "t", results, "a")   # compile
        yield from _publish(bus, "t", results, "b")   # hit
        yield from _publish(bus, "t", results, "c")   # hit
        broker.bind("q", "t.extra")                   # invalidate
        yield from _publish(bus, "t", results, "d")   # recompile

    sim.process(scenario(sim, bus))
    sim.run()
    assert rebuilds.value == 2
    assert hits.value == 2
