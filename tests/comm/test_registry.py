"""Tests for the service registry."""

import pytest

from repro.comm import ServiceRecord, ServiceRegistry


def rec(instance="xrd-1", stype="_instrument._aisle", site="a", ttl=60.0,
        **caps):
    return ServiceRecord(instance=instance, service_type=stype, site=site,
                         capabilities=caps, ttl_s=ttl)


def test_register_and_lookup(sim):
    reg = ServiceRegistry(sim)
    reg.register(rec("xrd-1", technique="xrd"))
    reg.register(rec("sem-1", technique="sem"))
    found = reg.lookup("_instrument._aisle")
    assert [r.instance for r in found] == ["sem-1", "xrd-1"]


def test_lookup_by_capability(sim):
    reg = ServiceRegistry(sim)
    reg.register(rec("xrd-1", technique="xrd", resolution=0.1))
    reg.register(rec("xrd-2", technique="xrd", resolution=0.5))
    found = reg.lookup("_instrument._aisle", technique="xrd",
                       resolution=lambda r: r <= 0.2)
    assert [r.instance for r in found] == ["xrd-1"]


def test_missing_capability_never_matches(sim):
    reg = ServiceRegistry(sim)
    reg.register(rec("plain"))
    assert reg.lookup("_instrument._aisle", technique="xrd") == []


def test_ttl_expiry(sim):
    reg = ServiceRegistry(sim)
    reg.register(rec("short", ttl=10.0))
    sim.run(until=5.0)
    assert len(reg) == 1
    sim.run(until=15.0)
    assert len(reg) == 0
    assert reg.stats["expirations"] == 1


def test_renew_extends_lease(sim):
    reg = ServiceRegistry(sim)
    reg.register(rec("svc", ttl=10.0))
    sim.run(until=8.0)
    assert reg.renew("svc")
    sim.run(until=15.0)
    assert reg.get("svc") is not None
    sim.run(until=20.0)
    assert reg.get("svc") is None


def test_renew_expired_record_fails(sim):
    reg = ServiceRegistry(sim)
    reg.register(rec("svc", ttl=5.0))
    sim.run(until=10.0)
    assert not reg.renew("svc")


def test_deregister(sim):
    reg = ServiceRegistry(sim)
    reg.register(rec("svc"))
    assert reg.deregister("svc")
    assert not reg.deregister("svc")
    assert len(reg) == 0


def test_watchers_fire_on_changes(sim):
    reg = ServiceRegistry(sim)
    events = []
    unsub = reg.watch(lambda ev, r: events.append((ev, r.instance)))
    reg.register(rec("a"))
    reg.deregister("a")
    unsub()
    reg.register(rec("b"))
    assert events == [("register", "a"), ("deregister", "a")]


def test_watcher_type_filter(sim):
    reg = ServiceRegistry(sim)
    events = []
    reg.watch(lambda ev, r: events.append(r.instance),
              service_type="_data._aisle")
    reg.register(rec("inst-1", stype="_instrument._aisle"))
    reg.register(rec("node-1", stype="_data._aisle"))
    assert events == ["node-1"]


def test_watcher_fires_on_expiry(sim):
    reg = ServiceRegistry(sim)
    events = []
    reg.watch(lambda ev, r: events.append(ev))
    reg.register(rec("svc", ttl=1.0))
    sim.run(until=2.0)
    reg.lookup()  # sweep
    assert events == ["register", "expire"]


def test_types_enumeration(sim):
    reg = ServiceRegistry(sim)
    reg.register(rec("a", stype="_x._aisle"))
    reg.register(rec("b", stype="_y._aisle"))
    assert reg.types() == ["_x._aisle", "_y._aisle"]
