"""Tests for the AMQP-style message bus."""

import pytest

from repro.comm import Message, MessageBus, Performative
from repro.comm.bus import BrokerDown, topic_matches


# -- topic matching ------------------------------------------------------------

@pytest.mark.parametrize("pattern,topic,expected", [
    ("a.b.c", "a.b.c", True),
    ("a.b.c", "a.b.d", False),
    ("a.*.c", "a.b.c", True),
    ("a.*.c", "a.b.b.c", False),
    ("a.#", "a", True),
    ("a.#", "a.b.c.d", True),
    ("#", "anything.at.all", True),
    ("#.end", "a.b.end", True),
    ("#.end", "end", True),
    ("a.*", "a", False),
    ("*.b", "a.b", True),
    ("a.#.z", "a.z", True),
    ("a.#.z", "a.b.c.z", True),
    ("a.#.z", "a.b.c", False),
    # '#' in the middle, repeatedly and adjacent to wildcards.
    ("a.#.b.#.c", "a.x.b.y.z.c", True),
    ("a.#.b.#.c", "a.b.c", True),
    ("a.#.b.#.c", "a.c", False),
    ("#.#", "a", True),
    ("a.#.*", "a", False),
    ("a.#.*", "a.b", True),
    # Empty segments are literal segments, not holes in the grammar.
    ("a..b", "a..b", True),
    ("a..b", "a.b", False),
    ("a.*", "a.", True),
    ("", "", True),
    ("", "a", False),
    # Pattern longer than the topic can never match without '#'.
    ("a.b.c.d", "a.b", False),
    ("*.*.*", "a.b", False),
    ("*.*", "a.b.c", False),
])
def test_topic_matches(pattern, topic, expected):
    assert topic_matches(pattern, topic) is expected


def test_topic_matches_adversarial_many_hashes():
    # Regression: the recursive matcher backtracked over every way to
    # split the topic across the '#'s — combinatorial in the number of
    # '#' segments.  Fifteen of them against a 60-segment non-matching
    # topic effectively hung; the NFA walk is linear and returns at once.
    pattern = ".".join(["#"] * 15 + ["zzz"])
    topic = ".".join(["seg"] * 60)
    assert topic_matches(pattern, topic) is False
    assert topic_matches(pattern, topic + ".zzz") is True


def test_topic_matches_adversarial_hash_star_alternation():
    # '#.*' repeated: each '*' needs exactly one segment, each '#' zero
    # or more, so ten pairs need >= 10 segments — another worst case for
    # the old backtracker.
    pattern = ".".join(["#", "*"] * 10)
    assert topic_matches(pattern, ".".join(["x"] * 9)) is False
    assert topic_matches(pattern, ".".join(["x"] * 10)) is True
    assert topic_matches(pattern, ".".join(["x"] * 50)) is True


def test_topic_matches_adversarial_hash_sandwich():
    pattern = "a.#.b.#.b.#.b.#.c"
    assert topic_matches(pattern, "a." + "b." * 40 + "c") is True
    assert topic_matches(pattern, "a." + "b." * 40 + "d") is False


# -- pub/sub flow ------------------------------------------------------------------

def make_bus(sim, network):
    bus = MessageBus(sim, network)
    broker = bus.add_broker("main", site="a")
    return bus, broker


def test_publish_routes_to_bound_queue(sim, network):
    bus, broker = make_bus(sim, network)
    broker.declare_queue("xrd-data")
    broker.bind("xrd-data", "lab.*.xrd")
    routed = {}

    def publisher(sim, bus):
        msg = Message(Performative.INFORM, "xrd-1", "lab.a.xrd",
                      payload={"scan": 1})
        routed["n"] = yield from bus.publish("main", "b", "lab.a.xrd", msg)

    sim.process(publisher(sim, bus))
    sim.run()
    assert routed["n"] == 1
    assert len(broker.queues["xrd-data"]) == 1
    # The depth gauge (read by dashboards and the C002 contract check)
    # tracks the undelivered backlog.
    assert broker.metrics.gauge("bus.queue.depth", queue="xrd-data",
                                site="a").value == 1


def test_fanout_to_multiple_queues(sim, network):
    bus, broker = make_bus(sim, network)
    for q, pattern in [("q1", "lab.#"), ("q2", "lab.a.*"), ("q3", "other.#")]:
        broker.declare_queue(q)
        broker.bind(q, pattern)

    def publisher(sim, bus):
        msg = Message(Performative.INFORM, "s", "t")
        n = yield from bus.publish("main", "a", "lab.a.xrd", msg)
        assert n == 2  # q1 and q2, not q3

    sim.process(publisher(sim, bus))
    sim.run()
    assert broker.stats["routed"] == 2


def test_unroutable_message_counted(sim, network):
    bus, broker = make_bus(sim, network)

    def publisher(sim, bus):
        msg = Message(Performative.INFORM, "s", "t")
        n = yield from bus.publish("main", "a", "nowhere.topic", msg)
        assert n == 0

    sim.process(publisher(sim, bus))
    sim.run()
    assert broker.stats["unroutable"] == 1


def test_consume_delivers_and_ack(sim, network):
    bus, broker = make_bus(sim, network)
    queue = broker.declare_queue("q")
    broker.bind("q", "t.#")
    got = []

    def publisher(sim, bus):
        msg = Message(Performative.INFORM, "p", "t.x", payload="payload-1")
        yield from bus.publish("main", "b", "t.x", msg)

    def consumer(sim, bus):
        env = yield from bus.consume("main", "q", consumer_site="b")
        got.append(env.message.payload)
        queue.ack(env)

    sim.process(publisher(sim, bus))
    sim.process(consumer(sim, bus))
    sim.run()
    assert got == ["payload-1"]
    assert queue.unacked_count == 0
    assert queue.stats["acked"] == 1


def test_nack_redelivers_with_attempt_bump(sim, network):
    bus, broker = make_bus(sim, network)
    queue = broker.declare_queue("q")
    broker.bind("q", "t")
    attempts = []

    def publisher(sim, bus):
        msg = Message(Performative.INFORM, "p", "t")
        yield from bus.publish("main", "b", "t", msg)

    def consumer(sim, bus):
        env = yield from bus.consume("main", "q", consumer_site="b")
        attempts.append(env.attempt)
        queue.nack(env)  # simulated processing failure
        env2 = yield from bus.consume("main", "q", consumer_site="b")
        attempts.append(env2.attempt)
        queue.ack(env2)

    sim.process(publisher(sim, bus))
    sim.process(consumer(sim, bus))
    sim.run()
    assert attempts == [1, 2]


def test_nack_dead_letters_after_max_attempts(sim, network):
    bus, broker = make_bus(sim, network)
    queue = broker.declare_queue("q", max_attempts=2)
    broker.bind("q", "t")

    def publisher(sim, bus):
        yield from bus.publish("main", "b", "t",
                               Message(Performative.INFORM, "p", "t"))

    def consumer(sim, bus):
        for _ in range(2):
            env = yield from bus.consume("main", "q", consumer_site="b")
            queue.nack(env)

    sim.process(publisher(sim, bus))
    sim.process(consumer(sim, bus))
    sim.run()
    assert len(queue.dead_letters) == 1
    assert queue.stats["dead"] == 1
    assert len(queue) == 0


def test_publish_to_dead_broker_raises(sim, network):
    bus, broker = make_bus(sim, network)
    broker.kill()

    def publisher(sim, bus):
        with pytest.raises(BrokerDown):
            yield from bus.publish("main", "b", "t",
                                   Message(Performative.INFORM, "p", "t"))

    sim.process(publisher(sim, bus))
    sim.run()


def test_broker_revive_restores_service(sim, network):
    bus, broker = make_bus(sim, network)
    broker.declare_queue("q")
    broker.bind("q", "t")
    broker.kill()
    broker.revive()

    def publisher(sim, bus):
        n = yield from bus.publish("main", "b", "t",
                                   Message(Performative.INFORM, "p", "t"))
        assert n == 1

    sim.process(publisher(sim, bus))
    sim.run()


def test_consumer_blocks_until_message_arrives(sim, network):
    bus, broker = make_bus(sim, network)
    queue = broker.declare_queue("q")
    broker.bind("q", "t")
    times = {}

    def consumer(sim, bus):
        env = yield from bus.consume("main", "q", consumer_site="b")
        times["got"] = sim.now
        queue.ack(env)

    def late_publisher(sim, bus):
        yield sim.timeout(5.0)
        yield from bus.publish("main", "b", "t",
                               Message(Performative.INFORM, "p", "t"))

    sim.process(consumer(sim, bus))
    sim.process(late_publisher(sim, bus))
    sim.run()
    assert times["got"] > 5.0


def test_duplicate_broker_rejected(sim, network):
    bus, _ = make_bus(sim, network)
    with pytest.raises(ValueError):
        bus.add_broker("main", site="b")


def test_bind_unknown_queue_rejected(sim, network):
    _, broker = make_bus(sim, network)
    with pytest.raises(KeyError):
        broker.bind("ghost", "t")


# -- exhaustive small-alphabet equivalence for topic_matches -------------------

def _all_words(alphabet, max_len):
    words = []
    frontier = [()]
    for _ in range(max_len):
        frontier = [w + (s,) for w in frontier for s in alphabet]
        words.extend(frontier)
    return words


def test_topic_matches_equals_regex_reference_exhaustively():
    """Compare against a compiled-regex oracle over every pattern/topic
    up to 4 segments on the {a, b, *, #} alphabet (10 200 pairs).

    Each segment is a single character, so a topic maps faithfully to its
    concatenated characters and a pattern to a regex over them:
    ``a -> a``, ``b -> b``, ``* -> [ab]`` (exactly one segment),
    ``# -> [ab]*`` (zero or more segments).
    """
    import re

    seg_regex = {"a": "a", "b": "b", "*": "[ab]", "#": "[ab]*"}
    patterns = _all_words(("a", "b", "*", "#"), 4)
    topics = _all_words(("a", "b"), 4)
    for pat_segs in patterns:
        oracle = re.compile("".join(seg_regex[s] for s in pat_segs))
        pattern = ".".join(pat_segs)
        for top_segs in topics:
            expected = oracle.fullmatch("".join(top_segs)) is not None
            got = topic_matches(pattern, ".".join(top_segs))
            assert got == expected, (pattern, ".".join(top_segs))
