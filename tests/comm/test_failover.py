"""Tests for heartbeat-driven failover."""

import pytest

from repro.comm import FailoverGroup, RpcClient, RpcServer
from repro.comm.failover import NoHealthyReplica


@pytest.fixture
def group(sim, testbed_network):
    replicas = []
    for i in range(3):
        srv = RpcServer(sim, f"broker-{i}", site=f"site-{i + 1}")
        srv.register("echo", lambda p: p)
        FailoverGroup.install_health_endpoint(srv)
        replicas.append(srv)
    return FailoverGroup(sim, replicas, heartbeat_interval_s=0.1,
                         heartbeat_misses=2)


@pytest.fixture
def client(sim, testbed_network):
    return RpcClient(sim, testbed_network, site="site-0")


def test_empty_group_rejected(sim):
    with pytest.raises(ValueError):
        FailoverGroup(sim, [])


def test_primary_is_first_replica(group):
    assert group.primary.name == "broker-0"


def test_monitor_promotes_on_primary_death(sim, group, client):
    group.start_monitor(client)

    def killer():
        yield sim.timeout(1.0)
        group.primary.kill()

    sim.process(killer())
    sim.run(until=3.0)
    assert group.primary.name == "broker-1"
    assert any(kind == "promote" for _, kind, _ in group.events)


def test_recovery_time_sub_second(sim, group, client):
    group.start_monitor(client)

    def killer():
        yield sim.timeout(1.0)
        group.primary.kill()

    sim.process(killer())
    sim.run(until=5.0)
    rt = group.recovery_time()
    assert rt is not None
    # M11: automatic failover well under a second with 100 ms heartbeats.
    assert rt < 1.0


def test_call_through_group_transparent_failover(sim, group, client):
    group.replicas[0].kill()
    out = {}

    def proc():
        out["r"] = yield from group.call(client, "echo", "hello",
                                         deadline_s=0.5)

    sim.process(proc())
    sim.run()
    assert out["r"] == "hello"
    assert any(kind == "client-failover" for _, kind, _ in group.events)


def test_all_replicas_down_raises(sim, group, client):
    for r in group.replicas:
        r.kill()

    def proc():
        with pytest.raises(NoHealthyReplica):
            yield from group.call(client, "echo", "x", deadline_s=0.2)

    sim.process(proc())
    sim.run()


def test_promote_skips_dead_standby(sim, group, client):
    group.replicas[1].kill()
    group.replicas[0].kill()
    promoted = group.promote_next()
    assert promoted.name == "broker-2"


def test_monitor_stops_when_everything_down(sim, group, client):
    group.start_monitor(client)

    def killer():
        yield sim.timeout(0.5)
        for r in group.replicas:
            r.kill()

    sim.process(killer())
    sim.run(until=10.0)
    assert any(kind == "all-down" for _, kind, _ in group.events)


def test_healthy_replicas_listing(group):
    group.replicas[1].kill()
    names = [r.name for r in group.healthy_replicas()]
    assert names == ["broker-0", "broker-2"]
