"""Tests for the gRPC-style RPC layer."""

import pytest

from repro.comm import RpcClient, RpcError, RpcServer, RpcTimeout
from repro.comm.rpc import ServerDown
from repro.net import PacketLost


@pytest.fixture
def server(sim):
    srv = RpcServer(sim, "calc", site="b", handler_delay_s=0.001)
    srv.register("add", lambda p: p["x"] + p["y"])
    return srv


@pytest.fixture
def client(sim, network):
    return RpcClient(sim, network, site="a", identity="tester")


def run(sim, gen):
    out = {}

    def proc():
        out["result"] = yield from gen
    sim.process(proc())
    sim.run()
    return out.get("result")


def test_basic_call(sim, server, client):
    result = run(sim, client.call(server, "add", {"x": 2, "y": 3}))
    assert result == 5
    assert client.stats["calls"] == 1
    assert client.mean_latency() > 0.02  # two WAN hops at 10 ms each


def test_unknown_method_raises_rpc_error(sim, server, client):
    def proc():
        with pytest.raises(RpcError, match="no such method"):
            yield from client.call(server, "nope")
    sim.process(proc())
    sim.run()


def test_handler_exception_wrapped(sim, server, client):
    server.register("boom", lambda p: 1 / 0)

    def proc():
        with pytest.raises(RpcError, match="boom failed"):
            yield from client.call(server, "boom")
    sim.process(proc())
    sim.run()
    assert server.stats["errors"] == 1


def test_generator_handler_spends_sim_time(sim, server, client):
    def slow_handler(payload):
        yield sim.timeout(1.0)
        return "slow-done"
    server.register("slow", slow_handler)
    result = run(sim, client.call(server, "slow"))
    assert result == "slow-done"
    assert sim.now > 1.0


def test_deadline_timeout(sim, server, client):
    def stuck_handler(payload):
        yield sim.timeout(100.0)
        return "never"
    server.register("stuck", stuck_handler)

    observed = {}

    def proc():
        with pytest.raises(RpcTimeout):
            yield from client.call(server, "stuck", deadline_s=0.5)
        observed["t"] = sim.now
    sim.process(proc())
    sim.run()
    assert client.stats["timeouts"] == 1
    # The client observed the timeout at the deadline, even though the
    # abandoned server-side handler kept running in simulated time.
    assert observed["t"] == pytest.approx(0.5, abs=0.01)


def test_dead_server_raises(sim, server, client):
    server.kill()

    def proc():
        with pytest.raises((ServerDown, RpcTimeout)):
            yield from client.call(server, "add", {"x": 1, "y": 1},
                                   deadline_s=0.5, retries=0)
    sim.process(proc())
    sim.run()


def test_retry_succeeds_after_transient_loss(sim, two_site_topo, rngs, server):
    # Degrade the link so that early attempts are lost, then heal it.
    from repro.net import FaultInjector, Network
    faults = FaultInjector(sim)
    net = Network(sim, two_site_topo, rngs.stream("net"), faults)
    client = RpcClient(sim, net, site="a")
    faults.degrade_link("a", "b", extra_loss=1.0, duration=0.06)

    result = run(sim, client.call(server, "add", {"x": 4, "y": 4},
                                  deadline_s=5.0, retries=5, backoff_s=0.05))
    assert result == 8
    assert client.stats["retries"] >= 1


def test_retries_exhausted_raises_timeout(sim, two_site_topo, rngs, server):
    from repro.net import FaultInjector, Network
    faults = FaultInjector(sim)
    net = Network(sim, two_site_topo, rngs.stream("net"), faults)
    client = RpcClient(sim, net, site="a")
    faults.degrade_link("a", "b", extra_loss=1.0)  # permanent

    def proc():
        with pytest.raises(RpcTimeout):
            yield from client.call(server, "add", {"x": 1, "y": 1},
                                   deadline_s=1.0, retries=2)
    sim.process(proc())
    sim.run()


def test_method_decorator(sim, server, client):
    @server.method("mul")
    def mul(p):
        return p["x"] * p["y"]

    assert run(sim, client.call(server, "mul", {"x": 3, "y": 4})) == 12


def test_call_with_retries_on_custom_exceptions(sim, two_site_topo, rngs,
                                                server):
    from repro.net import FaultInjector, Network
    faults = FaultInjector(sim)
    net = Network(sim, two_site_topo, rngs.stream("net"), faults)
    client = RpcClient(sim, net, site="a")
    faults.degrade_link("a", "b", extra_loss=1.0, duration=0.02)

    result = run(sim, client.call_with_retries_on(
        server, "add", {"x": 1, "y": 2},
        retry_exceptions=(PacketLost, RpcTimeout),
        deadline_s=2.0, retries=6, backoff_s=0.01))
    assert result == 3


def test_latency_stats_accumulate(sim, server, client):
    def proc():
        for _ in range(3):
            yield from client.call(server, "add", {"x": 1, "y": 1})
    sim.process(proc())
    sim.run()
    assert len(client.latencies) == 3
    assert client.stats["total_latency"] == pytest.approx(sum(client.latencies))


# -- per-client call ids (regression) ------------------------------------------

class _CapturingGateway:
    """Fake zero-trust gateway recording each request's conversation id."""

    def __init__(self):
        self.conversation_ids = []

    def verify(self, env, action=""):
        self.conversation_ids.append(env.message.conversation_id)
        return 0.0


def test_call_ids_are_per_client_not_module_global(sim, network, server):
    # Two clients built in the same process must both stamp conversation
    # ids starting at 1 (a module-global counter would leak state from
    # one world into the next and break same-seed trace equality).
    gw1, gw2 = _CapturingGateway(), _CapturingGateway()
    c1 = RpcClient(sim, network, site="a", identity="tester", gateway=gw1)
    run(sim, c1.call(server, "add", {"x": 1, "y": 1}))
    run(sim, c1.call(server, "add", {"x": 1, "y": 2}))
    c2 = RpcClient(sim, network, site="a", identity="tester", gateway=gw2)
    run(sim, c2.call(server, "add", {"x": 1, "y": 3}))
    assert gw1.conversation_ids == ["tester/1", "tester/2"]
    assert gw2.conversation_ids == ["tester/1"]
