"""Tests for capability negotiation."""

import pytest

from repro.comm import CapabilityOffer, Negotiator, RpcClient, RpcServer
from repro.comm.negotiation import (Agreement, NegotiationFailed,
                                    intersect_offers)


def offer(**kw):
    defaults = dict(protocols={"grpc": [3, 2], "amqp": [1]})
    defaults.update(kw)
    return CapabilityOffer(**defaults)


# -- pure intersection ----------------------------------------------------------

def test_intersection_picks_common_protocol_highest_version():
    a = offer(protocols={"grpc": [3, 2], "amqp": [1]})
    b = offer(protocols={"grpc": [2, 1]})
    ag = intersect_offers(a, b)
    assert (ag.protocol, ag.version) == ("grpc", 2)


def test_intersection_respects_preferences():
    a = offer(protocols={"grpc": [1], "amqp": [1]},
              preferences={"amqp": 5.0})
    b = offer(protocols={"grpc": [1], "amqp": [1]},
              preferences={"amqp": 2.0})
    assert intersect_offers(a, b).protocol == "amqp"


def test_intersection_qos_strongest_common():
    a = offer(qos=("at-most-once", "at-least-once", "exactly-once"))
    b = offer(qos=("at-most-once", "at-least-once"))
    assert intersect_offers(a, b).qos == "at-least-once"


def test_intersection_encoding_initiator_preference():
    a = offer(encodings=("hdf5", "binary", "json"))
    b = offer(encodings=("json", "binary"))
    assert intersect_offers(a, b).encoding == "binary"


def test_intersection_max_message_is_min():
    a = offer(max_message_bytes=1e6)
    b = offer(max_message_bytes=1e9)
    assert intersect_offers(a, b).max_message_bytes == 1e6


def test_no_common_protocol_fails():
    with pytest.raises(NegotiationFailed, match="no common protocol"):
        intersect_offers(offer(protocols={"grpc": [1]}),
                         offer(protocols={"mqtt": [1]}))


def test_no_common_version_fails():
    with pytest.raises(NegotiationFailed):
        intersect_offers(offer(protocols={"grpc": [3]}),
                         offer(protocols={"grpc": [1]}))


def test_no_common_qos_fails():
    with pytest.raises(NegotiationFailed, match="QoS"):
        intersect_offers(offer(qos=("exactly-once",)),
                         offer(qos=("at-most-once",)))


def test_no_common_encoding_fails():
    with pytest.raises(NegotiationFailed, match="encoding"):
        intersect_offers(offer(encodings=("hdf5",)),
                         offer(encodings=("json",)))


def test_intersection_symmetric_in_protocol_choice():
    a = offer(protocols={"grpc": [2], "amqp": [1]}, preferences={"grpc": 2.0})
    b = offer(protocols={"grpc": [2], "amqp": [1]}, preferences={"amqp": 1.5})
    assert intersect_offers(a, b).protocol == intersect_offers(b, a).protocol


# -- over-RPC protocol ------------------------------------------------------------

def test_negotiate_with_registry_hint_one_round(sim, network):
    server = RpcServer(sim, "inst", site="b")
    responder = Negotiator(sim, offer(protocols={"grpc": [2, 1]}))
    responder.serve(server)
    initiator = Negotiator(sim, offer(protocols={"grpc": [3, 2], "amqp": [1]}))
    client = RpcClient(sim, network, site="a")
    out = {}

    def proc():
        ag = yield from initiator.negotiate(
            client, server,
            responder_offer_hint=offer(protocols={"grpc": [2, 1]}))
        out["ag"] = ag

    sim.process(proc())
    sim.run()
    assert out["ag"].protocol == "grpc"
    assert out["ag"].version == 2
    assert out["ag"].rounds == 1
    assert responder.agreements == [out["ag"]]


def test_negotiate_without_hint_uses_counter_round(sim, network):
    server = RpcServer(sim, "inst", site="b")
    responder = Negotiator(sim, offer(protocols={"grpc": [1]}))
    responder.serve(server)
    initiator = Negotiator(sim, offer(protocols={"grpc": [3, 2, 1]}))
    client = RpcClient(sim, network, site="a")
    out = {}

    def proc():
        out["ag"] = yield from initiator.negotiate(client, server)

    sim.process(proc())
    sim.run()
    assert out["ag"].version == 1
    assert out["ag"].rounds == 2  # propose v3 -> counter -> propose v1


def test_negotiate_incompatible_fails(sim, network):
    server = RpcServer(sim, "inst", site="b")
    responder = Negotiator(sim, offer(protocols={"mqtt": [1]}))
    responder.serve(server)
    initiator = Negotiator(sim, offer(protocols={"grpc": [1]}))
    client = RpcClient(sim, network, site="a")

    def proc():
        with pytest.raises(NegotiationFailed):
            yield from initiator.negotiate(client, server)

    sim.process(proc())
    sim.run()


def test_agreement_recorded_on_both_sides(sim, network):
    server = RpcServer(sim, "inst", site="b")
    responder = Negotiator(sim, offer())
    responder.serve(server)
    initiator = Negotiator(sim, offer())
    client = RpcClient(sim, network, site="a")

    def proc():
        yield from initiator.negotiate(client, server)

    sim.process(proc())
    sim.run()
    assert len(initiator.agreements) == 1
    assert len(responder.agreements) == 1
    a, b = initiator.agreements[0], responder.agreements[0]
    assert (a.protocol, a.version, a.qos) == (b.protocol, b.version, b.qos)
