"""Tests for DNS-SD-style discovery."""

import pytest

from repro.comm import DnsSd, ServiceAnnouncement, ServiceRegistry


@pytest.fixture
def setup(sim, testbed_network):
    registry = ServiceRegistry(sim)
    daemons = {
        f"site-{i}": DnsSd(sim, testbed_network, registry,
                           registry_site="site-0", site=f"site-{i}",
                           cache_ttl_s=5.0)
        for i in range(5)
    }
    return registry, daemons


def announce(sim, daemon, instance, stype="_instrument._aisle", **caps):
    def proc():
        yield from daemon.announce(ServiceAnnouncement(
            instance=instance, service_type=stype, capabilities=caps))
    sim.process(proc())
    sim.run()


def test_announce_then_browse_cross_site(sim, setup):
    registry, daemons = setup
    announce(sim, daemons["site-1"], "xrd-1.site-1", technique="xrd")
    found = {}

    def browser():
        recs = yield from daemons["site-3"].browse("_instrument._aisle")
        found["recs"] = recs

    sim.process(browser())
    sim.run()
    assert [r.instance for r in found["recs"]] == ["xrd-1.site-1"]
    assert found["recs"][0].site == "site-1"


def test_browse_pays_wan_round_trip(sim, setup):
    _, daemons = setup
    announce(sim, daemons["site-1"], "svc-1")
    t0 = sim.now

    def browser():
        yield from daemons["site-3"].browse("_instrument._aisle")

    sim.process(browser())
    sim.run()
    assert sim.now - t0 >= 0.02  # at least one 20 ms WAN leg


def test_cache_serves_repeat_browse(sim, setup):
    _, daemons = setup
    announce(sim, daemons["site-1"], "svc-1")
    d = daemons["site-3"]

    def browser():
        yield from d.browse("_instrument._aisle")
        t_after_first = sim.now
        yield from d.browse("_instrument._aisle")
        assert sim.now == t_after_first  # served from cache, zero time

    sim.process(browser())
    sim.run()
    assert d.stats["cache_hits"] == 1


def test_cache_expires_after_ttl(sim, setup):
    _, daemons = setup
    announce(sim, daemons["site-1"], "svc-1")
    d = daemons["site-3"]

    def browser():
        yield from d.browse("_instrument._aisle")
        yield sim.timeout(10.0)  # > cache_ttl_s
        yield from d.browse("_instrument._aisle")

    sim.process(browser())
    sim.run()
    assert d.stats["cache_hits"] == 0


def test_capability_filter_applies_to_cached_results(sim, setup):
    _, daemons = setup
    announce(sim, daemons["site-1"], "xrd-1", technique="xrd")
    announce(sim, daemons["site-2"], "sem-1", technique="sem")
    d = daemons["site-3"]
    got = {}

    def browser():
        got["all"] = yield from d.browse("_instrument._aisle")
        got["xrd"] = yield from d.browse("_instrument._aisle",
                                         technique="xrd")

    sim.process(browser())
    sim.run()
    assert len(got["all"]) == 2
    assert [r.instance for r in got["xrd"]] == ["xrd-1"]


def test_subscription_invalidates_cache(sim, setup):
    registry, daemons = setup
    announce(sim, daemons["site-1"], "svc-1")
    d = daemons["site-3"]
    changes = []
    d.subscribe("_instrument._aisle", lambda ev, r: changes.append((ev, r.instance)))

    def browser():
        first = yield from d.browse("_instrument._aisle")
        assert len(first) == 1
        yield from daemons["site-2"].announce(ServiceAnnouncement(
            instance="svc-2", service_type="_instrument._aisle"))
        # cache was invalidated by the watch callback -> fresh browse
        second = yield from d.browse("_instrument._aisle")
        assert len(second) == 2

    sim.process(browser())
    sim.run()
    assert ("register", "svc-2") in changes


def test_withdraw_removes_service(sim, setup):
    registry, daemons = setup
    announce(sim, daemons["site-1"], "svc-1")

    def withdrawer():
        ok = yield from daemons["site-1"].withdraw("svc-1")
        assert ok

    sim.process(withdrawer())
    sim.run()
    assert len(registry) == 0


def test_keepalive_sustains_lease(sim, setup):
    registry, daemons = setup
    d = daemons["site-1"]

    def proc():
        yield from d.announce(ServiceAnnouncement(
            instance="svc-1", service_type="_instrument._aisle", ttl_s=30.0))

    sim.process(proc())
    sim.run()
    sim.process(d.keepalive("svc-1", interval_s=10.0))
    sim.run(until=100.0)
    assert registry.get("svc-1") is not None


def test_lease_lapses_without_keepalive(sim, setup):
    registry, daemons = setup
    announce(sim, daemons["site-1"], "svc-1")  # default ttl 60
    sim.run(until=120.0)
    assert registry.get("svc-1") is None


def test_resolve_single_instance(sim, setup):
    _, daemons = setup
    announce(sim, daemons["site-1"], "svc-1", technique="xrd")
    got = {}

    def proc():
        got["rec"] = yield from daemons["site-4"].resolve("svc-1")
        got["missing"] = yield from daemons["site-4"].resolve("ghost")

    sim.process(proc())
    sim.run()
    assert got["rec"].capabilities["technique"] == "xrd"
    assert got["missing"] is None
