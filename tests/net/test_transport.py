"""Tests for the Network transfer model."""

import pytest

from repro.net import (FaultInjector, Link, Network, PacketLost, Site,
                       Topology, Unreachable)
from repro.sim import RngRegistry, Simulator


def make_net(loss=0.0, jitter=0.0, latency=0.01, bandwidth=1e9, seed=1):
    sim = Simulator()
    topo = Topology()
    topo.add_site(Site.make("a"))
    topo.add_site(Site.make("b"))
    topo.connect("a", "b", Link(latency_s=latency, bandwidth_Bps=bandwidth,
                                jitter_s=jitter, loss_prob=loss))
    faults = FaultInjector(sim)
    net = Network(sim, topo, RngRegistry(seed).stream("net"), faults)
    return sim, net, faults


def run_transfer(sim, net, src="a", dst="b", size=1000.0):
    result = {}

    def proc(sim, net):
        latency = yield from net.transfer(src, dst, size)
        result["latency"] = latency
        result["arrived_at"] = sim.now

    p = sim.process(proc(sim, net))
    sim.run()
    return result, p


def test_delivery_time_latency_plus_serialization():
    sim, net, _ = make_net(latency=0.01, bandwidth=1e6)
    result, _ = run_transfer(sim, net, size=1000.0)
    # 10 ms propagation + 1000/1e6 s serialization = 11 ms
    assert result["arrived_at"] == pytest.approx(0.011)
    assert result["latency"] == pytest.approx(0.011)


def test_local_delivery_is_fast():
    sim, net, _ = make_net()
    result, _ = run_transfer(sim, net, src="a", dst="a", size=100.0)
    assert result["arrived_at"] < 0.001


def test_jitter_perturbs_latency():
    sim, net, _ = make_net(jitter=0.005)
    result, _ = run_transfer(sim, net)
    assert result["arrived_at"] >= 0.01  # jitter is only ever additive


def test_loss_fails_transfer():
    sim, net, _ = make_net(loss=0.999999)

    def proc(sim, net):
        with pytest.raises(PacketLost):
            yield from net.transfer("a", "b", 100.0)

    sim.process(proc(sim, net))
    sim.run()
    assert net.stats["lost"] == 1


def test_link_fault_makes_unreachable():
    sim, net, faults = make_net()
    faults.fail_link("a", "b")

    def proc(sim, net):
        with pytest.raises(Unreachable):
            yield from net.transfer("a", "b", 100.0)

    sim.process(proc(sim, net))
    sim.run()
    assert net.stats["unreachable"] == 1


def test_link_fault_heals_after_duration():
    sim, net, faults = make_net()
    faults.fail_link("a", "b", duration=5.0)
    outcomes = []

    def proc(sim, net):
        try:
            yield from net.transfer("a", "b", 100.0)
            outcomes.append("early-ok")
        except Unreachable:
            outcomes.append("early-fail")
        yield sim.timeout(10.0)
        yield from net.transfer("a", "b", 100.0)
        outcomes.append("late-ok")

    sim.process(proc(sim, net))
    sim.run()
    assert outcomes == ["early-fail", "late-ok"]


def test_site_fault_blocks_endpoint():
    sim, net, faults = make_net()
    faults.fail_site("b")

    def proc(sim, net):
        with pytest.raises(Unreachable):
            yield from net.transfer("a", "b", 100.0)

    sim.process(proc(sim, net))
    sim.run()


def test_partition_blocks_cross_group_traffic():
    sim = Simulator()
    topo = Topology.national_lab_testbed(4, jitter_s=0.0)
    faults = FaultInjector(sim)
    net = Network(sim, topo, RngRegistry(2).stream("net"), faults)
    faults.partition(["site-0", "site-1"], ["site-2", "site-3"])
    results = []

    def proc(sim, net):
        # within-group traffic still works
        yield from net.transfer("site-0", "site-1", 10.0)
        results.append("intra-ok")
        try:
            yield from net.transfer("site-0", "site-2", 10.0)
        except Unreachable:
            results.append("inter-blocked")

    sim.process(proc(sim, net))
    sim.run()
    assert results == ["intra-ok", "inter-blocked"]


def test_reroute_around_failed_link():
    sim = Simulator()
    topo = Topology()
    for n in "abc":
        topo.add_site(Site.make(n))
    topo.connect("a", "b", Link(latency_s=0.01, jitter_s=0.0))
    topo.connect("a", "c", Link(latency_s=0.05, jitter_s=0.0))
    topo.connect("c", "b", Link(latency_s=0.05, jitter_s=0.0))
    faults = FaultInjector(sim)
    net = Network(sim, topo, RngRegistry(3).stream("net"), faults)
    faults.fail_link("a", "b")
    result = {}

    def proc(sim, net):
        yield from net.transfer("a", "b", 0.0)
        result["t"] = sim.now

    sim.process(proc(sim, net))
    sim.run()
    assert result["t"] == pytest.approx(0.10)  # took the a-c-b detour


def test_degraded_link_extra_loss():
    sim, net, faults = make_net(loss=0.0)
    faults.degrade_link("a", "b", extra_loss=1.0)

    def proc(sim, net):
        with pytest.raises(PacketLost):
            yield from net.transfer("a", "b", 10.0)

    sim.process(proc(sim, net))
    sim.run()


def test_degradation_expires():
    sim, net, faults = make_net(loss=0.0)
    faults.degrade_link("a", "b", extra_loss=1.0, duration=1.0)

    def proc(sim, net):
        yield sim.timeout(2.0)
        yield from net.transfer("a", "b", 10.0)  # must succeed

    sim.process(proc(sim, net))
    sim.run()


def test_stats_accumulate():
    sim, net, _ = make_net()

    def proc(sim, net):
        for _ in range(5):
            yield from net.transfer("a", "b", 100.0)

    sim.process(proc(sim, net))
    sim.run()
    assert net.stats["transfers"] == 5
    assert net.stats["bytes"] == 500.0
    assert net.mean_latency() > 0


def test_fault_injector_any_active(sim):
    faults = FaultInjector(sim)
    assert not faults.any_active()
    faults.fail_link("a", "b", duration=1.0)
    assert faults.any_active()
