"""Tests for sites, links, and routing."""

import networkx as nx
import pytest

from repro.net import Link, Site, Topology


def test_site_tags():
    s = Site.make("ornl", institution="ORNL", kind="user-facility", rank=1)
    assert s.tag("kind") == "user-facility"
    assert s.tag("rank") == 1
    assert s.tag("missing", "default") == "default"


def test_site_is_hashable_and_frozen():
    s = Site.make("x")
    assert hash(s) == hash(Site.make("x"))
    with pytest.raises(Exception):
        s.name = "y"  # type: ignore[misc]


def test_link_validation():
    with pytest.raises(ValueError):
        Link(latency_s=-1)
    with pytest.raises(ValueError):
        Link(bandwidth_Bps=0)
    with pytest.raises(ValueError):
        Link(jitter_s=-0.1)
    with pytest.raises(ValueError):
        Link(loss_prob=1.0)


def test_duplicate_site_rejected():
    topo = Topology()
    topo.add_site(Site.make("a"))
    with pytest.raises(ValueError):
        topo.add_site(Site.make("a"))


def test_connect_unknown_site_rejected():
    topo = Topology()
    topo.add_site(Site.make("a"))
    with pytest.raises(KeyError):
        topo.connect("a", "ghost")


def test_self_loop_rejected():
    topo = Topology()
    topo.add_site(Site.make("a"))
    with pytest.raises(ValueError):
        topo.connect("a", "a")


def test_shortest_path_prefers_low_latency():
    topo = Topology()
    for n in "abc":
        topo.add_site(Site.make(n))
    topo.connect("a", "b", Link(latency_s=0.100))
    topo.connect("a", "c", Link(latency_s=0.010))
    topo.connect("c", "b", Link(latency_s=0.010))
    assert topo.path("a", "b") == ["a", "c", "b"]


def test_path_with_blocked_edge_reroutes():
    topo = Topology()
    for n in "abc":
        topo.add_site(Site.make(n))
    topo.connect("a", "b", Link(latency_s=0.01))
    topo.connect("a", "c", Link(latency_s=0.05))
    topo.connect("c", "b", Link(latency_s=0.05))
    assert topo.path("a", "b") == ["a", "b"]
    assert topo.path("a", "b", blocked=[("a", "b")]) == ["a", "c", "b"]


def test_path_to_self_is_trivial():
    topo = Topology()
    topo.add_site(Site.make("a"))
    assert topo.path("a", "a") == ["a"]


def test_disconnected_raises():
    topo = Topology()
    topo.add_site(Site.make("a"))
    topo.add_site(Site.make("b"))
    with pytest.raises(nx.NetworkXNoPath):
        topo.path("a", "b")


def test_path_links_alignment():
    topo = Topology()
    for n in "abc":
        topo.add_site(Site.make(n))
    l1 = topo.connect("a", "b", Link(latency_s=0.01))
    l2 = topo.connect("b", "c", Link(latency_s=0.02))
    assert topo.path_links(["a", "b", "c"]) == [l1, l2]


def test_national_lab_testbed_connected():
    for n in (2, 3, 5, 8, 12):
        topo = Topology.national_lab_testbed(n)
        assert len(topo.sites()) == n
        # every pair reachable
        for a in topo.sites():
            for b in topo.sites():
                assert topo.path(a.name, b.name)


def test_national_lab_testbed_min_size():
    with pytest.raises(ValueError):
        Topology.national_lab_testbed(1)
