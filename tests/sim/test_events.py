"""Tests for event primitives and composite conditions."""

import pytest

from repro.sim import Simulator
from repro.sim.events import ConditionValue


@pytest.fixture
def sim():
    return Simulator()


def test_event_untriggered_state(sim):
    ev = sim.event()
    assert not ev.triggered
    assert not ev.processed
    with pytest.raises(RuntimeError):
        ev.value
    with pytest.raises(RuntimeError):
        ev.ok


def test_succeed_delivers_value(sim):
    ev = sim.event()
    got = []

    def waiter(sim, ev):
        got.append((yield ev))

    sim.process(waiter(sim, ev))
    ev.succeed(123)
    sim.run()
    assert got == [123]
    assert ev.ok and ev.processed


def test_double_trigger_raises(sim):
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_fail_requires_exception(sim):
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_fail_delivers_exception_into_process(sim):
    ev = sim.event()
    caught = []

    def waiter(sim, ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim, ev))
    ev.fail(ValueError("nope"))
    sim.run()
    assert caught == ["nope"]


def test_unwaited_failure_crashes_run(sim):
    ev = sim.event()
    ev.fail(RuntimeError("lost failure"))
    with pytest.raises(RuntimeError, match="lost failure"):
        sim.run()


def test_succeed_with_delay_fires_later(sim):
    ev = sim.event()
    seen = []

    def waiter(sim, ev):
        yield ev
        seen.append(sim.now)

    sim.process(waiter(sim, ev))
    ev.succeed(delay=7.0)
    sim.run()
    assert seen == [7.0]


def test_all_of_waits_for_every_event(sim):
    done_at = []

    def waiter(sim):
        t1, t2 = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
        result = yield sim.all_of([t1, t2])
        done_at.append(sim.now)
        assert result[t1] == "a"
        assert result[t2] == "b"

    sim.process(waiter(sim))
    sim.run()
    assert done_at == [3.0]


def test_any_of_fires_on_first(sim):
    done_at = []

    def waiter(sim):
        first = sim.timeout(1.0, "fast")
        result = yield sim.any_of([first, sim.timeout(3.0, "slow")])
        done_at.append(sim.now)
        assert result[first] == "fast"

    sim.process(waiter(sim))
    sim.run()
    assert done_at == [1.0]
    assert sim.now == 3.0  # the slow timeout still drains


def test_and_or_operators(sim):
    results = []

    def waiter(sim):
        both = yield sim.timeout(1.0, 1) & sim.timeout(2.0, 2)
        results.append(("and", sim.now, len(both)))
        either = yield sim.timeout(1.0, 1) | sim.timeout(5.0, 2)
        results.append(("or", sim.now, len(either)))

    sim.process(waiter(sim))
    sim.run()
    assert results[0] == ("and", 2.0, 2)
    assert results[1] == ("or", 3.0, 1)


def test_empty_all_of_succeeds_immediately(sim):
    ev = sim.all_of([])
    assert ev.triggered
    assert isinstance(ev.value, ConditionValue)
    assert len(ev.value) == 0


def test_all_of_fails_fast_on_child_failure(sim):
    caught = []

    def waiter(sim):
        bad = sim.event()
        bad.fail(RuntimeError("child died"))
        try:
            yield sim.all_of([sim.timeout(10.0), bad])
        except RuntimeError as exc:
            caught.append((sim.now, str(exc)))

    sim.process(waiter(sim))
    sim.run()
    assert caught == [(0.0, "child died")]


def test_condition_with_already_processed_children(sim):
    t = sim.timeout(1.0, "x")
    sim.run()
    seen = []

    def waiter(sim, t):
        result = yield sim.all_of([t])
        seen.append(result[t])

    sim.process(waiter(sim, t))
    sim.run()
    assert seen == ["x"]


def test_condition_rejects_foreign_events(sim):
    other = Simulator()
    with pytest.raises(ValueError):
        sim.all_of([sim.timeout(1.0), other.timeout(1.0)])


def test_condition_value_mapping_api(sim):
    t1 = sim.timeout(0.0, "v")
    cond = sim.all_of([t1])
    sim.run()
    value = cond.value
    assert t1 in value
    assert value[t1] == "v"
    assert list(value) == [t1]
    assert value.todict() == {t1: "v"}
    with pytest.raises(KeyError):
        value[sim.event()]
