"""Tests for generator-based processes and interrupts."""

import pytest

from repro.sim import Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_process_return_value(sim):
    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 42
    assert not p.is_alive


def test_process_waits_on_another_process(sim):
    def child(sim):
        yield sim.timeout(2.0)
        return "child-result"

    def parent(sim, results):
        results.append((yield sim.process(child(sim))))

    results = []
    sim.process(parent(sim, results))
    sim.run()
    assert results == ["child-result"]


def test_non_generator_rejected(sim):
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_yielding_non_event_raises_inside_process(sim):
    def proc(sim):
        yield "not an event"

    p = sim.process(proc(sim))
    with pytest.raises(TypeError, match="not an Event"):
        sim.run()
    assert not p.is_alive


def test_interrupt_delivers_cause(sim):
    causes = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            causes.append((sim.now, i.cause))

    def attacker(sim, victim_proc):
        yield sim.timeout(5.0)
        victim_proc.interrupt("maintenance")

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert causes == [(5.0, "maintenance")]


def test_interrupted_process_can_continue(sim):
    trail = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            trail.append("interrupted")
        yield sim.timeout(1.0)
        trail.append("resumed")

    def attacker(sim, v):
        yield sim.timeout(2.0)
        v.interrupt()

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert trail == ["interrupted", "resumed"]
    assert sim.now == 100.0  # original timeout still drains the queue


def test_interrupt_finished_process_raises(sim):
    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected(sim):
    def proc(sim):
        me = sim.active_process
        with pytest.raises(RuntimeError):
            me.interrupt()
        yield sim.timeout(0.0)

    sim.process(proc(sim))
    sim.run()


def test_interrupt_race_with_completion_is_dropped(sim):
    # Interrupt scheduled at the same instant the victim finishes: the
    # victim's completion wins and the interrupt evaporates.
    def victim(sim):
        yield sim.timeout(1.0)
        return "ok"

    def attacker(sim, v):
        yield sim.timeout(1.0)
        if v.is_alive:
            v.interrupt()

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert v.value == "ok"


def test_processes_created_in_order_start_in_order(sim):
    order = []

    def proc(sim, tag):
        order.append(tag)
        yield sim.timeout(0.0)

    for tag in range(5):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_active_process_visible_during_execution(sim):
    seen = []

    def proc(sim):
        seen.append(sim.active_process)
        yield sim.timeout(0.0)

    p = sim.process(proc(sim))
    sim.run()
    assert seen == [p]
    assert sim.active_process is None


def test_nested_synchronous_waits(sim):
    # Waiting on an already-processed event resumes without rescheduling.
    def proc(sim):
        t = sim.timeout(1.0, "x")
        yield sim.timeout(2.0)
        value = yield t  # t fired at t=1, already processed
        return value

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "x"
    assert sim.now == 2.0
