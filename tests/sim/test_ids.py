"""Unit tests for the per-world id sequencer and its ambient binding."""

import contextvars

from repro.sim import ids as ids_mod
from repro.sim.ids import (IdSequencer, ambient_ids, bind_ambient, next_id,
                           next_label)
from repro.sim.kernel import Simulator


# -- IdSequencer --------------------------------------------------------------

def test_streams_are_independent_and_one_based():
    ids = IdSequencer()
    assert ids.next("sample") == 1
    assert ids.next("sample") == 2
    assert ids.next("token") == 1
    assert ids.next("sample") == 3


def test_label_defaults_to_stream_name():
    ids = IdSequencer()
    assert ids.label("sample") == "sample-1"
    assert ids.label("sample") == "sample-2"


def test_label_with_prefix_shares_the_stream():
    ids = IdSequencer()
    assert ids.label("measurement", "meas") == "meas-1"
    assert ids.next("measurement") == 2


def test_peek_does_not_allocate():
    ids = IdSequencer()
    assert ids.peek("x") == 0
    ids.next("x")
    assert ids.peek("x") == 1
    assert ids.peek("x") == 1


def test_snapshot_is_a_copy():
    ids = IdSequencer()
    ids.next("a")
    ids.next("b")
    snap = ids.snapshot()
    assert snap == {"a": 1, "b": 1}
    snap["a"] = 99
    assert ids.peek("a") == 1


# -- ambient binding ----------------------------------------------------------

def test_simulator_binds_its_sequencer_as_ambient():
    sim = Simulator()
    assert ambient_ids() is sim.ids
    assert next_label("thing") == "thing-1"
    assert sim.ids.peek("thing") == 1


def test_last_constructed_world_wins_until_a_step():
    a = Simulator()
    b = Simulator()
    assert ambient_ids() is b.ids
    next_id("x")
    assert b.ids.peek("x") == 1 and a.ids.peek("x") == 0


def test_step_rebinds_ambient_to_the_stepping_world():
    a = Simulator()
    b = Simulator()  # now ambient
    minted = {}

    a.schedule_callback(1.0, lambda: minted.setdefault("a", next_label("m")))
    b.schedule_callback(1.0, lambda: minted.setdefault("b", next_label("m")))
    a.step()   # rebinds ambient to a for the duration of a's event
    b.step()
    assert minted == {"a": "m-1", "b": "m-1"}
    assert a.ids.snapshot() == b.ids.snapshot() == {"m": 1}


def test_interleaved_same_seed_worlds_mint_identical_ids():
    def drive(sim, out):
        for _ in range(3):
            sim.schedule_callback(1.0, lambda: out.append(next_label("rec")))

    a, b = Simulator(), Simulator()
    got_a, got_b = [], []
    drive(a, got_a)
    drive(b, got_b)
    # Alternate steps: with a process-global counter this interleaving
    # would split one sequence across the two worlds.
    for _ in range(3):
        a.step()
        b.step()
    assert got_a == got_b == ["rec-1", "rec-2", "rec-3"]


def test_fallback_used_only_without_any_world():
    # A fresh (empty) execution context has no ambient binding, so the
    # process-local fallback serves the allocation.
    ctx = contextvars.Context()
    assert ctx.run(ambient_ids) is ids_mod._NO_WORLD_FALLBACK


def test_bind_ambient_is_idempotent():
    ids = IdSequencer()
    bind_ambient(ids)
    bind_ambient(ids)
    assert ambient_ids() is ids
