"""Calendar queue vs binary heap: pop-order and kernel equivalence.

The calendar queue's whole value is being faster while *byte-identical*
in behavior to the binary heap it replaced.  These tests hold that line
from two directions:

- structure-level: randomized seeded push/pop schedules through
  :class:`~repro.sim.calendar.CalendarQueue` and ``heapq`` must pop in
  the same global ``(time, seq)`` order, including same-time ties and
  mid-stream ``stop_at`` boundaries;
- kernel-level: the same mixed program (coalesced pollers, random-delay
  chains, interrupt-cancelled timeouts, ``schedule_callback`` deferred
  resolution) run on the live :class:`~repro.sim.kernel.Simulator` and
  on the frozen :class:`~repro.perf.legacy_kernel.LegacySimulator` must
  produce identical event traces and identical decision hashes.
"""

import heapq

import numpy as np
import pytest

from repro.perf.legacy_kernel import LegacySimulator
from repro.scale.hashing import decision_hash
from repro.sim.calendar import CalendarQueue
from repro.sim.kernel import Simulator
from repro.sim.process import Interrupt

_INF = float("inf")


# -- structure-level property test ---------------------------------------------


def _random_schedule(seed: int, n_ops: int = 2000):
    """A seeded stream of (push-time, stop-at) decisions with heavy ties."""
    rng = np.random.default_rng(seed)
    # Quantized times force many exact collisions (coalescing buckets);
    # occasional large offsets exercise the far band and migrations.
    times = np.round(rng.uniform(0.0, 8.0, size=n_ops), 1)
    far = rng.uniform(50.0, 500.0, size=n_ops)
    use_far = rng.random(n_ops) < 0.1
    return np.where(use_far, far, times), rng


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_calendar_matches_heap_pop_order(seed):
    offsets, rng = _random_schedule(seed)
    queue = CalendarQueue(start=0.0)
    heap: list = []
    seq = 0
    now = 0.0
    popped_cal: list = []
    popped_heap: list = []

    def push(at):
        nonlocal seq
        queue.push(at, seq, ("ev", seq))
        heapq.heappush(heap, (at, seq, ("ev", seq)))
        seq += 1

    i = 0
    while i < len(offsets) or heap:
        # Push a random-sized burst (bursts at one clock value produce
        # same-time ties whose seq order must be preserved).
        burst = int(rng.integers(0, 6))
        for _ in range(burst):
            if i < len(offsets):
                push(now + float(offsets[i]))
                i += 1
        # Drain a few events from both structures and advance the clock.
        for _ in range(int(rng.integers(1, 8))):
            ev = queue.pop_due(_INF)
            if ev is None:
                assert not heap
                break
            t, s, hev = heapq.heappop(heap)
            popped_cal.append((queue._active_time, ev))
            popped_heap.append((t, hev))
            now = t

    assert not heap and len(queue) == 0
    assert popped_cal == popped_heap


@pytest.mark.parametrize("seed", [3, 99])
def test_calendar_respects_stop_at_boundaries(seed):
    rng = np.random.default_rng(seed)
    queue = CalendarQueue(start=0.0)
    heap: list = []
    entries = sorted(
        (round(float(t), 1), s)
        for s, t in enumerate(rng.uniform(0.0, 20.0, size=500)))
    for t, s in sorted(entries, key=lambda e: e[1]):  # push in seq order
        queue.push(t, s, (t, s))
        heapq.heappush(heap, (t, s))
    for stop_at in (0.0, 3.3, 3.3, 7.05, 19.9, _INF):
        while True:
            ev = queue.pop_due(stop_at)
            if ev is None:
                # Nothing at or before stop_at may remain in the heap.
                assert not heap or heap[0][0] > stop_at
                break
            assert ev == heapq.heappop(heap)
    assert not heap and len(queue) == 0


def test_far_band_defers_and_migrates_in_order():
    queue = CalendarQueue(start=0.0, span=1.0)
    queue.push(500.0, 0, "far-a")     # beyond horizon -> far band
    queue.push(500.0, 1, "far-b")     # same-time tie in the far band
    queue.push(0.5, 2, "near")
    assert queue.stats()["far_deferred"] == 2
    assert queue.next_time() == 0.5
    assert queue.pop_due(_INF) == "near"
    # Near band drained: the next pop advances the horizon and migrates.
    assert queue.pop_due(_INF) == "far-a"
    assert queue.pop_due(_INF) == "far-b"
    assert queue.stats()["migrated"] == 2
    assert queue.pop_due(_INF) is None


def test_span_doubles_on_migration_but_never_reorders():
    queue = CalendarQueue(start=0.0, span=1.0)
    span0 = queue._span
    queue.push(10.0, 0, "a")
    assert queue.pop_due(_INF) == "a"
    assert queue._span == span0 * 2.0


def test_late_earlier_push_not_shadowed_by_pending_bucket():
    # Regression guard: pop_due(stop_at) must not activate a bucket
    # beyond stop_at, or an earlier event scheduled afterwards would be
    # shadowed behind the pending active bucket.
    queue = CalendarQueue(start=0.0)
    queue.push(5.0, 0, "later")
    assert queue.pop_due(2.0) is None
    queue.push(1.0, 1, "earlier")
    assert queue.pop_due(2.0) == "earlier"
    assert queue.pop_due(_INF) == "later"


def test_coalescing_counts_shared_buckets():
    queue = CalendarQueue(start=0.0)
    for s in range(100):
        queue.push(0.25, s, s)
    stats = queue.stats()
    assert stats["coalesced"] == 99      # one bucket, 99 shared appends
    assert stats["buckets_opened"] == 1
    assert [queue.pop_due(_INF) for _ in range(100)] == list(range(100))


# -- kernel-level equivalence --------------------------------------------------


def _norm_kind(event) -> str:
    """Class name normalized across live and frozen-legacy kernels."""
    return type(event).__name__.replace("Legacy", "").lstrip("_")


def _mixed_program(sim, seed: int):
    """Build the equivalence workload on either kernel; returns the log."""
    rng = np.random.default_rng(seed)
    log: list = []

    def poller(name, period, samples):
        for k in range(samples):
            yield sim.timeout(period)
            log.append(("poll", name, k, sim.now))

    for p in range(4):  # identical periods -> same-time ties every tick
        sim.process(poller(p, 0.5, 8))

    delays = np.round(rng.uniform(0.0, 3.0, size=(5, 10)), 3)

    def chain(row):
        total = 0.0
        for d in row:
            yield sim.timeout(float(d))
            total += float(d)
        return total

    chains = [sim.process(chain(delays[i])) for i in range(5)]

    def sleeper(name):
        try:
            yield sim.timeout(100.0)
            log.append(("overslept", name))
        except Interrupt as exc:
            log.append(("interrupted", name, str(exc.cause), sim.now))
            yield sim.timeout(0.5)
            log.append(("recovered", name, sim.now))

    victims = [sim.process(sleeper(i)) for i in range(3)]

    def interrupter():
        yield sim.timeout(2.0)
        for i, victim in enumerate(victims):
            if victim.is_alive:
                victim.interrupt(cause=f"preempt-{i}")
            yield sim.timeout(0.0)  # zero-delay: same-time tie storm

    sim.process(interrupter())

    for d in (0.0, 1.0, 1.0, 2.5):  # duplicate delays share a bucket
        ev = sim.schedule_callback(d, lambda d=d: log.append(("cb", d)))
        assert not ev.triggered  # deferred resolution: pending until fired

    def finisher():
        for proc in chains:
            value = yield proc
            log.append(("chain-done", round(value, 3)))

    sim.process(finisher())
    return log


def _run_traced(sim_cls, seed: int):
    sim = sim_cls()
    trace: list = []
    sim.step_hook = lambda now, event: trace.append((now, _norm_kind(event)))
    log = _mixed_program(sim, seed)
    sim.run()
    return trace, log, sim.now


@pytest.mark.parametrize("seed", [0, 5, 2024])
def test_kernel_equivalence_with_frozen_legacy(seed):
    fast_trace, fast_log, fast_end = _run_traced(Simulator, seed)
    legacy_trace, legacy_log, legacy_end = _run_traced(LegacySimulator, seed)
    assert fast_end == legacy_end
    assert fast_trace == legacy_trace       # event-for-event, tie-for-tie
    assert fast_log == legacy_log           # user-visible decisions
    assert (decision_hash([fast_trace, fast_log])
            == decision_hash([legacy_trace, legacy_log]))


def test_kernel_equivalence_across_run_until_boundaries():
    def run_windows(sim_cls):
        sim = sim_cls()
        trace: list = []
        sim.step_hook = lambda now, event: trace.append((now, _norm_kind(event)))
        log = _mixed_program(sim, seed=7)
        for until in (0.75, 2.0, 2.0, 6.5):  # repeated + mid-bucket stops
            sim.run(until=until)
            trace.append(("window", sim.now))
        sim.run()
        return trace, log

    fast = run_windows(Simulator)
    legacy = run_windows(LegacySimulator)
    assert fast == legacy
