"""Tests for named deterministic random streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngRegistry


def test_same_seed_same_name_same_stream():
    a = RngRegistry(7).stream("x").random(10)
    b = RngRegistry(7).stream("x").random(10)
    assert np.array_equal(a, b)


def test_stream_memoized_within_registry():
    reg = RngRegistry(7)
    assert reg.stream("x") is reg.stream("x")


def test_different_names_give_different_streams():
    reg = RngRegistry(7)
    a = reg.stream("a").random(10)
    b = reg.stream("b").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_give_different_streams():
    a = RngRegistry(1).stream("x").random(10)
    b = RngRegistry(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    r1 = RngRegistry(5)
    r1.stream("first")
    a = r1.stream("probe").random(5)

    r2 = RngRegistry(5)
    r2.stream("other")
    r2.stream("and-another")
    b = r2.stream("probe").random(5)
    assert np.array_equal(a, b)


def test_fresh_replays_from_start():
    reg = RngRegistry(3)
    a = reg.fresh("x").random(5)
    b = reg.fresh("x").random(5)
    assert np.array_equal(a, b)


def test_spawn_children_independent():
    parent = RngRegistry(9)
    c1 = parent.spawn("site-A")
    c2 = parent.spawn("site-B")
    assert c1.seed != c2.seed
    assert not np.array_equal(c1.stream("n").random(5), c2.stream("n").random(5))


def test_spawn_deterministic():
    a = RngRegistry(9).spawn("site-A").stream("n").random(5)
    b = RngRegistry(9).spawn("site-A").stream("n").random(5)
    assert np.array_equal(a, b)


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_property_streams_reproducible(seed, name):
    a = RngRegistry(seed).stream(name).integers(0, 2**31, size=4)
    b = RngRegistry(seed).stream(name).integers(0, 2**31, size=4)
    assert np.array_equal(a, b)


@given(st.text(min_size=1, max_size=30), st.text(min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_property_distinct_names_distinct_streams(n1, n2):
    if n1 == n2:
        return
    reg = RngRegistry(11)
    a = reg.stream(n1).random(8)
    b = reg.stream(n2).random(8)
    assert not np.array_equal(a, b)
