"""Tests for Resource / Store / FilterStore / PriorityStore."""

import pytest

from repro.sim import FilterStore, PriorityStore, Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


# -- Resource ----------------------------------------------------------------

def test_resource_capacity_validation(sim):
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity(sim):
    res = Resource(sim, capacity=2)
    grants = []

    def worker(sim, res, tag):
        with res.request() as req:
            yield req
            grants.append((tag, sim.now))
            yield sim.timeout(10.0)

    for tag in range(3):
        sim.process(worker(sim, res, tag))
    sim.run()
    assert grants == [(0, 0.0), (1, 0.0), (2, 10.0)]


def test_resource_fifo_grant_order(sim):
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, tag, hold):
        with res.request() as req:
            yield req
            order.append(tag)
            yield sim.timeout(hold)

    sim.process(worker(sim, res, "a", 5.0))
    sim.process(worker(sim, res, "b", 1.0))
    sim.process(worker(sim, res, "c", 1.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_counts(sim):
    res = Resource(sim, capacity=1)

    def holder(sim, res):
        with res.request() as req:
            yield req
            assert res.count == 1
            yield sim.timeout(1.0)
            assert res.queue_length == 1

    def waiter(sim, res):
        yield sim.timeout(0.5)
        with res.request() as req:
            yield req

    sim.process(holder(sim, res))
    sim.process(waiter(sim, res))
    sim.run()
    assert res.count == 0
    assert res.queue_length == 0


def test_withdrawing_pending_request(sim):
    res = Resource(sim, capacity=1)
    served = []

    def holder(sim, res):
        with res.request() as req:
            yield req
            yield sim.timeout(10.0)

    def impatient(sim, res):
        req = res.request()
        timeout = sim.timeout(1.0)
        yield req | timeout
        if not req.triggered:
            req.release()  # gave up waiting
            served.append("gave-up")

    def patient(sim, res):
        yield sim.timeout(0.5)
        with res.request() as req:
            yield req
            served.append(("patient", sim.now))

    sim.process(holder(sim, res))
    sim.process(impatient(sim, res))
    sim.process(patient(sim, res))
    sim.run()
    assert "gave-up" in served
    assert ("patient", 10.0) in served


def test_double_release_is_noop(sim):
    res = Resource(sim, capacity=1)

    def worker(sim, res):
        req = res.request()
        yield req
        req.release()
        req.release()  # must not corrupt state

    sim.process(worker(sim, res))
    sim.run()
    assert res.count == 0


# -- Store --------------------------------------------------------------------

def test_store_put_get_fifo(sim):
    store = Store(sim)
    got = []

    def producer(sim, store):
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer(sim, store):
        for _ in range(3):
            got.append((yield store.get()))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_item(sim):
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((item, sim.now))

    def producer(sim, store):
        yield sim.timeout(4.0)
        yield store.put("late")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [("late", 4.0)]


def test_bounded_store_blocks_put(sim):
    store = Store(sim, capacity=1)
    events = []

    def producer(sim, store):
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer(sim, store):
        yield sim.timeout(3.0)
        yield store.get()

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert events == [("put-a", 0.0), ("put-b", 3.0)]


def test_store_capacity_validation(sim):
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_len(sim):
    store = Store(sim)
    store.put("x")
    store.put("y")
    sim.run()
    assert len(store) == 2


# -- FilterStore ---------------------------------------------------------------

def test_filter_store_selective_get(sim):
    store = FilterStore(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    sim.process(consumer(sim, store))
    for i in [1, 3, 4, 5]:
        store.put(i)
    sim.run()
    assert got == [4]
    assert store.items == [1, 3, 5]


def test_filter_store_waits_for_match(sim):
    store = FilterStore(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get(lambda x: x == "target")
        got.append((item, sim.now))

    def producer(sim, store):
        yield store.put("noise")
        yield sim.timeout(2.0)
        yield store.put("target")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [("target", 2.0)]


def test_filter_store_plain_get(sim):
    store = FilterStore(sim)
    store.put("a")
    got = []

    def consumer(sim, store):
        got.append((yield store.get()))

    sim.process(consumer(sim, store))
    sim.run()
    assert got == ["a"]


# -- PriorityStore ----------------------------------------------------------------

def test_priority_store_orders_items(sim):
    store = PriorityStore(sim)
    got = []

    def consumer(sim, store):
        for _ in range(3):
            got.append((yield store.get()))

    for item in [(3, "low"), (1, "high"), (2, "mid")]:
        store.put(item)
    sim.process(consumer(sim, store))
    sim.run()
    assert got == [(1, "high"), (2, "mid"), (3, "low")]


def test_priority_store_len_tracks_heap(sim):
    store = PriorityStore(sim)
    store.put((1, "a"))
    store.put((2, "b"))
    sim.run()
    assert len(store) == 2
