"""Tests for the discrete-event simulation loop."""

import pytest

from repro.sim import Simulator
from repro.sim.kernel import EmptySchedule


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start=100.0).now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(3.5)
    sim.run()
    assert sim.now == 3.5


def test_run_until_time_stops_clock_at_deadline():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "payload"

    p = sim.process(proc(sim))
    assert sim.run(until=p) == "payload"
    assert sim.now == 2.0


def test_run_until_past_deadline_raises():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=0.5)


def test_run_until_never_fired_event_raises():
    sim = Simulator()
    ev = sim.event()  # nobody ever triggers it
    with pytest.raises(RuntimeError):
        sim.run(until=ev)


def test_step_empty_queue_raises():
    with pytest.raises(EmptySchedule):
        Simulator().step()


def test_events_at_same_time_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_schedule_callback_runs_at_delay():
    sim = Simulator()
    fired = []
    sim.schedule_callback(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_back_to_back_run_until_composes():
    sim = Simulator()
    sim.run(until=5.0)
    sim.run(until=9.0)
    assert sim.now == 9.0


def test_unhandled_process_exception_propagates():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("kaboom")

    sim.process(boom(sim))
    with pytest.raises(RuntimeError, match="kaboom"):
        sim.run()


def test_awaited_process_exception_delivered_to_run():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise ValueError("caught by run")

    p = sim.process(boom(sim))
    with pytest.raises(ValueError, match="caught by run"):
        sim.run(until=p)
