"""Edge-case tests across the kernel and small utility surfaces."""

import pytest

from repro.sim import Simulator
from repro.sim.events import Event


@pytest.fixture
def sim():
    return Simulator()


def test_event_trigger_mirrors_success(sim):
    src, dst = sim.event(), sim.event()
    src.succeed("payload")
    dst.trigger(src)
    got = []

    def waiter():
        got.append((yield dst))

    sim.process(waiter())
    sim.run()
    assert got == ["payload"]


def test_event_trigger_mirrors_failure(sim):
    src, dst = sim.event(), sim.event()
    caught = []

    def waiter():
        # Register interest in dst *before* the mirror fires.
        try:
            yield dst
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())

    def mirror():
        yield sim.timeout(1.0)
        src.fail(ValueError("mirrored"))
        src._defused = True  # the mirror takes responsibility for src
        dst.trigger(src)

    sim.process(mirror())
    sim.run()
    assert caught == ["mirrored"]


def test_process_target_property(sim):
    def proc():
        yield sim.timeout(10.0)

    p = sim.process(proc())
    assert p.target is None  # not started yet
    sim.run(until=1.0)
    assert p.target is not None  # waiting on the timeout
    sim.run()
    assert p.target is None


def test_schedule_callback_returns_waitable_event(sim):
    fired = []
    ev = sim.schedule_callback(3.0, lambda: fired.append("cb"),
                               value="extra")
    got = []

    def waiter():
        got.append((yield ev))

    sim.process(waiter())
    sim.run()
    assert fired == ["cb"]
    assert got == ["extra"]


def test_schedule_callback_stays_untriggered_until_fired(sim):
    # Regression: the event used to be marked ok at *creation*, so code
    # inspecting it before the delay elapsed saw a triggered event.
    ev = sim.schedule_callback(3.0, lambda: None, value="v")
    assert not ev.triggered
    sim.run(until=2.0)
    assert not ev.triggered
    sim.run(until=4.0)
    assert ev.triggered and ev.ok and ev.value == "v"


def test_or_of_failing_and_succeeding_event(sim):
    # AnyOf fails fast if the failing child fires first.
    caught = []

    def waiter():
        bad = sim.event()
        bad.fail(RuntimeError("fast failure"), delay=1.0)
        slow = sim.timeout(5.0, "slow")
        try:
            yield bad | slow
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    sim.run()
    assert caught == ["fast failure"]


def test_run_until_already_processed_event(sim):
    t = sim.timeout(1.0, "v")
    sim.run()
    assert sim.run(until=t) == "v"  # returns instantly


def test_run_until_already_failed_event(sim):
    def boom():
        yield sim.timeout(1.0)
        raise ValueError("late read")

    p = sim.process(boom())
    with pytest.raises(ValueError):
        sim.run(until=p)
    with pytest.raises(ValueError, match="late read"):
        sim.run(until=p)  # still raises on re-wait


def test_twin_predict_without_landscape(sim):
    from repro.instruments import DigitalTwin, LiquidHandler
    from repro.sim import RngRegistry
    rngs = RngRegistry(0)
    lh = LiquidHandler(sim, "lh", "s", rngs)
    twin = DigitalTwin(lh)  # no landscape: envelope checks only
    assert twin.check({"volume_uL": 100.0}).ok
    with pytest.raises(RuntimeError, match="no landscape"):
        twin.predict({"volume_uL": 100.0})


def test_workflow_critical_path_with_failures(sim):
    from repro.core import WorkflowDAG

    def ok(results):
        def gen():
            yield sim.timeout(5.0)
            return 1
        return gen()

    def bad(results):
        def gen():
            yield sim.timeout(1.0)
            raise RuntimeError("x")
        return gen()

    wf = WorkflowDAG(sim)
    wf.add("a", ok)
    wf.add("b", bad, optional=True)
    wf.add("c", ok, deps=("a",))
    out = {}

    def run():
        out["r"] = yield from wf.run()

    sim.process(run())
    sim.run()
    assert out["r"] == {"a": 1, "c": 1}
    assert wf.critical_path() == ["a", "c"]


def test_manual_working_hours_window():
    from repro.core.manual import DAY, ManualOrchestrator

    class Stub(ManualOrchestrator):
        def __init__(self):
            self.workday = (9.0, 17.0)

    stub = Stub()
    # 3 am -> 9 am same day; noon stays; 8 pm -> 9 am next day.
    assert stub._next_working_instant(3 * 3600.0) == 9 * 3600.0
    assert stub._next_working_instant(12 * 3600.0) == 12 * 3600.0
    assert stub._next_working_instant(20 * 3600.0) == DAY + 9 * 3600.0
    # exactly at close -> next morning
    assert stub._next_working_instant(17 * 3600.0) == DAY + 9 * 3600.0
