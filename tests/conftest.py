"""Shared fixtures for the AISLE test suite."""

import pytest

from repro.net import FaultInjector, Link, Network, Site, Topology
from repro.sim import RngRegistry, Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rngs():
    return RngRegistry(12345)


@pytest.fixture
def two_site_topo():
    topo = Topology()
    topo.add_site(Site.make("a", institution="Lab A"))
    topo.add_site(Site.make("b", institution="Lab B"))
    topo.connect("a", "b", Link(latency_s=0.01, bandwidth_Bps=1e9))
    return topo


@pytest.fixture
def testbed_topo():
    return Topology.national_lab_testbed(5, latency_s=0.02, jitter_s=0.0)


@pytest.fixture
def network(sim, two_site_topo, rngs):
    faults = FaultInjector(sim)
    return Network(sim, two_site_topo, rngs.stream("net"), faults)


@pytest.fixture
def testbed_network(sim, testbed_topo, rngs):
    faults = FaultInjector(sim)
    return Network(sim, testbed_topo, rngs.stream("net"), faults)


@pytest.fixture(scope="session")
def qd_landscape():
    from repro.labsci import QuantumDotLandscape
    return QuantumDotLandscape(seed=3)


@pytest.fixture
def qd_params(qd_landscape):
    import numpy as np
    return qd_landscape.space.sample(np.random.default_rng(0))
