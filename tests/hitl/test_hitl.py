"""Tests for trust, override, curriculum, and assessment."""

import numpy as np
import pytest

from repro.agents.planner import ExperimentPlan
from repro.hitl import (COMPETENCIES, CompetencyAssessment, OperatorOverride,
                        Trainee, TrustModel, VirtualLabCurriculum)
from repro.hitl.assessment import standard_battery
from repro.hitl.curriculum import TrainingModule, standard_curriculum


# -- trust --------------------------------------------------------------------

def test_trust_bounds_and_validation():
    with pytest.raises(ValueError):
        TrustModel(initial=1.5)
    t = TrustModel(initial=0.99, gain_success=0.5)
    for _ in range(20):
        t.observe(True)
    assert t.trust <= 1.0
    t2 = TrustModel(initial=0.01, loss_failure=0.9)
    for _ in range(20):
        t2.observe(False)
    assert t2.trust >= 0.0


def test_trust_failure_asymmetry():
    t = TrustModel(initial=0.5)
    t.observe(True)
    up = t.trust - 0.5
    t2 = TrustModel(initial=0.5)
    t2.observe(False)
    down = 0.5 - t2.trust
    assert down > up  # failures hit harder


def test_trust_converges_toward_reliability():
    rng = np.random.default_rng(0)
    t = TrustModel(initial=0.5)
    for _ in range(500):
        t.observe(bool(rng.random() < 0.9))
    assert t.calibration_error < 0.2
    assert not t.under_trusting or not t.over_trusting


def test_trust_vigilance_decreases_with_trust():
    low = TrustModel(initial=0.1)
    high = TrustModel(initial=0.9)
    assert low.vigilance() > high.vigilance()


def test_over_under_trust_flags():
    t = TrustModel(initial=0.95)
    for _ in range(30):
        t.observe(False)
    # observed reliability 0 but trust decayed; eventually calibrated
    assert t.observed_reliability == 0.0
    t2 = TrustModel(initial=0.05, gain_success=0.001)
    for _ in range(30):
        t2.observe(True)
    assert t2.under_trusting


# -- operator override ----------------------------------------------------------------

def unsafe_plan(qd_landscape):
    p = qd_landscape.space.sample(np.random.default_rng(0))
    p["temperature"] = 219.0  # within space, outside operator envelope
    return ExperimentPlan(params=p)


def safe_plan(qd_landscape):
    p = qd_landscape.space.sample(np.random.default_rng(0))
    p["temperature"] = 120.0
    return ExperimentPlan(params=p)


def run(sim, gen):
    out = {}

    def proc():
        out["r"] = yield from gen
    sim.process(proc())
    sim.run()
    return out["r"]


def test_vigilant_operator_vetoes_unsafe(sim, rngs, qd_landscape):
    op = OperatorOverride(sim, rngs.stream("op"),
                          trust=TrustModel(initial=0.0),  # max vigilance
                          safety_envelope={"temperature": (60.0, 200.0)},
                          detection_skill=1.0, review_time_s=10.0)
    reasons = run(sim, op.validate(unsafe_plan(qd_landscape)))
    assert reasons and "veto" in reasons[0]
    assert sim.now == pytest.approx(10.0)
    assert op.veto_rate == 1.0


def test_operator_passes_safe_plan(sim, rngs, qd_landscape):
    op = OperatorOverride(sim, rngs.stream("op"),
                          trust=TrustModel(initial=0.0),
                          safety_envelope={"temperature": (60.0, 200.0)},
                          detection_skill=1.0)
    reasons = run(sim, op.validate(safe_plan(qd_landscape)))
    assert reasons == []


def test_complacent_operator_misses_unsafe(sim, rngs, qd_landscape):
    op = OperatorOverride(sim, rngs.stream("op2"),
                          trust=TrustModel(initial=1.0),  # min vigilance
                          safety_envelope={"temperature": (60.0, 200.0)},
                          detection_skill=1.0)
    missed = 0
    for i in range(50):
        reasons = run(sim, op.validate(unsafe_plan(qd_landscape)))
        if not reasons:
            missed += 1
    assert missed > 25  # complacency lets most through
    assert op.stats["missed_unsafe"] == missed


def test_operator_composes_with_verification_stack(sim, rngs, qd_landscape):
    from repro.core import VerificationStack
    op = OperatorOverride(sim, rngs.stream("op3"),
                          trust=TrustModel(initial=0.0),
                          safety_envelope={"temperature": (60.0, 200.0)},
                          detection_skill=1.0)
    stack = VerificationStack(sim, [op])
    result = run(sim, stack.verify(unsafe_plan(qd_landscape)))
    assert not result.ok


def test_operator_trust_feedback(sim, rngs, qd_landscape):
    op = OperatorOverride(sim, rngs.stream("op4"))
    before = op.trust.trust
    for _ in range(10):
        op.observe_outcome(False)
    assert op.trust.trust < before


# -- curriculum -----------------------------------------------------------------------

def test_trainee_defaults():
    t = Trainee("alice")
    assert set(t.competencies) == set(COMPETENCIES)
    assert t.overall() == pytest.approx(0.1)


def test_module_diminishing_returns():
    rng = np.random.default_rng(0)
    m = TrainingModule("m", 3600.0, {"data-literacy": 0.3})
    novice = Trainee("novice")
    expert = Trainee("expert",
                     competencies={"data-literacy": 0.9})
    g1 = m.apply(novice, rng)
    g2 = m.apply(expert, rng)
    assert g1 > g2


def test_curriculum_improves_cohort(sim, rngs):
    cur = VirtualLabCurriculum(sim, rngs.stream("edu"))
    cohort = [Trainee(f"t{i}") for i in range(6)]
    out = {}

    def proc():
        out["cohort"] = yield from cur.train_cohort(cohort)

    sim.process(proc())
    sim.run()
    for t in out["cohort"]:
        assert t.overall() > 0.25
        assert len(t.modules_completed) >= 3
        # trajectory is monotone non-decreasing
        values = [v for _, v in t.trajectory]
        assert values == sorted(values)
    assert sim.now > 0


def test_prerequisites_gate_modules(sim, rngs):
    modules = [TrainingModule("advanced", 3600.0,
                              {"ai-collaboration": 0.5},
                              prerequisites={"ai-collaboration": 0.9})]
    cur = VirtualLabCurriculum(sim, rngs.stream("edu"), modules=modules)
    t = Trainee("newbie")
    out = {}

    def proc():
        out["t"] = yield from cur.train(t)

    sim.process(proc())
    sim.run()
    assert t.modules_completed == []
    assert any("skipped:advanced" in e for _, _, e in cur.log)


# -- assessment ---------------------------------------------------------------------------

def test_assessment_trained_beats_untrained(sim, rngs):
    rng = rngs.stream("assess")
    battery = standard_battery(rng, n=60)
    assessment = CompetencyAssessment(rng, scenarios=battery)
    untrained = Trainee("untrained")
    trained = Trainee("trained", competencies={
        c: 0.9 for c in COMPETENCIES})
    r_un = assessment.administer(untrained)
    r_tr = assessment.administer(trained)
    assert r_tr.accuracy > r_un.accuracy
    assert r_tr.passed(threshold=0.7)
    assert not r_un.passed(threshold=0.7)


def test_assessment_rates_sum_sensibly(rngs):
    rng = rngs.stream("assess2")
    assessment = CompetencyAssessment(rng)
    report = assessment.administer(Trainee("x"))
    assert 0.0 <= report.over_trust_rate <= 1.0
    assert 0.0 <= report.under_trust_rate <= 1.0
    assert 0.0 <= report.accuracy <= 1.0


def test_cohort_summary(rngs):
    rng = rngs.stream("assess3")
    assessment = CompetencyAssessment(rng)
    reports = [assessment.administer(Trainee(f"t{i}",
                                             competencies={c: 0.7 for c in
                                                           COMPETENCIES}))
               for i in range(5)]
    summary = assessment.cohort_summary(reports)
    assert 0.0 <= summary["mean_accuracy"] <= 1.0
    assert summary["pass_rate"] >= 0.0
    assert assessment.cohort_summary([]) == {
        "mean_accuracy": 0.0, "pass_rate": 0.0, "mean_over_trust": 0.0,
        "mean_under_trust": 0.0}
