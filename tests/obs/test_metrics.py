"""Tests for the metrics registry: counters, histograms, StatsDict."""

import json

import pytest

from repro.obs import MetricsRegistry, metrics_snapshot
from repro.obs.metrics import Histogram, render_name


# -- histogram --------------------------------------------------------------

def test_histogram_quantiles_bounded_relative_error():
    h = Histogram("lat")
    samples = [0.001 * i for i in range(1, 1001)]  # 1ms .. 1s uniform
    for x in samples:
        h.observe(x)
    assert h.count == 1000
    assert h.mean == pytest.approx(sum(samples) / 1000)
    # Geometric buckets: estimates within the growth factor of truth.
    for q, truth in [(0.50, 0.5), (0.95, 0.95), (0.99, 0.99)]:
        assert h.quantile(q) == pytest.approx(truth, rel=h.growth - 1)


def test_histogram_quantiles_clamped_to_observed_range():
    h = Histogram("lat")
    for x in (0.2, 0.3, 0.4):
        h.observe(x)
    assert h.quantile(0.0) >= 0.2
    assert h.quantile(1.0) <= 0.4
    pcts = h.percentiles()
    assert pcts["p50"] <= pcts["p95"] <= pcts["p99"]


def test_histogram_single_sample_every_quantile_is_it():
    h = Histogram("lat")
    h.observe(0.125)
    for q in (0.0, 0.5, 0.99, 1.0):
        assert h.quantile(q) == pytest.approx(0.125)


def test_empty_histogram_is_zero():
    h = Histogram("lat")
    assert h.quantile(0.5) == 0.0
    assert h.mean == 0.0
    assert h.summary()["count"] == 0


def test_histogram_rejects_bad_config_and_quantile():
    with pytest.raises(ValueError):
        Histogram("x", lo=0.0)
    with pytest.raises(ValueError):
        Histogram("x", growth=1.0)
    with pytest.raises(ValueError):
        Histogram("x").quantile(1.5)


def test_tiny_observations_land_in_first_bucket():
    h = Histogram("lat", lo=1e-6)
    h.observe(0.0)
    h.observe(1e-9)
    assert h.count == 2
    assert h.quantile(0.5) == pytest.approx(0.0, abs=1e-6)


# -- registry ---------------------------------------------------------------

def test_registry_get_or_create_same_object():
    reg = MetricsRegistry()
    a = reg.counter("x", site="s0")
    b = reg.counter("x", site="s0")
    assert a is b
    assert reg.counter("x", site="s1") is not a
    assert reg.histogram("h") is reg.histogram("h")


def test_registry_snapshot_filters_by_site():
    reg = MetricsRegistry()
    reg.counter("c", site="s0").inc(3)
    reg.counter("c", site="s1").inc(5)
    reg.gauge("g", site="s0").set(7)
    reg.histogram("h", site="s1").observe(0.5)
    snap0 = reg.snapshot(site="s0")
    assert snap0["counters"] == {"c{site=s0}": 3}
    assert snap0["gauges"] == {"g{site=s0}": 7}
    assert snap0["histograms"] == {}
    full = reg.snapshot()
    assert set(full["counters"]) == {"c{site=s0}", "c{site=s1}"}


def test_metrics_snapshot_json_is_deterministic():
    reg = MetricsRegistry()
    reg.counter("b").inc()
    reg.counter("a").inc(2)
    text = metrics_snapshot(reg, as_json=True)
    assert json.loads(text)["counters"] == {"a": 2, "b": 1}
    assert text == metrics_snapshot(reg, as_json=True)


def test_render_name():
    assert render_name("n", ()) == "n"
    assert render_name("n", (("a", "1"), ("b", "2"))) == "n{a=1,b=2}"


# -- StatsDict --------------------------------------------------------------

def test_stats_dict_behaves_like_a_dict():
    reg = MetricsRegistry()
    stats = reg.stats("comp", {"sent": 0, "dropped": 0}, site="s0")
    stats["sent"] += 2
    stats["dropped"] = 1
    assert stats["sent"] == 2
    assert dict(stats) == {"sent": 2, "dropped": 1}
    assert stats == {"sent": 2, "dropped": 1}
    assert stats != {"sent": 0, "dropped": 1}
    assert len(stats) == 2 and set(stats) == {"sent", "dropped"}
    with pytest.raises(TypeError):
        del stats["sent"]


def test_stats_dict_values_visible_in_registry():
    reg = MetricsRegistry()
    stats = reg.stats("comp", {"sent": 0}, site="s0")
    stats["sent"] += 4
    assert reg.counter("comp.sent", site="s0").value == 4
    assert reg.snapshot(site="s0")["counters"]["comp.sent{site=s0}"] == 4


def test_stats_rebinding_keeps_existing_tallies():
    reg = MetricsRegistry()
    first = reg.stats("comp", {"sent": 0})
    first["sent"] += 3
    second = reg.stats("comp", {"sent": 0})  # same counters, not reset
    assert second["sent"] == 3


# -- mergeable registries (PR 7) --------------------------------------------


def test_counter_and_gauge_merge():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x").inc(3)
    b.counter("x").inc(4)
    b.counter("only_b").inc()
    b.gauge("g").set(2.5)
    a.merge(b)
    assert a.counter("x").value == 7
    assert a.counter("only_b").value == 1
    assert a.gauge("g").value == 2.5


def test_histogram_merge_bucketwise():
    a, b = Histogram("h"), Histogram("h")
    for v in (0.1, 0.5, 2.0):
        a.observe(v)
    for v in (0.2, 8.0):
        b.observe(v)
    a.merge_from(b)
    assert a.count == 5
    assert a.total == pytest.approx(10.8)
    assert a.summary()["min"] == pytest.approx(0.1)
    assert a.summary()["max"] == pytest.approx(8.0)
    # Quantiles stay within sketch error of the pooled sample.
    assert a.quantile(1.0) >= 8.0 * 0.9


def test_histogram_merge_rejects_mismatched_buckets():
    a = Histogram("h", lo=1e-6, growth=1.6)
    b = Histogram("h", lo=1e-6, growth=2.0)
    with pytest.raises(ValueError):
        a.merge_from(b)


def test_histogram_bucket_state_roundtrip():
    a = Histogram("h")
    for v in (0.3, 0.9, 4.2):
        a.observe(v)
    state = a.bucket_state()
    b = Histogram("h", lo=state["lo"], growth=state["growth"])
    b.merge_bucket_state(state)
    assert b.bucket_state() == state


def test_registry_state_is_plain_data_and_mergeable():
    import json
    shard = MetricsRegistry()
    shard.counter("mesh.ingested", site="site-0").inc(5)
    shard.gauge("queue.depth").set(3)
    shard.histogram("latency", site="site-0").observe(0.25)
    state = shard.state()
    json.dumps(state)  # picklable/serializable plain data

    merged = MetricsRegistry()
    merged.merge_state(state)
    merged.merge_state(state)  # a second identical shard
    assert merged.counter("mesh.ingested", site="site-0").value == 10
    assert merged.gauge("queue.depth").value == 6
    assert merged.histogram("latency", site="site-0").count == 2


def test_registry_merge_keeps_labels_distinct():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("served", site="site-0").inc(1)
    b.counter("served", site="site-1").inc(2)
    a.merge(b)
    assert a.counter("served", site="site-0").value == 1
    assert a.counter("served", site="site-1").value == 2
    snap = a.snapshot(site="site-1")
    assert list(snap["counters"].values()) == [2]
