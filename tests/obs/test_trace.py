"""Tests for deterministic tracing: spans, kernel hooks, JSONL export."""

from repro.core import CampaignSpec
from repro.labsci import QuantumDotLandscape
from repro.obs import (NULL_TRACER, Tracer, load_jsonl, to_jsonl,
                       write_jsonl)
from repro.sim import Simulator
from repro.testbed import Testbed


# -- span mechanics ---------------------------------------------------------

def test_spans_nest_and_carry_sim_time(sim):
    tracer = Tracer(sim)

    def proc():
        with tracer.span("outer", label="a"):
            yield sim.timeout(5.0)
            with tracer.span("inner"):
                yield sim.timeout(2.0)
            tracer.instant("mark", x=1)

    p = sim.process(proc())
    sim.run(until=p)
    roots = tracer.span_tree()
    assert len(roots) == 1
    outer = roots[0]
    assert outer["name"] == "outer"
    assert outer["duration"] == 7.0
    assert outer["attrs"]["label"] == "a"
    (inner,) = outer["children"]
    assert inner["name"] == "inner"
    assert inner["start"] == 5.0 and inner["duration"] == 2.0
    marks = [e for e in tracer.events if e.kind == "instant"]
    assert marks[0].name == "mark" and marks[0].span == outer["span"]


def test_span_records_error_on_exception(sim):
    tracer = Tracer(sim)
    try:
        with tracer.span("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    end = [e for e in tracer.events if e.kind == "span-end"][0]
    assert end.attrs["error"] == "RuntimeError"


def test_break_out_of_nested_spans_closes_children(sim):
    tracer = Tracer(sim)
    with tracer.span("outer"):
        # Simulate a dangling child (generator abandoned mid-span).
        tracer.span("dangling")
    assert tracer.current_span is None
    roots = tracer.span_tree()
    assert roots[0]["name"] == "outer"
    assert roots[0]["children"][0]["name"] == "dangling"


def test_seq_is_monotonic_and_zero_based(sim):
    tracer = Tracer(sim)
    with tracer.span("a"):
        tracer.instant("b")
    assert [e.seq for e in tracer.events] == [0, 1, 2]


def test_null_tracer_is_inert(sim):
    with NULL_TRACER.span("x", a=1):
        NULL_TRACER.instant("y")
    assert NULL_TRACER.events == []
    assert NULL_TRACER.span_tree() == []
    assert not NULL_TRACER.enabled


# -- kernel hooks -----------------------------------------------------------

def test_attach_kernel_traces_steps_and_detaches():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.attach_kernel(schedule=True)

    def proc():
        yield sim.timeout(1.0)

    p = sim.process(proc())
    sim.run(until=p)
    kinds = {e.name for e in tracer.events}
    assert "kernel.step" in kinds and "kernel.schedule" in kinds
    n = len(tracer.events)
    tracer.detach_kernel()
    sim.process(proc())
    sim.run()
    assert len(tracer.events) == n  # nothing recorded after detach


def test_untraced_simulator_has_no_hooks():
    sim = Simulator()
    assert sim.step_hook is None and sim.schedule_hook is None


# -- export + determinism ---------------------------------------------------

def _traced_run():
    built = (Testbed(seed=5)
             .with_metrics()
             .with_tracing()
             .site("site-0", landscape=QuantumDotLandscape(seed=7))
             .build())
    spec = CampaignSpec(name="t", objective_key="plqy", max_experiments=6)
    built.run(spec, site="site-0")
    return built


def test_two_seeded_runs_export_byte_identical_traces():
    a, b = _traced_run(), _traced_run()
    assert to_jsonl(a.tracer) == to_jsonl(b.tracer)
    assert len(a.tracer.events) > 0


def test_jsonl_roundtrip(tmp_path, sim):
    tracer = Tracer(sim)
    with tracer.span("s", k="v"):
        tracer.instant("i", n=2)
    path = str(tmp_path / "trace.jsonl")
    n = write_jsonl(tracer, path)
    assert n == len(tracer.events)
    back = load_jsonl(path)
    assert back == tracer.events  # frozen dataclasses compare by value


def test_campaign_trace_has_expected_span_shape():
    built = _traced_run()
    (campaign,) = built.tracer.span_tree()
    assert campaign["name"] == "campaign"
    experiments = [c for c in campaign["children"]
                   if c["name"] == "experiment"]
    assert len(experiments) == 6
    phases = [c["name"] for c in experiments[0]["children"]]
    assert phases == ["plan", "verify", "execute", "evaluate"]


# -- bounded ring + spill (PR 7) --------------------------------------------


def test_unbounded_tracer_keeps_plain_list(sim):
    tr = Tracer(sim)
    for i in range(5):
        tr.instant("e", i=i)
    assert isinstance(tr.events, list)
    assert len(tr.events) == 5
    assert tr.dropped == 0 and tr.spilled == 0


def test_ring_bounds_memory_and_counts_drops(sim):
    from repro.obs.metrics import MetricsRegistry
    reg = MetricsRegistry()
    tr = Tracer(sim, max_events=3, metrics=reg)
    for i in range(10):
        tr.instant("e", i=i)
    assert len(tr.events) == 3
    assert [ev.attrs["i"] for ev in tr.events] == [7, 8, 9]  # hot tail
    assert tr.dropped == 7
    assert reg.counter("obs.dropped_events").value == 7


def test_ring_rejects_nonpositive_size(sim):
    import pytest
    with pytest.raises(ValueError):
        Tracer(sim, max_events=0)


def test_spill_keeps_complete_record(tmp_path, sim):
    from repro.obs.export import load_jsonl
    from repro.obs.metrics import MetricsRegistry
    reg = MetricsRegistry()
    path = str(tmp_path / "trace.jsonl")
    tr = Tracer(sim, max_events=2, spill=path, metrics=reg)
    for i in range(6):
        tr.instant("e", i=i)
    tr.close_spill()
    events = load_jsonl(path)
    assert [ev.attrs["i"] for ev in events] == list(range(6))
    assert len(tr.events) == 2  # ring still bounded
    assert tr.dropped == 0  # nothing lost: it all hit disk
    assert tr.spilled == 6
    assert reg.counter("obs.spilled_events").value == 6
    assert reg.counter("obs.dropped_events").value == 0


def test_spill_writer_object_and_lazy_open(tmp_path, sim):
    from repro.obs.export import TraceSpillWriter
    path = str(tmp_path / "lazy.jsonl")
    writer = TraceSpillWriter(path)
    tr = Tracer(sim, spill=writer)
    import os
    assert not os.path.exists(path)  # lazy: nothing emitted yet
    tr.instant("e")
    tr.flush()
    assert os.path.exists(path)
    assert writer.events_written == 1
    tr.close_spill()
    assert tr.spill is None
    tr.instant("after-close")  # stays usable in memory
    assert tr.spilled == 1


def test_spilled_file_matches_to_jsonl_bytes(tmp_path, sim):
    from repro.obs.export import to_jsonl
    path = str(tmp_path / "trace.jsonl")
    tr = Tracer(sim, spill=path)
    with tr.span("outer"):
        tr.instant("inner", x=1)
    tr.close_spill()
    with open(path, "r", encoding="utf-8") as fh:
        assert fh.read() == to_jsonl(tr)


def test_null_tracer_has_ring_interface():
    from repro.obs.trace import NULL_TRACER
    assert NULL_TRACER.dropped == 0
    assert NULL_TRACER.spilled == 0
    NULL_TRACER.flush()
    NULL_TRACER.close_spill()
