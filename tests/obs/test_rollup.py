"""Tests for streaming windowed rollups."""

import pytest

from repro.obs import WindowedCounter


def test_rejects_bad_config():
    with pytest.raises(ValueError):
        WindowedCounter(window_s=0)
    with pytest.raises(ValueError):
        WindowedCounter(n_windows=0)
    with pytest.raises(ValueError):
        WindowedCounter().inc(-1.0)


def test_counts_within_one_window():
    wc = WindowedCounter(window_s=10.0, n_windows=4)
    wc.inc(0.0)
    wc.inc(3.0)
    wc.inc(9.9, amount=2.0)
    assert wc.total == 4.0
    assert wc.recent() == 4.0
    assert wc.rate() == pytest.approx(0.4)


def test_ring_is_bounded_and_rolls_up():
    wc = WindowedCounter(window_s=1.0, n_windows=3)
    for t in range(10):  # windows 0..9, ring keeps the last 3
        wc.inc(float(t))
    assert wc.total == 10.0
    assert wc.recent() == 3.0
    assert wc.rolled == 7.0
    assert wc.summary()["windows_retained"] == 3.0


def test_rate_decays_over_idle_gap():
    wc = WindowedCounter(window_s=1.0, n_windows=10)
    wc.inc(0.0, amount=8.0)
    assert wc.rate() == pytest.approx(8.0)
    wc.inc(7.0, amount=0.0)  # an empty late window stretches the span
    assert wc.rate() == pytest.approx(1.0)


def test_late_event_folds_into_retained_window():
    wc = WindowedCounter(window_s=1.0, n_windows=4)
    wc.inc(0.0)
    wc.inc(5.0)
    wc.inc(3.0, amount=2.0)  # late but still inside the ring span
    assert wc.total == 4.0
    assert wc.recent() == 4.0


def test_too_late_event_goes_to_rollup():
    wc = WindowedCounter(window_s=1.0, n_windows=2)
    for t in range(6):
        wc.inc(float(t))
    wc.inc(0.0, amount=5.0)  # far older than the ring
    assert wc.rolled == 4.0 + 5.0
    assert wc.recent() == 2.0


def test_merge_from_aligned_shards():
    a = WindowedCounter(window_s=10.0, n_windows=8)
    b = WindowedCounter(window_s=10.0, n_windows=8)
    for t in (1.0, 12.0, 25.0):
        a.inc(t)
    for t in (5.0, 14.0, 71.0):
        b.inc(t, amount=2.0)
    a.merge_from(b)
    assert a.total == 9.0
    assert a.recent() == 9.0


def test_merge_rejects_mismatched_windows():
    a = WindowedCounter(window_s=10.0)
    b = WindowedCounter(window_s=60.0)
    with pytest.raises(ValueError):
        a.merge_from(b)


def test_state_is_plain_data():
    import json
    wc = WindowedCounter(window_s=2.0, n_windows=3)
    for t in range(9):
        wc.inc(float(t))
    state = wc.state()
    json.dumps(state)
    fresh = WindowedCounter(window_s=2.0, n_windows=3)
    fresh.merge_state(state)
    assert fresh.total == wc.total
    assert fresh.recent() == wc.recent()
