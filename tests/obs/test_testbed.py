"""Tests for the Testbed builder: equivalence with hand-wiring, toggles."""

import pytest

from repro import Testbed
from repro.core import CampaignSpec, FederationManager
from repro.labsci import QuantumDotLandscape


def _fingerprint(result):
    return [(r.index, r.valid, r.objective, r.started, r.finished, r.site)
            for r in result.records]


def test_testbed_matches_hand_wired_federation():
    spec = CampaignSpec(name="eq", objective_key="plqy", max_experiments=12)

    fed = FederationManager(seed=42, n_sites=2, objective_key="plqy")
    lab = fed.add_lab("site-0",
                      landscape_factory=lambda s: QuantumDotLandscape(seed=7),
                      synthesis_kind="flow", vendor="kelvin-sci")
    orch = fed.make_orchestrator(lab, verified=True)
    proc = fed.sim.process(orch.run_campaign(spec))
    by_hand = fed.sim.run(until=proc)

    built = (Testbed(seed=42)
             .site("site-0", landscape=lambda s: QuantumDotLandscape(seed=7))
             .with_instruments(synthesis="flow", vendor="kelvin-sci")
             .with_verification()
             .build())
    by_builder = built.run(spec, site="site-0")

    assert _fingerprint(by_builder) == _fingerprint(by_hand)
    assert by_builder.best_value == by_hand.best_value
    assert by_builder.stop_reason == by_hand.stop_reason


def test_builder_chains_site_and_federation_toggles():
    built = (Testbed(seed=1)
             .site("site-0", landscape=QuantumDotLandscape(seed=7))
             .with_planner(mode="llm-direct", hallucination_rate=0.5)
             .without_verification()
             .with_knowledge()       # testbed-level, explicit pass-through
             .site("site-1", landscape=QuantumDotLandscape(seed=8))
             .isolated()
             .build())
    assert set(built.orchestrators) == {"site-0", "site-1"}
    assert built.orchestrator("site-0").planner.mode == "llm-direct"
    assert built.orchestrator("site-0").verification is None
    assert built.orchestrator("site-0").knowledge is built.knowledge
    assert built.orchestrator("site-1").knowledge is None  # isolated


def test_fault_tolerance_wires_alternates():
    built = (Testbed(seed=2, n_sites=3)
             .site("site-0", landscape=QuantumDotLandscape(seed=7))
             .with_fault_tolerance("site-1")
             .site("site-1", landscape=QuantumDotLandscape(seed=7))
             .build())
    ft = built.orchestrator("site-0").fault_tolerant
    assert ft is not None
    assert [alt.site for alt in ft.alternates] == ["site-1"]
    assert built.orchestrator("site-1").fault_tolerant is None


def test_build_requires_at_least_one_site():
    with pytest.raises(ValueError):
        Testbed().build()


def test_duplicate_site_rejected():
    tb = Testbed()
    tb.site("site-0")
    with pytest.raises(ValueError):
        tb.site("site-0")


def test_single_site_helpers_and_ambiguity():
    built = (Testbed(seed=3)
             .site("site-0", landscape=QuantumDotLandscape(seed=7))
             .build())
    assert built.lab().name == "site-0"
    assert built.orchestrator().site == "site-0"
    two = (Testbed(seed=3)
           .site("site-0", landscape=QuantumDotLandscape(seed=7))
           .site("site-1", landscape=QuantumDotLandscape(seed=7))
           .build())
    with pytest.raises(ValueError):
        two.orchestrator()


def test_metrics_and_tracer_shared_across_sites():
    built = (Testbed(seed=4)
             .with_metrics()
             .with_tracing()
             .site("site-0", landscape=QuantumDotLandscape(seed=7))
             .site("site-1", landscape=QuantumDotLandscape(seed=7))
             .build())
    assert built.orchestrator("site-0").metrics is built.metrics
    assert built.orchestrator("site-1").metrics is built.metrics
    assert built.orchestrator("site-0").tracer is built.tracer
    assert built.tracer.sim is built.sim


def test_external_simulator_is_used():
    from repro.sim import Simulator
    sim = Simulator()
    built = (Testbed(seed=5, sim=sim)
             .site("site-0", landscape=QuantumDotLandscape(seed=7))
             .build())
    assert built.sim is sim


def test_run_report_is_canonical_and_run_summary_warns():
    spec = CampaignSpec(name="rep", objective_key="plqy", max_experiments=5)
    built = (Testbed(seed=6)
             .site("site-0", landscape=QuantumDotLandscape(seed=7))
             .build())
    report = built.run_report(spec)
    assert report.n_experiments == 5
    assert report.sim_seconds >= report.finished

    rebuilt = (Testbed(seed=6)
               .site("site-0", landscape=QuantumDotLandscape(seed=7))
               .build())
    with pytest.warns(DeprecationWarning, match="run_summary"):
        summary = rebuilt.run_summary(spec)
    assert summary == report.to_dict()


def test_site_builder_has_no_magic_forwarding():
    with pytest.raises(AttributeError):
        Testbed(seed=1).site("site-0").no_such_toggle()
