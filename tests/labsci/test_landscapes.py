"""Tests for parameter spaces and synthetic landscapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labsci import (ContinuousDim, DiscreteDim, ParameterSpace,
                          SyntheticLandscape)


@pytest.fixture
def space():
    return ParameterSpace([
        DiscreteDim("chem", ("a", "b", "c")),
        ContinuousDim("temp", 0.0, 100.0),
        ContinuousDim("time", 1.0, 10.0),
    ])


def test_dim_validation():
    with pytest.raises(ValueError):
        ContinuousDim("x", 5.0, 5.0)
    with pytest.raises(ValueError):
        DiscreteDim("x", ("only",))
    with pytest.raises(ValueError):
        DiscreteDim("x", ("a", "a"))


def test_space_rejects_duplicate_names():
    with pytest.raises(ValueError):
        ParameterSpace([ContinuousDim("x", 0, 1), ContinuousDim("x", 0, 2)])


def test_validate_complete_params(space):
    space.validate({"chem": "a", "temp": 50.0, "time": 5.0})
    with pytest.raises(ValueError, match="missing"):
        space.validate({"chem": "a", "temp": 50.0})
    with pytest.raises(ValueError, match="extra"):
        space.validate({"chem": "a", "temp": 50.0, "time": 5.0, "x": 1})
    with pytest.raises(ValueError, match="domain"):
        space.validate({"chem": "a", "temp": 500.0, "time": 5.0})
    with pytest.raises(ValueError, match="domain"):
        space.validate({"chem": "zzz", "temp": 50.0, "time": 5.0})


def test_sample_always_valid(space):
    rng = np.random.default_rng(0)
    for _ in range(100):
        assert space.contains(space.sample(rng))


def test_n_conditions(space):
    # 3 discrete choices * 100^2 continuous grid
    assert space.n_conditions(100) == 3 * 100 * 100


def test_encode_shape_and_range(space):
    p = {"chem": "b", "temp": 25.0, "time": 1.0}
    v = space.encode(p)
    assert v.shape == (space.encoded_size,)
    assert space.encoded_size == 3 + 2
    assert np.all(v >= 0.0) and np.all(v <= 1.0)
    # one-hot for chem=b
    assert list(v[1:4]) == [0.0, 1.0, 0.0] or list(v[:3]) == [0.0, 1.0, 0.0]


def test_discrete_key_and_with_discrete(space):
    p = {"chem": "c", "temp": 10.0, "time": 2.0}
    key = space.discrete_key(p)
    assert key == ("c",)
    rebuilt = space.with_discrete(key, {"temp": 10.0, "time": 2.0})
    assert rebuilt == p


def test_discrete_combinations(space):
    assert space.discrete_combinations() == [("a",), ("b",), ("c",)]
    two = ParameterSpace([DiscreteDim("x", ("1", "2")),
                          DiscreteDim("y", ("p", "q"))])
    assert len(two.discrete_combinations()) == 4


def test_normalize_denormalize_roundtrip():
    d = ContinuousDim("t", -10.0, 30.0)
    assert d.denormalize(d.normalize(17.0)) == pytest.approx(17.0)
    assert d.normalize(-10.0) == 0.0
    assert d.normalize(30.0) == 1.0


# -- SyntheticLandscape ----------------------------------------------------------

@pytest.fixture
def landscape(space):
    return SyntheticLandscape(space, seed=7, n_peaks=3)


def test_landscape_deterministic(space):
    l1 = SyntheticLandscape(space, seed=7)
    l2 = SyntheticLandscape(space, seed=7)
    p = {"chem": "a", "temp": 42.0, "time": 3.3}
    assert l1.evaluate(p) == l2.evaluate(p)


def test_landscape_seed_changes_surface(space):
    p = {"chem": "a", "temp": 42.0, "time": 3.3}
    r1 = SyntheticLandscape(space, seed=1).evaluate(p)["response"]
    r2 = SyntheticLandscape(space, seed=2).evaluate(p)["response"]
    assert r1 != r2


def test_landscape_output_in_range(landscape, space):
    rng = np.random.default_rng(3)
    for _ in range(200):
        r = landscape.evaluate(space.sample(rng))["response"]
        assert 0.0 <= r <= 1.0 + 1e9 * 0  # peaks can stack slightly above 1
        assert r >= 0.0


def test_landscape_smooth_locally(landscape):
    p1 = {"chem": "a", "temp": 50.0, "time": 5.0}
    p2 = {"chem": "a", "temp": 50.01, "time": 5.0}
    r1 = landscape.evaluate(p1)["response"]
    r2 = landscape.evaluate(p2)["response"]
    assert abs(r1 - r2) < 0.01


def test_landscape_discrete_choice_matters(landscape):
    p = {"temp": 50.0, "time": 5.0}
    values = {c: landscape.evaluate({**p, "chem": c})["response"]
              for c in ("a", "b", "c")}
    assert len(set(values.values())) == 3


def test_landscape_validates_params(landscape):
    with pytest.raises(ValueError):
        landscape.evaluate({"chem": "a", "temp": -5.0, "time": 5.0})


def test_best_estimate_finds_good_point(landscape):
    best_value, best_params = landscape.best_estimate(n_random=3000,
                                                      refine_top=3)
    assert landscape.space.contains(best_params)
    # The oracle must beat a modest random search.
    rng = np.random.default_rng(0)
    random_best = max(landscape.objective_value(landscape.space.sample(rng))
                      for _ in range(200))
    assert best_value >= random_best


def test_best_estimate_cached(landscape):
    a = landscape.best_estimate(n_random=500, refine_top=2)
    b = landscape.best_estimate(n_random=999999)  # would be slow if not cached
    assert a == b


@given(st.floats(min_value=0.0, max_value=100.0),
       st.floats(min_value=1.0, max_value=10.0),
       st.sampled_from(["a", "b", "c"]))
@settings(max_examples=50, deadline=None)
def test_property_landscape_total_function(temp, time, chem):
    space = ParameterSpace([
        DiscreteDim("chem", ("a", "b", "c")),
        ContinuousDim("temp", 0.0, 100.0),
        ContinuousDim("time", 1.0, 10.0),
    ])
    land = SyntheticLandscape(space, seed=11)
    r = land.evaluate({"chem": chem, "temp": temp, "time": time})["response"]
    assert np.isfinite(r)
    assert r >= 0.0
