"""Tests for parameter spaces and synthetic landscapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labsci import (ContinuousDim, DiscreteDim, ParameterSpace,
                          SyntheticLandscape)


@pytest.fixture
def space():
    return ParameterSpace([
        DiscreteDim("chem", ("a", "b", "c")),
        ContinuousDim("temp", 0.0, 100.0),
        ContinuousDim("time", 1.0, 10.0),
    ])


def test_dim_validation():
    with pytest.raises(ValueError):
        ContinuousDim("x", 5.0, 5.0)
    with pytest.raises(ValueError):
        DiscreteDim("x", ("only",))
    with pytest.raises(ValueError):
        DiscreteDim("x", ("a", "a"))


def test_space_rejects_duplicate_names():
    with pytest.raises(ValueError):
        ParameterSpace([ContinuousDim("x", 0, 1), ContinuousDim("x", 0, 2)])


def test_validate_complete_params(space):
    space.validate({"chem": "a", "temp": 50.0, "time": 5.0})
    with pytest.raises(ValueError, match="missing"):
        space.validate({"chem": "a", "temp": 50.0})
    with pytest.raises(ValueError, match="extra"):
        space.validate({"chem": "a", "temp": 50.0, "time": 5.0, "x": 1})
    with pytest.raises(ValueError, match="domain"):
        space.validate({"chem": "a", "temp": 500.0, "time": 5.0})
    with pytest.raises(ValueError, match="domain"):
        space.validate({"chem": "zzz", "temp": 50.0, "time": 5.0})


def test_sample_always_valid(space):
    rng = np.random.default_rng(0)
    for _ in range(100):
        assert space.contains(space.sample(rng))


def test_n_conditions(space):
    # 3 discrete choices * 100^2 continuous grid
    assert space.n_conditions(100) == 3 * 100 * 100


def test_encode_shape_and_range(space):
    p = {"chem": "b", "temp": 25.0, "time": 1.0}
    v = space.encode(p)
    assert v.shape == (space.encoded_size,)
    assert space.encoded_size == 3 + 2
    assert np.all(v >= 0.0) and np.all(v <= 1.0)
    # one-hot for chem=b
    assert list(v[1:4]) == [0.0, 1.0, 0.0] or list(v[:3]) == [0.0, 1.0, 0.0]


def test_discrete_key_and_with_discrete(space):
    p = {"chem": "c", "temp": 10.0, "time": 2.0}
    key = space.discrete_key(p)
    assert key == ("c",)
    rebuilt = space.with_discrete(key, {"temp": 10.0, "time": 2.0})
    assert rebuilt == p


def test_discrete_combinations(space):
    assert space.discrete_combinations() == [("a",), ("b",), ("c",)]
    two = ParameterSpace([DiscreteDim("x", ("1", "2")),
                          DiscreteDim("y", ("p", "q"))])
    assert len(two.discrete_combinations()) == 4


def test_normalize_denormalize_roundtrip():
    d = ContinuousDim("t", -10.0, 30.0)
    assert d.denormalize(d.normalize(17.0)) == pytest.approx(17.0)
    assert d.normalize(-10.0) == 0.0
    assert d.normalize(30.0) == 1.0


# -- SyntheticLandscape ----------------------------------------------------------

@pytest.fixture
def landscape(space):
    return SyntheticLandscape(space, seed=7, n_peaks=3)


def test_landscape_deterministic(space):
    l1 = SyntheticLandscape(space, seed=7)
    l2 = SyntheticLandscape(space, seed=7)
    p = {"chem": "a", "temp": 42.0, "time": 3.3}
    assert l1.evaluate(p) == l2.evaluate(p)


def test_landscape_seed_changes_surface(space):
    p = {"chem": "a", "temp": 42.0, "time": 3.3}
    r1 = SyntheticLandscape(space, seed=1).evaluate(p)["response"]
    r2 = SyntheticLandscape(space, seed=2).evaluate(p)["response"]
    assert r1 != r2


def test_landscape_output_in_range(landscape, space):
    rng = np.random.default_rng(3)
    for _ in range(200):
        r = landscape.evaluate(space.sample(rng))["response"]
        assert 0.0 <= r <= 1.0 + 1e9 * 0  # peaks can stack slightly above 1
        assert r >= 0.0


def test_landscape_smooth_locally(landscape):
    p1 = {"chem": "a", "temp": 50.0, "time": 5.0}
    p2 = {"chem": "a", "temp": 50.01, "time": 5.0}
    r1 = landscape.evaluate(p1)["response"]
    r2 = landscape.evaluate(p2)["response"]
    assert abs(r1 - r2) < 0.01


def test_landscape_discrete_choice_matters(landscape):
    p = {"temp": 50.0, "time": 5.0}
    values = {c: landscape.evaluate({**p, "chem": c})["response"]
              for c in ("a", "b", "c")}
    assert len(set(values.values())) == 3


def test_landscape_validates_params(landscape):
    with pytest.raises(ValueError):
        landscape.evaluate({"chem": "a", "temp": -5.0, "time": 5.0})


def test_best_estimate_finds_good_point(landscape):
    best_value, best_params = landscape.best_estimate(n_random=3000,
                                                      refine_top=3)
    assert landscape.space.contains(best_params)
    # The oracle must beat a modest random search.
    rng = np.random.default_rng(0)
    random_best = max(landscape.objective_value(landscape.space.sample(rng))
                      for _ in range(200))
    assert best_value >= random_best


def test_best_estimate_cached(landscape):
    a = landscape.best_estimate(n_random=500, refine_top=2)
    b = landscape.best_estimate(n_random=999999)  # would be slow if not cached
    assert a == b


@given(st.floats(min_value=0.0, max_value=100.0),
       st.floats(min_value=1.0, max_value=10.0),
       st.sampled_from(["a", "b", "c"]))
@settings(max_examples=50, deadline=None)
def test_property_landscape_total_function(temp, time, chem):
    space = ParameterSpace([
        DiscreteDim("chem", ("a", "b", "c")),
        ContinuousDim("temp", 0.0, 100.0),
        ContinuousDim("time", 1.0, 10.0),
    ])
    land = SyntheticLandscape(space, seed=11)
    r = land.evaluate({"chem": chem, "temp": temp, "time": time})["response"]
    assert np.isfinite(r)
    assert r >= 0.0


# -- batched fast path ----------------------------------------------------------


def test_dim_lookup_and_keyerror(space):
    assert space.dim("temp").name == "temp"
    assert space.dim("chem").choices == ("a", "b", "c")
    with pytest.raises(KeyError):
        space.dim("nope")


def test_discrete_index_lookup():
    d = DiscreteDim("chem", ("a", "b", "c"))
    assert [d.index(c) for c in d.choices] == [0, 1, 2]
    with pytest.raises(ValueError):
        d.index("zzz")


def test_sample_batch_shape_and_validity(space):
    rng = np.random.default_rng(3)
    raw = space.sample_batch(rng, 50)
    assert raw.shape == (50, len(space))
    for p in space.decode_batch(raw):
        space.validate(p)


def test_encode_batch_bit_identical_to_rowwise(space):
    rng = np.random.default_rng(4)
    points = [space.sample(rng) for _ in range(64)]
    batch = space.encode_batch(points)
    rowwise = np.array([space.encode(p) for p in points])
    assert batch.dtype == np.float64
    assert np.array_equal(batch, rowwise)


def test_encode_raw_batch_matches_encode(space):
    rng = np.random.default_rng(5)
    raw = space.sample_batch(rng, 40)
    from_raw = space.encode_raw_batch(raw)
    from_dicts = np.array([space.encode(p) for p in space.decode_batch(raw)])
    assert np.array_equal(from_raw, from_dicts)


def test_raw_point_decode_roundtrip(space):
    rng = np.random.default_rng(6)
    for _ in range(20):
        p = space.sample(rng)
        assert space.decode_batch(space.raw_point(p))[0] == p


def test_continuous_matrix_matches_vector(space):
    rng = np.random.default_rng(7)
    points = [space.sample(rng) for _ in range(30)]
    mat = space.continuous_matrix(points)
    for i, p in enumerate(points):
        assert np.array_equal(mat[i], space.continuous_vector(p))


def test_sample_batch_marginals_match_scalar(space):
    """Per-dim marginals of the batched and scalar samplers agree (KS)."""
    n = 3000
    rng_a = np.random.default_rng(8)
    rng_b = np.random.default_rng(9)
    scalar = [space.sample(rng_a) for _ in range(n)]
    batch = space.decode_batch(space.sample_batch(rng_b, n))
    for d in space.dims:
        if isinstance(d, ContinuousDim):
            a = np.sort([p[d.name] for p in scalar])
            b = np.sort([p[d.name] for p in batch])
            grid = np.sort(np.concatenate([a, b]))
            ks = np.max(np.abs(
                np.searchsorted(a, grid, side="right") / n
                - np.searchsorted(b, grid, side="right") / n))
            assert ks < 0.05, (d.name, ks)
        else:
            for c in d.choices:
                fa = sum(p[d.name] == c for p in scalar) / n
                fb = sum(p[d.name] == c for p in batch) / n
                assert abs(fa - fb) < 0.04, (d.name, c, fa, fb)


def test_synthetic_evaluate_batch_matches_scalar(space):
    land = SyntheticLandscape(space, seed=13)
    rng = np.random.default_rng(10)
    points = [space.sample(rng) for _ in range(100)]
    batch = land.evaluate_batch(points)
    assert set(batch) == {"response"}
    for i, p in enumerate(points):
        assert batch["response"][i] == land.evaluate(p)["response"]


def test_evaluate_batch_validates(space):
    land = SyntheticLandscape(space, seed=13)
    with pytest.raises(ValueError):
        land.evaluate_batch([{"chem": "a", "temp": 5000.0, "time": 5.0}])


def test_objective_batch_matches_objective_value(space):
    land = SyntheticLandscape(space, seed=14)
    rng = np.random.default_rng(11)
    points = [space.sample(rng) for _ in range(25)]
    vals = land.objective_batch(points)
    for i, p in enumerate(points):
        assert vals[i] == land.objective_value(p)
