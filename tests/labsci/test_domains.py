"""Tests for the four domain landscapes and samples."""

import numpy as np
import pytest

from repro.labsci import (MetallicGlassLandscape, PerovskiteLandscape,
                          PolymerFilmLandscape, QuantumDotLandscape, Sample)


# -- quantum dots ------------------------------------------------------------

@pytest.fixture(scope="module")
def qd():
    return QuantumDotLandscape(seed=3)


def test_qd_condition_count_matches_paper_claim(qd):
    # Smart Dope: "navigates 10^13 possible synthesis conditions".
    assert qd.n_conditions_at_sdl_resolution() >= 1e13


def test_qd_properties_complete_and_bounded(qd):
    rng = np.random.default_rng(0)
    for _ in range(50):
        props = qd.evaluate(qd.space.sample(rng))
        assert set(props) == {"plqy", "emission_nm", "stability"}
        assert 0.0 <= props["plqy"] <= 1.0
        assert 0.0 <= props["stability"] <= 1.0
        assert 300.0 < props["emission_nm"] < 1100.0


def test_qd_emission_shifts_with_concentration(qd):
    rng = np.random.default_rng(1)
    base = qd.space.sample(rng)
    low = dict(base, dopant_conc=0.01)
    high = dict(base, dopant_conc=0.4)
    assert qd.evaluate(high)["emission_nm"] > qd.evaluate(low)["emission_nm"]


def test_qd_deterministic(qd):
    p = qd.space.sample(np.random.default_rng(2))
    assert qd.evaluate(p) == QuantumDotLandscape(seed=3).evaluate(p)


# -- perovskite -----------------------------------------------------------------

def test_perovskite_quality_peaks_near_target_wavelength():
    land = PerovskiteLandscape(seed=5, target_nm=520.0)
    rng = np.random.default_rng(0)
    # Find the halide ratio giving ~520 nm for a fixed recipe; quality must
    # dominate a recipe of equal PLQY far from target.
    base = land.space.sample(rng)
    near = max((land.evaluate(dict(base, halide_ratio=h))
                for h in np.linspace(0, 1, 101)),
               key=lambda p: -abs(p["emission_nm"] - 520.0))
    far = max((land.evaluate(dict(base, halide_ratio=h))
               for h in np.linspace(0, 1, 101)),
              key=lambda p: abs(p["emission_nm"] - 520.0))
    assert abs(near["emission_nm"] - 520.0) < abs(far["emission_nm"] - 520.0)


def test_perovskite_site_calibration_shifts_results():
    p = PerovskiteLandscape(seed=5).space.sample(np.random.default_rng(1))
    ref = PerovskiteLandscape(seed=5).evaluate(p)
    site_a = PerovskiteLandscape(seed=5, site="ornl",
                                 calibration_scale=1.0).evaluate(p)
    site_b = PerovskiteLandscape(seed=5, site="anl",
                                 calibration_scale=1.0).evaluate(p)
    # Systematic offsets: sites disagree with the reference and each other.
    assert site_a != ref or site_b != ref
    assert site_a != site_b


def test_perovskite_site_offsets_deterministic():
    p = PerovskiteLandscape(seed=5).space.sample(np.random.default_rng(1))
    a1 = PerovskiteLandscape(seed=5, site="ornl", calibration_scale=1.0)
    a2 = PerovskiteLandscape(seed=5, site="ornl", calibration_scale=1.0)
    assert a1.evaluate(p) == a2.evaluate(p)


def test_perovskite_same_optimum_structure_across_sites():
    # Calibration shifts are small: a good recipe at one site is still
    # decent at another (transfer learning has signal to exploit, E3).
    land_ref = PerovskiteLandscape(seed=5)
    best_v, best_p = land_ref.best_estimate(n_random=4000, refine_top=3)
    land_site = PerovskiteLandscape(seed=5, site="pnnl",
                                    calibration_scale=1.0)
    assert land_site.objective_value(best_p) > 0.5 * best_v


# -- metallic glass -----------------------------------------------------------------

def test_metallic_glass_infeasible_composition_zero():
    land = MetallicGlassLandscape(seed=2)
    props = land.evaluate({"frac_zr": 0.8, "frac_cu": 0.8,
                           "cooling_rate": 5.0})
    assert props == {"gfa": 0.0, "is_glass": 0.0}


def test_metallic_glass_cooling_rate_helps():
    land = MetallicGlassLandscape(seed=2)
    rng = np.random.default_rng(0)
    diffs = []
    for _ in range(30):
        x = rng.uniform(0, 0.6)
        y = rng.uniform(0, 1 - x - 1e-6) if x < 1 else 0
        slow = land.evaluate({"frac_zr": x, "frac_cu": y, "cooling_rate": 1.5})
        fast = land.evaluate({"frac_zr": x, "frac_cu": y, "cooling_rate": 5.5})
        diffs.append(fast["gfa"] - slow["gfa"])
    assert all(d >= 0 for d in diffs)


def test_metallic_glass_has_glass_formers():
    land = MetallicGlassLandscape(seed=2)
    rng = np.random.default_rng(1)
    found = 0
    for _ in range(2000):
        x = rng.uniform(0, 1)
        y = rng.uniform(0, 1 - x) if x < 1 else 0.0
        if land.evaluate({"frac_zr": x, "frac_cu": y,
                          "cooling_rate": 5.9})["is_glass"]:
            found += 1
    assert 0 < found < 2000  # islands exist but do not cover the simplex


# -- polymer films -----------------------------------------------------------------------

def test_polymer_solvent_blend_changes_optimum():
    land = PolymerFilmLandscape(seed=4)
    speeds = np.linspace(0.5, 50.0, 60)

    def best_speed(blend):
        return max(speeds, key=lambda s: land.evaluate(
            {"solvent_blend": blend, "coating_speed": float(s),
             "anneal_temp": land._opt_temp[blend],
             "dopant_fraction": 0.18})["conductivity"])

    bests = {b: best_speed(b) for b in
             ("chloroform", "chlorobenzene", "xylene")}
    assert len({round(v, 1) for v in bests.values()}) > 1


def test_polymer_uniformity_degrades_with_speed():
    land = PolymerFilmLandscape(seed=4)
    slow = land.evaluate({"solvent_blend": "xylene", "coating_speed": 1.0,
                          "anneal_temp": 150.0, "dopant_fraction": 0.1})
    fast = land.evaluate({"solvent_blend": "xylene", "coating_speed": 45.0,
                          "anneal_temp": 150.0, "dopant_fraction": 0.1})
    assert fast["uniformity"] < slow["uniformity"]


# -- samples ---------------------------------------------------------------------------------

def test_sample_carries_truth_privately(qd):
    p = qd.space.sample(np.random.default_rng(5))
    s = Sample.synthesize(p, qd, site="ornl")
    assert s.true_properties() == qd.evaluate(p)
    assert s.sample_id.startswith("sample-")
    assert s.site == "ornl"


def test_sample_ids_unique(qd):
    p = qd.space.sample(np.random.default_rng(5))
    ids = {Sample.synthesize(p, qd).sample_id for _ in range(10)}
    assert len(ids) == 10


def test_sample_transform_scales_property(qd):
    p = qd.space.sample(np.random.default_rng(6))
    s = Sample.synthesize(p, qd)
    before = s.true_property("plqy")
    s.apply_transform("plqy", 1.2)
    assert s.true_property("plqy") == pytest.approx(before * 1.2)
    assert s.state["transformed:plqy"] == pytest.approx(1.2)


def test_sample_provenance_records(qd):
    p = qd.space.sample(np.random.default_rng(7))
    s = Sample.synthesize(p, qd)
    s.record(1.0, "robot-1", "synthesize")
    s.record(2.0, "spec-1", "measure")
    assert [op for _, _, op in s.provenance] == ["synthesize", "measure"]


# -- vectorized evaluate_batch ------------------------------------------------

@pytest.mark.parametrize("make", [
    lambda: QuantumDotLandscape(seed=3),
    lambda: PerovskiteLandscape(seed=3),
    lambda: PerovskiteLandscape(seed=3, site="lab-b", calibration_scale=1.0),
    lambda: PolymerFilmLandscape(seed=3),
    lambda: MetallicGlassLandscape(seed=3),
])
def test_evaluate_batch_matches_scalar(make):
    land = make()
    rng = np.random.default_rng(17)
    points = [land.space.sample(rng) for _ in range(120)]
    batch = land.evaluate_batch(points)
    assert set(batch) == set(land.properties)
    for i, p in enumerate(points):
        scalar = land.evaluate(p)
        for name in land.properties:
            assert batch[name][i] == scalar[name], (name, i)


def test_metallic_glass_batch_infeasible_rows():
    land = MetallicGlassLandscape(seed=1)
    infeasible = {"frac_zr": 0.8, "frac_cu": 0.8, "cooling_rate": 5.0}
    out = land.evaluate_batch([infeasible])
    assert out["gfa"][0] == 0.0
    assert out["is_glass"][0] == 0.0


def test_sample_synthesize_batch_matches_scalar():
    land = QuantumDotLandscape(seed=4)
    rng = np.random.default_rng(5)
    points = [land.space.sample(rng) for _ in range(10)]
    batch = Sample.synthesize_batch(points, land, site="lab-a")
    for p, s in zip(points, batch):
        ref = Sample.synthesize(p, land, site="lab-a")
        assert s.params == dict(p)
        assert s.site == "lab-a"
        assert s.true_properties() == ref.true_properties()
