"""Tests for the repro.perf harness, report schema, and baseline gating."""

import json

import pytest

from repro.perf import (SCHEMA_VERSION, PerfHarness, WORKLOADS,
                        compare_reports, load_report, write_report)
from repro.perf.__main__ import main as perf_main


def _fake_report(gates, quick=True, skipped=None):
    return {"schema_version": SCHEMA_VERSION, "quick": quick, "seed": 0,
            "repeats": 1, "workloads": {}, "gates": dict(gates),
            "skipped_gates": dict(skipped or {})}


# -- harness runs --------------------------------------------------------------

def test_quick_run_produces_versioned_report():
    harness = PerfHarness(quick=True, workloads=["sim_events"])
    report = harness.run()
    assert report["schema_version"] == SCHEMA_VERSION
    assert report["quick"] is True
    metrics = report["workloads"]["sim_events"]["metrics"]
    assert metrics["events"] > 0
    assert metrics["events_per_second"] > 0
    assert metrics["hash_equal"] == 1.0
    # Calendar-queue structure counters ride along as obs gauges.
    assert metrics["queue_coalesced"] > 0
    assert report["gates"]["sim_events.kernel_speedup"] > 0
    assert report["obs"]["counters"]["perf.workloads_run"] == 1
    assert "perf.sim_events.events_per_second" in report["obs"]["gauges"]
    assert "perf.sim_events.queue_coalesced" in report["obs"]["gauges"]


def test_skipped_gates_propagate_to_report(monkeypatch):
    def stub(clock, *, quick=False, seed=0):
        del clock, quick, seed
        return {"metrics": {"x": 1.0}, "gates": {},
                "skipped": {"speedup": "cpu_count=1 < 4"}}

    monkeypatch.setitem(WORKLOADS, "stub", stub)
    report = PerfHarness(quick=True, workloads=["stub"]).run()
    assert report["gates"] == {}
    assert report["skipped_gates"] == {"stub.speedup": "cpu_count=1 < 4"}


def test_all_workloads_registered():
    assert set(WORKLOADS) == {"surrogate_e12", "bo_ask", "gp_scaling",
                              "sim_events", "bus_throughput",
                              "bus_routing_indexed", "parallel_worlds",
                              "service_multitenant", "mesh_governance"}


def test_unknown_workload_rejected():
    with pytest.raises(ValueError, match="unknown workloads"):
        PerfHarness(workloads=["nope"])


def test_bad_repeats_rejected():
    with pytest.raises(ValueError, match="repeats"):
        PerfHarness(repeats=0)


# -- baseline comparison -------------------------------------------------------

def test_compare_passes_within_threshold():
    base = _fake_report({"w.speedup": 3.5})
    cur = _fake_report({"w.speedup": 3.0})  # -14%, inside 20%
    assert compare_reports(cur, base, threshold=0.20) == []


def test_compare_detects_regression():
    base = _fake_report({"w.speedup": 3.5})
    cur = _fake_report({"w.speedup": 2.0})  # -43%
    problems = compare_reports(cur, base, threshold=0.20)
    assert len(problems) == 1
    assert "regressed" in problems[0]


def test_compare_flags_structural_drift():
    base = _fake_report({"w.old_gate": 3.0})
    cur = _fake_report({"w.new_gate": 3.0})
    problems = compare_reports(cur, base)
    assert any("missing from current" in p for p in problems)
    assert any("no baseline entry" in p for p in problems)


def test_compare_tolerates_gate_skipped_on_current_machine():
    # Baseline measured on a big box; current box declares the skip.
    base = _fake_report({"w.parallel_speedup": 3.0})
    cur = _fake_report({}, skipped={"w.parallel_speedup": "cpu_count=1 < 4"})
    assert compare_reports(cur, base) == []


def test_compare_tolerates_gate_skipped_in_baseline():
    # Baseline from a small box; CI's bigger machine evaluates the gate.
    base = _fake_report({}, skipped={"w.parallel_speedup": "cpu_count=1 < 4"})
    cur = _fake_report({"w.parallel_speedup": 3.0})
    assert compare_reports(cur, base) == []


def test_compare_still_flags_undeclared_missing_gate():
    # A gate that vanishes *without* a declared skip is structural drift.
    base = _fake_report({"w.parallel_speedup": 3.0})
    cur = _fake_report({})
    problems = compare_reports(cur, base)
    assert any("missing from current" in p for p in problems)


def test_compare_rejects_bad_threshold():
    with pytest.raises(ValueError):
        compare_reports(_fake_report({}), _fake_report({}), threshold=1.5)


def test_load_report_rejects_other_schema(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"schema_version": 0, "gates": {}}))
    with pytest.raises(ValueError, match="schema_version"):
        load_report(str(path))


def test_write_then_load_roundtrip(tmp_path):
    report = _fake_report({"w.speedup": 3.25})
    path = tmp_path / "bench.json"
    write_report(report, str(path))
    assert load_report(str(path)) == report


# -- CLI -----------------------------------------------------------------------

def test_cli_writes_report_and_exits_zero(tmp_path):
    out = tmp_path / "bench.json"
    code = perf_main(["--quick", "--workloads", "sim_events",
                      "--output", str(out)])
    assert code == 0
    assert load_report(str(out))["workloads"]["sim_events"]


def test_cli_fails_on_regression(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    # A baseline gate name sim_events never emits (and never declares
    # skipped) can never be satisfied: the CLI must exit nonzero and
    # say why.
    write_report(_fake_report({"sim_events.speedup": 99.0}), str(baseline))
    code = perf_main(["--quick", "--workloads", "sim_events",
                      "--baseline", str(baseline)])
    assert code == 1
    assert "PERF REGRESSION" in capsys.readouterr().err
