"""Tests for the literature-review knowledge source."""

import numpy as np
import pytest

from repro.agents.literature import LiteratureAgent, SyntheticLiterature
from repro.labsci import ContinuousDim, ParameterSpace, SyntheticLandscape
from repro.methods import BayesianOptimizer


@pytest.fixture
def space():
    return ParameterSpace([ContinuousDim("x", 0.0, 1.0),
                           ContinuousDim("y", 0.0, 1.0)])


@pytest.fixture
def land(space):
    return SyntheticLandscape(space, seed=13, n_peaks=3)


def test_publication_bias_skews_corpus(land):
    rng = np.random.default_rng(0)
    lit = SyntheticLiterature(land, rng, n_papers=30,
                              publication_quantile=0.5)
    published_truths = [p.true_value for p in lit.corpus]
    random_truths = [land.objective_value(land.space.sample(rng))
                     for _ in range(300)]
    # The published record is a strictly rosier sample of reality.
    assert np.mean(published_truths) > np.median(random_truths)


def test_optimism_bias_inflates_reports(land):
    rng = np.random.default_rng(1)
    honest = SyntheticLiterature(land, rng, optimism_bias=0.0, noise=0.01)
    hyped = SyntheticLiterature(land, np.random.default_rng(1),
                                optimism_bias=0.5, noise=0.01)
    assert abs(honest.mean_inflation()) < 0.05
    assert hyped.mean_inflation() > 0.05


def test_search_orders_by_reported_value(land):
    lit = SyntheticLiterature(land, np.random.default_rng(2), n_papers=20)
    hits = lit.search(top_k=5)
    values = [p.reported_value for p in hits]
    assert values == sorted(values, reverse=True)
    assert len(hits) == 5


def test_review_seeds_optimizer_and_costs_time(sim, land):
    lit = SyntheticLiterature(land, np.random.default_rng(3), n_papers=20)
    agent = LiteratureAgent(sim, lit, review_time_per_paper_s=300.0)
    bo = BayesianOptimizer(land.space, np.random.default_rng(4), n_init=6)
    out = {}

    def proc():
        out["absorbed"] = yield from agent.review_into(bo, top_k=8)

    sim.process(proc())
    sim.run()
    assert sim.now == pytest.approx(8 * 300.0)
    assert len(out["absorbed"]) == 8
    assert len(bo._external) == 8
    assert bo.n_observed == 0  # literature is not our data


def test_review_skips_out_of_envelope_recipes(sim, land):
    lit = SyntheticLiterature(land, np.random.default_rng(5), n_papers=30)
    # A modern SDL restricted to x <= 0.3: old high-x recipes unusable.
    clipped = ParameterSpace([ContinuousDim("x", 0.0, 0.3),
                              ContinuousDim("y", 0.0, 1.0)])
    bo = BayesianOptimizer(clipped, np.random.default_rng(6))
    agent = LiteratureAgent(sim, lit)
    out = {}

    def proc():
        out["absorbed"] = yield from agent.review_into(bo, top_k=30)

    sim.process(proc())
    sim.run()
    assert len(out["absorbed"]) < 30
    for paper in out["absorbed"]:
        assert paper.params_dict()["x"] <= 0.3


def test_honest_literature_accelerates_campaign(sim, land):
    """A seeded surrogate's *first own experiment* already exploits the
    record, where an unseeded campaign is still sampling at random."""
    bo = BayesianOptimizer(land.space, np.random.default_rng(7), n_init=6)
    lit = SyntheticLiterature(land, np.random.default_rng(8), n_papers=30,
                              optimism_bias=0.0, noise=0.02)
    agent = LiteratureAgent(sim, lit)
    done = {}

    def proc():
        done["x"] = yield from agent.review_into(bo, top_k=10)

    sim.process(proc())
    sim.run()
    first_proposal = bo.ask()
    first_value = land.objective_value(first_proposal)
    rng = np.random.default_rng(11)
    random_values = [land.objective_value(land.space.sample(rng))
                     for _ in range(300)]
    # The literature-informed first shot beats the random 75th percentile.
    assert first_value > float(np.percentile(random_values, 75))


def test_hyped_literature_misleads_without_discount(sim, land):
    """The §3.1 failure mode: inflated claims pull the surrogate off
    reality; a skeptical discount restores sanity."""
    oracle, oracle_params = land.best_estimate(n_random=4000)

    def seeded_posterior_error(discount: float) -> float:
        bo = BayesianOptimizer(land.space, np.random.default_rng(9),
                               n_init=4)
        lit = SyntheticLiterature(land, np.random.default_rng(10),
                                  n_papers=30, optimism_bias=0.8,
                                  noise=0.02)
        agent = LiteratureAgent(sim, lit, discount=discount)
        done = {}

        def proc():
            done["x"] = yield from agent.review_into(bo, top_k=10)

        sim.process(proc())
        sim.run()
        # How wrong is the seeded surrogate about the best known recipe?
        mean, _ = bo.posterior_at(oracle_params)
        truth = land.objective_value(oracle_params)
        return abs(mean - truth)

    err_credulous = seeded_posterior_error(discount=1.0)
    err_skeptical = seeded_posterior_error(discount=1.0 / 1.8)
    assert err_skeptical < err_credulous
