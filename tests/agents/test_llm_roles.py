"""Tests for the simulated LLM and the planner/executor/evaluator trio."""

import numpy as np
import pytest

from repro.agents import (AgentRuntime, EvaluatorAgent, ExecutorAgent,
                          PlannerAgent, SimulatedLLM)
from repro.agents.planner import ExperimentPlan
from repro.instruments import (FluidicReactor, HardwareAbstractionLayer,
                               PLSpectrometer, make_vendor_protocol)
from repro.methods import BayesianOptimizer, NestedBayesianOptimizer


def run(sim, gen):
    out = {}

    def proc():
        out["r"] = yield from gen
    sim.process(proc())
    sim.run()
    return out["r"]


@pytest.fixture
def llm(sim, rngs):
    return SimulatedLLM(sim, rngs.stream("llm"), hallucination_rate=0.3)


# -- simulated LLM ------------------------------------------------------------

def test_llm_charges_latency_and_tokens(sim, llm, qd_landscape):
    resp = run(sim, llm.propose_parameters(qd_landscape.space, []))
    assert 0.8 <= resp.latency_s <= 3.0
    assert sim.now == pytest.approx(resp.latency_s)
    assert resp.tokens > 0
    assert llm.stats["calls"] == 1


def test_llm_hallucination_rate_approximate(sim, rngs, qd_landscape):
    llm = SimulatedLLM(sim, rngs.stream("llm2"), hallucination_rate=0.4)
    n = 200
    grounded = []

    def proc():
        for _ in range(n):
            r = yield from llm.propose_parameters(qd_landscape.space, [])
            grounded.append(r.grounded)

    sim.process(proc())
    sim.run()
    rate = 1.0 - sum(grounded) / n
    assert rate == pytest.approx(0.4, abs=0.1)
    assert llm.stats["hallucinations"] == n - sum(grounded)


def test_llm_zero_hallucination_always_grounded(sim, rngs, qd_landscape):
    llm = SimulatedLLM(sim, rngs.stream("llm3"), hallucination_rate=0.0)

    def proc():
        for _ in range(30):
            r = yield from llm.propose_parameters(qd_landscape.space, [])
            assert r.grounded
            assert qd_landscape.space.contains(r.content["params"])

    sim.process(proc())
    sim.run()


def test_llm_grounded_proposal_perturbs_best(sim, rngs, qd_landscape):
    llm = SimulatedLLM(sim, rngs.stream("llm4"), hallucination_rate=0.0)
    best = qd_landscape.space.sample(np.random.default_rng(0))
    history = [(best, 0.9), (qd_landscape.space.sample(
        np.random.default_rng(1)), 0.1)]
    resp = run(sim, llm.propose_parameters(qd_landscape.space, history))
    # Discrete choices inherited from the incumbent recipe.
    assert resp.content["params"]["dopant"] == best["dopant"]


def test_llm_hallucinations_are_detectably_wrong(sim, rngs, qd_landscape):
    llm = SimulatedLLM(sim, rngs.stream("llm5"), hallucination_rate=1.0)
    safety = {"temperature": (60.0, 200.0)}
    bad_somehow = 0
    n = 40

    def proc():
        nonlocal bad_somehow
        for _ in range(n):
            r = yield from llm.propose_parameters(
                qd_landscape.space, [], safety_envelope=safety)
            params = r.content["params"]
            unsafe = any(
                isinstance(v, (int, float)) and k in safety
                and not safety[k][0] <= v <= safety[k][1]
                for k, v in params.items())
            invalid = not qd_landscape.space.contains(params)
            absurd = r.content.get("expected", {}).get("objective", 0) > 1.0
            if unsafe or invalid or absurd:
                bad_somehow += 1

    sim.process(proc())
    sim.run()
    assert bad_somehow == n  # every hallucination is catchable in principle


def test_llm_tool_selection_mostly_right(sim, rngs):
    llm = SimulatedLLM(sim, rngs.stream("llm6"), tool_error_rate=0.05)
    picks = []

    def proc():
        for _ in range(100):
            r = yield from llm.select_tool("goal", ["bo", "rs"], "bo")
            picks.append(r.content["tool"])

    sim.process(proc())
    sim.run()
    assert picks.count("bo") >= 90


def test_llm_validation():
    import numpy as np
    from repro.sim import Simulator
    with pytest.raises(ValueError):
        SimulatedLLM(Simulator(), np.random.default_rng(0),
                     hallucination_rate=1.5)


def test_llm_reasoning_trace(sim, llm):
    resp = run(sim, llm.summarize_reasoning({"stage": 1, "budget": 0.4}))
    assert "budget" in resp.content["text"]


# -- planner/executor/evaluator --------------------------------------------------------

@pytest.fixture
def trio(sim, rngs, testbed_network, qd_landscape):
    runtime = AgentRuntime(sim, testbed_network)
    hal = HardwareAbstractionLayer()
    reactor = FluidicReactor(sim, "reactor", "site-0", rngs, qd_landscape)
    spec = PLSpectrometer(sim, "spec", "site-0", rngs, scan_time_s=5.0)
    hal.register(make_vendor_protocol(reactor, "kelvin-sci"))
    optimizer = NestedBayesianOptimizer(qd_landscape.space,
                                        rngs.stream("opt"))
    llm = SimulatedLLM(sim, rngs.stream("llm"), hallucination_rate=0.0)
    planner = PlannerAgent(sim, "planner", "site-0", runtime, optimizer, llm)
    executor = ExecutorAgent(sim, "executor", "site-0", runtime, hal,
                             "reactor", spec, objective_key="plqy")
    evaluator = EvaluatorAgent(sim, "evaluator", "site-0", runtime, planner,
                               target=0.95, patience=5)
    return planner, executor, evaluator


def test_planner_mode_validation(sim, rngs, testbed_network, qd_landscape):
    runtime = AgentRuntime(sim, testbed_network)
    opt = BayesianOptimizer(qd_landscape.space, rngs.stream("o"))
    llm = SimulatedLLM(sim, rngs.stream("l"))
    with pytest.raises(ValueError):
        PlannerAgent(sim, "p", "site-0", runtime, opt, llm, mode="psychic")


def test_hierarchical_plan_comes_from_optimizer(sim, trio):
    planner, _, _ = trio
    plan = run(sim, planner.next_plan())
    assert plan.source == "optimizer"
    assert plan.grounded
    assert planner.optimizer.space.contains(plan.params)


def test_llm_direct_plan_pays_latency_each_time(sim, trio):
    planner, _, _ = trio
    planner.mode = "llm-direct"
    t0 = sim.now
    run(sim, planner.next_plan())
    assert sim.now - t0 >= 0.8


def test_executor_runs_valid_plan(sim, trio, qd_landscape):
    planner, executor, _ = trio
    params = qd_landscape.space.sample(np.random.default_rng(0))
    outcome = run(sim, executor.execute(ExperimentPlan(params=params)))
    assert outcome.valid
    assert outcome.objective is not None
    assert outcome.duration > 0
    assert outcome.measurement.kind == "pl-spectrum"


def test_executor_invalid_chemistry_yields_invalid_outcome(sim, trio,
                                                           qd_landscape):
    _, executor, _ = trio
    params = qd_landscape.space.sample(np.random.default_rng(0))
    params["dopant"] = "unobtainium-7"
    outcome = run(sim, executor.execute(ExperimentPlan(params=params)))
    assert not outcome.valid
    assert "unphysical" in outcome.failure
    assert executor.exec_stats["invalid"] == 1


def test_executor_interlock_rejection(sim, trio, qd_landscape):
    _, executor, _ = trio
    params = qd_landscape.space.sample(np.random.default_rng(0))
    params["temperature"] = 5000.0  # beyond reactor interlock
    outcome = run(sim, executor.execute(ExperimentPlan(params=params)))
    assert not outcome.valid
    assert "interlock" in outcome.failure or "unphysical" in outcome.failure


def test_evaluator_tracks_best_and_target(sim, trio, qd_landscape):
    planner, executor, evaluator = trio
    params = qd_landscape.space.sample(np.random.default_rng(0))
    outcome = run(sim, executor.execute(ExperimentPlan(params=params)))
    verdict = evaluator.evaluate(outcome)
    assert verdict["accepted"]
    assert evaluator.best_value == outcome.objective
    assert planner.optimizer.n_observed == 1


def test_evaluator_discards_invalid_without_poisoning_optimizer(sim, trio,
                                                                qd_landscape):
    planner, executor, evaluator = trio
    params = qd_landscape.space.sample(np.random.default_rng(0))
    params["dopant"] = "unobtainium-1"
    outcome = run(sim, executor.execute(ExperimentPlan(params=params)))
    verdict = evaluator.evaluate(outcome)
    assert not verdict["accepted"]
    assert planner.optimizer.n_observed == 0


def test_evaluator_convergence_patience(sim, trio, qd_landscape):
    planner, executor, evaluator = trio
    evaluator.patience = 3
    # Identical recipes differ only by measurement noise; don't let that
    # noise count as scientific progress.
    evaluator.min_improvement = 0.1
    params = qd_landscape.space.sample(np.random.default_rng(0))
    converged = []
    for _ in range(5):
        outcome = run(sim, executor.execute(ExperimentPlan(params=params)))
        # identical params: no improvement after the first
        converged.append(evaluator.evaluate(outcome)["converged"])
    assert converged[-1]
