"""Tests for the agent runtime, messaging, heartbeats, and supervision."""

import pytest

from repro.agents import Agent, AgentRuntime, AgentState, Supervisor
from repro.comm import Performative


@pytest.fixture
def runtime(sim, testbed_network):
    return AgentRuntime(sim, testbed_network)


def test_agent_starts_and_heartbeats(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime, heartbeat_interval_s=2.0)
    a.start()
    sim.run(until=7.0)
    assert a.alive
    assert a.last_heartbeat == pytest.approx(6.0)


def test_double_start_rejected(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime).start()
    with pytest.raises(RuntimeError):
        a.start()


def test_message_dispatch_to_handler(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime).start()
    b = Agent(sim, "b1", "site-0", runtime).start()
    got = []
    b.on(Performative.INFORM, lambda msg: got.append(msg.payload))

    def proc():
        yield from a.send("b1", Performative.INFORM, payload="hello")

    sim.process(proc())
    sim.run(until=1.0)
    assert got == ["hello"]
    assert b.stats["handled"] == 1


def test_cross_site_message_pays_latency(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime).start()
    b = Agent(sim, "b1", "site-2", runtime).start()
    got = []
    b.on(Performative.INFORM, lambda msg: got.append(sim.now))

    def proc():
        yield from a.send("b1", Performative.INFORM, payload="x")

    sim.process(proc())
    sim.run(until=1.0)
    assert got and got[0] >= 0.02  # at least one WAN hop


def test_message_to_unknown_agent_dropped(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime).start()
    out = {}

    def proc():
        out["ok"] = yield from a.send("ghost", Performative.INFORM)

    sim.process(proc())
    # until=: the agent's heartbeat loop never drains the event queue.
    sim.run(until=1.0)
    assert out["ok"] is False
    assert runtime.stats["dropped"] == 1


def test_generator_handler_runs_as_subprocess(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime).start()
    trail = []

    def slow_handler(msg):
        yield sim.timeout(5.0)
        trail.append(("done", sim.now))

    a.on(Performative.REQUEST, slow_handler)

    def proc():
        yield from a.send("a1", Performative.REQUEST)

    sim.process(proc())
    sim.run(until=10.0)
    assert trail == [("done", pytest.approx(5.0))]


def test_crash_stops_heartbeats(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime, heartbeat_interval_s=1.0).start()
    sim.run(until=3.5)
    a.crash()
    hb_at_crash = a.last_heartbeat
    sim.run(until=10.0)
    assert a.state is AgentState.CRASHED
    assert a.last_heartbeat == hb_at_crash
    assert a.stats["crashes"] == 1


def test_restart_resumes_processing(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime, heartbeat_interval_s=1.0).start()
    a.crash()
    a.restart()
    sim.run(until=5.0)
    assert a.alive
    assert a.last_heartbeat > 0
    assert a.stats["restarts"] == 1


def test_stop_is_graceful_noop_when_not_running(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime)
    a.stop()  # never started: no-op
    a.start()
    a.stop()
    assert a.state is AgentState.STOPPED
    a.stop()  # idempotent


# -- supervisor -----------------------------------------------------------------

def test_supervisor_detects_and_restarts_crashed_agent(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime, heartbeat_interval_s=1.0).start()
    sup = Supervisor(sim, check_interval_s=1.0, restart_delay_s=5.0)
    sup.watch(a)
    sup.start()

    def killer():
        yield sim.timeout(10.0)
        a.crash()

    sim.process(killer())
    sim.run(until=30.0)
    assert a.alive
    assert sup.restart_count() == 1
    detected = sup.detection_time("a1")
    assert detected is not None and 10.0 <= detected <= 12.5


def test_supervisor_detects_hung_agent_via_heartbeat_silence(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime, heartbeat_interval_s=1.0).start()
    sup = Supervisor(sim, check_interval_s=1.0, timeout_multiplier=3.0,
                     restart_delay_s=2.0)
    sup.watch(a)
    sup.start()

    def hang():
        # Kill just the heartbeat loop, leaving the agent "running".
        yield sim.timeout(5.0)
        for proc in a._procs:
            proc.interrupt("hang")
        a._procs = []

    sim.process(hang())
    sim.run(until=30.0)
    assert sup.restart_count() >= 1
    assert a.alive


def test_supervisor_without_autorestart_only_detects(sim, runtime):
    a = Agent(sim, "a1", "site-0", runtime, heartbeat_interval_s=1.0).start()
    sup = Supervisor(sim, check_interval_s=1.0, auto_restart=False)
    sup.watch(a)
    sup.start()
    a.crash()
    sim.run(until=20.0)
    assert not a.alive
    assert sup.restart_count() == 0
    assert sup.detection_time("a1") is not None


def test_supervisor_double_start_rejected(sim):
    sup = Supervisor(sim)
    sup.start()
    with pytest.raises(RuntimeError):
        sup.start()
