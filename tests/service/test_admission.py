"""Admission-control edge cases: quotas, budgets, deadlines, queues."""

import pytest

from repro.core.campaign import CampaignSpec
from repro.service import (BudgetExhausted, CampaignService, CampaignStatus,
                           DeadlineExpired, FacilitySlot, QueueFull,
                           TenantQuota, UnknownTenant, synthetic_runner)
from repro.sim.kernel import Simulator


def spec(name, experiments=3):
    return CampaignSpec(name=name, objective_key="objective",
                        max_experiments=experiments)


def make_service(n_slots=1, **kw):
    sim = Simulator()
    runner = synthetic_runner(sim, seed=1, mean_experiment_s=100.0)
    svc = CampaignService(
        sim, [FacilitySlot(f"slot-{i}", runner) for i in range(n_slots)],
        **kw)
    return sim, svc


def test_unknown_tenant_rejected_by_default():
    _, svc = make_service()
    with pytest.raises(UnknownTenant) as exc:
        svc.submit("nobody", spec("c"))
    assert exc.value.tenant == "nobody"
    assert exc.value.reason == "unknown-tenant"


def test_default_quota_auto_registers_unknown_tenants():
    sim, svc = make_service(default_quota=TenantQuota(max_queued=2))
    handle = svc.submit("walk-in", spec("c"))
    assert svc.tenant("walk-in").quota.max_queued == 2
    sim.run()
    assert handle.status is CampaignStatus.COMPLETED


def test_queue_full_rejects_with_depth():
    _, svc = make_service()
    svc.register_tenant("a", TenantQuota(max_queued=2))
    svc.submit("a", spec("c0"))
    svc.submit("a", spec("c1"))
    with pytest.raises(QueueFull) as exc:
        svc.submit("a", spec("c2"))
    assert exc.value.reason == "queue-full"
    assert exc.value.depth == 2
    assert svc.tenant("a").rejected == 1


def test_queue_frees_as_campaigns_dispatch():
    sim, svc = make_service(n_slots=2)
    svc.register_tenant("a", TenantQuota(max_in_flight=2, max_queued=2))
    handles = [svc.submit("a", spec(f"c{i}")) for i in range(2)]
    sim.run()
    assert all(h.status is CampaignStatus.COMPLETED for h in handles)
    # Queue drained; submitting again is fine.
    late = svc.submit("a", spec("late"))
    sim.run()
    assert late.status is CampaignStatus.COMPLETED


def test_experiment_budget_exhaustion():
    _, svc = make_service()
    svc.register_tenant("a", TenantQuota(experiment_budget=5))
    svc.submit("a", spec("c0", experiments=3))
    assert svc.tenant("a").budget_remaining == 2
    with pytest.raises(BudgetExhausted) as exc:
        svc.submit("a", spec("c1", experiments=3))
    assert exc.value.reason == "budget-exhausted"
    # A smaller campaign still fits the remaining budget.
    svc.submit("a", spec("c2", experiments=2))
    assert svc.tenant("a").budget_remaining == 0


def test_deadline_already_expired_at_submit():
    sim, svc = make_service()
    svc.register_tenant("a")

    def driver():
        yield sim.timeout(500.0)
        with pytest.raises(DeadlineExpired) as exc:
            svc.submit("a", spec("late"), deadline=100.0)
        assert exc.value.reason == "deadline-expired"

    sim.process(driver())
    sim.run()


def test_deadline_lapsing_in_queue_expires_campaign():
    sim, svc = make_service()
    svc.register_tenant("a", TenantQuota(max_in_flight=1))
    # Higher priority occupies the only slot for ~5 * 100 s.
    long = svc.submit("a", spec("long", experiments=5), priority=1)
    late = svc.submit("a", spec("late"), deadline=100.0)
    sim.run()
    assert long.status is CampaignStatus.COMPLETED
    assert late.status is CampaignStatus.EXPIRED
    with pytest.raises(Exception):
        late.result()


def test_rejections_do_not_consume_budget_or_queue():
    _, svc = make_service()
    svc.register_tenant("a", TenantQuota(max_queued=1, experiment_budget=10))
    svc.submit("a", spec("c0", experiments=4))
    for _ in range(3):
        with pytest.raises(QueueFull):
            svc.submit("a", spec("again", experiments=4))
    state = svc.tenant("a")
    assert state.admitted_experiments == 4
    assert state.queued == 1
    assert state.rejected == 3


def test_rejection_metrics_labelled_by_reason():
    _, svc = make_service()
    svc.register_tenant("a", TenantQuota(max_queued=0))
    with pytest.raises(QueueFull):
        svc.submit("a", spec("c"))
    snap = svc.metrics.snapshot()
    assert snap["counters"][
        "service.rejected{reason=queue-full,tenant=a}"] == 1
    assert snap["counters"]["service.submitted{tenant=a}"] == 1
