"""Fair-share/EDF scheduler unit tests (no simulator needed)."""

import numpy as np
import pytest

from repro.service.scheduler import (FairShareScheduler, QueueEntry,
                                     RLFairShareScheduler)


class _Handle:
    """Minimal stand-in for CampaignHandle in pure scheduler tests."""

    def __init__(self, submitted_at=0.0):
        self.submitted_at = submitted_at


def entry(seq, tenant, cost=1.0, priority=0, deadline=None):
    return QueueEntry(seq=seq, tenant=tenant, handle=_Handle(), cost=cost,
                      priority=priority, deadline=deadline)


def everyone(_tenant):
    return True


def drain(sched, now=0.0, eligible=everyone, limit=100):
    out = []
    for _ in range(limit):
        e = sched.select(now, eligible)
        if e is None:
            break
        out.append(e)
    return out


def test_equal_shares_alternate():
    sched = FairShareScheduler()
    sched.register("a")
    sched.register("b")
    for i in range(4):
        sched.enqueue(entry(2 * i, "a"))
        sched.enqueue(entry(2 * i + 1, "b"))
    order = [e.tenant for e in drain(sched)]
    assert order == ["a", "b"] * 4


def test_weighted_shares_bias_throughput():
    sched = FairShareScheduler()
    sched.register("small", share=1.0)
    sched.register("big", share=3.0)
    for i in range(12):
        sched.enqueue(entry(2 * i, "small"))
        sched.enqueue(entry(2 * i + 1, "big"))
    first8 = [e.tenant for e in drain(sched)[:8]]
    assert first8.count("big") == 6
    assert first8.count("small") == 2


def test_priority_orders_within_tenant():
    sched = FairShareScheduler()
    sched.register("a")
    sched.enqueue(entry(0, "a", priority=0))
    sched.enqueue(entry(1, "a", priority=5))
    sched.enqueue(entry(2, "a", priority=0))
    assert [e.seq for e in drain(sched)] == [1, 0, 2]


def test_deadline_orders_within_tenant():
    sched = FairShareScheduler()
    sched.register("a")
    sched.enqueue(entry(0, "a"))                    # no deadline -> last
    sched.enqueue(entry(1, "a", deadline=500.0))
    sched.enqueue(entry(2, "a", deadline=100.0))
    assert [e.seq for e in drain(sched)] == [2, 1, 0]


def test_urgent_deadline_preempts_fair_order():
    sched = FairShareScheduler(deadline_urgency_s=300.0)
    sched.register("a")
    sched.register("b")
    # a's virtual time is behind, so fair order would serve a first —
    # but b's head deadline is inside the urgency window.
    sched.enqueue(entry(0, "a"))
    sched.enqueue(entry(1, "b", deadline=200.0))
    first = sched.select(0.0, everyone)
    assert first.tenant == "b"
    assert sched.stats["urgent_dispatches"] == 1


def test_far_deadline_does_not_preempt():
    sched = FairShareScheduler(deadline_urgency_s=300.0)
    sched.register("a")
    sched.register("b")
    sched.enqueue(entry(0, "a"))
    sched.enqueue(entry(1, "b", deadline=10_000.0))
    assert sched.select(0.0, everyone).tenant == "a"


def test_ineligible_tenant_skipped_but_keeps_queue():
    sched = FairShareScheduler()
    sched.register("a")
    sched.register("b")
    sched.enqueue(entry(0, "a"))
    sched.enqueue(entry(1, "b"))
    picked = sched.select(0.0, lambda t: t != "a")
    assert picked.tenant == "b"
    assert sched.backlog("a") == 1


def test_cancelled_entries_pruned_lazily():
    sched = FairShareScheduler()
    sched.register("a")
    e0, e1 = entry(0, "a"), entry(1, "a")
    sched.enqueue(e0)
    sched.enqueue(e1)
    assert sched.remove(e0) is True
    assert sched.remove(e0) is False  # idempotent
    assert sched.backlog("a") == 1
    assert sched.select(0.0, everyone) is e1
    assert sched.select(0.0, everyone) is None


def test_idle_tenant_rejoins_at_virtual_floor():
    sched = FairShareScheduler()
    sched.register("busy")
    sched.register("idle")
    for i in range(10):
        sched.enqueue(entry(i, "busy"))
    drain(sched)
    # idle never queued anything; when it finally shows up it must not
    # have banked 10 dispatches of credit and starve the busy tenant.
    sched.enqueue(entry(100, "idle"))
    sched.enqueue(entry(101, "idle"))
    sched.enqueue(entry(102, "busy"))
    order = [e.tenant for e in drain(sched)]
    assert order[:2] == ["idle", "busy"]


def test_empty_select_returns_none():
    sched = FairShareScheduler()
    sched.register("a")
    assert sched.select(0.0, everyone) is None


def test_negative_urgency_rejected():
    with pytest.raises(ValueError):
        FairShareScheduler(deadline_urgency_s=-1.0)


def test_rl_scheduler_serves_everyone_and_is_deterministic():
    def run(seed):
        sched = RLFairShareScheduler(np.random.default_rng(seed))
        sched.register("a")
        sched.register("b")
        sched.register("c")
        for i in range(30):
            sched.enqueue(entry(i, "abc"[i % 3]))
        return [e.seq for e in drain(sched)]

    first, second = run(7), run(7)
    assert first == second            # same seed, same dispatch order
    assert len(first) == 30           # nothing lost
    assert run(8) != first            # exploration actually random


def test_rl_scheduler_honours_urgent_deadlines():
    sched = RLFairShareScheduler(np.random.default_rng(0),
                                 deadline_urgency_s=300.0)
    sched.register("a")
    sched.register("b")
    sched.enqueue(entry(0, "a"))
    sched.enqueue(entry(1, "b", deadline=100.0))
    assert sched.select(0.0, everyone).tenant == "b"
