"""Service determinism: same seed, same decision hash; world replay."""

import numpy as np

from repro.core.campaign import CampaignSpec
from repro.scale.hashing import decision_hash
from repro.scale.runner import WorldRunner, WorldSpec
from repro.scale.worlds import WORLD_KINDS, service_world
from repro.service import (CampaignService, FacilitySlot,
                           RLFairShareScheduler, TenantQuota,
                           synthetic_runner)
from repro.sim.kernel import Simulator


def _run_mixed(seed, scheduler_factory=None):
    sim = Simulator()
    runner = synthetic_runner(sim, seed=seed, mean_experiment_s=150.0)
    scheduler = scheduler_factory(sim) if scheduler_factory else None
    svc = CampaignService(
        sim, [FacilitySlot(f"s{i}", runner) for i in range(3)],
        scheduler=scheduler)
    svc.register_tenant("a", TenantQuota(share=1.0))
    svc.register_tenant("b", TenantQuota(share=2.0))
    handles = []
    for i in range(12):
        handles.append(svc.submit(
            "a" if i % 2 else "b",
            CampaignSpec(name=f"c{i}", objective_key="objective",
                         max_experiments=2 + i % 3),
            priority=i % 2, deadline=20_000.0 + 500.0 * i))
    # Cancel a queued campaign mid-run so the log covers that path too.
    def chaos():
        yield sim.timeout(200.0)
        for h in handles:
            if not h.done and h.started_at is None:
                h.cancel()
                break
    sim.process(chaos())
    sim.run()
    return decision_hash(svc.decision_log())


def test_same_seed_same_decision_hash():
    assert _run_mixed(5) == _run_mixed(5)


def test_different_seed_different_hash():
    assert _run_mixed(5) != _run_mixed(6)


def test_rl_scheduler_same_seed_same_hash():
    def factory(_sim):
        return RLFairShareScheduler(np.random.default_rng(13),
                                    deadline_urgency_s=600.0)
    assert _run_mixed(5, factory) == _run_mixed(5, factory)


def test_service_world_registered():
    assert "service" in WORLD_KINDS
    assert WORLD_KINDS["service"] is service_world


def test_service_world_parallel_matches_serial_replay():
    config = {"n_tenants": 3, "n_slots": 2, "campaigns": 3,
              "experiments": 2}
    specs = [WorldSpec(seed=s, entrypoint=service_world, config=config)
             for s in (0, 1)]
    serial = WorldRunner(1).run(specs)
    parallel = WorldRunner(2).run(specs)
    assert serial.hashes == parallel.hashes


def test_service_world_output_is_hashable_plain_data():
    out = service_world(3, {"n_tenants": 2, "n_slots": 2, "campaigns": 2,
                            "experiments": 2})
    digest = decision_hash(out)
    assert isinstance(digest, str) and len(digest) == 64
    assert out["campaigns_completed"] > 0
    assert out["decisions"]
