"""Load generation: fairness under skew, backpressure, open/closed mix."""

import pytest

from repro.service import (CampaignService, FacilitySlot, LoadGenerator,
                           TenantLoad, TenantQuota, jain_fairness,
                           synthetic_runner)
from repro.sim.kernel import Simulator


def make_service(n_slots, seed=1, mean_experiment_s=100.0):
    sim = Simulator()
    runner = synthetic_runner(sim, seed=seed,
                              mean_experiment_s=mean_experiment_s)
    return CampaignService(
        sim, [FacilitySlot(f"slot-{i}", runner) for i in range(n_slots)])


def test_jain_fairness_index():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0.0, 0.0]) == 1.0
    assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_closed_loop_completes_all_campaigns():
    svc = make_service(4)
    gen = LoadGenerator(svc, [TenantLoad(name="t", mode="closed",
                                         campaigns=10, concurrency=4,
                                         experiments=2)], seed=3)
    out = gen.run()
    assert out["campaigns_completed"] == 10
    assert out["tenants"]["t"]["rejections"] == 0
    assert out["p99_submit_to_complete_s"] > 0


def test_open_loop_overload_rejects_explicitly():
    # One slot, tiny queue, arrivals far above service rate: the bounded
    # queue must push back with explicit rejections, never silent drops.
    svc = make_service(1, mean_experiment_s=500.0)
    load = TenantLoad(name="burst", mode="open", campaigns=40,
                      arrival_rate_per_s=0.1, experiments=4,
                      quota=TenantQuota(max_in_flight=1, max_queued=2))
    gen = LoadGenerator(svc, [load], seed=5)
    out = gen.run(until=20_000.0)
    t = out["tenants"]["burst"]
    assert t["rejections"] > 0
    assert t["submitted"] + t["rejections"] <= 40
    assert out["peak_in_system"] <= 3  # 1 running + 2 queued


def test_fairness_under_skewed_load():
    # One tenant floods 10x harder; equal shares must still split
    # delivered throughput roughly evenly under saturation.
    svc = make_service(4, mean_experiment_s=200.0)
    loads = [
        TenantLoad(name="flood", mode="closed", campaigns=60,
                   concurrency=20, experiments=4,
                   quota=TenantQuota(max_in_flight=20, max_queued=100)),
        TenantLoad(name="polite", mode="closed", campaigns=60,
                   concurrency=2, experiments=4,
                   quota=TenantQuota(max_in_flight=20, max_queued=100)),
    ]
    gen = LoadGenerator(svc, loads, seed=9)
    out = gen.run(until=12_000.0)
    assert out["fairness"] >= 0.8
    flood = out["tenants"]["flood"]["experiments"]
    polite = out["tenants"]["polite"]["experiments"]
    assert polite > 0
    # The flooder must not get more than ~2x despite 10x the pressure.
    assert flood / max(polite, 1) < 2.0


def test_weighted_shares_deliver_proportional_throughput():
    svc = make_service(4, mean_experiment_s=200.0)
    loads = [
        TenantLoad(name="gold", mode="closed", campaigns=60,
                   concurrency=10, experiments=4, share=3.0,
                   quota=TenantQuota(max_in_flight=10, max_queued=100,
                                     share=3.0)),
        TenantLoad(name="bronze", mode="closed", campaigns=60,
                   concurrency=10, experiments=4,
                   quota=TenantQuota(max_in_flight=10, max_queued=100)),
    ]
    # Cut off at half the total work so contention (not completion)
    # determines who got served.
    gen = LoadGenerator(svc, loads, seed=9)
    out = gen.run(until=12_000.0)
    gold = out["tenants"]["gold"]["experiments"]
    bronze = out["tenants"]["bronze"]["experiments"]
    assert gold / max(bronze, 1) == pytest.approx(3.0, rel=0.25)


def test_mixed_open_closed_population():
    svc = make_service(8)
    loads = [
        TenantLoad(name="closed", mode="closed", campaigns=12,
                   concurrency=4, experiments=2),
        TenantLoad(name="open", mode="open", campaigns=12,
                   arrival_rate_per_s=0.01, experiments=2),
    ]
    out = LoadGenerator(svc, loads, seed=2).run()
    assert out["campaigns_completed"] == 24
    assert 0.9 <= out["fairness"] <= 1.0


def test_bad_load_shapes_rejected():
    with pytest.raises(ValueError):
        TenantLoad(name="x", mode="sideways")
    with pytest.raises(ValueError):
        TenantLoad(name="x", mode="open", arrival_rate_per_s=0.0)
    with pytest.raises(ValueError):
        TenantLoad(name="x", mode="closed", concurrency=0)
    svc = make_service(1)
    with pytest.raises(ValueError):
        LoadGenerator(svc, [])
