"""CampaignService lifecycle: handles, cancellation, reports, metrics."""

import pytest

from repro.core.campaign import CampaignSpec
from repro.core.report import CampaignReport
from repro.service import (CampaignCancelled, CampaignFailed,
                           CampaignNotDone, CampaignService, CampaignStatus,
                           FacilitySlot, TenantQuota, synthetic_runner)
from repro.sim.kernel import Simulator
from repro.testbed import Testbed


def spec(name, experiments=3):
    return CampaignSpec(name=name, objective_key="objective",
                        max_experiments=experiments)


def make_service(n_slots=2, **kw):
    sim = Simulator()
    runner = synthetic_runner(sim, seed=1, mean_experiment_s=100.0)
    svc = CampaignService(
        sim, [FacilitySlot(f"slot-{i}", runner) for i in range(n_slots)],
        **kw)
    return sim, svc


def test_submit_run_result_roundtrip():
    sim, svc = make_service()
    svc.register_tenant("a")
    handle = svc.submit("a", spec("c0"))
    assert handle.status is CampaignStatus.QUEUED
    assert not handle.done
    with pytest.raises(CampaignNotDone):
        handle.result()
    sim.run()
    assert handle.status is CampaignStatus.COMPLETED
    report = handle.result()
    assert isinstance(report, CampaignReport)
    assert report.tenant == "a"
    assert report.n_experiments == 3
    assert handle.latency is not None and handle.latency > 0
    assert handle.queue_wait == 0.0  # dispatched at submit time


def test_cancel_queued_campaign():
    sim, svc = make_service(n_slots=1)
    svc.register_tenant("a", TenantQuota(max_in_flight=1))
    running = svc.submit("a", spec("r"))
    queued = svc.submit("a", spec("q"))
    assert queued.cancel() is True
    assert queued.status is CampaignStatus.CANCELLED
    assert queued.cancel() is False  # already terminal
    sim.run()
    assert running.status is CampaignStatus.COMPLETED
    with pytest.raises(CampaignCancelled):
        queued.result()
    assert svc.tenant("a").completed_campaigns == 1


def test_cancel_running_campaign_interrupts_mid_flight():
    sim, svc = make_service(n_slots=1)
    svc.register_tenant("a")
    handle = svc.submit("a", spec("c", experiments=10))

    def canceller():
        yield sim.timeout(150.0)
        assert handle.status is CampaignStatus.RUNNING
        assert handle.cancel() is True

    sim.process(canceller())
    sim.run()
    assert handle.status is CampaignStatus.CANCELLED
    assert handle.finished_at == pytest.approx(150.0)
    # The slot survives the interrupt and serves the next campaign.
    follow_up = svc.submit("a", spec("next"))
    sim.run()
    assert follow_up.status is CampaignStatus.COMPLETED


def test_runner_exception_fails_campaign_not_service():
    sim = Simulator()

    def bad_runner(spec_):
        yield sim.timeout(10.0)
        raise RuntimeError("reactor on fire")

    ok_runner = synthetic_runner(sim, seed=1, mean_experiment_s=10.0)
    svc = CampaignService(sim, [FacilitySlot("bad", bad_runner)])
    svc.register_tenant("a")
    failed = svc.submit("a", spec("f"))
    sim.run()
    assert failed.status is CampaignStatus.FAILED
    assert "reactor on fire" in failed.error
    with pytest.raises(CampaignFailed, match="reactor on fire"):
        failed.result()
    # The slot loop survives and keeps serving.
    del ok_runner
    again = svc.submit("a", spec("g"))
    sim.run()
    assert again.status is CampaignStatus.FAILED  # same bad runner ran it


def test_wait_from_inside_simulation():
    sim, svc = make_service()
    svc.register_tenant("a")
    seen = {}

    def client():
        handle = svc.submit("a", spec("c"))
        report = yield from handle.wait()
        seen["report"] = report
        seen["now"] = sim.now

    sim.process(client())
    sim.run()
    assert seen["report"].campaign == "c"
    assert seen["now"] > 0


def test_in_flight_cap_holds_campaigns_back():
    sim, svc = make_service(n_slots=4)
    svc.register_tenant("a", TenantQuota(max_in_flight=1, max_queued=10))
    handles = [svc.submit("a", spec(f"c{i}", experiments=1))
               for i in range(3)]
    sim.run()
    assert all(h.status is CampaignStatus.COMPLETED for h in handles)
    # With a cap of one, campaigns ran strictly one at a time even with
    # four slots free: each starts only after the previous finished.
    starts = sorted(h.started_at for h in handles)
    ends = sorted(h.finished_at for h in handles)
    assert starts[1] >= ends[0] and starts[2] >= ends[1]


def test_service_metrics_and_load_snapshot():
    sim, svc = make_service()
    svc.register_tenant("a")
    svc.register_tenant("b", TenantQuota(share=2.0))
    for i in range(3):
        svc.submit("a", spec(f"a{i}"))
        svc.submit("b", spec(f"b{i}"))
    load = svc.load()
    assert load["backlog"] == 6
    assert load["tenants"]["a"]["queued"] == 3
    sim.run()
    snap = svc.metrics.snapshot()
    assert snap["counters"]["service.completed{tenant=a}"] == 3
    assert snap["counters"]["service.experiments{tenant=b}"] == 9
    hist = snap["histograms"]["service.submit_to_complete"]
    assert hist["count"] == 6
    assert svc.peak_in_system == 6
    assert 0.0 < svc.fairness() <= 1.0


def test_decision_log_is_plain_data():
    sim, svc = make_service()
    svc.register_tenant("a")
    svc.submit("a", spec("c"))
    sim.run()
    log = svc.decision_log()
    assert len(log) == 1
    row = log[0]
    assert row[0] == "c-000001" and row[1] == "a" and row[2] == "completed"
    assert all(isinstance(x, (str, float)) for x in row)


def test_from_testbed_runs_real_orchestrators():
    built = (Testbed(seed=11, n_sites=2)
             .site("site-0").site("site-1").build())
    svc = built.as_service()
    svc.register_tenant("lab")
    handle = svc.submit(
        "lab", CampaignSpec(name="real", objective_key="plqy",
                            max_experiments=4))
    built.sim.run()
    report = handle.result()
    assert report.tenant == "lab"
    assert report.n_experiments == 4
    assert len(report.decisions) == 4


def test_utilization_report_reads_emitted_metrics():
    sim, svc = make_service(n_slots=1)
    svc.register_tenant("a")
    svc.register_tenant("b")
    svc.submit("a", spec("c0"))
    svc.submit("a", spec("c1"))
    svc.submit("b", spec("c2"))
    mid = svc.utilization_report()
    assert mid["backlog"] == 3.0
    sim.run()
    report = svc.utilization_report()
    # The dashboard is read back from the service.* metrics, so it must
    # agree with the handles' own accounting.
    assert report["backlog"] == 0.0
    assert report["peak_in_system"] == 3.0
    assert report["tenants"]["a"]["admitted"] == 2.0
    assert report["tenants"]["b"]["admitted"] == 1.0
    assert report["tenants"]["a"]["queued"] == 0.0
    assert report["tenants"]["a"]["running"] == 0.0
    # One slot serialized three campaigns: someone waited in queue.
    waits = [report["tenants"][t]["queue_wait"] for t in ("a", "b")]
    assert sum(w["count"] for w in waits) == 3
    assert max(w["max"] for w in waits) > 0.0
