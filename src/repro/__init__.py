"""AISLE — Autonomous Interconnected Science Lab Ecosystem (reproduction).

This package reproduces, as a deterministic discrete-event simulation, the
ecosystem proposed in *"A Grassroots Network and Community Roadmap for
Interconnected Autonomous Science Laboratories for Accelerated Discovery"*
(Ferreira da Silva et al., ICPP 2025).

The five critical dimensions of the paper map onto subpackages:

1. Instruments and cyberinfrastructure integration -> :mod:`repro.instruments`
2. Agent-driven data management                    -> :mod:`repro.data`
3. AI agent-driven autonomous orchestration        -> :mod:`repro.core`,
   :mod:`repro.agents`, :mod:`repro.methods`
4. Interoperable agent communication               -> :mod:`repro.comm`,
   :mod:`repro.net`, :mod:`repro.security`
5. Education and workforce development             -> :mod:`repro.hitl`

Everything runs on the shared discrete-event kernel in :mod:`repro.sim`;
synthetic ground-truth science lives in :mod:`repro.labsci`.
"""

__all__ = ["BuiltTestbed", "ChaosController", "CircuitBreaker", "Deadline",
           "RetryPolicy", "RngRegistry", "Simulator", "SiteBuilder",
           "Testbed", "__version__", "resilient_call"]

__version__ = "1.0.0"

# Root re-exports resolve lazily (PEP 562): importing the package for a
# leaf tool (e.g. ``python -m repro.analysis``) must not drag in the full
# simulation stack — ``repro.testbed`` alone transitively imports scipy,
# which costs ~1s and would blow the analyzer's warm-run budget.
_EXPORTS = {
    "BuiltTestbed": "repro.testbed",
    "SiteBuilder": "repro.testbed",
    "Testbed": "repro.testbed",
    "ChaosController": "repro.resilience",
    "CircuitBreaker": "repro.resilience",
    "Deadline": "repro.resilience",
    "RetryPolicy": "repro.resilience",
    "resilient_call": "repro.resilience",
    "Simulator": "repro.sim.kernel",
    "RngRegistry": "repro.sim.rng",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
