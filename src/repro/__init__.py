"""AISLE — Autonomous Interconnected Science Lab Ecosystem (reproduction).

This package reproduces, as a deterministic discrete-event simulation, the
ecosystem proposed in *"A Grassroots Network and Community Roadmap for
Interconnected Autonomous Science Laboratories for Accelerated Discovery"*
(Ferreira da Silva et al., ICPP 2025).

The five critical dimensions of the paper map onto subpackages:

1. Instruments and cyberinfrastructure integration -> :mod:`repro.instruments`
2. Agent-driven data management                    -> :mod:`repro.data`
3. AI agent-driven autonomous orchestration        -> :mod:`repro.core`,
   :mod:`repro.agents`, :mod:`repro.methods`
4. Interoperable agent communication               -> :mod:`repro.comm`,
   :mod:`repro.net`, :mod:`repro.security`
5. Education and workforce development             -> :mod:`repro.hitl`

Everything runs on the shared discrete-event kernel in :mod:`repro.sim`;
synthetic ground-truth science lives in :mod:`repro.labsci`.
"""

from repro.resilience import (ChaosController, CircuitBreaker, Deadline,
                              RetryPolicy, resilient_call)
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.testbed import BuiltTestbed, SiteBuilder, Testbed

__all__ = ["BuiltTestbed", "ChaosController", "CircuitBreaker", "Deadline",
           "RetryPolicy", "RngRegistry", "Simulator", "SiteBuilder",
           "Testbed", "__version__", "resilient_call"]

__version__ = "1.0.0"
