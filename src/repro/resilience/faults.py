"""Chaos engineering facade: one scenario API for every failure mode.

Failure injection used to be scattered — network faults through
:class:`~repro.net.faults.FaultInjector`, instrument faults through
``Instrument.inject_fault``, agent crashes through ``Agent.crash`` — and
each experiment hand-rolled a "gremlin" process to sequence them.  The
:class:`ChaosController` unifies all three behind declarative, sim-time
scheduling (``at_s=`` absolute simulated seconds), plus deterministic
Poisson fault *storms* drawn from named RNG streams, so chaos scenarios
(E11 and beyond) are configuration, not bespoke processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.faults import FaultInjector
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry


class ChaosController:
    """Schedules network, instrument, and agent failures declaratively.

    Parameters
    ----------
    sim:
        Kernel; all scheduling happens on its clock.
    network_faults:
        The federation's :class:`~repro.net.faults.FaultInjector`; link,
        site, and partition chaos delegates to it.  Optional — a
        controller without one can still injure instruments and agents.
    rngs:
        Optional :class:`~repro.sim.rng.RngRegistry` for stochastic
        scenarios (fault storms); every draw comes from a named stream so
        storms are reproducible and independent of other components.
    metrics:
        Optional shared registry for the ``chaos.*`` counters.
    """

    def __init__(self, sim: "Simulator",
                 network_faults: Optional["FaultInjector"] = None, *,
                 rngs: Optional["RngRegistry"] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.network_faults = network_faults
        self.rngs = rngs
        self.metrics = metrics or MetricsRegistry()
        self.stats = self.metrics.stats(
            "chaos",
            {"scheduled": 0, "link_faults": 0, "site_faults": 0,
             "partitions": 0, "degradations": 0, "instrument_faults": 0,
             "agent_crashes": 0})
        self.log: list[tuple[float, str, str]] = []

    # -- scheduling core ---------------------------------------------------

    def _at(self, at_s: float, kind: str, detail: str, fn) -> None:
        """Run ``fn`` at absolute sim time ``at_s`` (now if already past)."""
        self.stats["scheduled"] += 1

        def fire() -> None:
            self.stats[kind] += 1
            self.log.append((self.sim.now, kind, detail))
            fn()

        self.sim.schedule_callback(max(0.0, at_s - self.sim.now), fire)

    def _net(self) -> "FaultInjector":
        if self.network_faults is None:
            raise ValueError("this ChaosController has no network "
                             "FaultInjector wired in")
        return self.network_faults

    # -- network chaos -----------------------------------------------------

    def cut_link(self, a: str, b: str, *, at_s: float = 0.0,
                 duration_s: Optional[float] = None) -> None:
        """Take the a--b link down (auto-healing after ``duration_s``)."""
        net = self._net()
        self._at(at_s, "link_faults", f"{a}--{b}",
                 lambda: net.fail_link(a, b, duration=duration_s))

    def fail_site(self, site: str, *, at_s: float = 0.0,
                  duration_s: Optional[float] = None) -> None:
        """Take an entire site offline."""
        net = self._net()
        self._at(at_s, "site_faults", site,
                 lambda: net.fail_site(site, duration=duration_s))

    def partition(self, group_a: Iterable[str], group_b: Iterable[str], *,
                  at_s: float = 0.0,
                  duration_s: Optional[float] = None) -> None:
        """Block all traffic between two site groups."""
        net = self._net()
        ga, gb = list(group_a), list(group_b)
        self._at(at_s, "partitions", f"{sorted(ga)}|{sorted(gb)}",
                 lambda: net.partition(ga, gb, duration=duration_s))

    def degrade_link(self, a: str, b: str, *, extra_loss: float,
                     at_s: float = 0.0,
                     duration_s: Optional[float] = None) -> None:
        """Make a link flaky by adding ``extra_loss`` loss probability."""
        net = self._net()
        self._at(at_s, "degradations", f"{a}--{b}",
                 lambda: net.degrade_link(a, b, extra_loss=extra_loss,
                                          duration=duration_s))

    # -- instrument chaos --------------------------------------------------

    def fault_instrument(self, instrument: Any, *, at_s: float = 0.0) -> None:
        """Fault one instrument (skipped if already faulted/offline)."""
        self._at(at_s, "instrument_faults", instrument.name,
                 lambda: self._inject_instrument_fault(instrument))

    @staticmethod
    def _inject_instrument_fault(instrument: Any) -> None:
        status = getattr(instrument, "status", None)
        if status is not None and getattr(status, "value", "") in (
                "fault", "offline"):
            return
        instrument.inject_fault()

    def instrument_fault_storm(self, instruments: Iterable[Any], *,
                               rate_per_hour: float, until_s: float,
                               stream: str = "chaos/instruments") -> int:
        """Schedule Poisson-process faults across a fleet; returns count.

        Inter-fault gaps are exponential draws from a *per-instrument*
        named stream (``{stream}/{name}``), so the storm is a pure
        function of the root seed and adding an instrument never perturbs
        the schedule of the others.
        """
        if rate_per_hour < 0:
            raise ValueError("rate_per_hour must be >= 0")
        if rate_per_hour == 0:
            return 0
        if self.rngs is None:
            raise ValueError("fault storms need an RngRegistry (rngs=)")
        mean_gap_s = 3600.0 / rate_per_hour
        scheduled = 0
        for inst in instruments:
            rng = self.rngs.stream(f"{stream}/{inst.name}")
            t = self.sim.now
            while True:
                t += float(rng.exponential(mean_gap_s))
                if t >= until_s:
                    break
                self.fault_instrument(inst, at_s=t)
                scheduled += 1
        return scheduled

    # -- agent chaos -------------------------------------------------------

    def crash_agent(self, agent: Any, *, at_s: float = 0.0) -> None:
        """Crash an agent (its supervisor, if any, will notice)."""
        self._at(at_s, "agent_crashes", agent.name, agent.crash)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ChaosController scheduled={self.stats['scheduled']} "
                f"fired={len(self.log)}>")
