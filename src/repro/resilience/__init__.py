"""Unified resilience kernel: retry, deadline, breaker, and chaos (M3/M11).

The paper's "adaptive fault-tolerant coordination" (M3) and "automatic
failover" (M11) used to be reproduced by five independent reliability
loops, each with its own backoff arithmetic and attempt accounting.
This package is the single deterministic policy engine they all share:

- :mod:`repro.resilience.policy` —
  :class:`~repro.resilience.policy.RetryPolicy` (exponential backoff,
  deterministic jitter from named RNG streams),
  :class:`~repro.resilience.policy.Deadline` (monotone sim-clock budget),
  and :class:`~repro.resilience.policy.CircuitBreaker`
  (closed/open/half-open, driven by sim time);
- :mod:`repro.resilience.executor` —
  :func:`~repro.resilience.executor.resilient_call`, the generator
  combinator wrapping any sim-process callable with policy + breaker +
  per-attempt tracing spans and registry counters;
- :mod:`repro.resilience.faults` —
  :class:`~repro.resilience.faults.ChaosController`, one scenario API
  over network, instrument, and agent failure injection.

Consumers: :class:`~repro.comm.rpc.RpcClient` call retries,
:class:`~repro.comm.bus.Queue` redelivery,
:class:`~repro.comm.failover.FailoverGroup` routing,
:class:`~repro.core.faulttol.FaultTolerantExecutor` repair/failover, and
:class:`~repro.agents.lifecycle.Supervisor` restart delays.
"""

from repro.resilience.executor import (DeadlineExceeded, RetriesExhausted,
                                       resilient_call)
from repro.resilience.faults import ChaosController
from repro.resilience.policy import (UNLIMITED_ATTEMPTS, CircuitBreaker,
                                     CircuitOpen, CircuitState, Deadline,
                                     RetryPolicy)

__all__ = [
    "ChaosController",
    "CircuitBreaker",
    "CircuitOpen",
    "CircuitState",
    "Deadline",
    "DeadlineExceeded",
    "RetriesExhausted",
    "RetryPolicy",
    "UNLIMITED_ATTEMPTS",
    "resilient_call",
]
