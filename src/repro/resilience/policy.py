"""Deterministic retry, deadline, and circuit-breaker policies.

Every reliability loop in AISLE — RPC retries, bus redelivery,
failover routing, fault-tolerant execution, supervisor restarts — used to
carry its own backoff arithmetic and attempt accounting.  This module is
the single policy vocabulary they all share now:

- :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* jitter (drawn from a named
  :class:`~repro.sim.rng.RngRegistry` stream, never wall-clock entropy);
- :class:`Deadline` — a monotone simulated-time budget shared across
  attempts, so cumulative-deadline semantics are one object, not
  re-derived arithmetic at every call site;
- :class:`CircuitBreaker` — the classic closed/open/half-open machine,
  driven entirely by the simulated clock, with registry-backed counters.

All times are simulated seconds; nothing here reads the wall clock, so
policies preserve the DESIGN.md determinism contract end to end.
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import MetricsRegistry, StatsDict

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.sim.kernel import Simulator

#: Effectively-unlimited attempt budget (supervisors restart forever).
UNLIMITED_ATTEMPTS = 2 ** 31


class RetryPolicy:
    """Exponential backoff with bounded attempts and deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts allowed (first try included).
    base_delay_s:
        Pause before the first retry; 0 means retry immediately.
    multiplier:
        Geometric growth factor between consecutive retry pauses.
    max_delay_s:
        Cap on any single pause.
    jitter:
        Fractional jitter: each pause is scaled by a uniform factor in
        ``[1 - jitter, 1 + jitter]``.  Requires ``rng``.
    rng:
        Numpy generator for jitter draws — pass a **named** stream from
        :class:`~repro.sim.rng.RngRegistry` so jittered schedules are a
        pure function of ``(root seed, stream name)``.
    """

    __slots__ = ("max_attempts", "base_delay_s", "multiplier", "max_delay_s",
                 "jitter", "rng")

    def __init__(self, max_attempts: int = 3, *, base_delay_s: float = 0.05,
                 multiplier: float = 2.0, max_delay_s: float = math.inf,
                 jitter: float = 0.0,
                 rng: Optional["np.random.Generator"] = None) -> None:
        if max_attempts < 1:
            raise ValueError("need max_attempts >= 1")
        if base_delay_s < 0 or multiplier <= 0 or max_delay_s < 0:
            raise ValueError("delays must be >= 0 and multiplier > 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng stream")
        self.max_attempts = int(max_attempts)
        self.base_delay_s = float(base_delay_s)
        self.multiplier = float(multiplier)
        self.max_delay_s = float(max_delay_s)
        self.jitter = float(jitter)
        self.rng = rng

    @classmethod
    def fixed(cls, delay_s: float,
              max_attempts: int = UNLIMITED_ATTEMPTS) -> "RetryPolicy":
        """A flat schedule: every pause is exactly ``delay_s``."""
        return cls(max_attempts, base_delay_s=delay_s, multiplier=1.0)

    @classmethod
    def immediate(cls, max_attempts: int) -> "RetryPolicy":
        """Bounded attempts with no pause (bus redelivery, repair loops)."""
        return cls(max_attempts, base_delay_s=0.0)

    def should_retry(self, attempts_made: int) -> bool:
        """May another attempt follow after ``attempts_made`` tries?"""
        return attempts_made < self.max_attempts

    def delay(self, retry_index: int) -> float:
        """Pause (simulated seconds) before retry ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        d = self.base_delay_s * self.multiplier ** (retry_index - 1)
        d = min(d, self.max_delay_s)
        if self.jitter > 0 and d > 0:
            d *= 1.0 + self.jitter * float(self.rng.uniform(-1.0, 1.0))
        return max(0.0, d)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RetryPolicy attempts={self.max_attempts} "
                f"base={self.base_delay_s}s x{self.multiplier}>")


class Deadline:
    """A simulated-time budget shared across every attempt of a call.

    The budget is *cumulative*: retries, backoff pauses, and in-flight
    attempts all spend from the same allowance, mirroring gRPC deadline
    semantics.
    """

    __slots__ = ("sim", "expires_at")

    def __init__(self, sim: "Simulator", budget_s: float = math.inf) -> None:
        if budget_s < 0:
            raise ValueError("deadline budget must be >= 0")
        self.sim = sim
        self.expires_at = sim.now + budget_s

    @property
    def expired(self) -> bool:
        return self.sim.now >= self.expires_at

    @property
    def finite(self) -> bool:
        return math.isfinite(self.expires_at)

    def remaining(self) -> float:
        """Budget left on the simulated clock (never negative)."""
        return max(0.0, self.expires_at - self.sim.now)

    def clamp(self, delay_s: float) -> float:
        """Trim a pause so it never outlives the budget."""
        return min(delay_s, self.remaining())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Deadline t={self.expires_at:.6g} left={self.remaining():.6g}>"


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitOpen(Exception):
    """The breaker rejected the call without attempting it."""


class CircuitBreaker:
    """Closed/open/half-open breaker driven by the simulated clock.

    Consecutive failures trip the breaker **open**; after
    ``recovery_time_s`` of simulated quarantine it admits one probe
    (**half-open**).  A probe success re-closes it, a probe failure
    re-opens it for another quarantine window.  All transitions are pure
    functions of recorded outcomes and ``sim.now``, so same-seed runs trip
    identically.

    Parameters
    ----------
    sim:
        Kernel (the clock that ages an open breaker into half-open).
    failure_threshold:
        Consecutive failures that trip a closed breaker.
    recovery_time_s:
        Quarantine length before a probe is admitted.
    name / metrics:
        Identity and registry for the ``resilience.breaker.*`` counters;
        the public :attr:`stats` mapping is a
        :class:`~repro.obs.metrics.StatsDict` view over them.
    """

    def __init__(self, sim: "Simulator", *, failure_threshold: int = 3,
                 recovery_time_s: float = 30.0, name: str = "breaker",
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if failure_threshold < 1:
            raise ValueError("need failure_threshold >= 1")
        self.sim = sim
        self.failure_threshold = int(failure_threshold)
        self.recovery_time_s = float(recovery_time_s)
        self.name = name
        self.metrics = metrics or MetricsRegistry()
        self.stats: StatsDict = self.metrics.stats(
            "resilience.breaker",
            {"successes": 0, "failures": 0, "trips": 0, "rejections": 0},
            breaker=name)
        self.events: list[tuple[float, str]] = []
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = -math.inf

    @property
    def state(self) -> CircuitState:
        """Current state; an aged-out OPEN lazily becomes HALF_OPEN."""
        if (self._state is CircuitState.OPEN
                and self.sim.now >= self._opened_at + self.recovery_time_s):
            self._transition(CircuitState.HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  Counts rejections when not."""
        if self.state is CircuitState.OPEN:
            self.stats["rejections"] += 1
            return False
        return True

    def record_success(self) -> None:
        self.stats["successes"] += 1
        self._consecutive_failures = 0
        if self.state is not CircuitState.CLOSED:
            self._transition(CircuitState.CLOSED)

    def record_failure(self) -> None:
        self.stats["failures"] += 1
        state = self.state
        if state is CircuitState.HALF_OPEN:
            self._trip()  # failed probe: straight back to quarantine
        elif state is CircuitState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self.stats["trips"] += 1
        self._consecutive_failures = 0
        self._opened_at = self.sim.now
        self._transition(CircuitState.OPEN)

    def _transition(self, new: CircuitState) -> None:
        self._state = new
        self.events.append((self.sim.now, new.value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CircuitBreaker {self.name!r} {self._state.value}>"
