"""The :func:`resilient_call` combinator: policy-driven attempt loops.

One generator wraps any sim-process callable with the whole reliability
vocabulary — :class:`~repro.resilience.policy.RetryPolicy` backoff,
cumulative :class:`~repro.resilience.policy.Deadline` accounting,
:class:`~repro.resilience.policy.CircuitBreaker` admission, per-attempt
tracing spans, and registry counters.  The RPC client, the fault-tolerant
executor, and any future chaos experiment all run their attempts through
this single loop, so retry semantics (and their observability) cannot
drift apart again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.resilience.policy import (CircuitBreaker, CircuitOpen, Deadline,
                                     RetryPolicy)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class DeadlineExceeded(Exception):
    """The deadline elapsed while an attempt was still in flight."""


class RetriesExhausted(Exception):
    """Every allowed attempt failed (or the deadline closed the loop).

    Attributes
    ----------
    attempts:
        How many attempts were actually made.
    last_error:
        The exception raised by the final attempt (``None`` when the
        deadline expired before a first attempt could start).
    """

    def __init__(self, name: str, attempts: int,
                 last_error: Optional[BaseException]) -> None:
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(f"{name} failed after {attempts} attempt(s){detail}")
        self.attempts = attempts
        self.last_error = last_error


def resilient_call(sim: "Simulator",
                   attempt: Callable[[int], Generator],
                   *, policy: RetryPolicy,
                   deadline: Optional[Deadline] = None,
                   breaker: Optional[CircuitBreaker] = None,
                   retry_on: tuple = (Exception,),
                   name: str = "call",
                   tracer: Any = NULL_TRACER,
                   metrics: Optional[MetricsRegistry] = None,
                   on_retry: Optional[Callable[[int, BaseException],
                                               Any]] = None,
                   recover: Optional[Callable[[BaseException, int],
                                              Generator]] = None):
    """Generator: run ``attempt`` under a retry/deadline/breaker policy.

    ``yield from resilient_call(...)`` from inside a simulation process.

    Parameters
    ----------
    sim:
        Kernel.
    attempt:
        Factory called with the 1-based attempt number; must return a
        fresh generator each time (generators are single-shot).
    policy:
        Attempt budget and backoff schedule.
    deadline:
        Optional cumulative simulated-time budget.  Finite deadlines race
        each in-flight attempt against the remaining budget: if the clock
        wins, the attempt process is interrupted (and its eventual
        failure defused) and :class:`DeadlineExceeded` is raised.
    breaker:
        Optional circuit breaker consulted *before* each attempt; an open
        breaker raises :class:`CircuitOpen` without spending time.
    retry_on:
        Exception types that consume an attempt and trigger a retry.
        Anything else propagates immediately.
    name / tracer / metrics:
        Observability: each attempt runs inside a ``resilience.attempt``
        span, and the registry (when given) accumulates
        ``resilience.call.*`` counters labelled with ``call=name``.
    on_retry:
        Plain callback ``(next_attempt, last_error)`` fired before each
        retry — the hook call sites use to keep their public ``stats``
        mappings (retry counts) API-compatible.
    recover:
        Optional generator ``(last_error, next_attempt)`` run *before*
        the backoff pause of each retry — e.g. a blocking instrument
        repair that must finish before the plan is retried.

    Raises
    ------
    DeadlineExceeded
        A finite deadline fired while an attempt was in flight.
    RetriesExhausted
        The attempt/deadline budget ran out; carries the last error.
    CircuitOpen
        The breaker rejected the call.
    """
    counters = None
    if metrics is not None:
        counters = {key: metrics.counter(f"resilience.call.{key}", call=name)
                    for key in ("calls", "attempts", "retries", "successes",
                                "failures", "deadline_exceeded",
                                "breaker_rejected")}
        counters["calls"].inc()

    attempts = 0
    last_exc: Optional[BaseException] = None
    while ((deadline is None or not deadline.expired)
           and policy.should_retry(attempts)):
        attempts += 1
        if attempts > 1:
            if on_retry is not None:
                on_retry(attempts, last_exc)
            if counters is not None:
                counters["retries"].inc()
            if recover is not None:
                yield from recover(last_exc, attempts)
            pause = policy.delay(attempts - 1)
            if deadline is not None:
                pause = deadline.clamp(pause)
            if pause > 0:
                yield sim.timeout(pause)
            if deadline is not None and deadline.expired:
                break
        if breaker is not None and not breaker.allow():
            if counters is not None:
                counters["breaker_rejected"].inc()
            raise CircuitOpen(f"{name}: breaker {breaker.name!r} is open")
        if counters is not None:
            counters["attempts"].inc()
        with tracer.span("resilience.attempt", call=name, attempt=attempts):
            if deadline is not None and deadline.finite:
                work = sim.process(attempt(attempts))
                clock = sim.timeout(deadline.remaining())
                try:
                    fired = yield work | clock
                except retry_on as exc:
                    last_exc = exc
                    if breaker is not None:
                        breaker.record_failure()
                    continue
                if work not in fired:
                    # The deadline won the race: detach from the in-flight
                    # attempt and absorb its eventual interrupt quietly.
                    if work.is_alive:
                        work.interrupt("deadline")
                        if work.callbacks is not None:
                            work.callbacks.append(
                                lambda ev: setattr(ev, "_defused", True))
                    if counters is not None:
                        counters["deadline_exceeded"].inc()
                    raise DeadlineExceeded(
                        f"{name} deadline after attempt {attempts}")
                result = fired[work]
            else:
                try:
                    result = yield from attempt(attempts)
                except retry_on as exc:
                    last_exc = exc
                    if breaker is not None:
                        breaker.record_failure()
                    continue
            if breaker is not None:
                breaker.record_success()
            if counters is not None:
                counters["successes"].inc()
            return result
    if counters is not None:
        counters["failures"].inc()
    raise RetriesExhausted(name, attempts, last_exc)
