"""Project symbol table + incremental fact cache for contract analysis.

:func:`build_project` walks the program tree (``src/repro`` by default)
plus optional *reference* roots (tests/benchmarks/examples — read-side
evidence only), extracts :class:`~repro.analysis.contracts.facts.ModuleFacts`
per file, and assembles a :class:`ProjectIndex` the C-rules run over.

Incremental cache
-----------------
Extraction parses every file with ``ast`` — cheap once, but the analyzer
is meant to run on every commit, so facts are memoized in a JSON cache
(default ``.contracts_cache.json`` next to the tree root, gitignored):

- a file whose ``(mtime_ns, size)`` pair is unchanged is trusted without
  being read;
- a touched-but-identical file (mtime changed, bytes identical) is
  detected by SHA-256 and its facts reused;
- anything else is re-parsed, and the entry is rewritten.

Cache entries also record the facts schema version — bumping
``FACTS_VERSION`` invalidates every entry at once.  A warm run on the
~190-file tree stats files and loads one JSON document: well under a
second, which is the budget the pre-commit hook holds it to.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.contracts.facts import (FACTS_VERSION, ClassFact,
                                            ModuleFacts, extract_facts,
                                            parse_error_facts)

__all__ = ["ProjectIndex", "build_project", "DEFAULT_CACHE"]

#: Cache filename (relative to cwd unless an absolute path is given).
DEFAULT_CACHE = ".contracts_cache.json"

_CACHE_VERSION = 1


def _module_name(path: Path) -> str:
    """Dotted module path for a file (``src/repro/comm/bus.py`` ->
    ``repro.comm.bus``); falls back to the stem outside a package."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("repro", "tests", "benchmarks", "examples"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _normalize(path: Path) -> Path:
    """Cwd-relative form when possible.  Fingerprints and cache keys are
    built from these paths, so analyzing ``/abs/repo/src`` and ``src``
    must yield identical identities or the baseline ratchet would break
    under one invocation style and not the other."""
    if path.is_absolute():
        try:
            return path.relative_to(Path.cwd())
        except ValueError:
            return path
    return path


def discover_files(roots: Sequence[Path]) -> list[Path]:
    """Every ``*.py`` under ``roots`` (sorted, pycache/hidden skipped)."""
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(p for p in sorted(root.rglob("*.py"))
                         if "__pycache__" not in p.parts
                         and not any(part.startswith(".")
                                     for part in p.parts))
        elif root.suffix == ".py" and root.exists():
            files.append(root)
    return files


@dataclass
class ProjectIndex:
    """The assembled whole-program view the contract rules consume."""

    program: list[ModuleFacts] = field(default_factory=list)
    references: list[ModuleFacts] = field(default_factory=list)
    files_scanned: int = 0
    files_reparsed: int = 0
    cache_hits: int = 0

    # -- derived tables (built lazily, cached) -----------------------------

    _classes: Optional[dict[str, tuple[ModuleFacts, ClassFact]]] = None
    _string_counts: Optional[dict[str, int]] = None

    def modules(self) -> Iterable[ModuleFacts]:
        return self.program

    def classes(self) -> dict[str, tuple[ModuleFacts, ClassFact]]:
        """``module.ClassName`` (and unique bare-name alias) -> facts."""
        if self._classes is None:
            table: dict[str, tuple[ModuleFacts, ClassFact]] = {}
            bare: dict[str, list[str]] = {}
            for facts in self.program:
                for cls in facts.classes:
                    qual = f"{facts.module}.{cls.name}"
                    table[qual] = (facts, cls)
                    bare.setdefault(cls.name, []).append(qual)
            for name, quals in bare.items():
                if name not in table and len(quals) == 1:
                    table[name] = table[quals[0]]
            self._classes = table
        return self._classes

    def resolve_class(self, name: str) -> Optional[str]:
        """Canonical ``module.ClassName`` key for a (possibly bare or
        import-resolved) class reference, if it is a project class."""
        table = self.classes()
        if name in table:
            facts, cls = table[name]
            return f"{facts.module}.{cls.name}"
        # Import resolution yields e.g. ``repro.data.shard.ShardedDiscovery
        # Index`` whose module is the defining module — but re-exports
        # (``from repro.data.mesh import DiscoveryIndex`` imported as
        # ``repro.data.DiscoveryIndex``) won't be keyed that way, so fall
        # back to the terminal class name when it is unique.
        terminal = name.rsplit(".", 1)[-1]
        if terminal != name and terminal in table:
            facts, cls = table[terminal]
            return f"{facts.module}.{cls.name}"
        return None

    def string_occurrences(self, needle: str) -> int:
        """Occurrences of ``needle`` across *all* scanned files: exact
        string-literal matches plus literals containing it as a
        substring (rendered metric names, pytest match patterns...)."""
        counts = self._all_string_counts()
        total = counts.get(needle, 0)
        for value, n in counts.items():
            if value != needle and needle in value:
                total += n
        return total

    def _all_string_counts(self) -> dict[str, int]:
        if self._string_counts is None:
            counts: dict[str, int] = {}
            for facts in (*self.program, *self.references):
                for value, n in facts.strings.items():
                    counts[value] = counts.get(value, 0) + n
            self._string_counts = counts
        return self._string_counts


# -- cache ---------------------------------------------------------------------


def _load_cache(path: Optional[Path]) -> dict:
    if path is None or not path.is_file():
        return {"version": _CACHE_VERSION, "facts_version": FACTS_VERSION,
                "files": {}}
    try:
        data = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError):
        data = {}
    if data.get("version") != _CACHE_VERSION \
            or data.get("facts_version") != FACTS_VERSION \
            or not isinstance(data.get("files"), dict):
        return {"version": _CACHE_VERSION, "facts_version": FACTS_VERSION,
                "files": {}}
    return data


def _save_cache(path: Optional[Path], cache: dict) -> None:
    if path is None:
        return
    try:
        path.write_text(json.dumps(cache, sort_keys=True), "utf-8")
    except OSError:  # pragma: no cover - read-only checkout
        pass


def _facts_for_file(path: Path, kind: str, cache_files: dict,
                    index: ProjectIndex) -> ModuleFacts:
    key = path.as_posix()
    module = _module_name(path)
    try:
        stat = path.stat()
    except OSError as exc:
        return parse_error_facts(key, module, 1, str(exc))
    entry = cache_files.get(key)
    if entry is not None and entry.get("mtime_ns") == stat.st_mtime_ns \
            and entry.get("size") == stat.st_size:
        index.cache_hits += 1
        return ModuleFacts.from_dict(entry["facts"])
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return parse_error_facts(key, module, 1, str(exc))
    digest = hashlib.sha256(raw).hexdigest()
    if entry is not None and entry.get("sha256") == digest:
        # Touched but unchanged: refresh the stat pair, keep the facts.
        entry["mtime_ns"] = stat.st_mtime_ns
        entry["size"] = stat.st_size
        index.cache_hits += 1
        return ModuleFacts.from_dict(entry["facts"])
    index.files_reparsed += 1
    try:
        source = raw.decode("utf-8")
        facts = extract_facts(source, key, module)
    except SyntaxError as exc:
        facts = parse_error_facts(key, module, exc.lineno or 1,
                                  exc.msg or "syntax error")
    except UnicodeDecodeError as exc:
        facts = parse_error_facts(key, module, 1, str(exc))
    cache_files[key] = {"mtime_ns": stat.st_mtime_ns, "size": stat.st_size,
                        "sha256": digest, "kind": kind,
                        "facts": facts.to_dict()}
    return facts


def build_project(paths: Sequence[str | Path],
                  refs: Sequence[str | Path] = (),
                  cache_path: Optional[str | Path] = DEFAULT_CACHE,
                  ) -> ProjectIndex:
    """Scan program + reference roots into a :class:`ProjectIndex`.

    ``cache_path=None`` disables the incremental cache entirely (every
    file is parsed fresh — the cold-run behaviour).
    """
    cache_file = Path(cache_path) if cache_path is not None else None
    cache = _load_cache(cache_file)
    files = cache["files"]
    index = ProjectIndex()
    live_keys: set[str] = set()
    for path in discover_files([Path(p) for p in paths]):
        path = _normalize(path)
        live_keys.add(path.as_posix())
        index.program.append(_facts_for_file(path, "program", files, index))
    for path in discover_files([Path(p) for p in refs]):
        path = _normalize(path)
        key = path.as_posix()
        if key in live_keys:
            continue
        live_keys.add(key)
        index.references.append(
            _facts_for_file(path, "reference", files, index))
    index.files_scanned = len(index.program) + len(index.references)
    # Evict entries for files that no longer exist in the scan set but
    # keep entries from other scan configurations (different roots).
    stale = [k for k, v in files.items()
             if k not in live_keys and not Path(k).exists()]
    for k in stale:
        del files[k]
    _save_cache(cache_file, cache)
    return index
