"""Contract-analysis reporting: JSON, SARIF 2.1.0, and the baseline ratchet.

The ratchet (``analysis_baseline.json`` at the repo root) makes the
analyzer adoptable on a tree with pre-existing debt: every finding's
:attr:`~repro.analysis.contracts.rules.ContractFinding.fingerprint`
(rule + file + stable key, *not* line numbers) is compared against the
committed baseline — **new** findings fail the run, baselined ones are
reported but tolerated while they burn down.  Every baseline entry must
carry a human ``note`` explaining why it is tolerated; unexplained
entries are themselves reported so the ratchet cannot silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.contracts.rules import CONTRACT_RULES, ContractFinding

__all__ = ["Baseline", "ContractReport", "to_sarif"]

REPORT_VERSION = 1
BASELINE_VERSION = 1

#: Default committed ratchet file, relative to the working directory.
DEFAULT_BASELINE = "analysis_baseline.json"


@dataclass
class Baseline:
    """The committed set of tolerated (pre-existing) findings."""

    entries: dict[str, dict] = field(default_factory=dict)  # fp -> entry
    path: Optional[str] = None

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.is_file():
            return cls(path=path.as_posix())
        data = json.loads(path.read_text("utf-8"))
        entries = {e["fingerprint"]: dict(e)
                   for e in data.get("entries", ())}
        return cls(entries=entries, path=path.as_posix())

    @classmethod
    def from_findings(cls, findings: Sequence[ContractFinding],
                      notes: Optional[dict[str, str]] = None,
                      previous: Optional["Baseline"] = None) -> "Baseline":
        """Build a baseline from current findings, keeping any notes the
        previous baseline already carried for surviving fingerprints."""
        entries: dict[str, dict] = {}
        for f in findings:
            if f.suppressed:
                continue
            note = ""
            if previous is not None and f.fingerprint in previous.entries:
                note = previous.entries[f.fingerprint].get("note", "")
            if notes and f.fingerprint in notes:
                note = notes[f.fingerprint]
            entries[f.fingerprint] = {
                "fingerprint": f.fingerprint, "code": f.code,
                "path": f.path, "key": f.key, "severity": f.severity,
                "note": note,
            }
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro.analysis.contracts",
            "entries": [self.entries[fp] for fp in sorted(self.entries)],
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=False)
                              + "\n", "utf-8")

    def unexplained(self) -> list[str]:
        """Fingerprints whose entries carry no justifying note."""
        return [fp for fp in sorted(self.entries)
                if not self.entries[fp].get("note", "").strip()]


@dataclass
class ContractReport:
    """Everything one ``--contracts`` run learned."""

    findings: list[ContractFinding] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0
    files_reparsed: int = 0
    baseline: Optional[Baseline] = None

    @property
    def unsuppressed(self) -> list[ContractFinding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def new_findings(self) -> list[ContractFinding]:
        """Unsuppressed findings not absorbed by the baseline."""
        if self.baseline is None:
            return self.unsuppressed
        return [f for f in self.unsuppressed
                if f.fingerprint not in self.baseline.entries]

    @property
    def stale_baseline(self) -> list[str]:
        """Baseline fingerprints that no longer occur (ready to drop)."""
        if self.baseline is None:
            return []
        live = {f.fingerprint for f in self.unsuppressed}
        return [fp for fp in sorted(self.baseline.entries)
                if fp not in live]

    @property
    def exit_code(self) -> int:
        return 1 if self.new_findings else 0

    def to_dict(self) -> dict:
        by_code: dict[str, int] = {}
        for f in self.unsuppressed:
            by_code[f.code] = by_code.get(f.code, 0) + 1
        out = {
            "version": REPORT_VERSION,
            "tool": "contracts",
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "files_scanned": self.files_scanned,
                "cache_hits": self.cache_hits,
                "files_reparsed": self.files_reparsed,
                "findings": len(self.findings),
                "unsuppressed": len(self.unsuppressed),
                "suppressed": len(self.findings) - len(self.unsuppressed),
                "new": len(self.new_findings),
                "by_code": dict(sorted(by_code.items())),
            },
        }
        if self.baseline is not None:
            out["baseline"] = {
                "path": self.baseline.path,
                "entries": len(self.baseline.entries),
                "matched": len(self.unsuppressed) - len(self.new_findings),
                "stale": self.stale_baseline,
                "unexplained": self.baseline.unexplained(),
            }
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_sarif(self, indent: int = 2) -> str:
        return json.dumps(to_sarif(self.findings,
                                   new=set(f.fingerprint
                                           for f in self.new_findings)),
                          indent=indent)


def to_sarif(findings: Sequence[ContractFinding],
             new: Optional[set[str]] = None) -> dict:
    """Render findings as a SARIF 2.1.0 log (one run, one driver).

    Baseline-absorbed findings get ``baselineState: "unchanged"`` and
    new ones ``"new"`` so SARIF viewers (and the CI gate) can tell the
    ratchet's two classes apart.
    """
    rules = [{
        "id": code,
        "name": title.title().replace(" ", "").replace("/", ""),
        "shortDescription": {"text": title},
        "help": {"text": hint},
    } for code, (title, hint) in sorted(CONTRACT_RULES.items())]
    results = []
    for f in findings:
        if f.suppressed:
            continue
        level = "error" if f.severity == "error" else "warning"
        result = {
            "ruleId": f.code,
            "level": level,
            "message": {"text": f.message},
            "partialFingerprints": {"contractKey/v1": f.fingerprint},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(1, f.line),
                               "startColumn": f.col + 1},
                },
            }],
        }
        if new is not None:
            result["baselineState"] = ("new" if f.fingerprint in new
                                       else "unchanged")
        results.append(result)
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro.analysis.contracts",
                "informationUri": "https://example.invalid/repro",
                "rules": rules,
            }},
            "results": results,
        }],
    }
