"""The contract rule family C001–C004: cross-module string-contract checks.

These rules run over a :class:`~repro.analysis.contracts.project.ProjectIndex`
— the whole-program symbol table — rather than one module at a time,
which is exactly what separates them from detlint's per-file D-rules:
a publish in ``repro.data.ingest`` is only correct relative to a bind in
some *other* module, and a metric name is only alive if something on the
read side (a report, a perf gate, a test) ever mentions it.

Rule summary
------------
====  ========================================================  ========
C001  publish/subscribe topic mismatch                          error/warn
C002  metric-name drift (never read) / kind collision           warn/error
C003  resilience hygiene (no Deadline; bare retry loops)        warn
C004  per-shard class mutates state without a merge protocol    error
====  ========================================================  ========

Matching uses :func:`repro.comm.bus.topic_matches` (the PR 5 iterative
NFA) as the oracle whenever both sides are concrete, and a small
template NFA with the same semantics when either side carries f-string
placeholder segments (a placeholder publish segment matches any one
pattern segment and vice versa — *may-match* semantics, so the rules
stay conservative: a finding means no instantiation can ever match).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.analysis.contracts.facts import (ANY_SEGMENT, ModuleFacts,
                                            TopicFact)
from repro.analysis.contracts.project import ProjectIndex
from repro.comm.bus import topic_matches

__all__ = ["ContractFinding", "CONTRACT_RULES", "run_contract_rules",
           "template_matches"]

#: code -> (title, hint) — the rule table rendered by ``--list-rules``
#: and embedded in SARIF output.
CONTRACT_RULES: dict[str, tuple[str, str]] = {
    "C000": ("unparsable file",
             "fix the syntax error; the analyzer cannot see contracts in "
             "a file it cannot parse"),
    "C001": ("publish/subscribe topic mismatch",
             "bind a queue whose pattern matches the published topic (or "
             "delete the dead publish / unmatched binding)"),
    "C002": ("metric-name drift",
             "read the metric in a report, perf gate, or test — or delete "
             "the emission; never reuse one name across metric kinds"),
    "C003": ("resilience hygiene",
             "pass deadline=Deadline(sim, budget) to resilient_call, or "
             "move ad-hoc retry loops onto repro.resilience primitives"),
    "C004": ("shard/merge safety",
             "implement merge_from()/state() so per-shard instances can "
             "be recombined (see MetricsRegistry.merge_state)"),
}


@dataclass(frozen=True)
class ContractFinding:
    """One contract violation, located and fingerprinted.

    ``key`` is the *stable identity* used by the baseline ratchet:
    line numbers churn on unrelated edits, so the fingerprint is built
    from the rule code, the file, and a rule-specific key (topic string,
    metric name, class qualname...) instead.
    """

    code: str
    severity: str               # "error" | "warn"
    path: str
    line: int
    col: int
    message: str
    hint: str
    key: str
    suppressed: bool = False

    @property
    def fingerprint(self) -> str:
        return f"{self.code}:{self.path}:{self.key}"

    def to_dict(self) -> dict:
        data = asdict(self)
        data["fingerprint"] = self.fingerprint
        return data

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col + 1}: {self.code} "
                f"[{self.severity}] {self.message}{mark}\n"
                f"    hint: {self.hint}")


def _finding(code: str, severity: str, facts: ModuleFacts, line: int,
             col: int, message: str, key: str) -> ContractFinding:
    return ContractFinding(
        code=code, severity=severity, path=facts.path, line=line, col=col,
        message=message, hint=CONTRACT_RULES[code][1], key=key,
        suppressed=facts.suppressed(line, code))


# -- topic matching ------------------------------------------------------------


def template_matches(pattern_segments: list[str],
                     topic_segments: list[str]) -> bool:
    """May-match between a pattern and a topic template.

    Same NFA as :func:`repro.comm.bus.topic_matches`, extended with
    :data:`ANY_SEGMENT` placeholders on either side: a placeholder topic
    segment can take any value, so it satisfies any single-segment
    pattern position; a placeholder pattern segment is a runtime literal
    that matches exactly one topic segment.
    """
    pat = pattern_segments
    n_pat = len(pat)

    def close(states: set[int]) -> set[int]:
        frontier = list(states)
        while frontier:
            pi = frontier.pop()
            if pi < n_pat and pat[pi] == "#" and pi + 1 not in states:
                states.add(pi + 1)
                frontier.append(pi + 1)
        return states

    states = close({0})
    for seg in topic_segments:
        nxt: set[int] = set()
        for pi in states:
            if pi >= n_pat:
                continue
            p = pat[pi]
            if p == "#":
                nxt.add(pi)
            elif p == "*" or p == ANY_SEGMENT or seg == ANY_SEGMENT \
                    or p == seg:
                nxt.add(pi + 1)
        if not nxt:
            return False
        states = close(nxt)
    return n_pat in states


def _topics_match(pattern: TopicFact, topic: TopicFact) -> bool:
    if pattern.segments is None or topic.segments is None:
        return True     # a dynamic side may match anything: conservative
    if ANY_SEGMENT not in pattern.topic and ANY_SEGMENT not in topic.topic:
        return topic_matches(pattern.topic, topic.topic)
    return template_matches(pattern.segments, topic.segments)


# -- C000: parse errors --------------------------------------------------------


def _check_parse_errors(index: ProjectIndex) -> list[ContractFinding]:
    out = []
    for facts in index.modules():
        if facts.parse_error is not None:
            out.append(ContractFinding(
                code="C000", severity="error", path=facts.path,
                line=int(facts.parse_error["line"]), col=0,
                message=f"file does not parse: "
                        f"{facts.parse_error['message']}",
                hint=CONTRACT_RULES["C000"][1], key="parse"))
    return out


# -- C001: publish/subscribe topic mismatch ------------------------------------


def _check_topics(index: ProjectIndex) -> list[ContractFinding]:
    publishes: list[tuple[ModuleFacts, TopicFact]] = []
    subscribes: list[tuple[ModuleFacts, TopicFact]] = []
    for facts in index.modules():
        publishes.extend((facts, t) for t in facts.publishes)
        subscribes.extend((facts, t) for t in facts.subscribes)
    out: list[ContractFinding] = []

    for facts, pub in publishes:
        if pub.segments is None:
            continue            # dynamic: cannot be judged statically
        if any(_topics_match(sub, pub) for _, sub in subscribes):
            continue
        where = f" (in {pub.func})" if pub.func else ""
        out.append(_finding(
            "C001", "error", facts, pub.line, pub.col,
            f"published topic {pub.topic!r}{where} is matched by no "
            f"subscribe/bind pattern anywhere in the program — every "
            f"message routed to it is dropped",
            key=f"pub:{pub.topic}"))

    # The bus implementation itself forwards every topic (``broker.route``
    # inside ``MessageBus.publish``) — that *dynamic* fact is middleware
    # plumbing, not an origin, and would mask every dead binding.
    origin_publishes = [
        (facts, pub) for facts, pub in publishes
        if not (pub.segments is None and facts.module == "repro.comm.bus")]

    for facts, sub in subscribes:
        if sub.segments is None:
            continue
        if any(_topics_match(sub, pub) for _, pub in origin_publishes):
            continue
        where = f" (in {sub.func})" if sub.func else ""
        out.append(_finding(
            "C001", "warn", facts, sub.line, sub.col,
            f"subscription pattern {sub.topic!r}{where} can never match "
            f"any published topic — the binding is dead",
            key=f"sub:{sub.topic}"))
    return out


# -- C002: metric-name drift ---------------------------------------------------


def _check_metrics(index: ProjectIndex) -> list[ContractFinding]:
    out: list[ContractFinding] = []
    emits: dict[str, list[tuple[ModuleFacts, str, int, int, bool]]] = {}
    for facts in index.modules():
        for m in facts.metrics:
            emits.setdefault(m.name, []).append(
                (facts, m.kind, m.line, m.col, m.read))

    for name in sorted(emits):
        sites = emits[name]
        # -- kind collision: one name, several metric families ------------
        kinds = sorted({"counter" if kind == "stats" else kind
                        for _, kind, _, _, _ in sites})
        if len(kinds) > 1:
            facts, _, line, col, _ = sites[-1]
            out.append(_finding(
                "C002", "error", facts, line, col,
                f"metric name {name!r} is used as {' and '.join(kinds)} — "
                f"MetricsRegistry.merge_state would double-register it "
                f"under conflicting families",
                key=f"collision:{name}"))
        # -- drift: emitted but never read --------------------------------
        factory_sites = [(f, k, ln, c) for f, k, ln, c, read in sites
                         if k != "stats" and not read]
        if not factory_sites:
            # stats() dicts are read through their StatsDict keys; the
            # full dotted name never appears at the read site, so the
            # drift check only covers the factory families.
            continue
        if any(read for *_, read in sites):
            continue        # an in-program read accessor consumes it
        occurrences = index.string_occurrences(name)
        if occurrences <= len(factory_sites):
            facts, kind, line, col = factory_sites[0]
            out.append(_finding(
                "C002", "warn", facts, line, col,
                f"{kind} {name!r} is emitted but never read by any "
                f"report, stats surface, perf gate, or test",
                key=f"unread:{name}"))
    return out


# -- C003: resilience hygiene --------------------------------------------------


def _check_resilience(index: ProjectIndex) -> list[ContractFinding]:
    out: list[ContractFinding] = []
    for facts in index.modules():
        if facts.module.startswith("repro.resilience"):
            continue            # the resilience kernel is the sanctioned home
        per_func: dict[str, int] = {}
        for r in facts.resilience:
            if r.kind == "resilient_call" and not r.has_deadline:
                n = per_func.get(f"d:{r.func}", 0)
                per_func[f"d:{r.func}"] = n + 1
                suffix = f"#{n}" if n else ""
                out.append(_finding(
                    "C003", "warn", facts, r.line, r.col,
                    f"resilient_call in {r.func or facts.module} has no "
                    f"deadline= — retries can consume unbounded simulated "
                    f"time",
                    key=f"nodeadline:{r.func}{suffix}"))
            elif r.kind == "retry_loop":
                n = per_func.get(f"r:{r.func}", 0)
                per_func[f"r:{r.func}"] = n + 1
                suffix = f"#{n}" if n else ""
                out.append(_finding(
                    "C003", "warn", facts, r.line, r.col,
                    f"bare retry loop in {r.func or facts.module} "
                    f"(loop + swallowed except + re-invoke) outside "
                    f"repro.resilience — use resilient_call/RetryPolicy",
                    key=f"retry:{r.func}{suffix}"))
    return out


# -- C004: shard/merge safety --------------------------------------------------

#: BFS roots: the classes whose instances fan out per shard / per worker
#: and are later recombined.  Instantiation edges are walked from here.
SHARD_ROOTS = ("repro.data.shard.ShardedDiscoveryIndex",
               "repro.scale.runner.WorldBatch")

#: How many instantiation hops from a root still count as "stored
#: per-shard".  Depth 3 covers root -> shard component -> its parts.
SHARD_REACH_DEPTH = 3


def _has_merge_transitive(index: ProjectIndex, qual: str,
                          seen: Optional[set[str]] = None) -> bool:
    seen = seen or set()
    if qual in seen:
        return False
    seen.add(qual)
    table = index.classes()
    entry = table.get(qual)
    if entry is None:
        return False
    _, cls = entry
    if cls.has_merge:
        return True
    for base in cls.bases:
        base_qual = index.resolve_class(base)
        if base_qual is not None \
                and _has_merge_transitive(index, base_qual, seen):
            return True
    return False


def _check_shard_merge(index: ProjectIndex) -> list[ContractFinding]:
    table = index.classes()
    reached: dict[str, int] = {}
    frontier: list[tuple[str, int]] = []
    for root in SHARD_ROOTS:
        qual = index.resolve_class(root)
        if qual is not None:
            frontier.append((qual, 0))
    while frontier:
        qual, depth = frontier.pop()
        if qual in reached and reached[qual] <= depth:
            continue
        reached[qual] = depth
        if depth >= SHARD_REACH_DEPTH:
            continue
        entry = table.get(qual)
        if entry is None:
            continue
        _, cls = entry
        for inst in cls.instantiates:
            inst_qual = index.resolve_class(inst)
            if inst_qual is not None:
                frontier.append((inst_qual, depth + 1))

    out: list[ContractFinding] = []
    for qual in sorted(reached):
        entry = table.get(qual)
        if entry is None:
            continue
        facts, cls = entry
        if not cls.mutated_attrs:
            continue
        if _has_merge_transitive(index, qual):
            continue
        attrs = ", ".join(cls.mutated_attrs[:4])
        out.append(_finding(
            "C004", "error", facts, cls.line, cls.col,
            f"class {cls.name} is stored per-shard (reachable from "
            f"{'/'.join(r.rsplit('.', 1)[-1] for r in SHARD_ROOTS)}) and "
            f"mutates collective state ({attrs}) but implements no "
            f"merge_from()/state() protocol",
            key=f"merge:{qual}"))
    return out


# -- entry point ---------------------------------------------------------------


def run_contract_rules(index: ProjectIndex,
                       select: tuple[str, ...] = ()) -> list[ContractFinding]:
    """Run every C-rule (or the selected subset) over the project."""
    checks = {
        "C000": _check_parse_errors,
        "C001": _check_topics,
        "C002": _check_metrics,
        "C003": _check_resilience,
        "C004": _check_shard_merge,
    }
    codes = [c for c in sorted(checks) if not select or c in select
             or c == "C000"]
    findings: list[ContractFinding] = []
    for code in codes:
        findings.extend(checks[code](index))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.key))
    return findings
