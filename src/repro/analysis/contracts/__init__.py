"""Whole-program contract analysis (rules C001–C004).

detlint (:mod:`repro.analysis.rules`) is deliberately per-file; this
package is the complement: it parses the full ``src/repro`` tree once
into a :class:`~repro.analysis.contracts.project.ProjectIndex` (with an
mtime+content-hash incremental cache) and checks the *string contracts*
that wire the layers together — bus topic literals against bind
patterns, metric names against their read sites, resilience call sites
against deadline hygiene, and per-shard classes against the merge
protocol.  Findings ride the same ``# detlint: ignore[Cxxx]`` pragma
mechanism, and a committed baseline (``analysis_baseline.json``)
ratchets the pre-existing debt: CI fails only on *new* findings.

Entry points: ``python -m repro.analysis --contracts`` (CLI) or
:func:`analyze_contracts` (library).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.contracts.facts import (FACTS_VERSION, ClassFact,
                                            MetricFact, ModuleFacts,
                                            ResilienceFact, TopicFact,
                                            extract_facts)
from repro.analysis.contracts.project import (DEFAULT_CACHE, ProjectIndex,
                                              build_project)
from repro.analysis.contracts.report import (DEFAULT_BASELINE, Baseline,
                                             ContractReport, to_sarif)
from repro.analysis.contracts.rules import (CONTRACT_RULES, ContractFinding,
                                            run_contract_rules,
                                            template_matches)

__all__ = [
    "FACTS_VERSION", "ModuleFacts", "TopicFact", "MetricFact",
    "ResilienceFact", "ClassFact", "extract_facts",
    "ProjectIndex", "build_project", "DEFAULT_CACHE",
    "Baseline", "ContractReport", "to_sarif", "DEFAULT_BASELINE",
    "CONTRACT_RULES", "ContractFinding", "run_contract_rules",
    "template_matches", "analyze_contracts",
]


def analyze_contracts(paths: Sequence[str | Path],
                      refs: Sequence[str | Path] = (),
                      baseline_path: Optional[str | Path] = None,
                      cache_path: Optional[str | Path] = DEFAULT_CACHE,
                      select: tuple[str, ...] = ()) -> ContractReport:
    """One-call contract analysis: index, rules, baseline comparison."""
    index = build_project(paths, refs=refs, cache_path=cache_path)
    findings = run_contract_rules(index, select=select)
    baseline = None
    if baseline_path is not None and Path(baseline_path).is_file():
        baseline = Baseline.load(baseline_path)
    return ContractReport(
        findings=findings, files_scanned=index.files_scanned,
        cache_hits=index.cache_hits, files_reparsed=index.files_reparsed,
        baseline=baseline)
