"""Per-module fact extraction for the whole-program contract analyzer.

One :class:`ModuleFacts` is the complete, JSON-serializable summary of
everything the cross-module rules (C001–C004) need to know about one
source file:

- **Topic sinks** — string literals (and f-string templates) flowing
  into ``bus.publish(...)``/``broker.route(...)`` on the publish side
  and ``broker.bind(...)``/``topic_matches(...)`` on the subscribe side.
  Literals are resolved through one level of local constant propagation
  (``topic = "a.b"; bus.publish(..., topic, ...)``) and through
  literal-returning helper functions (``TelemetryPublisher.topic_for``),
  so the analyzer sees the topics the runtime actually emits.
- **Metric sinks** — ``registry.counter/gauge/histogram("name")`` and
  ``registry.stats("prefix", {...})`` declarations, each with its kind,
  so drift and kind-collision checks can run project-wide.
- **Resilience facts** — ``resilient_call(...)`` invocations (and
  whether they carry a ``deadline=``), plus syntactic retry loops
  (``while``/``for`` + swallowed ``except`` + re-iteration).
- **Class facts** — which attributes each class mutates in place outside
  ``__init__``, whether it provides a merge protocol
  (``merge_from``/``state``/``merge_state``/``merge``), its bases, and
  which classes it instantiates (the reachability edges C004 walks).
- **String occurrences** — every string constant (plus ``Load``-context
  subscript keys), the read-side universe for metric-drift checks.
- **Pragmas and statement spans** — enough source geometry to apply the
  ``# detlint: ignore[...]`` mechanism from cached facts without
  re-reading the file, including first-line pragmas on wrapped
  multi-line statements.

Everything here is syntactic and module-local; the cross-module joins
live in :mod:`repro.analysis.contracts.rules` over the assembled
:class:`~repro.analysis.contracts.project.ProjectIndex`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass, field
from typing import Any, Optional

from repro.analysis.rules import ModuleContext

__all__ = ["FACTS_VERSION", "ModuleFacts", "TopicFact", "MetricFact",
           "ResilienceFact", "ClassFact", "extract_facts", "parse_error_facts"]

#: Bump whenever the extraction output changes shape or semantics — the
#: incremental cache discards entries recorded under a different version.
FACTS_VERSION = 4

#: A formatted (non-literal) f-string segment: matches any one topic
#: segment.  Kept as a string marker so facts stay JSON-round-trippable.
ANY_SEGMENT = "\x00"

_PRAGMA = re.compile(r"#\s*detlint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")

# (attribute name, positional index, keyword name) triples locating the
# topic argument of each known sink.  ``MessageBus.publish(broker, src,
# topic, message)`` puts the topic third; ``Broker.route(topic, env)``
# and ``topic_matches(pattern, topic)`` lead with it.
_PUBLISH_SINKS = (("publish", 2, "topic"), ("route", 0, "topic"))
_SUBSCRIBE_SINKS = (("bind", 1, "pattern"), ("topic_matches", 0, "pattern"))

_METRIC_SINKS = frozenset({"counter", "gauge", "histogram"})

#: Accessors that consume a metric rather than emit to it:
#: ``registry.gauge("x").value`` is a read site, ``.set()`` an emission.
_METRIC_READS = frozenset({"value", "mean", "summary", "quantile",
                           "percentiles"})

_MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "pop", "popitem",
    "insert", "extend", "extendleft", "remove", "discard", "clear",
})

_MERGE_PROTOCOL = frozenset({"merge_from", "state", "merge_state", "merge"})


@dataclass
class TopicFact:
    """One topic literal flowing into a publish- or subscribe-side sink.

    ``segments`` is the dot-split topic with :data:`ANY_SEGMENT` marking
    f-string placeholders; ``None`` means the argument never resolved to
    a literal (a *dynamic* topic, treated as matching everything).
    """

    topic: str                       # rendered template ("" when dynamic)
    segments: Optional[list[str]]    # None = dynamic / unresolvable
    line: int
    col: int
    sink: str                        # "publish" | "route" | "bind" | ...
    func: str = ""                   # enclosing def / class.def


@dataclass
class MetricFact:
    """One metric-name declaration (``kind`` distinguishes the family).

    ``stats("prefix", {...})`` expands to one fact per key with
    ``kind="stats"`` and ``name="prefix.<key>"``.
    """

    kind: str
    name: str
    line: int
    col: int
    func: str = ""
    #: True when the factory call is immediately dereferenced with a
    #: read accessor (``.value``, ``.summary()``, ...) — a consumption
    #: site, not an emission.
    read: bool = False


@dataclass
class ResilienceFact:
    """A ``resilient_call`` invocation or a syntactic bare retry loop."""

    kind: str                        # "resilient_call" | "retry_loop"
    line: int
    col: int
    func: str = ""
    has_deadline: bool = False


@dataclass
class ClassFact:
    """Merge-protocol-relevant summary of one class definition."""

    name: str
    line: int
    col: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    mutated_attrs: list[str] = field(default_factory=list)
    mutation_line: int = 0
    has_merge: bool = False
    instantiates: list[str] = field(default_factory=list)


@dataclass
class ModuleFacts:
    """Everything one file contributes to the whole-program analysis."""

    path: str
    module: str
    version: int = FACTS_VERSION
    publishes: list[TopicFact] = field(default_factory=list)
    subscribes: list[TopicFact] = field(default_factory=list)
    metrics: list[MetricFact] = field(default_factory=list)
    resilience: list[ResilienceFact] = field(default_factory=list)
    classes: list[ClassFact] = field(default_factory=list)
    instantiated: list[str] = field(default_factory=list)
    strings: dict[str, int] = field(default_factory=dict)
    load_subscripts: list[str] = field(default_factory=list)
    pragmas: dict[str, Optional[list[str]]] = field(default_factory=dict)
    stmt_spans: list[list[int]] = field(default_factory=list)
    parse_error: Optional[dict[str, Any]] = None

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleFacts":
        out = cls(path=data["path"], module=data["module"],
                  version=data.get("version", 0))
        out.publishes = [TopicFact(**d) for d in data.get("publishes", ())]
        out.subscribes = [TopicFact(**d) for d in data.get("subscribes", ())]
        out.metrics = [MetricFact(**d) for d in data.get("metrics", ())]
        out.resilience = [ResilienceFact(**d)
                          for d in data.get("resilience", ())]
        out.classes = [ClassFact(**d) for d in data.get("classes", ())]
        out.instantiated = list(data.get("instantiated", ()))
        out.strings = dict(data.get("strings", {}))
        out.load_subscripts = list(data.get("load_subscripts", ()))
        out.pragmas = {k: (list(v) if v is not None else None)
                       for k, v in data.get("pragmas", {}).items()}
        out.stmt_spans = [list(span) for span in data.get("stmt_spans", ())]
        out.parse_error = data.get("parse_error")
        return out

    # -- pragma resolution (works entirely from cached facts) --------------

    def stmt_start(self, line: int) -> int:
        """First line of the innermost multi-line statement covering
        ``line`` (or ``line`` itself)."""
        best = line
        best_span = None
        for start, end in self.stmt_spans:
            if start <= line <= end:
                if best_span is None or (end - start) < best_span:
                    best, best_span = start, end - start
        return best

    def suppressed(self, line: int, code: str) -> bool:
        """True when a pragma covers ``code`` at ``line`` — on the line,
        on a comment line directly above, or on the first line of the
        enclosing wrapped statement."""
        start = self.stmt_start(line)
        for cand in (line, line - 1, start, start - 1):
            codes = self.pragmas.get(str(cand))
            if codes is None and str(cand) not in self.pragmas:
                continue
            if codes is None or not codes or code in codes:
                return True
        return False


def parse_error_facts(path: str, module: str, line: int,
                      message: str) -> ModuleFacts:
    """Facts for a file that failed to parse (carried as a finding)."""
    facts = ModuleFacts(path=path, module=module)
    facts.parse_error = {"line": max(1, int(line or 1)), "message": message}
    return facts


# -- literal resolution --------------------------------------------------------


def _literal_template(node: ast.expr) -> Optional[str]:
    """Render a Constant/JoinedStr to a topic template, placeholders as
    :data:`ANY_SEGMENT`; ``None`` when the expression is not literal."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value,
                                                              str):
                parts.append(value.value)
            else:
                parts.append(ANY_SEGMENT)
        return "".join(parts)
    return None


def _template_segments(template: str) -> list[str]:
    """Dot-split a template; any segment touched by a placeholder becomes
    :data:`ANY_SEGMENT` wholesale (``lab-{i}.xrd`` -> ``["\\0", "xrd"]``)."""
    return [ANY_SEGMENT if ANY_SEGMENT in seg else seg
            for seg in template.split(".")]


class _FunctionScope:
    """Local single-assignment constants within one function body."""

    def __init__(self, fn: ast.AST) -> None:
        self.constants: dict[str, Optional[str]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                template = _literal_template(node.value)
                if name in self.constants:
                    self.constants[name] = None   # reassigned: not constant
                else:
                    self.constants[name] = template

    def lookup(self, name: str) -> Optional[str]:
        return self.constants.get(name)


def _literal_return_functions(module: ast.Module) -> dict[str, str]:
    """Map of function names (bare and ``Class.name``) whose body returns
    exactly one string literal/f-string — e.g. ``topic_for``."""
    out: dict[str, str] = {}

    def harvest(fn: ast.AST, qualifier: str = "") -> None:
        returns = [n for n in ast.walk(fn) if isinstance(n, ast.Return)]
        if len(returns) != 1 or returns[0].value is None:
            return
        template = _literal_template(returns[0].value)
        if template is None:
            return
        out[fn.name] = template
        if qualifier:
            out[f"{qualifier}.{fn.name}"] = template

    for node in module.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            harvest(node)
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    harvest(sub, node.name)
    return out


def _resolve_topic_arg(node: ast.expr, scope: Optional[_FunctionScope],
                       literal_fns: dict[str, str]) -> Optional[str]:
    """Best-effort template for a topic argument expression."""
    template = _literal_template(node)
    if template is not None:
        return template
    if isinstance(node, ast.Name) and scope is not None:
        return scope.lookup(node.id)
    if isinstance(node, ast.Call):
        terminal = None
        if isinstance(node.func, ast.Name):
            terminal = node.func.id
        elif isinstance(node.func, ast.Attribute):
            terminal = node.func.attr
        if terminal is not None and terminal in literal_fns:
            return literal_fns[terminal]
    return None


def _resolve_dict_arg(node: ast.expr,
                      scope: Optional[_FunctionScope],
                      fn: Optional[ast.AST]) -> Optional[list[str]]:
    """String keys of a dict-literal argument (directly or through one
    local single assignment)."""
    if isinstance(node, ast.Name) and fn is not None:
        assigns = [n for n in ast.walk(fn)
                   if isinstance(n, ast.Assign) and len(n.targets) == 1
                   and isinstance(n.targets[0], ast.Name)
                   and n.targets[0].id == node.id]
        if len(assigns) == 1:
            node = assigns[0].value
    if not isinstance(node, ast.Dict):
        return None
    keys = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
    return keys


# -- extraction ----------------------------------------------------------------


def _call_terminal(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _sink_arg(call: ast.Call, index: int, keyword: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > index:
        arg = call.args[index]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


def _handler_escapes(handler: ast.ExceptHandler) -> bool:
    """Does the except handler leave the loop (raise/return/break)?"""
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Return, ast.Break)):
            return True
    return False


def _handler_continues(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Continue) for node in ast.walk(handler))


def _is_while_true(loop: ast.AST) -> bool:
    return isinstance(loop, ast.While) \
        and isinstance(loop.test, ast.Constant) and loop.test.value is True


def _walk_no_functions(root: ast.AST, *, skip_loops: bool = False):
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if skip_loops and isinstance(node, (ast.For, ast.While)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _class_name_candidates(call: ast.Call,
                           ctx: ModuleContext) -> Optional[str]:
    """Resolved (or bare) name when a call looks like instantiation."""
    resolved = ctx.resolve_call(call)
    terminal = _call_terminal(call)
    if terminal is None or not terminal[:1].isupper():
        return None
    return resolved or terminal


def _enclosing_functions(module: ast.Module) -> list[tuple[str, ast.AST]]:
    """(qualname, node) for every def, methods qualified by class."""
    out: list[tuple[str, ast.AST]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                out.append((qual, child))
                visit(child, qual)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}.{child.name}" if prefix
                      else child.name)
            else:
                visit(child, prefix)

    visit(module, "")
    return out


def _self_mutations(fn: ast.AST) -> dict[str, int]:
    """``self.<attr>`` container mutations inside one function body:
    attr name -> first line."""
    out: dict[str, int] = {}

    def record(attr: str, line: int) -> None:
        if attr not in out:
            out[attr] = line

    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute) \
                and node.func.attr in _MUTATING_METHODS:
            target = node.func.value
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                record(target.attr, node.lineno)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for tgt in targets:
                if isinstance(tgt, ast.Subscript) \
                        and isinstance(tgt.value, ast.Attribute) \
                        and isinstance(tgt.value.value, ast.Name) \
                        and tgt.value.value.id == "self":
                    record(tgt.value.attr, node.lineno)
    return out


def _extract_class(node: ast.ClassDef, ctx: ModuleContext) -> ClassFact:
    fact = ClassFact(name=node.name, line=node.lineno, col=node.col_offset)
    for base in node.bases:
        resolved = ctx.resolve(base)
        if resolved is not None:
            fact.bases.append(resolved)
        elif isinstance(base, ast.Name):
            fact.bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            fact.bases.append(base.attr)
    mutated: dict[str, int] = {}
    for sub in node.body:
        if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fact.methods.append(sub.name)
        if sub.name in ("__init__", "__new__"):
            continue
        for attr, line in _self_mutations(sub).items():
            if attr not in mutated:
                mutated[attr] = line
    fact.mutated_attrs = sorted(mutated)
    fact.mutation_line = min(mutated.values()) if mutated else 0
    fact.has_merge = bool(_MERGE_PROTOCOL.intersection(fact.methods))
    seen: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            cand = _class_name_candidates(sub, ctx)
            if cand is not None and cand != node.name and cand not in seen:
                seen.add(cand)
                fact.instantiates.append(cand)
    return fact


def _harvest_strings(module: ast.Module) -> tuple[dict[str, int], list[str]]:
    strings: dict[str, int] = {}
    load_subscripts: list[str] = []
    for node in ast.walk(module):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            strings[node.value] = strings.get(node.value, 0) + 1
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Load) \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            load_subscripts.append(node.slice.value)
    return strings, load_subscripts


def _harvest_pragmas(source: str) -> dict[str, Optional[list[str]]]:
    pragmas: dict[str, Optional[list[str]]] = {}
    for line_no, text in enumerate(source.splitlines(), start=1):
        m = _PRAGMA.search(text)
        if m is None:
            continue
        codes = m.group("codes")
        pragmas[str(line_no)] = (
            None if codes is None
            else [c.strip() for c in codes.split(",") if c.strip()])
    return pragmas


def _harvest_stmt_spans(module: ast.Module) -> list[list[int]]:
    spans: list[list[int]] = []
    simple = (ast.Expr, ast.Assign, ast.AnnAssign, ast.AugAssign,
              ast.Return, ast.Raise, ast.Assert, ast.Delete)
    for node in ast.walk(module):
        if isinstance(node, simple):
            end = getattr(node, "end_lineno", None) or node.lineno
            if end > node.lineno:
                spans.append([node.lineno, end])
    return spans


def extract_facts(source: str, path: str, module: str) -> ModuleFacts:
    """Parse one file and extract its :class:`ModuleFacts`.

    Raises ``SyntaxError`` on unparsable input — the project indexer
    converts that into :func:`parse_error_facts` so a broken file is a
    finding, not a crash.
    """
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(tree)
    facts = ModuleFacts(path=path, module=module)
    literal_fns = _literal_return_functions(tree)

    functions = _enclosing_functions(tree)
    scope_cache: dict[int, _FunctionScope] = {}
    read_wrapped = {id(attr.value) for attr in ast.walk(tree)
                    if isinstance(attr, ast.Attribute)
                    and attr.attr in _METRIC_READS
                    and isinstance(attr.value, ast.Call)}

    def owner_of(node: ast.AST) -> tuple[str, Optional[ast.AST]]:
        best: tuple[str, Optional[ast.AST]] = ("", None)
        best_size = None
        for qual, fn in functions:
            end = getattr(fn, "end_lineno", fn.lineno)
            if fn.lineno <= node.lineno <= end:
                size = end - fn.lineno
                if best_size is None or size < best_size:
                    best, best_size = (qual, fn), size
        return best

    def scope_for(fn: Optional[ast.AST]) -> Optional[_FunctionScope]:
        if fn is None:
            return None
        key = id(fn)
        if key not in scope_cache:
            scope_cache[key] = _FunctionScope(fn)
        return scope_cache[key]

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        terminal = _call_terminal(node)
        if terminal is None:
            continue
        qual, fn = owner_of(node)

        # -- topic sinks ---------------------------------------------------
        for sinks, bucket in ((_PUBLISH_SINKS, facts.publishes),
                              (_SUBSCRIBE_SINKS, facts.subscribes)):
            for attr, index, keyword in sinks:
                if terminal != attr:
                    continue
                arg = _sink_arg(node, index, keyword)
                if arg is None:
                    continue
                template = _resolve_topic_arg(arg, scope_for(fn),
                                              literal_fns)
                if template is None:
                    # ``.publish``/``.bind`` are overloaded verbs across
                    # the codebase (mesh indexes publish dict entries),
                    # so an arbitrary expression at the topic position
                    # must not poison the whole-program match.  Record a
                    # *dynamic* topic (matches everything) only when the
                    # argument is self-evidently a topic: a name or call
                    # with "topic" in it that local propagation and
                    # literal-return resolution both failed to pin down.
                    topicish = (
                        (isinstance(arg, ast.Name)
                         and "topic" in arg.id.lower())
                        or (isinstance(arg, ast.Call)
                            and "topic" in (_call_terminal(arg) or "").lower()
                            ))
                    if topicish and attr in ("publish", "route"):
                        bucket.append(TopicFact(
                            topic="", segments=None, line=node.lineno,
                            col=node.col_offset, sink=attr, func=qual))
                    continue
                bucket.append(TopicFact(
                    topic=template, segments=_template_segments(template),
                    line=node.lineno, col=node.col_offset, sink=attr,
                    func=qual))

        # -- metric sinks --------------------------------------------------
        if terminal in _METRIC_SINKS and isinstance(node.func,
                                                    ast.Attribute):
            arg = _sink_arg(node, 0, "name")
            if arg is not None and isinstance(arg, ast.Constant) \
                    and isinstance(arg.value, str):
                facts.metrics.append(MetricFact(
                    kind=terminal, name=arg.value, line=node.lineno,
                    col=node.col_offset, func=qual,
                    read=id(node) in read_wrapped))
        elif terminal == "stats" and isinstance(node.func, ast.Attribute):
            prefix_arg = _sink_arg(node, 0, "prefix")
            initial_arg = _sink_arg(node, 1, "initial")
            if prefix_arg is not None and isinstance(prefix_arg,
                                                     ast.Constant) \
                    and isinstance(prefix_arg.value, str) \
                    and initial_arg is not None:
                keys = _resolve_dict_arg(initial_arg, scope_for(fn), fn)
                for key in keys or ():
                    facts.metrics.append(MetricFact(
                        kind="stats", name=f"{prefix_arg.value}.{key}",
                        line=node.lineno, col=node.col_offset, func=qual))

        # -- resilience sinks ----------------------------------------------
        if terminal == "resilient_call":
            has_deadline = any(
                kw.arg == "deadline"
                and not (isinstance(kw.value, ast.Constant)
                         and kw.value.value is None)
                for kw in node.keywords)
            facts.resilience.append(ResilienceFact(
                kind="resilient_call", line=node.lineno,
                col=node.col_offset, func=qual, has_deadline=has_deadline))

    # -- retry loops -------------------------------------------------------
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        qual, _fn = owner_of(node)
        # A try inside a nested loop belongs to the *innermost* loop —
        # the outer loop would otherwise double-report the same pattern.
        for sub in _walk_no_functions(node, skip_loops=True):
            if not isinstance(sub, ast.Try):
                continue
            for handler in sub.handlers:
                if _handler_escapes(handler):
                    continue
                if _handler_continues(handler) or _is_while_true(node):
                    facts.resilience.append(ResilienceFact(
                        kind="retry_loop", line=node.lineno,
                        col=node.col_offset, func=qual))
                    break
            else:
                continue
            break

    # -- classes and instantiations ----------------------------------------
    class_spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            facts.classes.append(_extract_class(node, ctx))
            class_spans.append((node.lineno,
                                getattr(node, "end_lineno", node.lineno)))
    seen_inst: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            if any(start <= node.lineno <= end
                   for start, end in class_spans):
                continue
            cand = _class_name_candidates(node, ctx)
            if cand is not None and cand not in seen_inst:
                seen_inst.add(cand)
                facts.instantiated.append(cand)

    facts.strings, facts.load_subscripts = _harvest_strings(tree)
    facts.pragmas = _harvest_pragmas(source)
    facts.stmt_spans = _harvest_stmt_spans(tree)
    return facts
