"""The detlint engine: file discovery, pragmas, config, reports.

Pipeline: discover ``*.py`` files under the given paths → parse each with
stdlib ``ast`` → run the selected rules (:mod:`repro.analysis.rules`) →
apply inline pragmas → render a text or machine-readable JSON report.

Pragmas
-------
A finding is *suppressed* (reported but not counted against the exit
code) when the flagged line — or a comment-only line directly above it —
carries::

    # detlint: ignore[D001]         suppress one rule on this line
    # detlint: ignore[D001,D004]    suppress several
    # detlint: ignore               suppress every rule on this line

Anything after the closing bracket is free-form justification; write one.

Configuration
-------------
``[tool.detlint]`` in ``pyproject.toml`` supplies project defaults::

    [tool.detlint]
    exclude = ["tests/analysis/fixtures"]   # path substrings to skip
    select  = []                            # empty = all rules
    ignore  = []                            # rule codes disabled globally

CLI flags override the config; ``tomllib`` is used when available
(Python 3.11+) and config loading degrades to defaults without it.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, Rule, check_module

__all__ = ["Finding", "Report", "DetlintConfig", "lint_paths", "lint_source",
           "load_config"]

_PRAGMA = re.compile(
    r"#\s*detlint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")

#: Report schema version — bump on breaking JSON changes.
REPORT_VERSION = 1

#: Pseudo-rule for files that fail to parse: reported as a finding (with
#: the syntax error's own line) instead of aborting or being relegated to
#: a side channel, so one broken file cannot hide its own debt.
PARSE_ERROR_CODE = "D000"
_PARSE_ERROR_HINT = ("fix the syntax error; an unparsable file is invisible "
                     "to every other rule")


@dataclass(frozen=True)
class Finding:
    """One rule violation located in a file, after pragma resolution."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str
    suppressed: bool = False

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col + 1}: {self.code} "
                f"{self.message}{mark}\n    hint: {self.hint}")


@dataclass
class Report:
    """Everything one detlint run learned."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if (self.unsuppressed or self.parse_errors) else 0

    def to_dict(self) -> dict:
        by_code: dict[str, int] = {}
        for f in self.unsuppressed:
            by_code[f.code] = by_code.get(f.code, 0) + 1
        return {
            "version": REPORT_VERSION,
            "tool": "detlint",
            "findings": [asdict(f) for f in self.findings],
            "parse_errors": list(self.parse_errors),
            "summary": {
                "files_scanned": self.files_scanned,
                "findings": len(self.findings),
                "unsuppressed": len(self.unsuppressed),
                "suppressed": len(self.findings) - len(self.unsuppressed),
                "by_code": dict(sorted(by_code.items())),
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


@dataclass
class DetlintConfig:
    """Effective configuration after merging pyproject + CLI flags."""

    select: tuple[str, ...] = ()      # empty selects every rule
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def rules(self) -> list[Rule]:
        codes = [c for c in (self.select or sorted(RULES_BY_CODE))
                 if c not in self.ignore]
        unknown = [c for c in codes if c not in RULES_BY_CODE]
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
        return [RULES_BY_CODE[c] for c in codes]

    def excludes_path(self, path: Path) -> bool:
        text = path.as_posix()
        return any(pat in text for pat in self.exclude)


def load_config(root: Optional[Path] = None) -> DetlintConfig:
    """Read ``[tool.detlint]`` from the nearest ``pyproject.toml``.

    Searches ``root`` (default: cwd) and its parents; returns defaults
    when no file, no table, or no toml parser is available.
    """
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py3.10 without tomli
        return DetlintConfig()
    base = (root or Path.cwd()).resolve()
    candidates = [base, *base.parents] if base.is_dir() \
        else [base.parent, *base.parent.parents]
    for directory in candidates:
        pyproject = directory / "pyproject.toml"
        if not pyproject.is_file():
            continue
        try:
            table = tomllib.loads(pyproject.read_text("utf-8"))
        except (OSError, tomllib.TOMLDecodeError):
            return DetlintConfig()
        section = table.get("tool", {}).get("detlint", {})
        return DetlintConfig(
            select=tuple(section.get("select", ())),
            ignore=tuple(section.get("ignore", ())),
            exclude=tuple(section.get("exclude", ())),
        )
    return DetlintConfig()


# -- pragma resolution ---------------------------------------------------------


def _pragma_codes(line: str) -> Optional[frozenset[str]]:
    """Codes suppressed by a pragma on ``line``; empty frozenset means
    "all rules"; ``None`` means no pragma."""
    m = _PRAGMA.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(c.strip() for c in codes.split(",") if c.strip())


def _stmt_starts(module: ast.Module) -> dict[int, int]:
    """line -> first line of the innermost multi-line simple statement
    covering it, so a pragma on the first line of a wrapped call also
    suppresses findings reported on its continuation lines."""
    spans: list[tuple[int, int]] = []
    simple = (ast.Expr, ast.Assign, ast.AnnAssign, ast.AugAssign,
              ast.Return, ast.Raise, ast.Assert, ast.Delete)
    for node in ast.walk(module):
        if isinstance(node, simple):
            end = getattr(node, "end_lineno", None) or node.lineno
            if end > node.lineno:
                spans.append((node.lineno, end))
    starts: dict[int, int] = {}
    # Wider spans first so inner (narrower) statements win the overwrite.
    for start, end in sorted(spans, key=lambda s: s[0] - s[1]):
        for line in range(start, end + 1):
            starts[line] = start
    return starts


def _suppressed(lines: Sequence[str], line_no: int, code: str,
                stmt_starts: Optional[dict[int, int]] = None) -> bool:
    """Pragma check for a finding at 1-based ``line_no``: the line itself,
    a comment-only line directly above, or — when the finding sits on a
    continuation line of a wrapped statement — the statement's first
    line (and the comment line above *that*)."""
    line_nos = [line_no]
    start = (stmt_starts or {}).get(line_no)
    if start is not None and start != line_no:
        line_nos.append(start)
    candidates = []
    for no in line_nos:
        if no <= len(lines):
            candidates.append(lines[no - 1])
        if no >= 2 and lines[no - 2].lstrip().startswith("#"):
            candidates.append(lines[no - 2])
    for text in candidates:
        codes = _pragma_codes(text)
        if codes is not None and (not codes or code in codes):
            return True
    return False


# -- linting -------------------------------------------------------------------


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Iterable[Rule]] = None) -> list[Finding]:
    """Lint one source string; raises ``SyntaxError`` on unparsable input."""
    module = ast.parse(source, filename=path)
    lines = source.splitlines()
    starts = _stmt_starts(module)
    findings = []
    for v in check_module(module, tuple(rules) if rules else ALL_RULES):
        rule = RULES_BY_CODE[v.code]
        findings.append(Finding(
            path=path, line=v.line, col=v.col, code=v.code,
            message=v.message, hint=rule.hint,
            suppressed=_suppressed(lines, v.line, v.code, starts)))
    return findings


def _discover(paths: Sequence[Path], config: DetlintConfig) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(p for p in sorted(path.rglob("*.py"))
                         if "__pycache__" not in p.parts
                         and not any(part.startswith(".")
                                     for part in p.parts))
        elif path.suffix == ".py":
            files.append(path)
    return [f for f in files if not config.excludes_path(f)]


def lint_paths(paths: Sequence[str | Path],
               config: Optional[DetlintConfig] = None) -> Report:
    """Lint files/directories; the workhorse behind the CLI and the
    self-check test."""
    config = config or DetlintConfig()
    report = Report()
    # detlint: ignore[C003] not a retry — every iteration lints a different file
    for file in _discover([Path(p) for p in paths], config):
        try:
            source = file.read_text("utf-8")
        except (UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(f"{file.as_posix()}: {exc}")
            continue
        try:
            findings = lint_source(source, path=file.as_posix(),
                                   rules=config.rules())
        except SyntaxError as exc:
            # A broken file is a *finding* (with its own location), not a
            # crash and not a silent skip: the run keeps going and the
            # exit code still reflects the problem.
            report.files_scanned += 1
            report.findings.append(Finding(
                path=file.as_posix(), line=exc.lineno or 1,
                col=(exc.offset or 1) - 1, code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
                hint=_PARSE_ERROR_HINT))
            continue
        report.files_scanned += 1
        report.findings.extend(findings)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return report
