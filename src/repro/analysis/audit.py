"""The runtime half of detlint: a sim-time race auditor.

The static rules cannot see *dynamic* determinism hazards: two events
landing on the same simulated timestamp whose relative order is fixed
only by the kernel's insertion sequence number, or two processes mutating
one shared registry within a single timestep.  Both are deterministic
*today* (the kernel tie-breaks on a per-world sequence number), but they
are exactly the places where an innocent refactor — reordering two
``schedule`` calls, moving a registry write across a ``yield`` — changes
behaviour without failing any unit test.

:class:`RaceAuditor` is opt-in and rides the kernel's observability
hooks (``step_hook`` / ``schedule_hook``, added in the PR-1 obs layer),
chaining politely with an installed tracer.  It counts:

- ``audit.same_time_ties`` — consecutive pops at one timestamp (order
  fixed only by the tie-break sequence number);
- ``audit.cross_process_ties`` — ties whose two events were scheduled by
  *different* processes (the risky subset: relative order depends on
  process interleaving, not on any one process's program order; events
  scheduled from kernel/callback context are neutral and never count);
- ``audit.registry_races`` — a watched shared registry mutated by more
  than one writer within one timestep.

Counters live in a :class:`repro.obs.metrics.MetricsRegistry`, so audit
results travel with the rest of a run's observability snapshot; bounded
:class:`AuditFinding` records keep enough detail to locate each hazard.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

__all__ = ["AuditFinding", "RaceAuditor", "WatchedRegistry"]


@dataclass(frozen=True)
class AuditFinding:
    """One dynamic determinism hazard observed during a run."""

    kind: str      # "same-time-tie" | "cross-process-tie" | "registry-race"
    time: float    # simulation time at which it was observed
    detail: str


#: Scheduling contexts that carry no process identity; ties between them
#: (or between one of them and a process) are never cross-process.
_NEUTRAL = ("<kernel>", "<unknown>")


class WatchedRegistry(MutableMapping):
    """A dict wrapper that reports every mutation to the auditor.

    Drop-in for shared registries (service catalogs, peer maps, revocation
    lists): reads are pass-through; writes/deletes are noted with the
    current simulation time and the mutating process, so the auditor can
    flag multi-writer timesteps.
    """

    def __init__(self, auditor: "RaceAuditor", name: str,
                 backing: Optional[MutableMapping] = None) -> None:
        self._auditor = auditor
        self.name = name
        self._data: MutableMapping = backing if backing is not None else {}

    # -- mutations (audited) ----------------------------------------------

    def __setitem__(self, key: Any, value: Any) -> None:
        self._auditor._note_registry_write(self.name, key)
        self._data[key] = value

    def __delitem__(self, key: Any) -> None:
        self._auditor._note_registry_write(self.name, key)
        del self._data[key]

    # -- reads (pass-through) ---------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WatchedRegistry {self.name!r} n={len(self._data)}>"


class RaceAuditor:
    """Detects order-fragile scheduling and shared-registry contention.

    Parameters
    ----------
    sim:
        The world to audit.
    metrics:
        Optional shared registry; the three ``audit.*`` counters report
        into it.
    max_findings:
        Cap on retained :class:`AuditFinding` records (counters keep
        exact totals regardless).

    Usage::

        auditor = RaceAuditor(sim, metrics=obs_registry)
        auditor.install()
        ...run the campaign...
        auditor.uninstall()
        assert not auditor.findings
    """

    def __init__(self, sim: "Simulator",
                 metrics: Optional[MetricsRegistry] = None,
                 max_findings: int = 200) -> None:
        self.sim = sim
        self.metrics = metrics or MetricsRegistry()
        self.max_findings = max_findings
        self.ties = self.metrics.counter("audit.same_time_ties")
        self.cross_ties = self.metrics.counter("audit.cross_process_ties")
        self.registry_races = self.metrics.counter("audit.registry_races")
        self.findings: list[AuditFinding] = []
        self._installed = False
        self._prev_step_hook: Any = None
        self._prev_schedule_hook: Any = None
        # Scheduling context per pending event (keyed by identity; entries
        # are popped when the event fires, so the map tracks the queue).
        self._sched_by: dict[int, str] = {}
        # Per-process labels.  Process.name defaults to the generator's
        # __name__, so two processes spawned from one function would be
        # indistinguishable; suffix a first-seen ordinal (deterministic:
        # first-seen order is scheduling order) to tell instances apart.
        self._proc_labels: dict[int, str] = {}
        self._label_counts: dict[str, int] = {}
        self._last_pop_time: Optional[float] = None
        self._last_pop_by: str = "<kernel>"
        # (time, registry) -> set of writers seen in that timestep.
        self._writers_now: dict[str, set[str]] = {}
        self._writers_time: Optional[float] = None
        self._flagged_registries: set[str] = set()

    # -- hook lifecycle ----------------------------------------------------

    def install(self) -> "RaceAuditor":
        """Chain onto the kernel's hooks (composes with a tracer)."""
        if self._installed:
            return self
        self._prev_step_hook = self.sim.step_hook
        self._prev_schedule_hook = self.sim.schedule_hook
        self.sim.step_hook = self._on_step
        self.sim.schedule_hook = self._on_schedule
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore whatever hooks were installed before :meth:`install`."""
        if not self._installed:
            return
        self.sim.step_hook = self._prev_step_hook
        self.sim.schedule_hook = self._prev_schedule_hook
        self._prev_step_hook = self._prev_schedule_hook = None
        self._installed = False

    # -- kernel callbacks --------------------------------------------------

    def _process_label(self) -> str:
        proc = self.sim.active_process
        if proc is None:
            return "<kernel>"
        label = self._proc_labels.get(id(proc))
        if label is None:
            base = getattr(proc, "name", None) or "<process>"
            n = self._label_counts.get(base, 0) + 1
            self._label_counts[base] = n
            label = f"{base}#{n}"
            self._proc_labels[id(proc)] = label
        return label

    def _on_schedule(self, at: float, event: Any) -> None:
        self._sched_by[id(event)] = self._process_label()
        if self._prev_schedule_hook is not None:
            self._prev_schedule_hook(at, event)

    def _on_step(self, now: float, event: Any) -> None:
        scheduled_by = self._sched_by.pop(id(event), "<unknown>")
        if self._last_pop_time is not None and now == self._last_pop_time:
            self.ties.inc()
            if (scheduled_by != self._last_pop_by
                    and scheduled_by not in _NEUTRAL
                    and self._last_pop_by not in _NEUTRAL):
                self.cross_ties.inc()
                self._record(
                    "cross-process-tie", now,
                    f"t={now:.6g}: pop order of events scheduled by "
                    f"{self._last_pop_by!r} and {scheduled_by!r} is fixed "
                    f"only by the kernel tie-break sequence")
        self._last_pop_time = now
        self._last_pop_by = scheduled_by
        if self._prev_step_hook is not None:
            self._prev_step_hook(now, event)

    # -- registry watching -------------------------------------------------

    def watch(self, name: str,
              backing: Optional[MutableMapping] = None) -> WatchedRegistry:
        """Wrap (or create) a shared registry under audit as ``name``."""
        return WatchedRegistry(self, name, backing)

    def _note_registry_write(self, registry: str, key: Any) -> None:
        now = self.sim.now
        if now != self._writers_time:
            self._writers_time = now
            self._writers_now.clear()
            self._flagged_registries.clear()
        writers = self._writers_now.setdefault(registry, set())
        writers.add(self._process_label())
        if len(writers) > 1 and registry not in self._flagged_registries:
            self._flagged_registries.add(registry)
            self.registry_races.inc()
            self._record(
                "registry-race", now,
                f"t={now:.6g}: registry {registry!r} mutated by multiple "
                f"writers in one timestep: {sorted(writers)} "
                f"(last key: {key!r})")

    # -- reporting ---------------------------------------------------------

    def _record(self, kind: str, time: float, detail: str) -> None:
        if len(self.findings) < self.max_findings:
            self.findings.append(AuditFinding(kind, time, detail))

    def summary(self) -> dict[str, float]:
        """Counter totals, for assertions and obs snapshots."""
        return {
            "same_time_ties": self.ties.value,
            "cross_process_ties": self.cross_ties.value,
            "registry_races": self.registry_races.value,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RaceAuditor ties={self.ties.value:.0f} "
                f"cross={self.cross_ties.value:.0f} "
                f"registry={self.registry_races.value:.0f}>")
