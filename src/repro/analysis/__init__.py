"""``repro.analysis`` — determinism tooling (a.k.a. **detlint**).

The repo's claim to AISLE's quantified milestones rests on bit-identical
same-seed simulation.  Reviewer vigilance does not scale to that
contract; this package enforces it with tooling:

- **Static half** (:mod:`repro.analysis.rules`,
  :mod:`repro.analysis.engine`): an AST linter over sim code with rules
  D001–D005 (module-global id factories, wall-clock reads, process-global
  randomness, set-order iteration, ``id()``/``hash()`` ordering keys),
  inline ``# detlint: ignore[...]`` pragmas, ``[tool.detlint]`` config in
  ``pyproject.toml``, and a JSON report mode.  Run it with::

      python -m repro.analysis src benchmarks examples

- **Runtime half** (:mod:`repro.analysis.audit`): an opt-in sim-time race
  auditor that rides the kernel's step/schedule hooks, counting
  same-timestamp ties (and cross-process ones) and catching cross-process
  mutation of shared registries within one timestep — with findings
  exposed as :mod:`repro.obs` counters.
"""

from repro.analysis.audit import AuditFinding, RaceAuditor, WatchedRegistry
from repro.analysis.engine import (DetlintConfig, Finding, Report,
                                   lint_paths, lint_source, load_config)
from repro.analysis.rules import ALL_RULES, RULES_BY_CODE, Violation

__all__ = [
    "ALL_RULES",
    "AuditFinding",
    "DetlintConfig",
    "Finding",
    "RaceAuditor",
    "Report",
    "RULES_BY_CODE",
    "Violation",
    "WatchedRegistry",
    "lint_paths",
    "lint_source",
    "load_config",
]
