"""Console entry point: ``python -m repro.analysis [paths...]``.

Exit status: 0 — clean (no unsuppressed findings); 1 — findings or
unparsable files; 2 — usage error (unknown rule code, no such path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import DetlintConfig, lint_paths, load_config
from repro.analysis.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="detlint — determinism linter for AISLE sim code "
                    "(rules D001-D005)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the machine-readable report to FILE "
                             "('-' for stdout)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--no-config", action="store_true",
                        help="skip [tool.detlint] discovery in "
                             "pyproject.toml")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print pragma-suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _codes(raw: Optional[str]) -> tuple[str, ...]:
    if not raw:
        return ()
    return tuple(c.strip().upper() for c in raw.split(",") if c.strip())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.title}")
            print(f"      hint: {rule.hint}")
        return 0

    config = DetlintConfig() if args.no_config else load_config(Path.cwd())
    if args.select:
        config.select = _codes(args.select)
    if args.ignore:
        config.ignore = config.ignore + _codes(args.ignore)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"detlint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        report = lint_paths(args.paths, config)
    except ValueError as exc:  # unknown rule code
        print(f"detlint: {exc}", file=sys.stderr)
        return 2

    for finding in report.findings:
        if finding.suppressed and not args.show_suppressed:
            continue
        print(finding.render())
    for err in report.parse_errors:
        print(f"detlint: parse error: {err}", file=sys.stderr)

    if args.json is not None:
        payload = report.to_json()
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", "utf-8")

    summary = report.to_dict()["summary"]
    print(f"detlint: {summary['files_scanned']} files, "
          f"{summary['unsuppressed']} finding(s), "
          f"{summary['suppressed']} suppressed")
    return report.exit_code


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:  # e.g. output piped into `head`
        code = 0
    raise SystemExit(code)
