"""Console entry point: ``python -m repro.analysis [paths...]``.

Two modes share the binary:

* default — detlint, the per-file determinism linter (rules D001-D006);
* ``--contracts`` — the whole-program contract analyzer (rules
  C001-C004) with its incremental cache and baseline ratchet.

Exit status: 0 — clean (no unsuppressed / no new-vs-baseline findings);
1 — findings; 2 — usage error (unknown rule code, no such path).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import DetlintConfig, lint_paths, load_config
from repro.analysis.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="detlint — determinism linter for AISLE sim code "
                    "(rules D001-D006); --contracts switches to the "
                    "whole-program contract analyzer (rules C001-C004)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the machine-readable report to FILE "
                             "('-' for stdout)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--no-config", action="store_true",
                        help="skip [tool.detlint] discovery in "
                             "pyproject.toml")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print pragma-suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")

    group = parser.add_argument_group(
        "contract analysis (whole-program mode)")
    group.add_argument("--contracts", action="store_true",
                       help="run the cross-module contract rules "
                            "(C001-C004) instead of detlint")
    group.add_argument("--format", choices=("text", "json", "sarif"),
                       default="text",
                       help="report format for --contracts "
                            "(default: text)")
    group.add_argument("--output", metavar="FILE", default=None,
                       help="write the --format report to FILE "
                            "('-' for stdout; json/sarif default to '-')")
    group.add_argument("--refs", metavar="PATH", action="append",
                       default=None,
                       help="extra read-only trees consulted for metric "
                            "read sites (default: tests benchmarks "
                            "examples, when present)")
    group.add_argument("--baseline", metavar="FILE", default=None,
                       help="ratchet file of tolerated findings "
                            "(default: analysis_baseline.json when it "
                            "exists)")
    group.add_argument("--no-baseline", action="store_true",
                       help="ignore any baseline: every finding fails "
                            "the run")
    group.add_argument("--update-baseline", action="store_true",
                       help="rewrite the baseline from the current "
                            "findings (keeps existing notes) and exit 0")
    group.add_argument("--cache", metavar="FILE", default=None,
                       help="incremental fact-cache location "
                            "(default: .contracts_cache.json)")
    group.add_argument("--no-cache", action="store_true",
                       help="reparse everything; do not read or write "
                            "the cache")
    return parser


def _codes(raw: Optional[str]) -> tuple[str, ...]:
    if not raw:
        return ()
    return tuple(c.strip().upper() for c in raw.split(",") if c.strip())


def _contracts_main(args: argparse.Namespace) -> int:
    from repro.analysis.contracts import (DEFAULT_BASELINE, DEFAULT_CACHE,
                                          Baseline, ContractReport,
                                          build_project, run_contract_rules)

    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"contracts: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    if args.refs is None:
        refs = [p for p in ("tests", "benchmarks", "examples")
                if Path(p).is_dir()]
    else:
        refs = [p for p in args.refs if p]

    cache_path = None if args.no_cache else (args.cache or DEFAULT_CACHE)
    # detlint: ignore[D002] CLI wall-time display, not simulation logic
    started = time.perf_counter()
    try:
        index = build_project(paths, refs=refs, cache_path=cache_path)
        findings = run_contract_rules(index, select=_codes(args.select))
    except ValueError as exc:  # unknown rule code
        print(f"contracts: {exc}", file=sys.stderr)
        return 2
    # detlint: ignore[D002] CLI wall-time display, not simulation logic
    elapsed = time.perf_counter() - started

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = None
    if not args.no_baseline and Path(baseline_path).is_file():
        baseline = Baseline.load(baseline_path)
    report = ContractReport(
        findings=findings, files_scanned=index.files_scanned,
        cache_hits=index.cache_hits, files_reparsed=index.files_reparsed,
        baseline=baseline)

    if args.update_baseline:
        updated = Baseline.from_findings(report.findings,
                                         previous=baseline)
        updated.save(baseline_path)
        print(f"contracts: baseline rewritten with "
              f"{len(updated.entries)} entr(y/ies) -> {baseline_path}")
        for fp in updated.unexplained():
            print(f"contracts: note missing for {fp} — add a "
                  f"justification before committing", file=sys.stderr)
        return 0

    payload = None
    if args.format == "json":
        payload = report.to_json()
    elif args.format == "sarif":
        payload = report.to_sarif()
    if payload is not None:
        out = args.output or "-"
        if out == "-":
            print(payload)
        else:
            Path(out).write_text(payload + "\n", "utf-8")
    else:
        new = {f.fingerprint for f in report.new_findings}
        for finding in report.findings:
            if finding.suppressed and not args.show_suppressed:
                continue
            tag = "" if finding.fingerprint in new or finding.suppressed \
                else " (baselined)"
            print(finding.render() + tag)
        if args.output:
            Path(args.output).write_text(report.to_json() + "\n", "utf-8")

    for fp in report.stale_baseline:
        print(f"contracts: stale baseline entry (no longer found): {fp}",
              file=sys.stderr)
    if report.baseline is not None:
        for fp in report.baseline.unexplained():
            print(f"contracts: baseline entry lacks a note: {fp}",
                  file=sys.stderr)

    summary = report.to_dict()["summary"]
    print(f"contracts: {summary['files_scanned']} files "
          f"({summary['cache_hits']} cached, "
          f"{summary['files_reparsed']} parsed) in {elapsed:.2f}s, "
          f"{summary['unsuppressed']} finding(s), "
          f"{summary['new']} new, "
          f"{summary['suppressed']} suppressed", file=sys.stderr)
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        from repro.analysis.contracts import CONTRACT_RULES
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.title}")
            print(f"      hint: {rule.hint}")
        for code, (title, hint) in sorted(CONTRACT_RULES.items()):
            print(f"{code}  {title} (--contracts)")
            print(f"      hint: {hint}")
        return 0

    if args.contracts:
        return _contracts_main(args)
    args.paths = args.paths or ["src"]

    config = DetlintConfig() if args.no_config else load_config(Path.cwd())
    if args.select:
        config.select = _codes(args.select)
    if args.ignore:
        config.ignore = config.ignore + _codes(args.ignore)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"detlint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        report = lint_paths(args.paths, config)
    except ValueError as exc:  # unknown rule code
        print(f"detlint: {exc}", file=sys.stderr)
        return 2

    for finding in report.findings:
        if finding.suppressed and not args.show_suppressed:
            continue
        print(finding.render())
    for err in report.parse_errors:
        print(f"detlint: parse error: {err}", file=sys.stderr)

    if args.json is not None:
        payload = report.to_json()
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", "utf-8")

    summary = report.to_dict()["summary"]
    print(f"detlint: {summary['files_scanned']} files, "
          f"{summary['unsuppressed']} finding(s), "
          f"{summary['suppressed']} suppressed")
    return report.exit_code


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:  # e.g. output piped into `head`
        code = 0
    raise SystemExit(code)
