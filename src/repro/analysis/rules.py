"""The detlint rule set: AST checks for determinism hazards (D001–D006).

Each rule is a small class with a stable code, a one-line title, and a
fix hint.  Rules receive a parsed module plus a :class:`ModuleContext`
(import-alias resolution) and yield :class:`Violation` objects; the
engine (:mod:`repro.analysis.engine`) handles pragmas, configuration,
reporting, and exit codes.

The rules are deliberately *syntactic*: no type inference, no cross-file
analysis.  That keeps them fast, dependency-free (stdlib ``ast`` only),
and predictable — a finding always points at a concrete expression the
author can either fix or suppress with an inline justification::

    _CACHE = {}  # detlint: ignore[D001] — read-only after import

Rule summary
------------
====  =========================================================
D001  module-level mutable state used as an id/sequence factory
D002  wall-clock access inside simulation code
D003  unseeded randomness bypassing ``sim.rng.RngRegistry``
D004  iteration over a ``set`` (order feeds downstream behaviour)
D005  ``id()``/``hash()`` of an object used as an ordering key
D006  process fan-out bypassing ``repro.scale.WorldRunner``
====  =========================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = ["Violation", "Rule", "ModuleContext", "ALL_RULES", "RULES_BY_CODE"]


@dataclass(frozen=True)
class Violation:
    """One raw rule hit, before pragma suppression is applied."""

    code: str
    line: int
    col: int
    message: str


# -- import resolution ---------------------------------------------------------


class ModuleContext:
    """Per-module import table used to resolve dotted call targets.

    Maps local names back to canonical module paths so that
    ``import numpy as np; np.random.rand()`` resolves to
    ``numpy.random.rand`` and ``from itertools import count as c; c()``
    resolves to ``itertools.count``.
    """

    def __init__(self, module: ast.Module) -> None:
        self.module_aliases: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}
        for node in ast.walk(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or
                                        alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, if it is
        rooted in an import; ``None`` for local/attribute expressions."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        parts.reverse()
        if root in self.module_aliases:
            return ".".join([self.module_aliases[root], *parts])
        if root in self.from_imports:
            return ".".join([self.from_imports[root], *parts])
        return None

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve(call.func)


class Rule:
    """Base class: subclasses set the metadata and implement check()."""

    code: str = ""
    title: str = ""
    hint: str = ""

    def check(self, module: ast.Module,
              ctx: ModuleContext) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    def violation(self, node: ast.AST, message: str) -> Violation:
        return Violation(code=self.code, line=node.lineno,
                         col=node.col_offset, message=message)


# -- helpers -------------------------------------------------------------------

_MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "pop", "popitem",
    "insert", "extend", "extendleft", "remove", "discard", "clear",
})

_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "collections.defaultdict", "collections.deque",
    "collections.OrderedDict", "collections.Counter",
})

_COUNTERISH_FRAGMENTS = ("count", "counter", "sequencer", "idgen",
                         "idfactory")


def _module_body_assigns(module: ast.Module) -> Iterator[
        tuple[str, ast.stmt, ast.expr]]:
    """(name, stmt, value) for every simple module-level assignment."""
    for stmt in module.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            yield stmt.targets[0].id, stmt, stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.value is not None:
            yield stmt.target.id, stmt, stmt.value


def _is_mutable_literal(value: ast.expr, ctx: ModuleContext) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call) and not value.args and not value.keywords:
        name = ctx.resolve_call(value)
        if name is None and isinstance(value.func, ast.Name):
            name = value.func.id
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _callee_terminal(value: ast.expr) -> Optional[str]:
    """The terminal identifier of a Call's callee (``pkg.Foo()`` -> Foo)."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    while isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _functions(module: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(module):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            yield node


def _name_mutations(module: ast.Module, name: str) -> Iterator[ast.AST]:
    """Statements inside function bodies that mutate module global ``name``
    in place (subscript stores, aug-assigns, mutating method calls)."""
    for fn in _functions(module):
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript) \
                            and isinstance(tgt.value, ast.Name) \
                            and tgt.value.id == name:
                        yield node
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Subscript) \
                            and isinstance(tgt.value, ast.Name) \
                            and tgt.value.id == name:
                        yield node
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATING_METHODS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == name:
                yield node


def _global_rebinds(module: ast.Module, name: str) -> Iterator[ast.AST]:
    """Functions that declare ``global name`` and rebind it."""
    for fn in _functions(module):
        if isinstance(fn, ast.Lambda):
            continue
        declares = any(isinstance(n, ast.Global) and name in n.names
                       for n in ast.walk(fn))
        if not declares:
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.AugAssign) \
                    and isinstance(node.target, ast.Name) \
                    and node.target.id == name:
                yield node
            elif isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in node.targets):
                yield node


# -- D001 ----------------------------------------------------------------------


class ModuleStateFactory(Rule):
    """D001: module-level mutable state used as an id/sequence factory.

    Three shapes are recognised:

    1. ``_ids = itertools.count(...)`` at module scope;
    2. a module-level integer rebound through ``global`` (a bare counter);
    3. a module-level dict/list/set (or counter-ish constructor call)
       mutated in place from function bodies (a runtime cache/registry).

    All three make identifier allocation a function of *process history*
    instead of the owning world, so two same-seed worlds in one process
    diverge.
    """

    code = "D001"
    title = "module-level mutable state used as an id/sequence factory"
    hint = ("allocate from the world's IdSequencer (sim.ids / "
            "repro.sim.ids) or move the state onto an instance")

    def check(self, module: ast.Module,
              ctx: ModuleContext) -> Iterator[Violation]:
        for name, stmt, value in _module_body_assigns(module):
            if isinstance(value, ast.Call):
                resolved = ctx.resolve_call(value)
                if resolved == "itertools.count":
                    yield self.violation(
                        stmt, f"module-level itertools.count bound to "
                              f"{name!r}: ids become process-ordered, not "
                              f"world-ordered")
                    continue
                terminal = _callee_terminal(value)
                if terminal and any(f in terminal.lower()
                                    for f in _COUNTERISH_FRAGMENTS) \
                        and not _is_mutable_literal(value, ctx):
                    yield self.violation(
                        stmt, f"module-level sequence factory "
                              f"{terminal}() bound to {name!r}")
                    continue
            if isinstance(value, ast.Constant) and isinstance(value.value,
                                                              int) \
                    and not isinstance(value.value, bool):
                rebind = next(iter(_global_rebinds(module, name)), None)
                if rebind is not None:
                    yield self.violation(
                        stmt, f"module-level bare counter {name!r} rebound "
                              f"via 'global' at line {rebind.lineno}")
                continue
            if _is_mutable_literal(value, ctx):
                mutation = next(iter(_name_mutations(module, name)), None)
                if mutation is not None:
                    yield self.violation(
                        stmt, f"module-level mutable {name!r} mutated at "
                              f"runtime (e.g. line {mutation.lineno}): "
                              f"shared across worlds in one process")


# -- D002 ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClockAccess(Rule):
    """D002: wall-clock reads inside sim code.

    Simulated components must read :attr:`Simulator.now`; wall-clock time
    differs between runs by construction and poisons every downstream
    artifact (traces, ids, timeouts).
    """

    code = "D002"
    title = "wall-clock access inside simulation code"
    hint = "read sim.now (simulated seconds) instead of the host clock"

    def check(self, module: ast.Module,
              ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module):
            if isinstance(node, ast.Call):
                resolved = ctx.resolve_call(node)
                if resolved in _WALL_CLOCK_CALLS:
                    yield self.violation(
                        node, f"wall-clock call {resolved}() is "
                              f"nondeterministic across runs")


# -- D003 ----------------------------------------------------------------------

_NUMPY_RANDOM_ALLOWED = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
    "numpy.random.Philox", "numpy.random.BitGenerator",
})


class UnseededRandomness(Rule):
    """D003: randomness drawn from process-global RNG state.

    ``random.*`` and ``numpy.random.<fn>`` (module-level legacy API) share
    one hidden global generator per process; two same-seed worlds
    interleave their draws.  Named streams from
    :class:`repro.sim.rng.RngRegistry` — or an explicitly seeded
    ``numpy.random.default_rng(seed)`` — are the sanctioned sources.
    """

    code = "D003"
    title = "unseeded randomness bypassing sim.rng.RngRegistry"
    hint = ("draw from RngRegistry.stream(name) or an explicitly seeded "
            "np.random.default_rng(seed)")

    def check(self, module: ast.Module,
              ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if resolved is None:
                continue
            if resolved.startswith("random."):
                yield self.violation(
                    node, f"{resolved}() draws from the process-global "
                          f"stdlib RNG")
            elif resolved.startswith("numpy.random.") \
                    and resolved not in _NUMPY_RANDOM_ALLOWED:
                yield self.violation(
                    node, f"{resolved}() uses numpy's process-global "
                          f"legacy RNG")


# -- D004 ----------------------------------------------------------------------


def _is_set_expr(node: ast.expr, ctx: ModuleContext,
                 set_names: frozenset[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = ctx.resolve_call(node)
        if name is None and isinstance(node.func, ast.Name):
            name = node.func.id
        return name in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr,
                                                            ast.BitAnd,
                                                            ast.Sub)):
        # a | b etc. where either side is provably a set
        return _is_set_expr(node.left, ctx, set_names) \
            or _is_set_expr(node.right, ctx, set_names)
    return False


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes
    (those are analysed as scopes of their own)."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _scope_set_names(scope: ast.AST, ctx: ModuleContext) -> frozenset[str]:
    """Names syntactically bound to set expressions within ``scope``
    (last-write-wins is ignored — any set binding taints the name)."""
    names: set[str] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign):
            if _is_set_expr(node.value, ctx, frozenset(names)):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
    return frozenset(names)


class SetOrderIteration(Rule):
    """D004: iterating a ``set`` — order is hash-seed/process dependent.

    Set iteration order is not part of the determinism contract; when it
    feeds scheduling, message emission, or any serialized artifact it
    silently couples behaviour to ``PYTHONHASHSEED`` and allocation
    history.  Sort first (``sorted(s)``) or keep an ordered container.
    """

    code = "D004"
    title = "iteration over a set (order is not deterministic)"
    hint = "iterate sorted(the_set) or use a list/dict keyed structure"

    def check(self, module: ast.Module,
              ctx: ModuleContext) -> Iterator[Violation]:
        scopes: list[ast.AST] = [module]
        scopes.extend(fn for fn in _functions(module)
                      if not isinstance(fn, ast.Lambda))
        seen: set[tuple[int, int]] = set()
        for scope in scopes:
            set_names = _scope_set_names(scope, ctx)
            for node in _walk_scope(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters = [node.iter]
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters = [gen.iter for gen in node.generators]
                else:
                    continue
                for it in iters:
                    if _is_set_expr(it, ctx, set_names):
                        key = (it.lineno, it.col_offset)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield self.violation(
                            it, "iteration order over a set is "
                                "nondeterministic")


# -- D005 ----------------------------------------------------------------------

_ORDERING_CALLS = frozenset({"sorted", "min", "max"})


def _contains_identity_call(node: ast.AST) -> Optional[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                and sub.func.id in ("id", "hash"):
            return sub.func.id
    return None


class ObjectIdentityOrdering(Rule):
    """D005: ``id()``/``hash()`` of an object used as an ordering key.

    ``id()`` is an address — different every run; ``hash()`` of most
    objects is derived from it (or salted).  Using either as a sort or
    tie-break key makes ordering a function of the allocator, not the
    world.  Use an explicit sequence number (``sim.ids``) instead.
    """

    code = "D005"
    title = "id()/hash() used as an ordering key"
    hint = "tie-break on an explicit per-world sequence number (sim.ids)"

    def check(self, module: ast.Module,
              ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module):
            if not isinstance(node, ast.Call):
                continue
            is_ordering = (
                (isinstance(node.func, ast.Name)
                 and node.func.id in _ORDERING_CALLS)
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"))
            if not is_ordering:
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                if isinstance(kw.value, ast.Name) \
                        and kw.value.id in ("id", "hash"):
                    yield self.violation(
                        node, f"ordering key is builtin {kw.value.id} — "
                              f"address-dependent")
                elif isinstance(kw.value, ast.Lambda):
                    ident = _contains_identity_call(kw.value.body)
                    if ident is not None:
                        yield self.violation(
                            node, f"ordering key calls {ident}() — "
                                  f"address-dependent")


# -- D006 ----------------------------------------------------------------------

_PROCESS_SPAWN_CALLS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.Process",
    "multiprocessing.Manager",
    "multiprocessing.Queue",
    "multiprocessing.Pipe",
    "multiprocessing.get_context",
    "os.fork",
})


class UnsanctionedProcessFanout(Rule):
    """D006: process-pool primitives outside :class:`WorldRunner`.

    A raw pool reintroduces everything the determinism contract forbids:
    completion-order result collection, inherited global state, and
    unhashed per-world outputs.  :class:`repro.scale.WorldRunner` is the
    one audited call site — it pins the start method, returns results in
    spec order, and decision-hashes every world so serial/parallel
    equivalence stays checkable.  Its own pool lines carry the pragma;
    everywhere else the import or call is a finding.
    """

    code = "D006"
    title = "process fan-out bypassing repro.scale.WorldRunner"
    hint = ("fan seeded worlds out through repro.scale.WorldRunner (the "
            "audited, hash-verified pool call site)")

    def check(self, module: ast.Module,
              ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        yield self.violation(
                            node, f"import of {alias.name!r}: spawn "
                                  f"processes via repro.scale.WorldRunner")
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0 \
                    and node.module.split(".")[0] == "multiprocessing":
                yield self.violation(
                    node, f"import from {node.module!r}: spawn processes "
                          f"via repro.scale.WorldRunner")
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve_call(node)
                if resolved in _PROCESS_SPAWN_CALLS:
                    yield self.violation(
                        node, f"{resolved}() spawns worker processes "
                              f"outside the sanctioned WorldRunner")


ALL_RULES: tuple[Rule, ...] = (
    ModuleStateFactory(),
    WallClockAccess(),
    UnseededRandomness(),
    SetOrderIteration(),
    ObjectIdentityOrdering(),
    UnsanctionedProcessFanout(),
)

RULES_BY_CODE: dict[str, Rule] = {r.code: r for r in ALL_RULES}


def check_module(module: ast.Module,
                 rules: Iterable[Rule] = ALL_RULES) -> list[Violation]:
    """Run ``rules`` over one parsed module; violations in (line, col,
    code) order."""
    ctx = ModuleContext(module)
    out: list[Violation] = []
    for rule in rules:
        out.extend(rule.check(module, ctx))
    out.sort(key=lambda v: (v.line, v.col, v.code))
    return out
