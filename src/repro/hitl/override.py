"""Human-in-the-loop override safeguards (milestone M4).

"Robust human-in-the-loop safeguards that allow operators to override
autonomous agents sending laboratory robots out-of-specification
commands."

The :class:`OperatorOverride` sits beside the verification stack: a human
operator reviews a fraction of outgoing plans (vigilance depends on their
trust state), catches out-of-envelope commands with competence-dependent
probability, and vetoes them after a human reaction latency.  It is
deliberately *imperfect* — the point of E2's ablation is that automated
verification plus human oversight beats either alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from repro.agents.planner import ExperimentPlan
from repro.hitl.trust import TrustModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class OperatorOverride:
    """A monitoring human with veto authority over agent plans.

    Parameters
    ----------
    sim:
        Kernel.
    rng:
        Random stream (review sampling and detection rolls).
    trust:
        The operator's trust model (drives vigilance).
    safety_envelope / forbidden:
        The operator's *mental model* of safe operation — possibly
        narrower or staler than the true envelope.
    detection_skill:
        Probability a reviewed unsafe plan is actually recognized.
    review_time_s:
        Human latency per reviewed plan.
    """

    name = "operator-override"

    def __init__(self, sim: "Simulator", rng: np.random.Generator,
                 trust: Optional[TrustModel] = None, *,
                 safety_envelope: Optional[Mapping[str, tuple[float, float]]] = None,
                 detection_skill: float = 0.8,
                 review_time_s: float = 45.0) -> None:
        self.sim = sim
        self.rng = rng
        self.trust = trust or TrustModel()
        self.safety_envelope = dict(safety_envelope or {})
        self.detection_skill = detection_skill
        self.review_time_s = review_time_s
        self.stats = {"presented": 0, "reviewed": 0, "vetoed": 0,
                      "missed_unsafe": 0}

    def _looks_unsafe(self, plan: ExperimentPlan) -> bool:
        for key, (lo, hi) in self.safety_envelope.items():
            v = plan.params.get(key)
            if isinstance(v, (int, float)) and not lo <= float(v) <= hi:
                return True
        return False

    def validate(self, plan: ExperimentPlan):
        """Generator: maybe review the plan; returns rejection reasons.

        Compatible with the
        :class:`~repro.core.verification.VerificationStack` timed-verifier
        protocol, so an operator can simply be appended to the stack.
        """
        self.stats["presented"] += 1
        if self.rng.random() > self.trust.vigilance():
            # Operator waves it through without looking (complacency).
            if self._looks_unsafe(plan):
                self.stats["missed_unsafe"] += 1
            return []
        self.stats["reviewed"] += 1
        yield self.sim.timeout(self.review_time_s)
        if self._looks_unsafe(plan):
            if self.rng.random() < self.detection_skill:
                self.stats["vetoed"] += 1
                return [f"operator veto: {plan.plan_id} looks "
                        f"out-of-specification"]
            self.stats["missed_unsafe"] += 1
        return []

    def observe_outcome(self, success: bool) -> None:
        """Feed campaign outcomes back into the operator's trust."""
        self.trust.observe(success)

    @property
    def veto_rate(self) -> float:
        return (self.stats["vetoed"] / self.stats["presented"]
                if self.stats["presented"] else 0.0)
