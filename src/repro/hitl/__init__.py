"""Education, workforce development, and human-AI teaming (§3.5, M13-M14).

Dimension 5 of the paper is about *people*: operators who must retain
override authority (M4), scientists whose trust in autonomy must be
calibrated rather than blind (ref [9]), and trainees acquiring human-AI
collaboration competencies in virtual laboratories (M14).  Each of those
is a behavioural model here:

- :mod:`repro.hitl.trust` — adaptive trust dynamics and calibration error.
- :mod:`repro.hitl.override` — the human-in-the-loop safeguard layer.
- :mod:`repro.hitl.curriculum` — the virtual-lab training environment.
- :mod:`repro.hitl.assessment` — scenario-based competency assessment.
"""

from repro.hitl.assessment import AssessmentScenario, CompetencyAssessment
from repro.hitl.curriculum import (COMPETENCIES, Trainee, TrainingModule,
                                   VirtualLabCurriculum)
from repro.hitl.override import OperatorOverride
from repro.hitl.trust import TrustModel

__all__ = [
    "AssessmentScenario",
    "COMPETENCIES",
    "CompetencyAssessment",
    "OperatorOverride",
    "Trainee",
    "TrainingModule",
    "TrustModel",
    "VirtualLabCurriculum",
]
