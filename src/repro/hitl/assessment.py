"""Scenario-based assessment of human-AI collaboration competency (M14).

"Assessment methodologies for human-AI collaboration competencies with
measurable learning outcomes" — adapted, as §3.5 suggests, from medical
simulation training: the assessee faces a battery of simulated agent
proposals (some sound, some subtly wrong) and must decide which to trust.

Scoring separates the two distinct failure modes: accepting bad proposals
(over-trust) and rejecting good ones (under-trust).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hitl.curriculum import Trainee


@dataclass
class AssessmentScenario:
    """One simulated agent proposal the assessee must judge.

    Attributes
    ----------
    description:
        Human-readable scenario label.
    agent_is_right:
        Ground truth: should the proposal be accepted?
    difficulty:
        In [0, 1]; harder scenarios need more competency to judge.
    competency:
        Which competency dominates this judgement.
    """

    description: str
    agent_is_right: bool
    difficulty: float = 0.5
    competency: str = "ai-collaboration"


def standard_battery(rng: np.random.Generator,
                     n: int = 40) -> list[AssessmentScenario]:
    """A mixed battery: ~60% sound proposals, difficulty spread."""
    scenarios = []
    kinds = [
        ("agent proposes in-envelope synthesis", True, "ai-collaboration"),
        ("agent schedules maintenance correctly", True,
         "instrument-operation"),
        ("agent flags genuine data anomaly", True, "data-literacy"),
        ("agent proposes overheated solvent run", False, "lab-safety"),
        ("agent confabulates impossible yield", False, "ai-collaboration"),
        ("agent mislabels calibration drift as discovery", False,
         "data-literacy"),
    ]
    for i in range(n):
        desc, right, comp = kinds[int(rng.integers(0, len(kinds)))]
        scenarios.append(AssessmentScenario(
            description=f"{desc} #{i}", agent_is_right=right,
            difficulty=float(rng.uniform(0.2, 0.9)), competency=comp))
    return scenarios


@dataclass
class AssessmentReport:
    """Scores for one assessee."""

    trainee: str
    n_scenarios: int
    accuracy: float
    over_trust_rate: float   # accepted bad proposals / bad proposals
    under_trust_rate: float  # rejected good proposals / good proposals

    def passed(self, threshold: float = 0.75) -> bool:
        return self.accuracy >= threshold


class CompetencyAssessment:
    """Administers a scenario battery to trainees."""

    def __init__(self, rng: np.random.Generator,
                 scenarios: Optional[list[AssessmentScenario]] = None) -> None:
        self.rng = rng
        self.scenarios = (scenarios if scenarios is not None
                          else standard_battery(rng))

    def _judges_correctly(self, trainee: Trainee,
                          scenario: AssessmentScenario) -> bool:
        skill = trainee.competencies.get(scenario.competency, 0.1)
        # Psychometric-style item response: P(correct) rises with the
        # skill-difficulty margin; a floor of 0.5 is guessing.
        margin = skill - scenario.difficulty
        p_correct = float(np.clip(0.5 + 0.65 * margin + 0.25 * skill,
                                  0.05, 0.98))
        return bool(self.rng.random() < p_correct)

    def administer(self, trainee: Trainee) -> AssessmentReport:
        correct = 0
        bad_total = bad_accepted = 0
        good_total = good_rejected = 0
        for scenario in self.scenarios:
            judged_right = self._judges_correctly(trainee, scenario)
            accepted = (scenario.agent_is_right if judged_right
                        else not scenario.agent_is_right)
            if judged_right:
                correct += 1
            if scenario.agent_is_right:
                good_total += 1
                if not accepted:
                    good_rejected += 1
            else:
                bad_total += 1
                if accepted:
                    bad_accepted += 1
        n = len(self.scenarios)
        return AssessmentReport(
            trainee=trainee.name, n_scenarios=n,
            accuracy=correct / n if n else 0.0,
            over_trust_rate=bad_accepted / bad_total if bad_total else 0.0,
            under_trust_rate=(good_rejected / good_total
                              if good_total else 0.0))

    def cohort_summary(self,
                       reports: list[AssessmentReport]) -> dict[str, float]:
        if not reports:
            return {"mean_accuracy": 0.0, "pass_rate": 0.0,
                    "mean_over_trust": 0.0, "mean_under_trust": 0.0}
        return {
            "mean_accuracy": float(np.mean([r.accuracy for r in reports])),
            "pass_rate": float(np.mean([r.passed() for r in reports])),
            "mean_over_trust": float(np.mean([r.over_trust_rate
                                              for r in reports])),
            "mean_under_trust": float(np.mean([r.under_trust_rate
                                               for r in reports])),
        }
