"""Adaptive trust calibration between humans and autonomous systems.

Follows the human-autonomy-teaming literature the paper cites (ref [9]):
trust rises slowly with observed successes and falls sharply on observed
failures (negativity asymmetry).  *Calibration* is the gap between trust
and the system's actual reliability — both over-trust (complacency) and
under-trust (disuse) are failure modes that training (E13) should shrink.
"""

from __future__ import annotations

from collections import deque


class TrustModel:
    """One human's evolving trust in one autonomous system.

    Parameters
    ----------
    initial:
        Starting trust in [0, 1].
    gain_success / loss_failure:
        Update step sizes; failures move trust several times faster than
        successes (empirical asymmetry).
    reliability_window:
        Window for the running estimate of actual system reliability.
    """

    def __init__(self, initial: float = 0.5, gain_success: float = 0.02,
                 loss_failure: float = 0.10,
                 reliability_window: int = 50) -> None:
        if not 0.0 <= initial <= 1.0:
            raise ValueError("initial trust must be in [0, 1]")
        self.trust = initial
        self.gain_success = gain_success
        self.loss_failure = loss_failure
        self._outcomes: deque = deque(maxlen=reliability_window)
        self.history: list[float] = [initial]

    def observe(self, success: bool) -> float:
        """Update trust from one observed system outcome."""
        self._outcomes.append(bool(success))
        if success:
            self.trust = min(1.0, self.trust + self.gain_success
                             * (1.0 - self.trust))
        else:
            self.trust = max(0.0, self.trust - self.loss_failure
                             * self.trust)
        self.history.append(self.trust)
        return self.trust

    @property
    def observed_reliability(self) -> float:
        """Running estimate of the system's actual success rate."""
        if not self._outcomes:
            return 0.5
        return sum(self._outcomes) / len(self._outcomes)

    @property
    def calibration_error(self) -> float:
        """|trust - reliability|: 0 is perfectly calibrated."""
        return abs(self.trust - self.observed_reliability)

    @property
    def over_trusting(self) -> bool:
        """Complacency: trust substantially above observed reliability."""
        return self.trust - self.observed_reliability > 0.15

    @property
    def under_trusting(self) -> bool:
        """Disuse: trust substantially below observed reliability."""
        return self.observed_reliability - self.trust > 0.15

    def vigilance(self) -> float:
        """Probability of scrutinizing any given agent action.

        Decreases with trust (complacency effect): a fully trusting
        operator reviews ~20% of actions, a distrustful one ~95%.
        """
        return 0.95 - 0.75 * self.trust
