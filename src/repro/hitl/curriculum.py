"""Virtual-laboratory training curriculum (milestone M14).

"Deploy educational infrastructure including immersive virtual laboratory
environments that simulate autonomous systems in multiple scientific
domains ... with measurable learning outcomes."

A :class:`Trainee` carries a competency vector over :data:`COMPETENCIES`;
:class:`TrainingModule` objects raise specific competencies with
diminishing returns and prerequisites; the
:class:`VirtualLabCurriculum` schedules a cohort through modules on the
simulation clock, producing the learning trajectories E13 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

#: The interdisciplinary competencies §3.5 says curricula must cover.
COMPETENCIES = ("ai-collaboration", "instrument-operation",
                "data-literacy", "lab-safety", "workflow-thinking")


@dataclass
class Trainee:
    """One student/scientist in the program."""

    name: str
    competencies: dict[str, float] = field(default_factory=dict)
    modules_completed: list[str] = field(default_factory=list)
    trajectory: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for c in COMPETENCIES:
            self.competencies.setdefault(c, 0.1)

    def overall(self) -> float:
        return float(np.mean([self.competencies[c] for c in COMPETENCIES]))

    def meets(self, requirements: dict[str, float]) -> bool:
        return all(self.competencies.get(k, 0.0) >= v
                   for k, v in requirements.items())


@dataclass
class TrainingModule:
    """One unit of instruction in the virtual lab.

    ``gains`` maps competency -> maximal gain; actual gain shrinks as the
    trainee approaches mastery (diminishing returns), with per-trainee
    aptitude noise.
    """

    name: str
    duration_s: float
    gains: dict[str, float]
    prerequisites: dict[str, float] = field(default_factory=dict)
    hands_on: bool = False

    def apply(self, trainee: Trainee, rng: np.random.Generator) -> float:
        """Mutate the trainee's competencies; returns total gain."""
        total = 0.0
        for comp, max_gain in self.gains.items():
            current = trainee.competencies.get(comp, 0.1)
            aptitude = float(np.clip(rng.normal(1.0, 0.15), 0.5, 1.5))
            # Hands-on modules are worth more (the paper's "experiential
            # learning" emphasis).
            boost = 1.3 if self.hands_on else 1.0
            gain = max_gain * aptitude * boost * (1.0 - current)
            trainee.competencies[comp] = min(1.0, current + gain)
            total += trainee.competencies[comp] - current
        trainee.modules_completed.append(self.name)
        return total


def standard_curriculum() -> list[TrainingModule]:
    """The reference AISLE curriculum used by tests/benchmarks."""
    h = 3600.0
    return [
        TrainingModule("foundations", 8 * h,
                       {"data-literacy": 0.3, "workflow-thinking": 0.2}),
        TrainingModule("instrument-bootcamp", 16 * h,
                       {"instrument-operation": 0.4, "lab-safety": 0.3},
                       hands_on=True),
        TrainingModule("agent-teaming-101", 8 * h,
                       {"ai-collaboration": 0.35},
                       prerequisites={"data-literacy": 0.25}),
        TrainingModule("virtual-campaign-lab", 24 * h,
                       {"ai-collaboration": 0.3, "workflow-thinking": 0.35,
                        "instrument-operation": 0.2},
                       prerequisites={"ai-collaboration": 0.3,
                                      "instrument-operation": 0.3},
                       hands_on=True),
        TrainingModule("safety-and-override", 8 * h,
                       {"lab-safety": 0.4, "ai-collaboration": 0.15},
                       prerequisites={"lab-safety": 0.2},
                       hands_on=True),
    ]


class VirtualLabCurriculum:
    """Runs a cohort through modules on the simulation clock."""

    def __init__(self, sim: "Simulator", rng: np.random.Generator,
                 modules: Optional[list[TrainingModule]] = None) -> None:
        self.sim = sim
        self.rng = rng
        self.modules = modules if modules is not None else standard_curriculum()
        self.log: list[tuple[float, str, str]] = []

    def train(self, trainee: Trainee):
        """Generator: push one trainee through every module they qualify
        for, in order, recording their competency trajectory."""
        trainee.trajectory.append((self.sim.now, trainee.overall()))
        for module in self.modules:
            if not trainee.meets(module.prerequisites):
                self.log.append((self.sim.now, trainee.name,
                                 f"skipped:{module.name}"))
                continue
            yield self.sim.timeout(module.duration_s)
            gain = module.apply(trainee, self.rng)
            self.log.append((self.sim.now, trainee.name,
                             f"completed:{module.name}(+{gain:.3f})"))
            trainee.trajectory.append((self.sim.now, trainee.overall()))
        return trainee

    def train_cohort(self, trainees: list[Trainee]):
        """Generator: train a cohort concurrently; returns the cohort."""
        procs = [self.sim.process(self.train(t)) for t in trainees]
        yield self.sim.all_of(procs)
        return trainees
