"""AMQP-style message-oriented middleware.

Brokers live at sites; publishers send envelopes to a broker over the
simulated WAN; the broker fans messages out to queues whose *bindings*
match the topic (AMQP topic-exchange semantics: ``*`` matches one
dot-separated segment, ``#`` matches any number).  Consumers pull from
queues with explicit ack/nack and at-least-once redelivery — the
"reliable message delivery" the paper's §3.4 research priorities call for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.comm.message import Envelope, Message
from repro.obs.metrics import MetricsRegistry
from repro.resilience import RetryPolicy
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator


class BrokerDown(Exception):
    """The broker targeted by a publish/consume is offline."""


def topic_matches(pattern: str, topic: str) -> bool:
    """AMQP topic matching: ``*`` = one segment, ``#`` = zero or more.

    >>> topic_matches("lab.*.xrd", "lab.ornl.xrd")
    True
    >>> topic_matches("lab.#", "lab.ornl.xrd.scan")
    True
    >>> topic_matches("lab.*", "lab.ornl.xrd")
    False
    """
    pat = pattern.split(".")
    top = topic.split(".")

    def match(pi: int, ti: int) -> bool:
        while pi < len(pat):
            seg = pat[pi]
            if seg == "#":
                if pi == len(pat) - 1:
                    return True
                for skip in range(len(top) - ti + 1):
                    if match(pi + 1, ti + skip):
                        return True
                return False
            if ti >= len(top):
                return False
            if seg != "*" and seg != top[ti]:
                return False
            pi += 1
            ti += 1
        return ti == len(top)

    return match(0, 0)


class Queue:
    """A named broker-side queue with ack/nack redelivery semantics.

    Redelivery follows a :class:`~repro.resilience.RetryPolicy`: the
    attempt budget decides when a message is dead-lettered, and any
    non-zero backoff in the policy delays the requeue on the simulated
    clock (the default policy redelivers immediately, the classic AMQP
    behaviour).
    """

    def __init__(self, sim: "Simulator", name: str,
                 max_attempts: int = 5,
                 metrics: Optional[MetricsRegistry] = None,
                 site: str = "",
                 redelivery: Optional[RetryPolicy] = None) -> None:
        self.sim = sim
        self.name = name
        self.redelivery = redelivery or RetryPolicy.immediate(max_attempts)
        self.max_attempts = self.redelivery.max_attempts
        self._store: Store = Store(sim)
        self._unacked: dict[int, Envelope] = {}
        self.dead_letters: list[Envelope] = []
        metrics = metrics or MetricsRegistry()
        labels = {"queue": name}
        if site:
            labels["site"] = site
        self.stats = metrics.stats(
            "bus.queue",
            {"delivered": 0, "acked": 0, "nacked": 0, "dead": 0}, **labels)
        self._depth = metrics.gauge("bus.queue.depth", **labels)

    def __len__(self) -> int:
        return len(self._store)

    def push(self, envelope: Envelope) -> None:
        self._store.put(envelope)
        self._depth.set(len(self._store))

    def get(self):
        """Event yielding the next envelope (must later be acked/nacked)."""
        ev = self._store.get()
        ev.callbacks.append(self._on_delivery)
        return ev

    def _on_delivery(self, event) -> None:
        if event._ok:
            env: Envelope = event.value
            self._unacked[env.message.msg_id] = env
            self.stats["delivered"] += 1
            self._depth.set(len(self._store))

    def ack(self, envelope: Envelope) -> None:
        """Confirm processing; the message will not be redelivered."""
        self._unacked.pop(envelope.message.msg_id, None)
        self.stats["acked"] += 1

    def nack(self, envelope: Envelope, requeue: bool = True) -> None:
        """Reject; requeue for redelivery (or dead-letter after too many)."""
        self._unacked.pop(envelope.message.msg_id, None)
        self.stats["nacked"] += 1
        if not requeue or not self.redelivery.should_retry(envelope.attempt):
            self.dead_letters.append(envelope)
            self.stats["dead"] += 1
            return
        delay = self.redelivery.delay(envelope.attempt)
        envelope.attempt += 1
        if delay > 0:
            self.sim.schedule_callback(delay,
                                       lambda: self._requeue(envelope))
        else:
            self._requeue(envelope)

    def _requeue(self, envelope: Envelope) -> None:
        self._store.put(envelope)
        self._depth.set(len(self._store))

    @property
    def unacked_count(self) -> int:
        return len(self._unacked)


class Broker:
    """A message broker hosted at one site."""

    def __init__(self, sim: "Simulator", name: str, site: str,
                 routing_delay_s: float = 0.0005,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.name = name
        self.site = site
        self.routing_delay_s = routing_delay_s
        self.alive = True
        self.metrics = metrics or MetricsRegistry()
        self.queues: dict[str, Queue] = {}
        self._bindings: list[tuple[str, str]] = []  # (pattern, queue name)
        self.stats = self.metrics.stats(
            "bus.broker", {"published": 0, "routed": 0, "unroutable": 0},
            broker=name, site=site)

    def declare_queue(self, name: str, max_attempts: int = 5,
                      redelivery: Optional[RetryPolicy] = None) -> Queue:
        if name not in self.queues:
            self.queues[name] = Queue(self.sim, name, max_attempts,
                                      metrics=self.metrics, site=self.site,
                                      redelivery=redelivery)
        return self.queues[name]

    def bind(self, queue_name: str, pattern: str) -> None:
        if queue_name not in self.queues:
            raise KeyError(f"no queue {queue_name!r} on broker {self.name!r}")
        self._bindings.append((pattern, queue_name))

    def route(self, topic: str, envelope: Envelope) -> int:
        """Fan an envelope out to all queues bound to ``topic``."""
        if not self.alive:
            raise BrokerDown(self.name)
        self.stats["published"] += 1
        matched = 0
        seen: set[str] = set()
        for pattern, qname in self._bindings:
            if qname in seen:
                continue
            if topic_matches(pattern, topic):
                self.queues[qname].push(envelope)
                seen.add(qname)
                matched += 1
        if matched:
            self.stats["routed"] += matched
        else:
            self.stats["unroutable"] += 1
        return matched

    def kill(self) -> None:
        """Simulate broker crash (used by failover experiments)."""
        self.alive = False

    def revive(self) -> None:
        self.alive = True


class MessageBus:
    """Client-facing facade over one or more brokers.

    Parameters
    ----------
    sim, network:
        Kernel and transport.
    gateway:
        Optional zero-trust gateway; when present every publish/consume is
        verified (see :mod:`repro.security.zerotrust`).
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` every
        broker and queue reports into.
    """

    def __init__(self, sim: "Simulator", network: "Network",
                 gateway: Any = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.network = network
        self.gateway = gateway
        self.metrics = metrics or MetricsRegistry()
        self.brokers: dict[str, Broker] = {}

    def add_broker(self, name: str, site: str, **kw: Any) -> Broker:
        if name in self.brokers:
            raise ValueError(f"duplicate broker {name!r}")
        kw.setdefault("metrics", self.metrics)
        broker = Broker(self.sim, name, site, **kw)
        self.brokers[name] = broker
        return broker

    def publish(self, broker_name: str, src_site: str, topic: str,
                message: Message, token: Optional[str] = None):
        """Generator: publish ``message`` to ``topic`` via ``broker_name``.

        Returns the number of queues the message was routed to.  Raises
        :class:`BrokerDown`, network errors, or security errors.
        """
        broker = self.brokers[broker_name]
        env = Envelope(message=message, src_site=src_site,
                       dst_site=broker.site, token=token,
                       enqueued_at=self.sim.now)
        yield self.network.send(src_site, broker.site, env.size_bytes())
        if not broker.alive:
            raise BrokerDown(broker_name)
        if self.gateway is not None:
            delay = self.gateway.verify(env, action="publish")
            if delay > 0:
                yield self.sim.timeout(delay)
        yield self.sim.timeout(broker.routing_delay_s)
        return broker.route(topic, env)

    def consume(self, broker_name: str, queue_name: str,
                consumer_site: str, token: Optional[str] = None):
        """Generator: pull the next envelope from a queue.

        Models the delivery leg from the broker's site to the consumer's
        site.  The caller must :meth:`Queue.ack`/:meth:`Queue.nack` the
        returned envelope.
        """
        broker = self.brokers[broker_name]
        if not broker.alive:
            raise BrokerDown(broker_name)
        queue = broker.queues[queue_name]
        env: Envelope = yield queue.get()
        if not broker.alive:
            # The broker died between delivery and handoff: requeue so the
            # message is redelivered after recovery (at-least-once).
            queue.nack(env)
            raise BrokerDown(broker_name)
        if self.gateway is not None:
            delay = self.gateway.verify(env, action="consume")
            if delay > 0:
                yield self.sim.timeout(delay)
        yield self.network.send(broker.site, consumer_site, env.size_bytes())
        return env
