"""AMQP-style message-oriented middleware.

Brokers live at sites; publishers send envelopes to a broker over the
simulated WAN; the broker fans messages out to queues whose *bindings*
match the topic (AMQP topic-exchange semantics: ``*`` matches one
dot-separated segment, ``#`` matches any number).  Consumers pull from
queues with explicit ack/nack and at-least-once redelivery — the
"reliable message delivery" the paper's §3.4 research priorities call for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.comm.message import Envelope, Message
from repro.obs.metrics import MetricsRegistry
from repro.resilience import RetryPolicy
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator


class BrokerDown(Exception):
    """The broker targeted by a publish/consume is offline."""


def topic_matches(pattern: str, topic: str) -> bool:
    """AMQP topic matching: ``*`` = one segment, ``#`` = zero or more.

    Implemented as an iterative NFA simulation over pattern positions —
    O(len(pattern) * len(topic)) worst case, where the old backtracking
    recursion blew up exponentially on patterns with several ``#``
    segments (``#.#.#...`` against a long non-matching topic).

    >>> topic_matches("lab.*.xrd", "lab.ornl.xrd")
    True
    >>> topic_matches("lab.#", "lab.ornl.xrd.scan")
    True
    >>> topic_matches("lab.*", "lab.ornl.xrd")
    False
    """
    pat = pattern.split(".")
    n_pat = len(pat)

    def close(states: set[int]) -> set[int]:
        # Epsilon closure: a '#' consumes zero segments by advancing past.
        frontier = list(states)
        while frontier:
            pi = frontier.pop()
            if pi < n_pat and pat[pi] == "#" and pi + 1 not in states:
                states.add(pi + 1)
                frontier.append(pi + 1)
        return states

    states = close({0})
    for seg in topic.split("."):
        nxt: set[int] = set()
        for pi in states:
            if pi >= n_pat:
                continue
            p = pat[pi]
            if p == "#":
                nxt.add(pi)          # '#' consumes the segment and stays
            elif p == "*" or p == seg:
                nxt.add(pi + 1)
        if not nxt:
            return False
        states = close(nxt)
    return n_pat in states


class _TrieNode:
    """One node of the compiled subscription trie."""

    __slots__ = ("edges", "star", "hash", "is_hash", "queues")

    def __init__(self, is_hash: bool = False) -> None:
        self.edges: dict[str, _TrieNode] = {}   # exact-segment children
        self.star: Optional[_TrieNode] = None   # '*' child (one segment)
        self.hash: Optional[_TrieNode] = None   # '#' child (zero or more)
        self.is_hash = is_hash
        # (binding order, queue name) terminals ending at this node.
        self.queues: list[tuple[int, str]] = []


class RouteIndex:
    """Compiled segment-trie over a broker's bindings.

    Built once from the binding list (exact segments, ``*`` and ``#``
    edges), then matched by simulating the resulting NFA over the topic's
    segments — one pass, no recursion, cost proportional to the live
    state set instead of the full binding list.  ``route()`` used to scan
    every binding and run :func:`topic_matches` per pattern; with
    thousands of subscriptions that linear scan dominated publish cost.

    The index is *routing-equivalent* to the scan by contract:
    :meth:`match` returns exactly the queues the oracle scan would push
    to, deduplicated, in first-binding order (covered exhaustively in
    tests/comm/test_bus_index.py).
    """

    def __init__(self, bindings: "list[tuple[str, str]]") -> None:
        self._root = _TrieNode()
        for order, (pattern, qname) in enumerate(bindings):
            self._insert(pattern.split("."), qname, order)

    def _insert(self, segments: list[str], qname: str, order: int) -> None:
        node = self._root
        for seg in segments:
            if seg == "*":
                if node.star is None:
                    node.star = _TrieNode()
                node = node.star
            elif seg == "#":
                if node.hash is None:
                    node.hash = _TrieNode(is_hash=True)
                node = node.hash
            else:
                child = node.edges.get(seg)
                if child is None:
                    child = node.edges[seg] = _TrieNode()
                node = child
        node.queues.append((order, qname))

    @staticmethod
    def _closure(nodes: "list[_TrieNode]") -> "list[_TrieNode]":
        """Nodes plus everything reachable through zero-width ``#`` hops."""
        out: list[_TrieNode] = []
        seen: set[int] = set()
        stack = list(nodes)
        while stack:
            node = stack.pop()
            marker = id(node)  # membership only, never an ordering key
            if marker in seen:
                continue
            seen.add(marker)
            out.append(node)
            if node.hash is not None:
                stack.append(node.hash)
        return out

    def match(self, topic: str) -> "tuple[str, ...]":
        """Queue names bound to ``topic``, deduplicated, in first-binding
        order (exactly the oracle scan's delivery set)."""
        active = self._closure([self._root])
        for seg in topic.split("."):
            nxt: list[_TrieNode] = []
            for node in active:
                child = node.edges.get(seg)
                if child is not None:
                    nxt.append(child)
                if node.star is not None:
                    nxt.append(node.star)
                if node.is_hash:
                    nxt.append(node)    # '#' consumes the segment in place
            if not nxt:
                return ()
            active = self._closure(nxt)
        first_order: dict[str, int] = {}
        for node in active:
            for order, qname in node.queues:
                prev = first_order.get(qname)
                if prev is None or order < prev:
                    first_order[qname] = order
        return tuple(q for _, q in
                     sorted((o, q) for q, o in first_order.items()))


class Queue:
    """A named broker-side queue with ack/nack redelivery semantics.

    Redelivery follows a :class:`~repro.resilience.RetryPolicy`: the
    attempt budget decides when a message is dead-lettered, and any
    non-zero backoff in the policy delays the requeue on the simulated
    clock (the default policy redelivers immediately, the classic AMQP
    behaviour).
    """

    def __init__(self, sim: "Simulator", name: str,
                 max_attempts: int = 5,
                 metrics: Optional[MetricsRegistry] = None,
                 site: str = "",
                 redelivery: Optional[RetryPolicy] = None) -> None:
        self.sim = sim
        self.name = name
        self.redelivery = redelivery or RetryPolicy.immediate(max_attempts)
        self.max_attempts = self.redelivery.max_attempts
        self._store: Store = Store(sim)
        self._unacked: dict[int, Envelope] = {}
        self.dead_letters: list[Envelope] = []
        metrics = metrics or MetricsRegistry()
        labels = {"queue": name}
        if site:
            labels["site"] = site
        self.stats = metrics.stats(
            "bus.queue",
            {"delivered": 0, "acked": 0, "nacked": 0, "dead": 0}, **labels)
        self._depth = metrics.gauge("bus.queue.depth", **labels)

    def __len__(self) -> int:
        return len(self._store)

    def push(self, envelope: Envelope) -> None:
        self._store.put(envelope)
        self._depth.set(len(self._store))

    def get(self):
        """Event yielding the next envelope (must later be acked/nacked)."""
        ev = self._store.get()
        ev.callbacks.append(self._on_delivery)
        return ev

    def _on_delivery(self, event) -> None:
        if event._ok:
            env: Envelope = event.value
            self._unacked[env.message.msg_id] = env
            self.stats["delivered"] += 1
            self._depth.set(len(self._store))

    def ack(self, envelope: Envelope) -> None:
        """Confirm processing; the message will not be redelivered."""
        self._unacked.pop(envelope.message.msg_id, None)
        self.stats["acked"] += 1

    def nack(self, envelope: Envelope, requeue: bool = True) -> None:
        """Reject; requeue for redelivery (or dead-letter after too many)."""
        self._unacked.pop(envelope.message.msg_id, None)
        self.stats["nacked"] += 1
        if not requeue or not self.redelivery.should_retry(envelope.attempt):
            self.dead_letters.append(envelope)
            self.stats["dead"] += 1
            return
        delay = self.redelivery.delay(envelope.attempt)
        envelope.attempt += 1
        if delay > 0:
            self.sim.schedule_callback(delay,
                                       lambda: self._requeue(envelope))
        else:
            self._requeue(envelope)

    def _requeue(self, envelope: Envelope) -> None:
        self._store.put(envelope)
        self._depth.set(len(self._store))

    @property
    def unacked_count(self) -> int:
        return len(self._unacked)


class Broker:
    """A message broker hosted at one site."""

    def __init__(self, sim: "Simulator", name: str, site: str,
                 routing_delay_s: float = 0.0005,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.name = name
        self.site = site
        self.routing_delay_s = routing_delay_s
        self.alive = True
        self.metrics = metrics or MetricsRegistry()
        self.queues: dict[str, Queue] = {}
        self._bindings: list[tuple[str, str]] = []  # (pattern, queue name)
        # Compiled lazily on first route after any (re)bind or liveness
        # change; None means "rebuild before next use".
        self._index: Optional[RouteIndex] = None
        self.stats = self.metrics.stats(
            "bus.broker", {"published": 0, "routed": 0, "unroutable": 0},
            broker=name, site=site)
        self._index_hits = self.metrics.counter(
            "bus.route_index_hits", broker=name, site=site)
        self._index_rebuilds = self.metrics.counter(
            "bus.route_index_rebuilds", broker=name, site=site)

    def declare_queue(self, name: str, max_attempts: int = 5,
                      redelivery: Optional[RetryPolicy] = None) -> Queue:
        if name not in self.queues:
            self.queues[name] = Queue(self.sim, name, max_attempts,
                                      metrics=self.metrics, site=self.site,
                                      redelivery=redelivery)
        return self.queues[name]

    def bind(self, queue_name: str, pattern: str) -> None:
        if queue_name not in self.queues:
            raise KeyError(f"no queue {queue_name!r} on broker {self.name!r}")
        self._bindings.append((pattern, queue_name))
        self._index = None  # invalidate: recompiled on next route

    def route(self, topic: str, envelope: Envelope) -> int:
        """Fan an envelope out to all queues bound to ``topic``."""
        if not self.alive:
            raise BrokerDown(self.name)
        self.stats["published"] += 1
        index = self._index
        if index is None:
            index = self._index = RouteIndex(self._bindings)
            self._index_rebuilds.inc()
        else:
            self._index_hits.inc()
        matched = 0
        for qname in index.match(topic):
            self.queues[qname].push(envelope)
            matched += 1
        if matched:
            self.stats["routed"] += matched
        else:
            self.stats["unroutable"] += 1
        return matched

    def kill(self) -> None:
        """Simulate broker crash (used by failover experiments)."""
        self.alive = False
        self._index = None  # conservative: recompile after a crash

    def revive(self) -> None:
        self.alive = True
        self._index = None


class MessageBus:
    """Client-facing facade over one or more brokers.

    Parameters
    ----------
    sim, network:
        Kernel and transport.
    gateway:
        Optional zero-trust gateway; when present every publish/consume is
        verified (see :mod:`repro.security.zerotrust`).
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` every
        broker and queue reports into.
    """

    def __init__(self, sim: "Simulator", network: "Network",
                 gateway: Any = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.network = network
        self.gateway = gateway
        self.metrics = metrics or MetricsRegistry()
        self.brokers: dict[str, Broker] = {}

    def add_broker(self, name: str, site: str, **kw: Any) -> Broker:
        if name in self.brokers:
            raise ValueError(f"duplicate broker {name!r}")
        kw.setdefault("metrics", self.metrics)
        broker = Broker(self.sim, name, site, **kw)
        self.brokers[name] = broker
        return broker

    def publish(self, broker_name: str, src_site: str, topic: str,
                message: Message, token: Optional[str] = None):
        """Generator: publish ``message`` to ``topic`` via ``broker_name``.

        Returns the number of queues the message was routed to.  Raises
        :class:`BrokerDown`, network errors, or security errors.
        """
        broker = self.brokers[broker_name]
        env = Envelope(message=message, src_site=src_site,
                       dst_site=broker.site, token=token,
                       enqueued_at=self.sim.now)
        yield self.network.send(src_site, broker.site, env.size_bytes())
        if not broker.alive:
            raise BrokerDown(broker_name)
        if self.gateway is not None:
            delay = self.gateway.verify(env, action="publish")
            if delay > 0:
                yield self.sim.timeout(delay)
        yield self.sim.timeout(broker.routing_delay_s)
        return broker.route(topic, env)

    def consume(self, broker_name: str, queue_name: str,
                consumer_site: str, token: Optional[str] = None):
        """Generator: pull the next envelope from a queue.

        Models the delivery leg from the broker's site to the consumer's
        site.  The caller must :meth:`Queue.ack`/:meth:`Queue.nack` the
        returned envelope.
        """
        broker = self.brokers[broker_name]
        if not broker.alive:
            raise BrokerDown(broker_name)
        queue = broker.queues[queue_name]
        env: Envelope = yield queue.get()
        if not broker.alive:
            # The broker died between delivery and handoff: requeue so the
            # message is redelivered after recovery (at-least-once).
            queue.nack(env)
            raise BrokerDown(broker_name)
        if self.gateway is not None:
            delay = self.gateway.verify(env, action="consume")
            if delay > 0:
                yield self.sim.timeout(delay)
        yield self.network.send(broker.site, consumer_site, env.size_bytes())
        return env
