"""Distributed service registry with TTL leases and watchers.

Service instances (instruments, agents, data nodes) register typed records
with capability metadata; lookups filter on type and capabilities.
Records lease-expire unless renewed, so crashed services vanish without
explicit deregistration — the substrate for M12's self-discovering agent
networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


@dataclass
class ServiceRecord:
    """One registered service instance.

    Attributes
    ----------
    instance:
        Unique instance name, e.g. ``"xrd-1.ornl"``.
    service_type:
        DNS-SD-style type, e.g. ``"_instrument._aisle"``.
    site:
        Hosting site name.
    endpoint:
        Opaque address (the RPC server name, usually).
    capabilities:
        Capability attributes used in lookups and negotiation.
    ttl_s:
        Lease duration; the record expires ``ttl_s`` after its last renewal.
    """

    instance: str
    service_type: str
    site: str
    endpoint: str = ""
    capabilities: dict[str, Any] = field(default_factory=dict)
    ttl_s: float = 60.0
    registered_at: float = 0.0
    renewed_at: float = 0.0

    def expires_at(self) -> float:
        return self.renewed_at + self.ttl_s

    def matches(self, service_type: Optional[str] = None,
                **capability_filters: Any) -> bool:
        """Type/capability predicate used by lookups.

        A filter value that is callable is applied as a predicate to the
        capability value; otherwise equality is required.  Missing
        capabilities never match.
        """
        if service_type is not None and self.service_type != service_type:
            return False
        for key, want in capability_filters.items():
            if key not in self.capabilities:
                return False
            have = self.capabilities[key]
            if callable(want):
                if not want(have):
                    return False
            elif have != want:
                return False
        return True


class ServiceRegistry:
    """In-memory authoritative registry (one per federation or per site).

    Watchers are callbacks ``(event, record) -> None`` with event in
    ``{"register", "deregister", "expire"}``; they fire synchronously so
    discovery caches can invalidate immediately.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._records: dict[str, ServiceRecord] = {}
        self._watchers: list[tuple[Optional[str], Callable[[str, ServiceRecord], None]]] = []
        self.stats = {"registers": 0, "lookups": 0, "expirations": 0}

    # -- mutation ---------------------------------------------------------------

    def register(self, record: ServiceRecord) -> ServiceRecord:
        record.registered_at = self.sim.now
        record.renewed_at = self.sim.now
        self._records[record.instance] = record
        self.stats["registers"] += 1
        self._notify("register", record)
        return record

    def renew(self, instance: str) -> bool:
        """Extend a lease; returns False if the record no longer exists."""
        rec = self._records.get(instance)
        if rec is None or self._expired(rec):
            self._records.pop(instance, None)
            return False
        rec.renewed_at = self.sim.now
        return True

    def deregister(self, instance: str) -> bool:
        rec = self._records.pop(instance, None)
        if rec is None:
            return False
        self._notify("deregister", rec)
        return True

    # -- queries ---------------------------------------------------------------------

    def lookup(self, service_type: Optional[str] = None,
               **capability_filters: Any) -> list[ServiceRecord]:
        """All live records matching type and capability filters."""
        self.stats["lookups"] += 1
        self._sweep()
        return sorted(
            (r for r in self._records.values()
             if r.matches(service_type, **capability_filters)),
            key=lambda r: r.instance)

    def get(self, instance: str) -> Optional[ServiceRecord]:
        rec = self._records.get(instance)
        if rec is not None and self._expired(rec):
            self._expire(rec)
            return None
        return rec

    def types(self) -> list[str]:
        """All distinct live service types."""
        self._sweep()
        return sorted({r.service_type for r in self._records.values()})

    def __len__(self) -> int:
        self._sweep()
        return len(self._records)

    # -- watchers --------------------------------------------------------------------

    def watch(self, callback: Callable[[str, ServiceRecord], None],
              service_type: Optional[str] = None) -> Callable[[], None]:
        """Subscribe to registry changes; returns an unsubscribe handle."""
        entry = (service_type, callback)
        self._watchers.append(entry)

        def unsubscribe() -> None:
            if entry in self._watchers:
                self._watchers.remove(entry)
        return unsubscribe

    def _notify(self, event: str, record: ServiceRecord) -> None:
        for stype, cb in list(self._watchers):
            if stype is None or stype == record.service_type:
                cb(event, record)

    # -- expiry ---------------------------------------------------------------------------

    def _expired(self, rec: ServiceRecord) -> bool:
        return self.sim.now >= rec.expires_at()

    def _expire(self, rec: ServiceRecord) -> None:
        self._records.pop(rec.instance, None)
        self.stats["expirations"] += 1
        self._notify("expire", rec)

    def _sweep(self) -> None:
        for rec in [r for r in self._records.values() if self._expired(r)]:
            self._expire(rec)
