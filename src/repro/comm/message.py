"""Agent messages: FIPA-flavoured performatives in typed envelopes.

A :class:`Message` is what agents exchange; an :class:`Envelope` wraps it
with routing and security metadata as it crosses the middleware.  The
performative vocabulary follows FIPA-ACL, which both the Academy-style
middleware and ROS2-style ecosystems cited in §3.4 approximate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.comm.serialization import estimate_size
from repro.sim.ids import next_id


class Performative(enum.Enum):
    """Speech-act types for inter-agent messages (FIPA-ACL subset)."""

    REQUEST = "request"
    INFORM = "inform"
    PROPOSE = "propose"
    ACCEPT = "accept"
    REFUSE = "refuse"
    FAILURE = "failure"
    QUERY = "query"
    SUBSCRIBE = "subscribe"
    CANCEL = "cancel"
    HEARTBEAT = "heartbeat"


@dataclass
class Message:
    """A single unit of agent communication.

    Attributes
    ----------
    performative:
        The speech act (:class:`Performative`).
    sender / recipient:
        Logical agent names; ``recipient`` may be a topic for pub/sub.
    payload:
        Arbitrary structured content.
    conversation_id:
        Correlates multi-turn exchanges (negotiation, RPC).
    reply_to:
        Where responses should be directed.
    headers:
        Middleware metadata (auth token, schema id, trace context, ...).
    """

    performative: Performative
    sender: str
    recipient: str
    payload: Any = None
    conversation_id: str = ""
    reply_to: str = ""
    headers: dict[str, Any] = field(default_factory=dict)
    # Ambient world allocation (repro.sim.ids): messages created inside a
    # simulation draw from that world's "message" stream, so same-seed
    # federations stamp identical msg_ids (and conversation ids).
    msg_id: int = field(default_factory=lambda: next_id("message"))

    def size_bytes(self) -> float:
        """Estimated wire size of the message (payload + fixed overhead)."""
        return 256.0 + estimate_size(self.payload) + estimate_size(self.headers)

    def reply(self, performative: Performative, payload: Any = None,
              sender: Optional[str] = None) -> "Message":
        """Build a response correlated to this message."""
        return Message(
            performative=performative,
            sender=sender or self.recipient,
            recipient=self.reply_to or self.sender,
            payload=payload,
            conversation_id=self.conversation_id or str(self.msg_id),
        )


@dataclass
class Envelope:
    """Routing wrapper the middleware attaches to a message in flight.

    Attributes
    ----------
    message:
        The wrapped :class:`Message`.
    src_site / dst_site:
        Physical sites between which the envelope travels.
    token:
        Security token string (verified by the zero-trust gateway on every
        hop — "continuous authentication", milestone M11).
    attempt:
        Delivery attempt number (for at-least-once redelivery).
    enqueued_at:
        Simulation time the envelope entered the middleware.
    """

    message: Message
    src_site: str
    dst_site: str
    token: Optional[str] = None
    attempt: int = 1
    enqueued_at: float = 0.0

    def size_bytes(self) -> float:
        return self.message.size_bytes() + 128.0
