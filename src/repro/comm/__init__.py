"""Interoperable agent communication (paper dimension 4, §3.4).

Layered per the paper's research priorities: transport (:mod:`repro.net`),
message formatting (:mod:`repro.comm.message`,
:mod:`repro.comm.serialization`), middleware (AMQP-style
:mod:`repro.comm.bus`, gRPC-style :mod:`repro.comm.rpc`), and coordination
(:mod:`repro.comm.registry`, :mod:`repro.comm.discovery`,
:mod:`repro.comm.negotiation`, :mod:`repro.comm.failover`).
"""

from repro.comm.bus import Broker, MessageBus, Queue
from repro.comm.discovery import DnsSd, ServiceAnnouncement
from repro.comm.failover import FailoverGroup
from repro.comm.message import Envelope, Message, Performative
from repro.comm.negotiation import CapabilityOffer, Negotiator
from repro.comm.registry import ServiceRecord, ServiceRegistry
from repro.comm.rpc import RpcClient, RpcError, RpcServer, RpcTimeout
from repro.comm.serialization import estimate_size

__all__ = [
    "Broker",
    "CapabilityOffer",
    "DnsSd",
    "Envelope",
    "FailoverGroup",
    "Message",
    "MessageBus",
    "Negotiator",
    "Performative",
    "Queue",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "RpcTimeout",
    "ServiceAnnouncement",
    "ServiceRecord",
    "ServiceRegistry",
    "estimate_size",
]
