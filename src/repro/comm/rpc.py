"""gRPC-style synchronous request/response with deadlines and retries.

An :class:`RpcServer` exposes named methods at a site; an
:class:`RpcClient` calls them across the simulated WAN.  Calls carry a
deadline (client-observed), bounded retries with exponential backoff, and
optional zero-trust verification of *every* call — the M10/M11 middleware
semantics.

Reliability mechanics (deadline accounting, backoff arithmetic, the
attempt race against the clock) live in :mod:`repro.resilience`; this
module only maps them onto RPC error types and the client's public
``stats`` keys.
"""

from __future__ import annotations

import inspect
import itertools
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.comm.message import Envelope, Message, Performative
from repro.comm.serialization import estimate_size
from repro.net.transport import NetworkError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.resilience import (Deadline, DeadlineExceeded, RetriesExhausted,
                              RetryPolicy, resilient_call)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator


class RpcError(Exception):
    """The server raised, or the method does not exist."""


class RpcTimeout(Exception):
    """The client-side deadline elapsed before a response arrived."""


class ServerDown(RpcError):
    """The target server is not accepting calls."""


class RpcServer:
    """A method registry bound to a site.

    Handlers may be plain callables (``payload -> result``) or generator
    functions (``payload -> generator``) when the handler itself needs to
    spend simulated time (e.g. drive an instrument).

    Parameters
    ----------
    handler_delay_s:
        Fixed service time charged per call, on top of whatever the
        handler itself consumes.
    """

    def __init__(self, sim: "Simulator", name: str, site: str,
                 handler_delay_s: float = 0.0005) -> None:
        self.sim = sim
        self.name = name
        self.site = site
        self.handler_delay_s = handler_delay_s
        self.alive = True
        self._methods: dict[str, Callable[..., Any]] = {}
        self.stats = {"calls": 0, "errors": 0}

    def register(self, method: str, handler: Callable[..., Any]) -> None:
        self._methods[method] = handler

    def method(self, name: str) -> Callable:
        """Decorator form of :meth:`register`."""
        def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
            self.register(name, fn)
            return fn
        return deco

    def kill(self) -> None:
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    def dispatch(self, method: str, payload: Any):
        """Generator executing a method; returns its result."""
        self.stats["calls"] += 1
        if not self.alive:
            self.stats["errors"] += 1
            raise ServerDown(self.name)
        handler = self._methods.get(method)
        if handler is None:
            self.stats["errors"] += 1
            raise RpcError(f"{self.name}: no such method {method!r}")
        if self.handler_delay_s > 0:
            yield self.sim.timeout(self.handler_delay_s)
        try:
            if inspect.isgeneratorfunction(handler):
                result = yield self.sim.process(handler(payload))
            else:
                result = handler(payload)
        except (RpcError, RpcTimeout):
            self.stats["errors"] += 1
            raise
        except Exception as exc:
            self.stats["errors"] += 1
            raise RpcError(f"{self.name}.{method} failed: {exc}") from exc
        return result


class RpcClient:
    """Caller-side stub with deadline, retry, and security integration.

    Parameters
    ----------
    sim, network:
        Kernel and transport.
    site:
        The site this client runs at.
    identity:
        Logical caller name stamped on requests.
    gateway:
        Optional zero-trust gateway verifying each request at the server
        edge (continuous authentication).
    token:
        Credential attached to every call (may be refreshed at any time by
        assigning to :attr:`token`).
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`; call
        counters and the per-site ``rpc.call_latency`` histogram report
        into it (E4 reads its p50/p95/p99 straight from the registry).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; each call attempt then
        runs inside a ``resilience.attempt`` span.

    Notes
    -----
    Call ids are **per client** (``itertools.count`` on the instance, not
    the module), so two same-seed federations built in one process stamp
    identical conversation ids and trace identically.
    """

    def __init__(self, sim: "Simulator", network: "Network", site: str,
                 identity: str = "client", gateway: Any = None,
                 token: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Any = NULL_TRACER) -> None:
        self.sim = sim
        self.network = network
        self.site = site
        self.identity = identity
        self.gateway = gateway
        self.token = token
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self.stats = self.metrics.stats(
            "rpc.client",
            {"calls": 0, "retries": 0, "timeouts": 0,
             "failures": 0, "total_latency": 0.0}, site=site)
        self.latency_hist = self.metrics.histogram("rpc.call_latency",
                                                   site=site)
        self.latencies: list[float] = []
        self._call_ids = itertools.count(1)

    def call(self, server: RpcServer, method: str, payload: Any = None,
             *, deadline_s: float = 5.0, retries: int = 2,
             backoff_s: float = 0.05):
        """Generator: invoke ``server.method(payload)``; returns the result.

        ``yield from client.call(...)`` from inside a process.  Raises
        :class:`RpcTimeout` once the deadline passes (cumulative across
        retries) and propagates server-side :class:`RpcError`.
        """
        self.stats["calls"] += 1
        call_id = next(self._call_ids)
        start = self.sim.now
        policy = RetryPolicy(retries + 1, base_delay_s=backoff_s)
        deadline = Deadline(self.sim, deadline_s)

        def on_retry(_attempt: int, _exc: Optional[BaseException]) -> None:
            self.stats["retries"] += 1

        try:
            result = yield from resilient_call(
                self.sim,
                lambda _n: self._attempt(server, method, payload, call_id),
                policy=policy, deadline=deadline,
                retry_on=(NetworkError, ServerDown),
                name=f"rpc.{server.name}.{method}",
                tracer=self.tracer, metrics=self.metrics,
                on_retry=on_retry)
        except DeadlineExceeded:
            self.stats["timeouts"] += 1
            raise RpcTimeout(
                f"{server.name}.{method} deadline after {deadline_s}s"
            ) from None
        except RetriesExhausted as exc:
            self.stats["timeouts"] += 1
            detail = (f" (last error: {exc.last_error})"
                      if exc.last_error is not None else "")
            raise RpcTimeout(
                f"{server.name}.{method} deadline after {deadline_s}s{detail}"
            ) from None
        latency = self.sim.now - start
        self.stats["total_latency"] += latency
        self.latency_hist.observe(latency)
        self.latencies.append(latency)
        return result

    def _attempt(self, server: RpcServer, method: str, payload: Any,
                 call_id: int):
        req = Message(performative=Performative.REQUEST,
                      sender=self.identity, recipient=server.name,
                      payload={"method": method, "args": payload},
                      conversation_id=f"{self.identity}/{call_id}")
        env = Envelope(message=req, src_site=self.site, dst_site=server.site,
                       token=self.token, enqueued_at=self.sim.now)
        yield self.network.send(self.site, server.site, env.size_bytes())
        if self.gateway is not None:
            delay = self.gateway.verify(env, action=f"rpc:{method}")
            if delay > 0:
                yield self.sim.timeout(delay)
        result = yield self.sim.process(server.dispatch(method, payload))
        resp_size = 256.0 + estimate_size(result)
        yield self.network.send(server.site, self.site, resp_size)
        return result

    def call_with_retries_on(self, server: RpcServer, method: str,
                             payload: Any = None, *,
                             retry_exceptions: tuple = (NetworkError,),
                             deadline_s: float = 5.0, retries: int = 2,
                             backoff_s: float = 0.05):
        """Like :meth:`call` but retries on transient transport failures.

        Each attempt is a full :meth:`call` with its own (fresh) deadline;
        ``retry_exceptions`` consume the retry budget, everything else
        propagates immediately.
        """
        policy = RetryPolicy(retries + 1, base_delay_s=backoff_s)

        def attempt(_n: int):
            try:
                result = yield from self.call(
                    server, method, payload, deadline_s=deadline_s,
                    retries=0, backoff_s=backoff_s)
            except retry_exceptions:
                self.stats["failures"] += 1
                raise
            return result

        def on_retry(_attempt: int, _exc: Optional[BaseException]) -> None:
            self.stats["retries"] += 1

        try:
            # detlint: ignore[C003] every inner attempt carries its own per-call deadline; the outer wrapper is bounded by policy.max_attempts
            result = yield from resilient_call(
                self.sim, attempt, policy=policy,
                retry_on=retry_exceptions,
                name=f"rpc.{server.name}.{method}.outer",
                tracer=self.tracer, metrics=self.metrics,
                on_retry=on_retry)
        except RetriesExhausted as exc:
            if exc.last_error is not None:
                raise exc.last_error
            raise
        return result

    def mean_latency(self) -> float:
        return (self.stats["total_latency"] / len(self.latencies)
                if self.latencies else 0.0)
