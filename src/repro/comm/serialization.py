"""Wire-size estimation for simulated payloads.

The simulation never serializes payloads for real — objects are passed by
reference inside one Python process — but transfer *times* must reflect
payload sizes.  :func:`estimate_size` walks common container shapes and
numpy arrays to produce a stable, deterministic byte estimate.
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Fixed per-object overhead charged for framing/field tags.
_OBJ_OVERHEAD = 8.0


def estimate_size(obj: Any, _depth: int = 0) -> float:
    """Estimate the serialized size of ``obj`` in bytes.

    Supports scalars, strings/bytes, numpy arrays, and (nested) mappings /
    sequences of those.  Unknown objects are charged a conservative flat
    cost plus the size of their ``__dict__`` when present; estimation never
    raises.
    """
    if _depth > 16:
        return _OBJ_OVERHEAD
    if obj is None or isinstance(obj, bool):
        return 1.0
    if isinstance(obj, (int, float, complex)):
        return 8.0
    if isinstance(obj, str):
        return float(len(obj.encode("utf-8", errors="replace"))) + 4.0
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return float(len(obj)) + 4.0
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes) + 64.0
    if isinstance(obj, np.generic):
        return float(obj.nbytes)
    if isinstance(obj, dict):
        return _OBJ_OVERHEAD + sum(
            estimate_size(k, _depth + 1) + estimate_size(v, _depth + 1)
            for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return _OBJ_OVERHEAD + sum(estimate_size(x, _depth + 1) for x in obj)
    inner = getattr(obj, "__dict__", None)
    if isinstance(inner, dict) and inner:
        return _OBJ_OVERHEAD + estimate_size(inner, _depth + 1)
    return 64.0
