"""Wire-size estimation for simulated payloads.

The simulation never serializes payloads for real — objects are passed by
reference inside one Python process — and transfer *times* must reflect
payload sizes.  :func:`estimate_size` walks common container shapes and
numpy arrays to produce a stable, deterministic byte estimate.

Shared sub-structures are costed **once per call**: a payload that
references the same large dict or numpy array from two places is charged
the full size at the first reference and a flat pointer cost after that
(the wire format is assumed to deduplicate by reference, the way every
sane serializer of scientific payloads does).  Before this memo existed a
telemetry message embedding one 8 MB array twice was billed 16 MB on
every publish — and the walk itself re-traversed the shared structure
each time.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

#: Fixed per-object overhead charged for framing/field tags.
_OBJ_OVERHEAD = 8.0

#: Cost of a repeated reference to an already-costed sub-structure.
_REF_COST = 8.0

#: Container types memoized by identity within one estimate_size call.
#: Scalars and strings are deliberately *not* deduplicated: interning
#: makes their identity an implementation detail, and each occurrence
#: really is written out on the wire.
_MEMOIZED_TYPES = (dict, list, tuple, set, frozenset, np.ndarray)


def estimate_size(obj: Any, _depth: int = 0,
                  _memo: Optional[dict] = None) -> float:
    """Estimate the serialized size of ``obj`` in bytes.

    Supports scalars, strings/bytes, numpy arrays, and (nested) mappings /
    sequences of those.  Unknown objects are charged a conservative flat
    cost plus the size of their ``__dict__`` when present; estimation never
    raises.  Within a single call, containers and arrays already visited
    (by identity) cost :data:`_REF_COST` instead of being re-charged.
    """
    if _depth > 16:
        return _OBJ_OVERHEAD
    if obj is None or isinstance(obj, bool):
        return 1.0
    if isinstance(obj, (int, float, complex)):
        return 8.0
    if isinstance(obj, str):
        return float(len(obj.encode("utf-8", errors="replace"))) + 4.0
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return float(len(obj)) + 4.0

    memoized = isinstance(obj, _MEMOIZED_TYPES)
    if memoized:
        if _memo is None:
            # The memo holds ids of objects kept alive by the structure
            # being walked, so ids cannot be recycled mid-call.
            _memo = {}
        elif id(obj) in _memo:
            return _REF_COST
        _memo[id(obj)] = obj  # keep a reference: pin the id

    if isinstance(obj, np.ndarray):
        return float(obj.nbytes) + 64.0
    if isinstance(obj, np.generic):
        return float(obj.nbytes)
    if isinstance(obj, dict):
        return _OBJ_OVERHEAD + sum(
            estimate_size(k, _depth + 1, _memo)
            + estimate_size(v, _depth + 1, _memo)
            for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return _OBJ_OVERHEAD + sum(
            estimate_size(x, _depth + 1, _memo) for x in obj)
    inner = getattr(obj, "__dict__", None)
    if isinstance(inner, dict) and inner:
        return _OBJ_OVERHEAD + estimate_size(inner, _depth + 1, _memo)
    return 64.0
