"""DNS-SD-style service discovery over the simulated network.

:class:`DnsSd` gives each site a discovery daemon that (a) announces local
services to the authoritative :class:`~repro.comm.registry.ServiceRegistry`
hosted at a well-known site, (b) browses service types with TTL-bounded
caching, and (c) pushes change notifications to subscribed watchers —
milestone M12's "self-discovering agent networks using DNS-SD and
distributed service registries".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.comm.registry import ServiceRecord, ServiceRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator


@dataclass
class ServiceAnnouncement:
    """What a service says about itself when it joins the network."""

    instance: str
    service_type: str
    endpoint: str = ""
    capabilities: dict[str, Any] = None  # type: ignore[assignment]
    ttl_s: float = 60.0

    def __post_init__(self) -> None:
        if self.capabilities is None:
            self.capabilities = {}


class DnsSd:
    """Per-site discovery daemon backed by a shared registry.

    Parameters
    ----------
    sim, network:
        Kernel and transport.
    registry:
        The authoritative registry.
    registry_site:
        Site hosting the registry (browse/announce incur a WAN round trip
        to it).
    site:
        The site this daemon serves.
    cache_ttl_s:
        How long browse results are served from the local cache.
    """

    ANNOUNCE_SIZE = 512.0
    QUERY_SIZE = 256.0

    def __init__(self, sim: "Simulator", network: "Network",
                 registry: ServiceRegistry, registry_site: str, site: str,
                 cache_ttl_s: float = 5.0) -> None:
        self.sim = sim
        self.network = network
        self.registry = registry
        self.registry_site = registry_site
        self.site = site
        self.cache_ttl_s = cache_ttl_s
        self._cache: dict[str, tuple[float, list[ServiceRecord]]] = {}
        self._watch_unsub: Optional[Callable[[], None]] = None
        self.stats = {"announces": 0, "browses": 0, "cache_hits": 0}

    # -- announce ------------------------------------------------------------

    def announce(self, ann: ServiceAnnouncement):
        """Generator: register a local service with the federation registry."""
        yield self.network.send(self.site, self.registry_site,
                                self.ANNOUNCE_SIZE)
        record = ServiceRecord(
            instance=ann.instance, service_type=ann.service_type,
            site=self.site, endpoint=ann.endpoint,
            capabilities=dict(ann.capabilities), ttl_s=ann.ttl_s)
        self.registry.register(record)
        self.stats["announces"] += 1
        return record

    def withdraw(self, instance: str):
        """Generator: deregister a previously announced service."""
        yield self.network.send(self.site, self.registry_site, self.QUERY_SIZE)
        return self.registry.deregister(instance)

    def keepalive(self, instance: str, interval_s: float = 20.0):
        """Generator: renew the lease forever (spawn as a process)."""
        while True:
            yield self.sim.timeout(interval_s)
            yield self.network.send(self.site, self.registry_site,
                                    self.QUERY_SIZE)
            if not self.registry.renew(instance):
                return  # record gone; stop renewing

    # -- browse -------------------------------------------------------------------

    def browse(self, service_type: str, *, use_cache: bool = True,
               **capability_filters: Any):
        """Generator: list live instances of a service type.

        Returns a list of :class:`ServiceRecord`.  Cached responses are
        served instantly; cache misses pay a round trip to the registry
        site.  Capability filters always re-filter locally so a cached
        browse can serve multiple queries.
        """
        self.stats["browses"] += 1
        cached = self._cache.get(service_type)
        if use_cache and cached is not None:
            fetched_at, records = cached
            if self.sim.now - fetched_at < self.cache_ttl_s:
                self.stats["cache_hits"] += 1
                return [r for r in records
                        if r.matches(service_type, **capability_filters)]
        yield self.network.send(self.site, self.registry_site, self.QUERY_SIZE)
        records = self.registry.lookup(service_type)
        resp_size = self.QUERY_SIZE + 256.0 * len(records)
        yield self.network.send(self.registry_site, self.site, resp_size)
        self._cache[service_type] = (self.sim.now, records)
        return [r for r in records
                if r.matches(service_type, **capability_filters)]

    def resolve(self, instance: str):
        """Generator: fetch one instance's record (no caching)."""
        yield self.network.send(self.site, self.registry_site, self.QUERY_SIZE)
        rec = self.registry.get(instance)
        yield self.network.send(self.registry_site, self.site, 512.0)
        return rec

    # -- push notifications -----------------------------------------------------------

    def subscribe(self, service_type: str,
                  callback: Callable[[str, ServiceRecord], None]) -> Callable[[], None]:
        """Receive ``(event, record)`` callbacks on registry changes.

        Also invalidates this daemon's cache for the type, so the next
        browse reflects the change — this is what makes reconfiguration
        "dynamic" in E5.
        """
        def wrapped(event: str, record: ServiceRecord) -> None:
            self._cache.pop(service_type, None)
            callback(event, record)
        return self.registry.watch(wrapped, service_type)

    def invalidate(self, service_type: Optional[str] = None) -> None:
        """Drop cached browse results."""
        if service_type is None:
            self._cache.clear()
        else:
            self._cache.pop(service_type, None)
