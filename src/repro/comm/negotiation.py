"""Capability negotiation between heterogeneous agents.

When two parties (an orchestration agent and an instrument, say) first
meet, they agree on a protocol dialect, version, and QoS parameters.  The
pure intersection logic lives in :func:`intersect_offers`; the
message-driven multi-round protocol in :class:`Negotiator` runs over RPC
and is what E5 measures ("capability negotiation in geographically
distributed research facilities", M12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.comm.rpc import RpcClient, RpcServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class NegotiationFailed(Exception):
    """No mutually acceptable protocol configuration exists."""


@dataclass
class CapabilityOffer:
    """One party's supported protocols and parameter ranges.

    Attributes
    ----------
    protocols:
        Mapping of protocol name -> supported versions (descending
        preference), e.g. ``{"grpc": [3, 2], "amqp": [1]}``.
    max_message_bytes:
        Largest message the party can handle.
    qos:
        Supported delivery guarantees, subset of
        ``{"at-most-once", "at-least-once", "exactly-once"}``.
    encodings:
        Supported payload encodings in descending preference.
    preferences:
        Optional per-protocol preference weights (higher = preferred).
    """

    protocols: dict[str, list[int]]
    max_message_bytes: float = 1e9
    qos: tuple[str, ...] = ("at-least-once", "at-most-once")
    encodings: tuple[str, ...] = ("binary", "json")
    preferences: dict[str, float] = field(default_factory=dict)

    def preference(self, protocol: str) -> float:
        return self.preferences.get(protocol, 1.0)


#: Delivery guarantees ordered weakest to strongest.
_QOS_ORDER = ("at-most-once", "at-least-once", "exactly-once")


@dataclass(frozen=True)
class Agreement:
    """The negotiated contract both parties will speak."""

    protocol: str
    version: int
    qos: str
    encoding: str
    max_message_bytes: float
    rounds: int = 1


def intersect_offers(a: CapabilityOffer, b: CapabilityOffer) -> Agreement:
    """Deterministically choose the best mutually supported configuration.

    Protocol choice maximizes the *product* of both parties' preference
    weights (ties broken lexicographically); version is the highest common
    one; QoS is the strongest guarantee both support; encoding is the
    first of ``a``'s preferences that ``b`` also supports.

    Raises :class:`NegotiationFailed` when any dimension has an empty
    intersection.
    """
    common = sorted(set(a.protocols) & set(b.protocols))
    if not common:
        raise NegotiationFailed(
            f"no common protocol: {sorted(a.protocols)} vs {sorted(b.protocols)}")
    scored = sorted(common,
                    key=lambda p: (-a.preference(p) * b.preference(p), p))
    for proto in scored:
        versions = set(a.protocols[proto]) & set(b.protocols[proto])
        if versions:
            protocol, version = proto, max(versions)
            break
    else:
        raise NegotiationFailed("no common protocol version")

    qos_common = [q for q in _QOS_ORDER if q in a.qos and q in b.qos]
    if not qos_common:
        raise NegotiationFailed(f"no common QoS: {a.qos} vs {b.qos}")
    enc_common = [e for e in a.encodings if e in b.encodings]
    if not enc_common:
        raise NegotiationFailed(
            f"no common encoding: {a.encodings} vs {b.encodings}")
    return Agreement(
        protocol=protocol,
        version=version,
        qos=qos_common[-1],
        encoding=enc_common[0],
        max_message_bytes=min(a.max_message_bytes, b.max_message_bytes),
    )


class Negotiator:
    """Runs the negotiation protocol over RPC against a remote party.

    The remote party exposes a ``negotiate`` RPC method installed by
    :meth:`serve`.  The exchange is propose -> (accept | counter) with at
    most ``max_rounds`` rounds; a counter carries the responder's full
    offer so the initiator can compute the intersection locally.
    """

    def __init__(self, sim: "Simulator", offer: CapabilityOffer) -> None:
        self.sim = sim
        self.offer = offer
        self.agreements: list[Agreement] = []

    def serve(self, server: RpcServer) -> None:
        """Install this party's negotiation endpoint on an RPC server."""
        def handle(payload: dict[str, Any]) -> dict[str, Any]:
            proposed: Agreement = payload["agreement"]
            try:
                # Accept iff the proposal is something we could have
                # produced ourselves against the initiator's offer.
                check = intersect_offers(self.offer, payload["offer"])
            except NegotiationFailed as exc:
                return {"status": "reject", "reason": str(exc)}
            if (proposed.protocol == check.protocol
                    and proposed.version == check.version
                    and proposed.qos == check.qos):
                self.agreements.append(proposed)
                return {"status": "accept"}
            return {"status": "counter", "offer": self.offer}
        server.register("negotiate", handle)

    def negotiate(self, client: RpcClient, server: RpcServer,
                  responder_offer_hint: Optional[CapabilityOffer] = None,
                  max_rounds: int = 3):
        """Generator: negotiate with the party behind ``server``.

        ``responder_offer_hint`` seeds round 1 (e.g. capabilities learned
        from the service registry); without it the first round proposes
        our own offer verbatim and relies on a counter to learn theirs.
        Returns the :class:`Agreement`; raises :class:`NegotiationFailed`.
        """
        hint = responder_offer_hint or self.offer
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            try:
                proposal = intersect_offers(self.offer, hint)
            except NegotiationFailed:
                if hint is self.offer:
                    raise
                raise
            reply = yield from client.call(
                server, "negotiate",
                {"agreement": proposal, "offer": self.offer})
            if reply["status"] == "accept":
                agreement = Agreement(
                    protocol=proposal.protocol, version=proposal.version,
                    qos=proposal.qos, encoding=proposal.encoding,
                    max_message_bytes=proposal.max_message_bytes,
                    rounds=rounds)
                self.agreements.append(agreement)
                return agreement
            if reply["status"] == "counter":
                hint = reply["offer"]
                continue
            raise NegotiationFailed(reply.get("reason", "rejected"))
        raise NegotiationFailed(f"no agreement after {max_rounds} rounds")
