"""Automatic failover across replicated endpoints (milestone M11).

A :class:`FailoverGroup` fronts a primary RPC server and ordered standbys.
Health tracking is a shared :class:`~repro.resilience.CircuitBreaker` per
endpoint: the heartbeat monitor records probe outcomes into the current
primary's breaker and promotes the next healthy standby when it trips;
client calls routed through the group prefer endpoints whose breaker
admits traffic and transparently retry against the rest.  E4 measures the
resulting recovery time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.comm.rpc import RpcClient, RpcServer, RpcTimeout, ServerDown
from repro.net.transport import NetworkError
from repro.obs.metrics import MetricsRegistry
from repro.resilience import CircuitBreaker, CircuitState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class NoHealthyReplica(Exception):
    """Every replica in the group is down."""


class FailoverGroup:
    """Primary/standby replica set with breaker-driven promotion.

    Parameters
    ----------
    sim:
        Kernel.
    replicas:
        Servers in promotion order; ``replicas[0]`` starts as primary.
    heartbeat_interval_s:
        Monitor probe period — the dominant term in failover latency.
    heartbeat_misses:
        Consecutive missed probes that trip an endpoint's breaker (and,
        for the primary, trigger promotion).
    recovery_time_s:
        Quarantine before a tripped endpoint is probed again; defaults to
        ten heartbeat intervals.
    metrics:
        Optional shared registry the per-endpoint breaker counters
        (trips, rejections) report into.
    breakers:
        Optional pre-built breakers keyed by replica name — pass the same
        objects to other layers (e.g. a fault-tolerant executor) to share
        one health view per endpoint.
    """

    def __init__(self, sim: "Simulator", replicas: list[RpcServer],
                 heartbeat_interval_s: float = 0.1,
                 heartbeat_misses: int = 2, *,
                 recovery_time_s: Optional[float] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 breakers: Optional[dict[str, CircuitBreaker]] = None
                 ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.sim = sim
        self.replicas = list(replicas)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_misses = heartbeat_misses
        self.metrics = metrics or MetricsRegistry()
        if recovery_time_s is None:
            recovery_time_s = 10.0 * heartbeat_interval_s
        self.breakers: dict[str, CircuitBreaker] = dict(breakers or {})
        for replica in self.replicas:
            if replica.name not in self.breakers:
                self.breakers[replica.name] = CircuitBreaker(
                    sim, failure_threshold=heartbeat_misses,
                    recovery_time_s=recovery_time_s,
                    name=f"failover.{replica.name}", metrics=self.metrics)
        self._primary_idx = 0
        self.events: list[tuple[float, str, str]] = []
        self._monitor_proc = None

    @property
    def primary(self) -> RpcServer:
        return self.replicas[self._primary_idx]

    def healthy_replicas(self) -> list[RpcServer]:
        return [r for r in self.replicas if r.alive]

    def breaker_for(self, replica_name: str) -> CircuitBreaker:
        """The shared health breaker for one endpoint."""
        return self.breakers[replica_name]

    # -- promotion ------------------------------------------------------------

    def promote_next(self) -> RpcServer:
        """Advance to the next healthy replica (monitor calls this)."""
        for offset in range(1, len(self.replicas) + 1):
            idx = (self._primary_idx + offset) % len(self.replicas)
            if self.replicas[idx].alive:
                self._primary_idx = idx
                self.events.append(
                    (self.sim.now, "promote", self.replicas[idx].name))
                return self.replicas[idx]
        raise NoHealthyReplica("all replicas down")

    # -- heartbeat monitor -----------------------------------------------------------

    def start_monitor(self, client: RpcClient) -> None:
        """Spawn the heartbeat process probing the current primary."""
        self._monitor_proc = self.sim.process(self._monitor(client))

    def _monitor(self, client: RpcClient):
        while True:
            yield self.sim.timeout(self.heartbeat_interval_s)
            primary = self.primary
            breaker = self.breakers[primary.name]
            try:
                # Probe deadline must exceed the WAN round trip even at
                # aggressive cadences, or healthy primaries look dead.
                yield from client.call(
                    primary, "_health", None,
                    deadline_s=max(0.2, self.heartbeat_interval_s),
                    retries=0)
                breaker.record_success()
            except (RpcTimeout, ServerDown, NetworkError, KeyError):
                self.events.append((self.sim.now, "miss", primary.name))
                breaker.record_failure()
                if breaker.state is CircuitState.OPEN:
                    try:
                        self.promote_next()
                    except NoHealthyReplica:
                        self.events.append((self.sim.now, "all-down", ""))
                        return

    @staticmethod
    def install_health_endpoint(server: RpcServer) -> None:
        """Add the ``_health`` probe method replied to by live replicas."""
        server.register("_health", lambda _payload: "ok")

    # -- client-side routing --------------------------------------------------------------

    def _route(self, tried: set[str]) -> Optional[RpcServer]:
        """Next endpoint to try: primary, then admitted healthy standbys,
        then (as a last resort) quarantined-but-alive standbys."""
        primary = self.primary
        if primary.name not in tried:
            return primary
        candidates = [r for r in self.healthy_replicas()
                      if r.name not in tried]
        for replica in candidates:
            if self.breakers[replica.name].allow():
                return replica
        return candidates[0] if candidates else None

    def call(self, client: RpcClient, method: str, payload: Any = None,
             *, deadline_s: float = 5.0, retries_per_replica: int = 1):
        """Generator: call through the group, failing over on errors.

        Tries the current primary first, then walks the healthy standbys
        (breaker-admitted ones first).  Every outcome is recorded into
        the endpoint's shared breaker.  Raises :class:`NoHealthyReplica`
        when everything is down.
        """
        tried: set[str] = set()
        last_exc: Optional[Exception] = None
        # detlint: ignore[C003] this IS the resilience primitive: each pass tries a different replica, never re-invoking a failed one
        for _ in range(len(self.replicas)):
            target = self._route(tried)
            if target is None:
                break
            tried.add(target.name)
            breaker = self.breakers[target.name]
            try:
                result = yield from client.call(
                    target, method, payload, deadline_s=deadline_s,
                    retries=retries_per_replica)
            except (RpcTimeout, ServerDown, NetworkError) as exc:
                last_exc = exc
                breaker.record_failure()
                self.events.append((self.sim.now, "client-failover",
                                    target.name))
                continue
            breaker.record_success()
            return result
        raise NoHealthyReplica(f"no replica answered {method!r}: {last_exc}")

    def recovery_time(self) -> Optional[float]:
        """Sim-seconds between the last kill-observed miss and promotion."""
        promote_times = [t for t, kind, _ in self.events if kind == "promote"]
        miss_times = [t for t, kind, _ in self.events if kind == "miss"]
        if not promote_times or not miss_times:
            return None
        first_promote = promote_times[0]
        first_miss = min(t for t in miss_times if t <= first_promote)
        return first_promote - first_miss
