"""Automatic failover across replicated endpoints (milestone M11).

A :class:`FailoverGroup` fronts a primary RPC server and ordered standbys.
A heartbeat monitor detects primary failure and promotes the next healthy
standby; client calls routed through the group transparently retry against
the new primary.  E4 measures the resulting recovery time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.comm.rpc import RpcClient, RpcServer, RpcTimeout, ServerDown
from repro.net.transport import NetworkError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class NoHealthyReplica(Exception):
    """Every replica in the group is down."""


class FailoverGroup:
    """Primary/standby replica set with heartbeat-driven promotion.

    Parameters
    ----------
    sim:
        Kernel.
    replicas:
        Servers in promotion order; ``replicas[0]`` starts as primary.
    heartbeat_interval_s:
        Monitor probe period — the dominant term in failover latency.
    heartbeat_misses:
        Consecutive missed probes before the primary is declared dead.
    """

    def __init__(self, sim: "Simulator", replicas: list[RpcServer],
                 heartbeat_interval_s: float = 0.1,
                 heartbeat_misses: int = 2) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.sim = sim
        self.replicas = list(replicas)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_misses = heartbeat_misses
        self._primary_idx = 0
        self.events: list[tuple[float, str, str]] = []
        self._monitor_proc = None

    @property
    def primary(self) -> RpcServer:
        return self.replicas[self._primary_idx]

    def healthy_replicas(self) -> list[RpcServer]:
        return [r for r in self.replicas if r.alive]

    # -- promotion ------------------------------------------------------------

    def promote_next(self) -> RpcServer:
        """Advance to the next healthy replica (monitor calls this)."""
        for offset in range(1, len(self.replicas) + 1):
            idx = (self._primary_idx + offset) % len(self.replicas)
            if self.replicas[idx].alive:
                self._primary_idx = idx
                self.events.append(
                    (self.sim.now, "promote", self.replicas[idx].name))
                return self.replicas[idx]
        raise NoHealthyReplica("all replicas down")

    # -- heartbeat monitor -----------------------------------------------------------

    def start_monitor(self, client: RpcClient) -> None:
        """Spawn the heartbeat process probing the current primary."""
        self._monitor_proc = self.sim.process(self._monitor(client))

    def _monitor(self, client: RpcClient):
        misses = 0
        while True:
            yield self.sim.timeout(self.heartbeat_interval_s)
            primary = self.primary
            try:
                # Probe deadline must exceed the WAN round trip even at
                # aggressive cadences, or healthy primaries look dead.
                yield from client.call(
                    primary, "_health", None,
                    deadline_s=max(0.2, self.heartbeat_interval_s),
                    retries=0)
                misses = 0
            except (RpcTimeout, ServerDown, NetworkError, KeyError):
                misses += 1
                self.events.append((self.sim.now, "miss", primary.name))
                if misses >= self.heartbeat_misses:
                    misses = 0
                    try:
                        self.promote_next()
                    except NoHealthyReplica:
                        self.events.append((self.sim.now, "all-down", ""))
                        return

    @staticmethod
    def install_health_endpoint(server: RpcServer) -> None:
        """Add the ``_health`` probe method replied to by live replicas."""
        server.register("_health", lambda _payload: "ok")

    # -- client-side routing --------------------------------------------------------------

    def call(self, client: RpcClient, method: str, payload: Any = None,
             *, deadline_s: float = 5.0, retries_per_replica: int = 1):
        """Generator: call through the group, failing over on errors.

        Tries the current primary first, then walks the healthy standbys.
        Raises :class:`NoHealthyReplica` when everything is down.
        """
        tried: set[str] = set()
        last_exc: Optional[Exception] = None
        for _ in range(len(self.replicas)):
            target = self.primary
            if target.name in tried:
                target = next(
                    (r for r in self.healthy_replicas() if r.name not in tried),
                    None)  # type: ignore[assignment]
                if target is None:
                    break
            tried.add(target.name)
            try:
                result = yield from client.call(
                    target, method, payload, deadline_s=deadline_s,
                    retries=retries_per_replica)
                return result
            except (RpcTimeout, ServerDown, NetworkError) as exc:
                last_exc = exc
                self.events.append((self.sim.now, "client-failover",
                                    target.name))
                continue
        raise NoHealthyReplica(f"no replica answered {method!r}: {last_exc}")

    def recovery_time(self) -> Optional[float]:
        """Sim-seconds between the last kill-observed miss and promotion."""
        promote_times = [t for t, kind, _ in self.events if kind == "promote"]
        miss_times = [t for t, kind, _ in self.events if kind == "miss"]
        if not promote_times or not miss_times:
            return None
        first_promote = promote_times[0]
        first_miss = min(t for t in miss_times if t <= first_promote)
        return first_promote - first_miss
