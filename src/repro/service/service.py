"""The multi-tenant campaign service: one front door, shared slots.

:class:`CampaignService` multiplexes many tenants' campaigns over a
fixed pool of :class:`FacilitySlot` workers, entirely on simulated time:

- :meth:`~CampaignService.submit` applies admission control (registered
  tenant, bounded queue, experiment budget, live deadline) and returns a
  :class:`~repro.service.handle.CampaignHandle` — or raises an explicit
  :class:`~repro.service.errors.AdmissionError`; nothing is ever
  silently dropped.
- A fair-share + deadline scheduler (pluggable; see
  :mod:`repro.service.scheduler`) decides which tenant's campaign each
  freed slot serves next.
- Every campaign's outcome is a canonical
  :class:`~repro.core.report.CampaignReport`; runners may yield either a
  raw :class:`~repro.core.campaign.CampaignResult` (converted and
  tenant-stamped) or a ready report.
- ``service.*`` counters, gauges, and latency histograms land in a
  :class:`repro.obs.metrics.MetricsRegistry`, and every terminal
  transition appends a plain-data row to the decision log, so a whole
  service run hash-verifies under ``repro.scale``.

The service never consumes wall time and never iterates a set: same
seed, same event order, same decision hash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.core.campaign import CampaignResult, CampaignSpec
from repro.core.report import CampaignReport
from repro.obs.metrics import MetricsRegistry
from repro.service.errors import (BudgetExhausted, DeadlineExpired, QueueFull,
                                  UnknownTenant)
from repro.service.handle import CampaignHandle, CampaignStatus
from repro.service.scheduler import FairShareScheduler, QueueEntry
from repro.service.tenants import TenantQuota, TenantState, jain_fairness
from repro.sim.kernel import Simulator
from repro.sim.process import Interrupt

#: A campaign runner: a generator factory the slot drives on sim time,
#: returning a CampaignResult or a CampaignReport.
CampaignRunner = Callable[[CampaignSpec], Generator]


@dataclass(frozen=True)
class FacilitySlot:
    """One schedulable unit of facility capacity.

    ``runner(spec)`` must return a generator that executes the campaign
    on sim time and returns a :class:`CampaignResult` or
    :class:`CampaignReport` — typically
    ``built.orchestrator(site).run_campaign`` or a synthetic runner.
    """

    name: str
    runner: CampaignRunner


class CampaignService:
    """Multi-tenant campaign-as-a-service over a shared facility pool.

    Parameters
    ----------
    sim:
        The simulator everything runs on; one slot process is started
        per slot at construction.
    slots:
        The facility capacity. More slots = more campaigns in flight.
    scheduler:
        Cross-tenant dispatch policy; defaults to a fresh
        :class:`~repro.service.scheduler.FairShareScheduler`.
    metrics:
        Registry for ``service.*`` metrics (private one by default).
    default_quota:
        When given, unknown tenants are auto-registered with this quota
        on first submit; when ``None`` (default), submitting as an
        unregistered tenant raises
        :class:`~repro.service.errors.UnknownTenant`.
    """

    def __init__(self, sim: Simulator, slots: "list[FacilitySlot]", *,
                 scheduler: Optional[FairShareScheduler] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 default_quota: Optional[TenantQuota] = None) -> None:
        if not slots:
            raise ValueError("need at least one facility slot")
        self.sim = sim
        self.slots = list(slots)
        self.scheduler = scheduler if scheduler is not None \
            else FairShareScheduler()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.default_quota = default_quota
        self._tenants: dict[str, TenantState] = {}
        self._seq = 0  # per-service id source, no module globals
        self._idle: list[Any] = []  # parked slot wake events
        self._decision_log: list[list[Any]] = []
        self._peak_in_system = 0
        self._procs = [sim.process(self._slot_loop(s)) for s in self.slots]

    # -- tenants -----------------------------------------------------------

    def register_tenant(self, name: str,
                        quota: Optional[TenantQuota] = None) -> TenantState:
        """Declare a tenant (idempotent; re-registering updates the quota)."""
        quota = quota if quota is not None else \
            (self.default_quota or TenantQuota())
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = TenantState(name=name, quota=quota)
        else:
            state.quota = quota
        self.scheduler.register(name, quota.share)
        return state

    def tenant(self, name: str) -> TenantState:
        """Live accounting for one tenant (raises KeyError if unknown)."""
        return self._tenants[name]

    @property
    def tenants(self) -> "list[TenantState]":
        """All tenants, in registration order."""
        return [self._tenants[n] for n in self.scheduler.tenants]

    # -- the front door ----------------------------------------------------

    def submit(self, tenant: str, spec: CampaignSpec, *,
               priority: int = 0,
               deadline: Optional[float] = None) -> CampaignHandle:
        """Submit a campaign; returns a handle or raises AdmissionError.

        ``priority`` orders campaigns *within* the tenant (higher runs
        first); ``deadline`` is an absolute sim time — already-lapsed at
        submit is rejected, lapsed while queued expires the campaign.
        """
        self.metrics.counter("service.submitted", tenant=tenant).inc()
        state = self._tenants.get(tenant)
        if state is None:
            if self.default_quota is None:
                self._count_rejection(tenant, UnknownTenant.reason, None)
                raise UnknownTenant(tenant, "not registered")
            state = self.register_tenant(tenant, self.default_quota)
        if deadline is not None and deadline <= self.sim.now:
            self._count_rejection(tenant, DeadlineExpired.reason, state)
            raise DeadlineExpired(
                tenant, f"deadline {deadline} <= now {self.sim.now}")
        if state.queued >= state.quota.max_queued:
            self._count_rejection(tenant, QueueFull.reason, state)
            raise QueueFull(
                tenant, f"queue at max_queued={state.quota.max_queued}",
                depth=state.queued)
        budget = state.budget_remaining
        if budget is not None and spec.max_experiments > budget:
            self._count_rejection(tenant, BudgetExhausted.reason, state)
            raise BudgetExhausted(
                tenant, f"needs {spec.max_experiments} experiments, "
                f"budget has {budget}")

        self._seq += 1
        handle = CampaignHandle(
            self, f"c-{self._seq:06d}", tenant, spec, priority, deadline,
            self.sim.now, self.sim.event())
        entry = QueueEntry(seq=self._seq, tenant=tenant, handle=handle,
                           cost=float(spec.max_experiments),
                           priority=priority, deadline=deadline)
        handle._entry = entry
        self.scheduler.enqueue(entry)
        state.queued += 1
        state.admitted_experiments += spec.max_experiments
        self.metrics.counter("service.admitted", tenant=tenant).inc()
        self._update_load_gauges(state)
        self._wake_slots()
        return handle

    def _count_rejection(self, tenant: str, reason: str,
                         state: Optional[TenantState]) -> None:
        self.metrics.counter("service.rejected", tenant=tenant,
                             reason=reason).inc()
        if state is not None:
            state.rejected += 1

    # -- slot execution ----------------------------------------------------

    def _wake_slots(self) -> None:
        waiters, self._idle = self._idle, []
        for ev in waiters:
            ev.succeed()

    def _eligible(self, tenant: str) -> bool:
        state = self._tenants[tenant]
        return state.running < state.quota.max_in_flight

    def _slot_loop(self, slot: FacilitySlot) -> Generator:
        """One facility slot: pull, run, report, repeat — forever.

        The process parks on a wake event whenever nothing is runnable,
        so a drained service never keeps the simulator alive.
        """
        # detlint: ignore[C003] slot supervision loop: each pass serves a new campaign; a runner failure fails that campaign only
        while True:
            entry = self.scheduler.select(self.sim.now, self._eligible)
            if entry is None:
                wake = self.sim.event()
                self._idle.append(wake)
                yield wake
                continue

            handle = entry.handle
            state = self._tenants[handle.tenant]
            state.queued -= 1
            self.metrics.histogram(
                "service.queue_wait", tenant=handle.tenant,
                lo=1e-3).observe(self.sim.now - handle.submitted_at)
            if handle.deadline is not None and handle.deadline < self.sim.now:
                self._finish(handle, CampaignStatus.EXPIRED)
                self._update_load_gauges(state)
                continue

            handle.status = CampaignStatus.RUNNING
            handle.started_at = self.sim.now
            state.running += 1
            self._update_load_gauges(state)
            proc = self.sim.process(self._run_one(slot, handle))
            handle._proc = proc
            try:
                report = yield proc
            except Interrupt:
                self._finish(handle, CampaignStatus.CANCELLED)
            except Exception as exc:  # runner bug — fail the campaign only
                handle.error = f"{type(exc).__name__}: {exc}"
                self._finish(handle, CampaignStatus.FAILED)
            else:
                handle._report = report
                state.completed_campaigns += 1
                state.completed_experiments += report.n_experiments
                self.metrics.counter(
                    "service.experiments",
                    tenant=handle.tenant).inc(report.n_experiments)
                self._finish(handle, CampaignStatus.COMPLETED)
            finally:
                handle._proc = None
                state.running -= 1
                self._update_load_gauges(state)
                # A slot freeing up may unblock a tenant that was at its
                # in-flight cap when other slots went idle — wake them.
                self._wake_slots()

    def _run_one(self, slot: FacilitySlot,
                 handle: CampaignHandle) -> Generator:
        result = yield from slot.runner(handle.spec)
        return self._to_report(result, handle)

    def _to_report(self, result: Any,
                   handle: CampaignHandle) -> CampaignReport:
        if isinstance(result, CampaignReport):
            return result.with_tenant(handle.tenant)
        if isinstance(result, CampaignResult):
            return CampaignReport.from_result(
                result, tenant=handle.tenant, sim_seconds=self.sim.now,
                target=handle.spec.target)
        raise TypeError(
            f"runner for slot {slot.name!r} returned "
            f"{type(result).__name__}; expected CampaignResult or "
            f"CampaignReport")

    def _finish(self, handle: CampaignHandle,
                status: CampaignStatus) -> None:
        handle.status = status
        handle.finished_at = self.sim.now
        self.metrics.counter(f"service.{status.value}",
                             tenant=handle.tenant).inc()
        if status is CampaignStatus.COMPLETED:
            self.metrics.histogram(
                "service.submit_to_complete", tenant=handle.tenant,
                lo=1e-3).observe(handle.latency)
            # Unlabeled aggregate: the p99 the perf gate is stated over.
            self.metrics.histogram("service.submit_to_complete",
                                   lo=1e-3).observe(handle.latency)
        self._decision_log.append([
            handle.campaign_id, handle.tenant, status.value,
            float(handle.submitted_at),
            float(handle.started_at if handle.started_at is not None else -1),
            float(handle.finished_at),
            float(handle._report.n_experiments if handle._report else 0),
        ])
        handle._done.succeed(status)

    # -- cancellation ------------------------------------------------------

    def cancel(self, handle: CampaignHandle) -> bool:
        """Cancel a queued or running campaign (see ``handle.cancel()``)."""
        if handle.status is CampaignStatus.QUEUED:
            self.scheduler.remove(handle._entry)
            state = self._tenants[handle.tenant]
            state.queued -= 1
            self._finish(handle, CampaignStatus.CANCELLED)
            self._update_load_gauges(state)
            return True
        if handle.status is CampaignStatus.RUNNING \
                and handle._proc is not None:
            handle._proc.interrupt("cancelled")
            return True
        return False

    # -- observability -----------------------------------------------------

    def _update_load_gauges(self, state: TenantState) -> None:
        self.metrics.gauge("service.queued",
                           tenant=state.name).set(state.queued)
        self.metrics.gauge("service.running",
                           tenant=state.name).set(state.running)
        in_system = sum(t.in_system for t in self.tenants)
        self.metrics.gauge("service.backlog").set(in_system)
        if in_system > self._peak_in_system:
            self._peak_in_system = in_system
            self.metrics.gauge("service.peak_in_system").set(in_system)

    @property
    def peak_in_system(self) -> int:
        """High-water mark of queued+running campaigns across tenants."""
        return self._peak_in_system

    def load(self) -> dict[str, Any]:
        """Backpressure snapshot: per-tenant depth and headroom.

        Clients use this to pace open-loop submission (see
        :class:`repro.service.loadgen.LoadGenerator`).
        """
        return {
            "backlog": sum(t.in_system for t in self.tenants),
            "tenants": {
                t.name: {"queued": t.queued, "running": t.running,
                         "queue_headroom": t.quota.max_queued - t.queued,
                         "budget_remaining": t.budget_remaining}
                for t in self.tenants
            },
        }

    def utilization_report(self) -> dict[str, Any]:
        """Operator dashboard read back from the ``service.*`` metrics.

        This is the read side of the service's observability contract:
        the admission counters, load gauges, and queue-wait histograms
        emitted above are consumed here, so emit/read drift in a metric
        name shows up as a C002 contract finding instead of a silently
        empty dashboard.
        """
        tenants: dict[str, dict[str, Any]] = {}
        for t in self.tenants:
            tenants[t.name] = {
                "admitted": self.metrics.counter("service.admitted",
                                                 tenant=t.name).value,
                "queued": self.metrics.gauge("service.queued",
                                             tenant=t.name).value,
                "running": self.metrics.gauge("service.running",
                                              tenant=t.name).value,
                "queue_wait": self.metrics.histogram(
                    "service.queue_wait", tenant=t.name, lo=1e-3).summary(),
            }
        return {
            "backlog": self.metrics.gauge("service.backlog").value,
            "peak_in_system":
                self.metrics.gauge("service.peak_in_system").value,
            "tenants": tenants,
        }

    def fairness(self) -> float:
        """Jain index of share-normalized delivered throughput.

        Computed over tenants that asked for work (admitted > 0);
        1.0 means delivered experiments matched the share weights.
        """
        served = [t.completed_experiments / t.quota.share
                  for t in self.tenants if t.admitted_experiments > 0]
        return jain_fairness(served)

    def decision_log(self) -> "list[list[Any]]":
        """Plain-data terminal-transition log, for decision hashing."""
        return [list(row) for row in self._decision_log]

    # -- construction sugar ------------------------------------------------

    @classmethod
    def from_testbed(cls, built: Any, *, sites: Optional[list] = None,
                     **kwargs: Any) -> "CampaignService":
        """Service over a built testbed: one slot per (chosen) site.

        ``built`` is a :class:`repro.testbed.BuiltTestbed`; each slot
        runs campaigns through that site's orchestrator, so admission,
        fair-share, and reporting wrap the full A1 stack.
        """
        names = list(built.orchestrators) if sites is None else list(sites)
        slots = [FacilitySlot(name=n,
                              runner=built.orchestrator(n).run_campaign)
                 for n in names]
        return cls(built.sim, slots, **kwargs)
