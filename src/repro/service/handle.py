"""Campaign handles: the client's view of a submitted campaign."""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Any, Optional

from repro.core.report import CampaignReport
from repro.service.errors import (CampaignCancelled, CampaignFailed,
                                  CampaignNotDone)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.campaign import CampaignSpec
    from repro.sim.events import Event
    from repro.sim.process import Process


class CampaignStatus(str, Enum):
    """Lifecycle of a submitted campaign.

    ``QUEUED -> RUNNING -> COMPLETED | FAILED | CANCELLED``, with two
    shortcuts: cancel-while-queued goes straight to ``CANCELLED``, and a
    deadline that lapses before dispatch goes to ``EXPIRED``.
    """

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"
    FAILED = "failed"


#: Statuses from which a campaign never moves again.
TERMINAL_STATUSES = frozenset({
    CampaignStatus.COMPLETED, CampaignStatus.CANCELLED,
    CampaignStatus.EXPIRED, CampaignStatus.FAILED})


class CampaignHandle:
    """What :meth:`CampaignService.submit` returns.

    A handle is the *only* coupling between a client and its campaign:
    poll :attr:`status`, fetch the :meth:`result` report once done,
    :meth:`cancel` it, or — from inside the simulation — ``yield from
    handle.wait()`` to block until it finishes.
    """

    __slots__ = ("campaign_id", "tenant", "spec", "priority", "deadline",
                 "submitted_at", "started_at", "finished_at", "status",
                 "error", "_service", "_report", "_done", "_proc", "_entry")

    def __init__(self, service: Any, campaign_id: str, tenant: str,
                 spec: "CampaignSpec", priority: int,
                 deadline: Optional[float], submitted_at: float,
                 done: "Event") -> None:
        self.campaign_id = campaign_id
        self.tenant = tenant
        self.spec = spec
        self.priority = priority
        self.deadline = deadline
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.status = CampaignStatus.QUEUED
        self.error = ""
        self._service = service
        self._report: Optional[CampaignReport] = None
        self._done = done
        self._proc: Optional["Process"] = None
        self._entry: Any = None

    # -- state -------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the campaign reached a terminal status."""
        return self.status in TERMINAL_STATUSES

    @property
    def queue_wait(self) -> Optional[float]:
        """Sim-seconds spent queued (``None`` until dispatched/finished)."""
        if self.started_at is not None:
            return self.started_at - self.submitted_at
        if self.finished_at is not None:  # cancelled/expired in queue
            return self.finished_at - self.submitted_at
        return None

    @property
    def latency(self) -> Optional[float]:
        """Submit-to-complete sim-seconds (``None`` until terminal)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    # -- outcomes ----------------------------------------------------------

    def result(self) -> CampaignReport:
        """The campaign's :class:`~repro.core.report.CampaignReport`.

        Raises
        ------
        CampaignNotDone / CampaignCancelled / CampaignFailed
            When called early, after cancel/expiry, or after a runner
            error (``.error`` carries the failure text).
        """
        if self.status is CampaignStatus.COMPLETED:
            assert self._report is not None
            return self._report
        if self.status in (CampaignStatus.CANCELLED, CampaignStatus.EXPIRED):
            raise CampaignCancelled(
                f"campaign {self.campaign_id} was {self.status.value}")
        if self.status is CampaignStatus.FAILED:
            raise CampaignFailed(
                f"campaign {self.campaign_id} failed: {self.error}")
        raise CampaignNotDone(
            f"campaign {self.campaign_id} is {self.status.value}; "
            f"run the simulator (or `yield from handle.wait()`) first")

    def cancel(self) -> bool:
        """Cancel this campaign; returns True if anything was cancelled.

        Queued campaigns are removed immediately; running ones are
        interrupted (the status flips to ``CANCELLED`` once the
        interrupt is delivered, at the current sim time).  Cancelling a
        finished campaign is a no-op returning False.
        """
        return self._service.cancel(self)

    def wait(self):
        """Generator: block (in sim time) until terminal, return the report.

        Usage from inside a simulation process::

            report = yield from handle.wait()
        """
        if not self.done:
            yield self._done
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CampaignHandle {self.campaign_id} tenant={self.tenant} "
                f"{self.status.value}>")
