"""Per-tenant quotas and usage accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TenantQuota:
    """Admission-control limits for one tenant.

    Attributes
    ----------
    max_in_flight:
        Campaigns this tenant may have *running* on facility slots at
        once; the scheduler skips tenants at their cap (they stay
        queued, they are not rejected).
    max_queued:
        Bound on the tenant's wait queue; submissions beyond it are
        rejected with :class:`~repro.service.errors.QueueFull`.
    experiment_budget:
        Optional lifetime cap on *admitted* experiments (the sum of
        ``spec.max_experiments`` over accepted submissions); exceeding
        it rejects with :class:`~repro.service.errors.BudgetExhausted`.
        ``None`` = unmetered.
    share:
        Fair-share weight: a tenant with ``share=2.0`` is entitled to
        twice the facility throughput of a ``share=1.0`` tenant under
        contention.
    """

    max_in_flight: int = 4
    max_queued: int = 64
    experiment_budget: Optional[int] = None
    share: float = 1.0

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if self.experiment_budget is not None and self.experiment_budget < 0:
            raise ValueError("experiment_budget must be >= 0 or None")
        if not self.share > 0:
            raise ValueError("share must be > 0")


#: Default quota applied by ``CampaignService(default_quota=...)`` users
#: that opt into auto-registration.
DEFAULT_QUOTA = TenantQuota()


@dataclass
class TenantState:
    """Live usage accounting for one registered tenant.

    Mutated only by the owning :class:`~repro.service.CampaignService`;
    read freely (``service.tenant("a").running``).
    """

    name: str
    quota: TenantQuota
    queued: int = 0
    running: int = 0
    admitted_experiments: int = 0
    completed_campaigns: int = 0
    completed_experiments: int = 0
    rejected: int = 0

    @property
    def budget_remaining(self) -> Optional[int]:
        """Unadmitted experiment budget (``None`` = unmetered)."""
        if self.quota.experiment_budget is None:
            return None
        return self.quota.experiment_budget - self.admitted_experiments

    @property
    def in_system(self) -> int:
        """Queued + running campaigns (the backpressure quantity)."""
        return self.queued + self.running


def jain_fairness(values: "list[float] | tuple[float, ...]") -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)``, in ``(0, 1]``.

    1.0 = perfectly even allocation; ``1/n`` = one tenant got
    everything.  An empty or all-zero allocation counts as fair (1.0) —
    nobody was served, nobody was starved relative to anyone else.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(xs) * squares)
