"""Deterministic open/closed-loop load generation for the service.

:class:`LoadGenerator` drives a :class:`~repro.service.CampaignService`
with a mixed tenant population:

- *closed-loop* tenants keep a fixed number of campaigns in flight and
  submit a replacement the moment one finishes (think: a lab group with
  a standing pipeline);
- *open-loop* tenants submit at seeded-exponential arrival times
  regardless of completions (think: an external partner firing requests
  over the federation), taking explicit rejections on the chin.

Everything runs on sim time with seeded randomness, so a load run is a
reproducible experiment: same seed, same arrivals, same rejections,
same p99.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.core.campaign import CampaignSpec
from repro.core.report import CampaignReport
from repro.service.errors import AdmissionError
from repro.service.service import CampaignService
from repro.service.tenants import TenantQuota
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's traffic shape.

    Attributes
    ----------
    name / share / quota:
        Identity, fair-share weight, and admission quota (a default
        quota with this share when ``None``).
    mode:
        ``"closed"`` (fixed concurrency, submit-on-complete) or
        ``"open"`` (Poisson arrivals at ``arrival_rate_per_s``).
    campaigns:
        Total campaigns this tenant will try to submit.
    concurrency:
        Closed-loop: how many campaigns to keep in flight.
    arrival_rate_per_s:
        Open-loop: mean arrivals per sim-second.
    experiments:
        ``max_experiments`` per submitted campaign.
    priority / deadline_s:
        Per-submission priority and relative deadline (absolute
        deadline = submit time + ``deadline_s``; ``None`` = none).
    """

    name: str
    mode: str = "closed"
    campaigns: int = 10
    concurrency: int = 4
    arrival_rate_per_s: float = 0.0
    experiments: int = 8
    priority: int = 0
    deadline_s: Optional[float] = None
    share: float = 1.0
    quota: Optional[TenantQuota] = None

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', "
                             f"got {self.mode!r}")
        if self.campaigns < 1:
            raise ValueError("campaigns must be >= 1")
        if self.mode == "closed" and self.concurrency < 1:
            raise ValueError("closed-loop needs concurrency >= 1")
        if self.mode == "open" and not self.arrival_rate_per_s > 0:
            raise ValueError("open-loop needs arrival_rate_per_s > 0")


class LoadGenerator:
    """Drives a service with a population of :class:`TenantLoad` shapes.

    Construction registers every tenant and spawns one sim process per
    tenant; :meth:`run` advances the simulator and returns a summary
    with per-tenant outcomes, the aggregate p99 submit-to-complete
    latency, and the Jain fairness index.
    """

    def __init__(self, service: CampaignService,
                 loads: "list[TenantLoad]", *, seed: int = 0,
                 retry_backoff_s: float = 60.0) -> None:
        if not loads:
            raise ValueError("need at least one tenant load")
        self.service = service
        self.loads = list(loads)
        self.retry_backoff_s = float(retry_backoff_s)
        self.handles: dict[str, list] = {}
        self.rejections: dict[str, int] = {}
        sim = service.sim
        for i, load in enumerate(self.loads):
            quota = load.quota if load.quota is not None else \
                TenantQuota(max_in_flight=max(load.concurrency, 1),
                            max_queued=max(4 * load.concurrency, 64),
                            share=load.share)
            service.register_tenant(load.name, quota)
            self.handles[load.name] = []
            self.rejections[load.name] = 0
            rng = np.random.default_rng([seed, i])
            driver = self._closed_loop if load.mode == "closed" \
                else self._open_loop
            sim.process(driver(load, rng))

    # -- per-tenant drivers ------------------------------------------------

    def _spec(self, load: TenantLoad, index: int) -> CampaignSpec:
        return CampaignSpec(name=f"{load.name}-{index:04d}",
                            objective_key="objective",
                            max_experiments=load.experiments)

    def _submit(self, load: TenantLoad, index: int):
        deadline = None if load.deadline_s is None \
            else self.service.sim.now + load.deadline_s
        handle = self.service.submit(load.name, self._spec(load, index),
                                     priority=load.priority,
                                     deadline=deadline)
        self.handles[load.name].append(handle)
        return handle

    def _closed_loop(self, load: TenantLoad,
                     rng: np.random.Generator) -> Generator:
        """Keep ``concurrency`` in flight; replace as campaigns finish."""
        sim = self.service.sim
        submitted = 0
        in_flight: list = []
        while submitted < load.campaigns or in_flight:
            while submitted < load.campaigns \
                    and len(in_flight) < load.concurrency:
                try:
                    in_flight.append(self._submit(load, submitted))
                except AdmissionError:
                    self.rejections[load.name] += 1
                    # Bounded-queue backpressure: back off, then retry
                    # the same campaign index (jitter keeps tenants from
                    # thundering back in lockstep).
                    yield sim.timeout(
                        self.retry_backoff_s * (0.5 + rng.random()))
                    continue
                submitted += 1
            if in_flight:
                yield sim.any_of([h._done for h in in_flight])
                in_flight = [h for h in in_flight if not h.done]

    def _open_loop(self, load: TenantLoad,
                   rng: np.random.Generator) -> Generator:
        """Poisson arrivals; rejections are counted, never retried."""
        sim = self.service.sim
        for index in range(load.campaigns):
            yield sim.timeout(rng.exponential(1.0 / load.arrival_rate_per_s))
            try:
                self._submit(load, index)
            except AdmissionError:
                self.rejections[load.name] += 1

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> dict[str, Any]:
        """Advance the simulator and summarize the run (plain data)."""
        self.service.sim.run(until=until)
        agg = self.service.metrics.histogram("service.submit_to_complete",
                                             lo=1e-3)
        per_tenant = {}
        for load in self.loads:
            state = self.service.tenant(load.name)
            per_tenant[load.name] = {
                "submitted": len(self.handles[load.name]),
                "completed": state.completed_campaigns,
                "experiments": state.completed_experiments,
                "rejections": self.rejections[load.name],
            }
        completed = sum(t["completed"] for t in per_tenant.values())
        rejected = sum(t["rejections"] for t in per_tenant.values())
        return {
            "tenants": per_tenant,
            "campaigns_completed": completed,
            "rejections": rejected,
            "peak_in_system": self.service.peak_in_system,
            "p99_submit_to_complete_s": agg.quantile(0.99),
            "mean_submit_to_complete_s": agg.mean,
            "fairness": self.service.fairness(),
            "sim_seconds": float(self.service.sim.now),
        }


def synthetic_runner(sim: Simulator, *, seed: int = 0,
                     mean_experiment_s: float = 300.0,
                     jitter: float = 0.3):
    """A facility-slot runner that "executes" campaigns as timed waits.

    Each experiment takes ``mean_experiment_s`` +/- ``jitter`` (seeded),
    and the campaign returns a ready :class:`CampaignReport`.  Useful
    for load tests and examples where real orchestrators would drown
    the signal; for the full stack, build slots from
    :meth:`CampaignService.from_testbed` instead.
    """
    rng = np.random.default_rng(seed)

    def run(spec: CampaignSpec) -> Generator:
        started = float(sim.now)
        best = None
        for _ in range(spec.max_experiments):
            scale = 1.0 + jitter * (2.0 * rng.random() - 1.0)
            yield sim.timeout(mean_experiment_s * scale)
            value = float(rng.random())
            best = value if best is None or value > best else best
        return CampaignReport(
            campaign=spec.name, objective_key=spec.objective_key,
            n_experiments=spec.max_experiments,
            n_valid=spec.max_experiments, best_value=best,
            stop_reason="budget-exhausted", started=started,
            finished=float(sim.now), sim_seconds=float(sim.now))

    return run
