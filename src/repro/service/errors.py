"""Service-layer exceptions: admission rejections and handle errors.

Admission control rejects *explicitly* — a bounded queue never silently
drops a campaign.  Every rejection is an :class:`AdmissionError` subclass
carrying the tenant and a stable ``reason`` slug (the same slug labels
the ``service.rejected`` counter), so callers can branch on type and
operators can alert on the metric.
"""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base class for everything :mod:`repro.service` raises."""


class AdmissionError(ServiceError):
    """A submission was rejected at the front door.

    Attributes
    ----------
    tenant:
        Who submitted.
    reason:
        Stable slug (``"unknown-tenant"``, ``"queue-full"``,
        ``"budget-exhausted"``, ``"deadline-expired"``) matching the
        ``reason`` label on the ``service.rejected`` counter.
    """

    reason = "rejected"

    def __init__(self, tenant: str, message: str) -> None:
        super().__init__(f"tenant {tenant!r}: {message}")
        self.tenant = tenant


class UnknownTenant(AdmissionError):
    """Submission from a tenant that was never registered."""

    reason = "unknown-tenant"


class QueueFull(AdmissionError):
    """The tenant's bounded queue is at ``max_queued`` — backpressure.

    ``depth`` carries the queue depth at rejection time so callers can
    implement informed retry/backoff.
    """

    reason = "queue-full"

    def __init__(self, tenant: str, message: str, *, depth: int = 0) -> None:
        super().__init__(tenant, message)
        self.depth = depth


class BudgetExhausted(AdmissionError):
    """Admitting this campaign would exceed the tenant's experiment budget."""

    reason = "budget-exhausted"


class DeadlineExpired(AdmissionError):
    """The submitted deadline already lies in the (simulated) past."""

    reason = "deadline-expired"


class CampaignNotDone(ServiceError):
    """``handle.result()`` was called before the campaign finished."""


class CampaignCancelled(ServiceError):
    """``handle.result()`` on a cancelled (or deadline-expired) campaign."""


class CampaignFailed(ServiceError):
    """``handle.result()`` on a campaign whose runner raised."""
