"""Fair-share + deadline scheduling over shared facility slots.

Two policies, one interface:

- :class:`FairShareScheduler` — deterministic weighted fair queuing.
  Each tenant carries a *virtual time* that advances by
  ``cost / share`` whenever one of its campaigns is dispatched; the
  scheduler always serves the eligible backlogged tenant with the
  smallest virtual time, so long-run throughput converges to the share
  weights regardless of who floods the queue.  Within a tenant, entries
  are ordered by ``(-priority, deadline, submission order)`` — i.e.
  priority first, then earliest-deadline-first.  An optional *urgency
  window* lets a deadline preempt fair order across tenants when it is
  about to lapse.
- :class:`RLFairShareScheduler` — the A1 tabular Q-learning router
  (:class:`repro.methods.rl_scheduler.QLearningScheduler`) extended to
  the multi-tenant case: the learned action is *which tenant to serve
  next*, the state is the discretized
  :class:`~repro.methods.rl_scheduler.MultiTenantSchedulingState`
  (backlog, fairness debt, deadline urgency), and the reward favors low
  queue wait and low virtual-time spread.  Fully deterministic given
  its RNG.

Everything is sim-time only: ties break on the monotonically increasing
submission sequence, never on wall time or object identity, so two
same-seed service runs produce identical dispatch sequences.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.methods.rl_scheduler import (MultiTenantSchedulingState,
                                        QLearningScheduler)
from repro.service.handle import CampaignHandle

_INF = float("inf")


@dataclass(order=True)
class QueueEntry:
    """One queued campaign, ordered ``(-priority, deadline, seq)``."""

    sort_key: tuple = field(init=False, repr=False)
    seq: int = field(compare=False)
    tenant: str = field(compare=False)
    handle: CampaignHandle = field(compare=False)
    cost: float = field(compare=False)
    priority: int = field(compare=False, default=0)
    deadline: Optional[float] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def __post_init__(self) -> None:
        self.sort_key = (-self.priority,
                         self.deadline if self.deadline is not None else _INF,
                         self.seq)


class FairShareScheduler:
    """Deterministic weighted-fair-queuing + EDF campaign scheduler.

    Parameters
    ----------
    deadline_urgency_s:
        When > 0, an eligible head-of-queue entry whose deadline falls
        within ``now + deadline_urgency_s`` is served ahead of fair
        order (earliest such deadline first).  0 disables preemption —
        deadlines then only order entries *within* a tenant.
    """

    def __init__(self, *, deadline_urgency_s: float = 0.0) -> None:
        if deadline_urgency_s < 0:
            raise ValueError("deadline_urgency_s must be >= 0")
        self.deadline_urgency_s = deadline_urgency_s
        self._queues: dict[str, list[QueueEntry]] = {}
        self._vtime: dict[str, float] = {}
        self._shares: dict[str, float] = {}
        self._order: dict[str, int] = {}  # registration order, tie-break
        self._vfloor = 0.0
        self.stats = {"dispatched": 0, "urgent_dispatches": 0,
                      "cancelled": 0}

    # -- registration ------------------------------------------------------

    def register(self, tenant: str, share: float = 1.0) -> None:
        """Declare a tenant and its fair-share weight (idempotent)."""
        if not share > 0:
            raise ValueError("share must be > 0")
        if tenant not in self._queues:
            self._queues[tenant] = []
            self._vtime[tenant] = self._vfloor
            self._order[tenant] = len(self._order)
        self._shares[tenant] = float(share)

    @property
    def tenants(self) -> list[str]:
        """Registered tenants, in registration order."""
        return sorted(self._queues, key=self._order.__getitem__)

    def virtual_time(self, tenant: str) -> float:
        return self._vtime[tenant]

    # -- queue operations --------------------------------------------------

    def enqueue(self, entry: QueueEntry) -> None:
        queue = self._queues[entry.tenant]
        if not queue:
            # A tenant returning from idle must not spend banked credit:
            # rejoin at the current virtual floor, not at its stale time.
            self._vtime[entry.tenant] = max(self._vtime[entry.tenant],
                                            self._vfloor)
        heapq.heappush(queue, entry)

    def remove(self, entry: QueueEntry) -> bool:
        """Lazily cancel a queued entry (skipped when it surfaces)."""
        if entry.cancelled:
            return False
        entry.cancelled = True
        self.stats["cancelled"] += 1
        return True

    def backlog(self, tenant: Optional[str] = None) -> int:
        """Live queued entries for one tenant (or all)."""
        if tenant is not None:
            return sum(1 for e in self._queues[tenant] if not e.cancelled)
        return sum(self.backlog(t) for t in self._queues)

    def _prune(self, tenant: str) -> Optional[QueueEntry]:
        """Head of a tenant's queue after dropping cancelled entries."""
        queue = self._queues[tenant]
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
        return queue[0] if queue else None

    # -- dispatch ----------------------------------------------------------

    def select(self, now: float,
               eligible: Callable[[str], bool]) -> Optional[QueueEntry]:
        """Pop the next entry to run, or ``None`` when nothing is runnable.

        ``eligible(tenant)`` gates tenants (the service passes the
        in-flight quota check); ineligible tenants keep their queues.
        """
        heads: list[tuple[str, QueueEntry]] = []
        for tenant in self.tenants:
            head = self._prune(tenant)
            if head is not None and eligible(tenant):
                heads.append((tenant, head))
        if not heads:
            return None

        chosen = self._pick(now, heads)
        return self._dispatch(chosen)

    def _pick(self, now: float,
              heads: list[tuple[str, QueueEntry]]) -> str:
        """Fair-share choice with optional deadline-urgency preemption."""
        if self.deadline_urgency_s > 0:
            urgent = [(e.deadline, e.seq, t) for t, e in heads
                      if e.deadline is not None
                      and e.deadline <= now + self.deadline_urgency_s]
            if urgent:
                self.stats["urgent_dispatches"] += 1
                return min(urgent)[2]
        return min(heads,
                   key=lambda te: (self._vtime[te[0]] / 1.0,
                                   self._order[te[0]]))[0]

    def _dispatch(self, tenant: str) -> QueueEntry:
        entry = heapq.heappop(self._queues[tenant])
        before = self._vtime[tenant]
        self._vtime[tenant] = before + entry.cost / self._shares[tenant]
        self._vfloor = max(self._vfloor, before)
        self.stats["dispatched"] += 1
        return entry

    def fairness_debt(self) -> float:
        """Spread of backlogged tenants' virtual times (0 = balanced)."""
        vts = [self._vtime[t] for t in self._queues if self.backlog(t) > 0]
        if len(vts) < 2:
            return 0.0
        return max(vts) - min(vts)


class RLFairShareScheduler(FairShareScheduler):
    """The A1 Q-learning router, promoted to multi-tenant slot routing.

    Actions are the registered tenants; each :meth:`select` discretizes
    the service state, asks the tabular agent which eligible tenant to
    serve, and rewards it immediately with low head-of-queue wait and
    low fairness debt.  Virtual times are still charged on dispatch so
    the fairness-debt signal (and :meth:`fairness_debt`) stays
    meaningful, and the urgency window still preempts for deadlines.

    Parameters
    ----------
    rng:
        Seeded generator for epsilon-greedy exploration — the only
        randomness; same seed, same dispatch sequence.
    wait_scale_s:
        Normalizes queue-wait in the reward (a head waiting this long
        costs reward -1).
    """

    def __init__(self, rng: np.random.Generator, *,
                 deadline_urgency_s: float = 0.0,
                 wait_scale_s: float = 3600.0,
                 alpha: float = 0.2, gamma: float = 0.9,
                 epsilon: float = 0.2) -> None:
        super().__init__(deadline_urgency_s=deadline_urgency_s)
        self._rng = rng
        self._wait_scale_s = float(wait_scale_s)
        self._agent_kw = {"alpha": alpha, "gamma": gamma, "epsilon": epsilon}
        self._agent: Optional[QLearningScheduler] = None
        self._last: Optional[tuple[MultiTenantSchedulingState, str]] = None

    def _ensure_agent(self) -> QLearningScheduler:
        # Actions are fixed at first dispatch; registering tenants after
        # traffic starts would change the action space under the table.
        if self._agent is None:
            self._agent = QLearningScheduler(self.tenants, self._rng,
                                             **self._agent_kw)
        return self._agent

    def _state(self, now: float) -> MultiTenantSchedulingState:
        slack = _INF
        for tenant in self.tenants:
            head = self._prune(tenant)
            if head is not None and head.deadline is not None:
                slack = min(slack, head.deadline - now)
        return MultiTenantSchedulingState.discretize(
            total_backlog=self.backlog(),
            fairness_debt=self.fairness_debt(),
            min_deadline_slack_s=slack)

    def _pick(self, now: float,
              heads: list[tuple[str, QueueEntry]]) -> str:
        if self.deadline_urgency_s > 0:
            urgent = [(e.deadline, e.seq, t) for t, e in heads
                      if e.deadline is not None
                      and e.deadline <= now + self.deadline_urgency_s]
            if urgent:
                self.stats["urgent_dispatches"] += 1
                return min(urgent)[2]
        agent = self._ensure_agent()
        state = self._state(now)
        available = [t for t, _ in heads]
        by_tenant = dict(heads)
        if self._last is not None:
            # Reward the previous routing decision with what the queue
            # looks like now: long head waits and fairness debt are bad.
            prev_state, prev_action = self._last
            wait = max((now - e.handle.submitted_at
                        for _, e in heads), default=0.0)
            reward = -(wait / self._wait_scale_s) \
                - 0.1 * min(self.fairness_debt(), 10.0)
            agent.update(prev_state, prev_action, reward, state)
        action = agent.choose(state, available=available)
        self._last = (state, action)
        assert action in by_tenant
        return action
