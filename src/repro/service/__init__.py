"""repro.service — multi-tenant campaign-as-a-service (PR 6 tentpole).

The unified front door for running campaigns at facility scale:
:class:`CampaignService` multiplexes thousands of concurrent campaigns
from many tenants over a shared pool of facility slots, with admission
control (quotas, bounded queues, budgets), fair-share + deadline
scheduling, explicit backpressure, and ``service.*`` observability —
all on simulated time, hash-verifiable under :mod:`repro.scale`.

Layout
------
``errors``     — admission-rejection and handle exception taxonomy
``tenants``    — quotas, live usage accounting, Jain fairness
``handle``     — :class:`CampaignHandle` / :class:`CampaignStatus`
``scheduler``  — weighted-fair-queuing + EDF; RL (A1) variant
``service``    — :class:`CampaignService` + :class:`FacilitySlot`
``loadgen``    — deterministic open/closed-loop load generation
"""

from repro.service.errors import (AdmissionError, BudgetExhausted,
                                  CampaignCancelled, CampaignFailed,
                                  CampaignNotDone, DeadlineExpired, QueueFull,
                                  ServiceError, UnknownTenant)
from repro.service.handle import (TERMINAL_STATUSES, CampaignHandle,
                                  CampaignStatus)
from repro.service.loadgen import LoadGenerator, TenantLoad, synthetic_runner
from repro.service.scheduler import (FairShareScheduler, QueueEntry,
                                     RLFairShareScheduler)
from repro.service.service import CampaignRunner, CampaignService, FacilitySlot
from repro.service.tenants import (DEFAULT_QUOTA, TenantQuota, TenantState,
                                   jain_fairness)

__all__ = [
    "AdmissionError",
    "BudgetExhausted",
    "CampaignCancelled",
    "CampaignFailed",
    "CampaignHandle",
    "CampaignNotDone",
    "CampaignRunner",
    "CampaignService",
    "CampaignStatus",
    "DEFAULT_QUOTA",
    "DeadlineExpired",
    "FacilitySlot",
    "FairShareScheduler",
    "LoadGenerator",
    "QueueEntry",
    "QueueFull",
    "RLFairShareScheduler",
    "ServiceError",
    "TenantLoad",
    "TenantQuota",
    "TenantState",
    "TERMINAL_STATUSES",
    "UnknownTenant",
    "jain_fairness",
    "synthetic_runner",
]
