"""Automated calibration maintenance (milestone M4).

"Automated calibration protocols that enable instruments to 'plug in'
without manual setup."  The :class:`MaintenanceAgent` watches a fleet's
calibration drift and dispatches automated recalibration whenever an
instrument's bias exceeds tolerance — the keep-it-calibrated half of M4
(the plug-in half is DNS-SD announcement, E5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.instruments.base import Instrument, InstrumentStatus
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class MaintenanceAgent:
    """Periodic drift QA with automated recalibration dispatch.

    Parameters
    ----------
    sim:
        Kernel.
    check_interval_s:
        QA sweep period.
    bias_tolerance:
        Absolute drift beyond which recalibration is dispatched.
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`; the
        public :attr:`stats` mapping is a registry-backed view either way.
    """

    def __init__(self, sim: "Simulator", *, check_interval_s: float = 3600.0,
                 bias_tolerance: float = 0.05,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.check_interval_s = check_interval_s
        self.bias_tolerance = bias_tolerance
        self._fleet: list[Instrument] = []
        self._in_progress: set[str] = set()
        self.events: list[tuple[float, str, str]] = []
        self.metrics = metrics or MetricsRegistry()
        self.stats = self.metrics.stats(
            "maintenance", {"sweeps": 0, "calibrations": 0})
        self._proc = None

    def watch(self, instrument: Instrument) -> None:
        if instrument.calibration is None:
            raise ValueError(
                f"{instrument.name} has no calibration model to maintain")
        self._fleet.append(instrument)

    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("maintenance agent already started")
        self._proc = self.sim.process(self._run())

    def _run(self):
        while True:
            yield self.sim.timeout(self.check_interval_s)
            self.stats["sweeps"] += 1
            for inst in self._fleet:
                if inst.name in self._in_progress:
                    continue
                if inst.status in (InstrumentStatus.FAULT,
                                   InstrumentStatus.OFFLINE):
                    continue
                if inst.calibration.needs_calibration(self.bias_tolerance):
                    self._in_progress.add(inst.name)
                    self.sim.process(self._recalibrate(inst))

    def _recalibrate(self, inst: Instrument):
        self.events.append((self.sim.now, "dispatch", inst.name))
        try:
            yield from inst.auto_calibrate()
        finally:
            self._in_progress.discard(inst.name)
        self.stats["calibrations"] += 1
        self.events.append((self.sim.now, "calibrated", inst.name))

    def worst_bias(self) -> float:
        """Largest absolute drift currently in the fleet."""
        return max((abs(i.calibration.bias()) for i in self._fleet),
                   default=0.0)
