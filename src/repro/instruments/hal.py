"""Hardware abstraction layer (milestone M1).

"Establish common integration interfaces for scientific instruments with
vendor-agnostic hardware abstraction layers."  A :class:`HalAdapter`
translates canonical :class:`~repro.instruments.base.OperationRequest`
objects into one vendor's native dialect; the
:class:`HardwareAbstractionLayer` routes requests to the right adapter so
agents never see vendor differences — the mechanism E6 evaluates.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.instruments.base import OperationRequest
from repro.instruments.errors import VendorError
from repro.instruments.vendors import VendorProtocol
from repro.obs.metrics import MetricsRegistry


class HalAdapter:
    """Canonical-to-native translator for one instrument endpoint."""

    def __init__(self, protocol: VendorProtocol,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.protocol = protocol
        metrics = metrics or MetricsRegistry()
        self.stats = metrics.stats(
            "hal.adapter", {"requests": 0, "unsupported": 0},
            instrument=self.instrument_name, vendor=self.vendor,
            site=protocol.instrument.site)

    @property
    def instrument_name(self) -> str:
        return self.protocol.instrument.name

    @property
    def vendor(self) -> str:
        return self.protocol.vendor

    def supports(self, operation: str) -> bool:
        return (operation in self.protocol.dialect.command_map
                and operation in self.protocol.instrument.operations)

    def execute(self, request: OperationRequest):
        """Generator: run a canonical request through the native protocol."""
        self.stats["requests"] += 1
        dialect = self.protocol.dialect
        native_cmd = dialect.command_map.get(request.operation)
        if native_cmd is None or not self.supports(request.operation):
            self.stats["unsupported"] += 1
            raise VendorError(
                f"HAL: {self.instrument_name} ({self.vendor}) does not "
                f"support operation {request.operation!r}")
        payload = dialect.encode(dict(request.params))
        result = yield from self.protocol.invoke(
            native_cmd, payload, sample=request.sample,
            requester=request.requester)
        return result


class HardwareAbstractionLayer:
    """The site- or federation-wide registry of HAL adapters.

    Agents address instruments by name and canonical operation; the HAL
    owns the vendor mess.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self._adapters: dict[str, HalAdapter] = {}

    def register(self, protocol: VendorProtocol) -> HalAdapter:
        """Wrap a vendor endpoint and make it addressable by name."""
        adapter = HalAdapter(protocol, metrics=self.metrics)
        name = adapter.instrument_name
        if name in self._adapters:
            raise ValueError(f"instrument {name!r} already registered")
        self._adapters[name] = adapter
        return adapter

    def adapter(self, instrument_name: str) -> HalAdapter:
        try:
            return self._adapters[instrument_name]
        except KeyError:
            raise KeyError(
                f"no HAL adapter for {instrument_name!r}; registered: "
                f"{sorted(self._adapters)}") from None

    def instruments(self, operation: str | None = None) -> list[str]:
        """Names of registered instruments, optionally filtered by op."""
        return sorted(
            name for name, a in self._adapters.items()
            if operation is None or a.supports(operation))

    def execute(self, instrument_name: str, request: OperationRequest):
        """Generator: route a canonical request to the named instrument."""
        adapter = self.adapter(instrument_name)
        result = yield from adapter.execute(request)
        return result

    def describe(self) -> dict[str, dict[str, Any]]:
        """Inventory: name -> {vendor, kind, operations} (for discovery)."""
        return {
            name: {
                "vendor": a.vendor,
                "kind": a.protocol.instrument.kind,
                "operations": [op for op in
                               a.protocol.instrument.operations
                               if a.supports(op)],
            }
            for name, a in self._adapters.items()
        }
