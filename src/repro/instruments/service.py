"""Instrument microservices: remote instrument control over RPC (M10).

"Deploy containerized agent microservices with standardized gRPC/AMQP
communication protocols across multiple DOE laboratory facilities,
demonstrating cross-vendor instrument control and federated identity
integration."

An :class:`InstrumentService` exposes one site's HAL as an RPC endpoint —
the "containerized microservice" in front of the bench — with every call
passing the zero-trust gateway.  A :class:`RemoteInstrumentClient` gives
agents at *other* sites the same canonical `execute` interface as a local
HAL, so executors can drive instruments across institutional boundaries
without knowing where (or from which vendor) they live.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.comm.rpc import RpcClient, RpcServer
from repro.instruments.base import OperationRequest
from repro.instruments.hal import HardwareAbstractionLayer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator


class InstrumentService:
    """One site's instruments, published as an RPC microservice.

    Parameters
    ----------
    sim:
        Kernel.
    hal:
        The HAL holding this site's instruments.
    site:
        Hosting site.
    name:
        Service (and RPC server) name.
    """

    SERVICE_TYPE = "_instrument-service._aisle"

    def __init__(self, sim: "Simulator", hal: HardwareAbstractionLayer,
                 site: str, name: Optional[str] = None) -> None:
        self.sim = sim
        self.hal = hal
        self.site = site
        self.name = name or f"instrument-service.{site}"
        self.server = RpcServer(sim, self.name, site)
        self.server.register("execute", self._handle_execute)
        self.server.register("inventory", self._handle_inventory)
        self.stats = {"executions": 0, "errors": 0}

    # -- handlers -------------------------------------------------------------

    def _handle_execute(self, payload: dict[str, Any]):
        """Generator handler: run a canonical request on a local instrument.

        Payload: ``{"instrument": name, "operation": op, "params": {...},
        "sample": Sample|None, "requester": str}``.
        """
        self.stats["executions"] += 1
        request = OperationRequest(
            operation=payload["operation"],
            params=dict(payload.get("params") or {}),
            sample=payload.get("sample"),
            requester=payload.get("requester", "remote"))
        try:
            result = yield from self.hal.execute(payload["instrument"],
                                                 request)
        except Exception:
            self.stats["errors"] += 1
            raise
        return result

    def _handle_inventory(self, _payload: Any) -> dict[str, Any]:
        return self.hal.describe()

    def announcement(self, ttl_s: float = 600.0):
        """A DNS-SD announcement for this service (register via DnsSd)."""
        from repro.comm.discovery import ServiceAnnouncement
        return ServiceAnnouncement(
            instance=self.name, service_type=self.SERVICE_TYPE,
            endpoint=self.name,
            capabilities={"site": self.site,
                          "instruments": sorted(self.hal.describe())},
            ttl_s=ttl_s)


class RemoteInstrumentClient:
    """Drive another site's instruments through its microservice.

    Presents the same generator-based ``execute(instrument, request)``
    surface as a local HAL, so an
    :class:`~repro.agents.executor.ExecutorAgent` can be pointed at a
    remote facility unchanged.

    Parameters
    ----------
    sim, network:
        Kernel and transport.
    site:
        The *caller's* site.
    service:
        The remote :class:`InstrumentService`.
    gateway / token:
        Zero-trust credentials: every remote execute is verified at the
        service's edge (federated identity integration, M10).
    deadline_s:
        Per-call deadline; instrument operations are long, so this
        defaults high.
    """

    def __init__(self, sim: "Simulator", network: "Network", site: str,
                 service: InstrumentService, *, gateway: Any = None,
                 token: Any = None, identity: str = "remote-agent",
                 deadline_s: float = 48 * 3600.0) -> None:
        self.sim = sim
        self.service = service
        self.deadline_s = deadline_s
        self._rpc = RpcClient(sim, network, site, identity=identity,
                              gateway=gateway, token=token)

    @property
    def token(self):
        return self._rpc.token

    @token.setter
    def token(self, value) -> None:
        # Refresh loops assign here (continuous authentication).
        self._rpc.token = value

    def execute(self, instrument_name: str, request: OperationRequest):
        """Generator: run a canonical request on the remote instrument."""
        result = yield from self._rpc.call(
            self.service.server, "execute",
            {"instrument": instrument_name,
             "operation": request.operation,
             "params": dict(request.params),
             "sample": request.sample,
             "requester": request.requester},
            deadline_s=self.deadline_s, retries=1)
        return result

    def inventory(self):
        """Generator: list the remote site's instruments."""
        result = yield from self._rpc.call(self.service.server, "inventory",
                                           None, deadline_s=60.0)
        return result
