"""Physics-aware digital twins (milestone M3).

A :class:`DigitalTwin` mirrors a physical instrument: it knows the
instrument's operating envelope *and* a safety/science envelope narrower
than the hardware interlocks, and it can cheaply predict what a request
would produce (with twin model error).  The verification layer (E2) uses
twins to vet agent-proposed experiments before execution — "testing and
validating autonomous workflows before deployment on physical
instruments" (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

import numpy as np

from repro.instruments.base import Instrument

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.labsci.landscapes import Landscape
    from repro.sim.rng import RngRegistry


@dataclass
class TwinVerdict:
    """Outcome of a twin validation run."""

    ok: bool
    reasons: list[str] = field(default_factory=list)
    predicted: dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


class DigitalTwin:
    """A validated model of one instrument plus its scientific context.

    Parameters
    ----------
    instrument:
        The physical instrument being twinned.
    landscape:
        Ground truth; the twin sees it only through ``twin_error``.
    rngs:
        RNG registry for the twin's model error.
    safety_envelope:
        Parameter bounds tighter than the hardware interlocks, encoding
        scientific/safety knowledge (e.g. solvent boiling points).
    twin_error:
        Fractional RMS error of twin predictions vs truth.
    check_time_s:
        Simulated cost of one validation (twins are cheap, not free).
    """

    def __init__(self, instrument: Instrument,
                 landscape: Optional["Landscape"] = None,
                 rngs: Optional["RngRegistry"] = None,
                 safety_envelope: Optional[dict[str, tuple[float, float]]] = None,
                 forbidden_combinations: Optional[list[dict[str, Any]]] = None,
                 twin_error: float = 0.10,
                 check_time_s: float = 2.0) -> None:
        self.instrument = instrument
        self.landscape = landscape
        self.rng = (rngs.stream(f"twin/{instrument.name}")
                    if rngs is not None else np.random.default_rng(0))
        self.safety_envelope = safety_envelope or {}
        self.forbidden_combinations = forbidden_combinations or []
        self.twin_error = twin_error
        self.check_time_s = check_time_s
        self.stats = {"validations": 0, "rejections": 0, "predictions": 0}

    # -- static validation ----------------------------------------------------

    def check(self, params: Mapping[str, Any]) -> TwinVerdict:
        """Instantaneous envelope/combination screening (no sim time)."""
        self.stats["validations"] += 1
        reasons: list[str] = []
        # Hardware interlocks first.
        for key, (lo, hi) in self.instrument.operating_envelope().items():
            if key in params and isinstance(params[key], (int, float)):
                v = float(params[key])
                if not lo <= v <= hi:
                    reasons.append(
                        f"{key}={v} violates hardware interlock [{lo},{hi}]")
        # Safety/science envelope (tighter).
        for key, (lo, hi) in self.safety_envelope.items():
            if key in params and isinstance(params[key], (int, float)):
                v = float(params[key])
                if not lo <= v <= hi:
                    reasons.append(
                        f"{key}={v} outside safe envelope [{lo},{hi}]")
        # Forbidden combinations, e.g. {"solvent": "DMF",
        # "temperature": (160.0, None)} = DMF above 160 C.
        for combo in self.forbidden_combinations:
            if self._combo_applies(combo, params):
                reasons.append(f"forbidden combination: {combo}")
        if self.landscape is not None:
            try:
                self.landscape.space.validate(dict(params))
            except ValueError as exc:
                reasons.append(f"invalid parameters: {exc}")
        ok = not reasons
        if not ok:
            self.stats["rejections"] += 1
        return TwinVerdict(ok=ok, reasons=reasons)

    @staticmethod
    def _combo_applies(combo: Mapping[str, Any],
                       params: Mapping[str, Any]) -> bool:
        for key, want in combo.items():
            if key not in params:
                return False
            have = params[key]
            if isinstance(want, tuple):
                lo, hi = want
                if not isinstance(have, (int, float)):
                    return False
                if lo is not None and float(have) < lo:
                    return False
                if hi is not None and float(have) > hi:
                    return False
            elif have != want:
                return False
        return True

    # -- predictive validation --------------------------------------------------------

    def predict(self, params: Mapping[str, Any]) -> dict[str, float]:
        """Twin-model property prediction (truth + multiplicative error)."""
        if self.landscape is None:
            raise RuntimeError("twin has no landscape model")
        self.stats["predictions"] += 1
        truth = self.landscape.evaluate(params)
        return {k: float(v * (1.0 + self.rng.normal(0.0, self.twin_error)))
                for k, v in truth.items()}

    def validate(self, params: Mapping[str, Any],
                 expected: Optional[Mapping[str, float]] = None,
                 tolerance: float = 0.5):
        """Generator: full in-situ validation, spending sim time.

        Checks envelopes, then (if ``expected`` is given) compares the
        planner's predicted outcome against the twin's own prediction; a
        relative disagreement beyond ``tolerance`` flags the plan as
        scientifically ungrounded.
        """
        yield self.instrument.sim.timeout(self.check_time_s)
        verdict = self.check(params)
        if not verdict.ok or expected is None or self.landscape is None:
            return verdict
        predicted = self.predict(params)
        verdict.predicted = predicted
        for key, exp_value in expected.items():
            if key not in predicted:
                continue
            scale = max(abs(predicted[key]), 1e-6)
            if abs(predicted[key] - float(exp_value)) / scale > tolerance:
                verdict.ok = False
                verdict.reasons.append(
                    f"claimed {key}={exp_value:.4g} disagrees with twin "
                    f"prediction {predicted[key]:.4g}")
                self.stats["rejections"] += 1
        return verdict
