"""The common instrument model.

Every instrument shares: a single-occupancy duty cycle (a queue forms when
several agents want it), an operating-hours counter feeding calibration
drift, a stochastic per-operation fault model with repair times, and a
capability descriptor published to the service registry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

import numpy as np

from repro.instruments.calibration import CalibrationModel
from repro.instruments.errors import InstrumentFault, OutOfSpec
from repro.sim.ids import next_label
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry


class InstrumentStatus(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    CALIBRATING = "calibrating"
    FAULT = "fault"
    OFFLINE = "offline"


@dataclass
class OperationRequest:
    """A canonical instrument request (what the HAL speaks).

    Attributes
    ----------
    operation:
        Canonical operation name (``"synthesize"``, ``"measure"``, ...).
    params:
        Canonical parameters in canonical units (temperatures in C,
        times in s, volumes in mL).
    sample:
        The physical sample operated on, when applicable.
    requester:
        Agent identity, recorded into provenance.
    """

    operation: str
    params: dict[str, Any] = field(default_factory=dict)
    sample: Any = None
    requester: str = ""


@dataclass
class Measurement:
    """A single measurement result.

    ``values`` holds calibrated, noise-bearing scalar observations;
    ``raw`` carries the vendor-format payload (arrays, nested dicts) that
    the data-management layer must parse — deliberately heterogeneous
    across instruments to exercise metadata extraction (E8).
    """

    instrument: str
    kind: str
    values: dict[str, float]
    raw: Any = None
    units: dict[str, str] = field(default_factory=dict)
    sample_id: str = ""
    site: str = ""
    time: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)
    measurement_id: str = ""

    def __post_init__(self) -> None:
        if not self.measurement_id:
            # World-scoped allocation: instruments stamp ids explicitly
            # from ``sim.ids``; this ambient fallback covers bare
            # construction outside any instrument (tests, fixtures).
            self.measurement_id = next_label("measurement", "meas")


class Instrument:
    """Base class for all simulated instruments.

    Parameters
    ----------
    sim:
        Kernel.
    name / site:
        Identity and physical location.
    rngs:
        RNG registry; each instrument draws noise/fault streams keyed by
        its name.
    mtbf_hours:
        Mean operating hours between faults; ``inf`` disables faults.
    repair_time_s:
        Time to repair after a fault.
    calibration:
        Optional drift model.
    """

    #: Subclasses set: instrument kind for registry/capability purposes.
    kind: str = "instrument"
    #: Canonical operations this instrument supports.
    operations: tuple[str, ...] = ()

    def __init__(self, sim: "Simulator", name: str, site: str,
                 rngs: "RngRegistry", *, mtbf_hours: float = float("inf"),
                 repair_time_s: float = 3600.0,
                 calibration: Optional[CalibrationModel] = None) -> None:
        self.sim = sim
        self.name = name
        self.site = site
        self.rng = rngs.stream(f"instrument/{name}")
        self.mtbf_hours = mtbf_hours
        self.repair_time_s = repair_time_s
        self.calibration = calibration
        self.status = InstrumentStatus.IDLE
        self.duty = Resource(sim, capacity=1)
        self.operating_hours = 0.0
        self.stats = {"operations": 0, "faults": 0, "repairs": 0,
                      "busy_time": 0.0, "rejected": 0}

    def next_measurement_id(self) -> str:
        """Mint a world-scoped measurement id (same-seed worlds agree)."""
        return self.sim.ids.label("measurement", "meas")

    # -- capability surface ----------------------------------------------------

    def capability_descriptor(self) -> dict[str, Any]:
        """What the instrument advertises to the service registry."""
        return {
            "kind": self.kind,
            "operations": list(self.operations),
            "site": self.site,
            "envelope": self.operating_envelope(),
        }

    def operating_envelope(self) -> dict[str, tuple[float, float]]:
        """Hard parameter limits enforced by hardware interlocks.

        Subclasses override; the envelope is intentionally *wider* than
        the scientifically sensible region (interlocks protect hardware,
        not science).
        """
        return {}

    def check_envelope(self, params: Mapping[str, Any]) -> None:
        """Raise :class:`OutOfSpec` for interlock violations."""
        for key, (lo, hi) in self.operating_envelope().items():
            if key in params:
                v = params[key]
                if isinstance(v, (int, float)) and not lo <= float(v) <= hi:
                    self.stats["rejected"] += 1
                    raise OutOfSpec(
                        f"{self.name}: {key}={v} outside interlock "
                        f"range [{lo}, {hi}]")

    # -- the operation harness --------------------------------------------------------

    def _maybe_fault(self, duration_s: float) -> bool:
        """Draw a fault for an operation of the given duration."""
        if not np.isfinite(self.mtbf_hours):
            return False
        p_fault = min(1.0, (duration_s / 3600.0) / self.mtbf_hours)
        return bool(self.rng.random() < p_fault)

    def operate(self, request: OperationRequest, duration_s: float):
        """Generator: the common envelope of every instrument operation.

        Acquires the duty cycle, checks interlocks, spends ``duration_s``
        of simulated time, accumulates operating hours and drift, and
        rolls the fault dice.  Subclasses wrap this and add their physics.

        Raises
        ------
        InstrumentFault
            If the instrument is (or becomes) faulted.
        OutOfSpec
            For interlock violations (checked *before* time is spent).
        """
        if self.status in (InstrumentStatus.FAULT, InstrumentStatus.OFFLINE):
            raise InstrumentFault(f"{self.name} is {self.status.value}")
        self.check_envelope(request.params)
        req = self.duty.request()
        yield req
        try:
            if self.status in (InstrumentStatus.FAULT,
                               InstrumentStatus.OFFLINE):
                raise InstrumentFault(f"{self.name} is {self.status.value}")
            self.status = InstrumentStatus.BUSY
            start = self.sim.now
            yield self.sim.timeout(duration_s)
            self.stats["operations"] += 1
            self.stats["busy_time"] += self.sim.now - start
            self.operating_hours += duration_s / 3600.0
            if self.calibration is not None:
                self.calibration.accumulate(duration_s / 3600.0)
            if request.sample is not None:
                request.sample.record(self.sim.now, self.name,
                                      request.operation)
            if self._maybe_fault(duration_s):
                self._enter_fault()
                raise InstrumentFault(
                    f"{self.name} faulted during {request.operation}")
            self.status = InstrumentStatus.IDLE
        finally:
            if self.status is InstrumentStatus.BUSY:
                self.status = InstrumentStatus.IDLE
            req.release()

    def _enter_fault(self) -> None:
        self.status = InstrumentStatus.FAULT
        self.stats["faults"] += 1

    def inject_fault(self) -> None:
        """External fault injection (E11)."""
        self._enter_fault()

    def repair(self):
        """Generator: bring a faulted instrument back online."""
        if self.status is not InstrumentStatus.FAULT:
            return
        yield self.sim.timeout(self.repair_time_s)
        self.stats["repairs"] += 1
        self.status = InstrumentStatus.IDLE

    # -- calibration ----------------------------------------------------------------------

    def apply_calibration_bias(self, true_value: float,
                               noise_scale: float) -> float:
        """Observed value = truth + drift bias + white noise."""
        bias = self.calibration.bias() if self.calibration is not None else 0.0
        return float(true_value + bias
                     + self.rng.normal(0.0, noise_scale))

    def auto_calibrate(self):
        """Generator: M4's automated calibration — resets drift."""
        if self.calibration is None:
            return
        if self.status is InstrumentStatus.FAULT:
            raise InstrumentFault(f"{self.name} needs repair first")
        req = self.duty.request()
        yield req
        try:
            self.status = InstrumentStatus.CALIBRATING
            yield self.sim.timeout(self.calibration.procedure_time_s)
            self.calibration.reset()
            self.status = InstrumentStatus.IDLE
        finally:
            if self.status is InstrumentStatus.CALIBRATING:
                self.status = InstrumentStatus.IDLE
            req.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} {self.name!r}@{self.site} "
                f"{self.status.value}>")
