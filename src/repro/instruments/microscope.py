"""Electron microscope.

Acquires (small) synthetic micrographs whose texture statistics encode
film uniformity / particle dispersity.  The heaviest data producer in the
ensemble — each image is a real numpy array — which makes it the stressor
for the streaming/quality layer (E9).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.instruments.base import Instrument, Measurement, OperationRequest
from repro.labsci.sample import Sample


class ElectronMicroscope(Instrument):
    """SEM/TEM-style imaging instrument."""

    kind = "electron-microscope"
    operations = ("measure", "image")

    def __init__(self, sim, name, site, rngs, *,
                 image_time_s: float = 300.0, image_px: int = 128,
                 uniformity_noise: float = 0.03, **kw: Any) -> None:
        super().__init__(sim, name, site, rngs, **kw)
        self.image_time_s = image_time_s
        self.image_px = image_px
        self.uniformity_noise = uniformity_noise

    def operating_envelope(self) -> dict[str, tuple[float, float]]:
        return {"beam_kV": (0.5, 300.0), "magnification": (100.0, 2e6)}

    def _micrograph(self, uniformity: float) -> np.ndarray:
        """Blob texture: less uniform samples have blobbier images."""
        n = self.image_px
        img = self.rng.normal(0.5, 0.05, size=(n, n))
        n_blobs = int(round(40 * (1.0 - uniformity))) + 2
        xs = self.rng.integers(0, n, size=n_blobs)
        ys = self.rng.integers(0, n, size=n_blobs)
        radii = self.rng.uniform(2, 8, size=n_blobs)
        yy, xx = np.mgrid[0:n, 0:n]
        for x, y, r in zip(xs, ys, radii):
            img += 0.4 * np.exp(-(((xx - x) ** 2 + (yy - y) ** 2)
                                  / (2 * r ** 2)))
        return np.clip(img, 0.0, 2.0)

    def measure(self, sample: Sample, requester: str = ""):
        """Generator: acquire a micrograph; returns a :class:`Measurement`.

        If the sample's landscape does not define ``uniformity``, a proxy
        is derived from its objective property (well-optimized samples
        image more uniformly).
        """
        request = OperationRequest(operation="measure", sample=sample,
                                   requester=requester)
        yield from self.operate(request, self.image_time_s)
        truth = sample.true_properties()
        if "uniformity" in truth:
            uniformity = truth["uniformity"]
        else:
            uniformity = float(np.clip(next(iter(truth.values())), 0.0, 1.0))
        observed = float(np.clip(self.apply_calibration_bias(
            uniformity, self.uniformity_noise), 0.0, 1.0))
        img = self._micrograph(observed)
        grain_density = float((1.0 - observed) * 40 + 2)
        return Measurement(
            measurement_id=self.next_measurement_id(),
            instrument=self.name, kind="micrograph",
            values={"uniformity": observed, "grain_density": grain_density},
            raw={"image": img,
                 "acquisition": {"px": self.image_px, "beam_kV": 200.0,
                                 "dwell_us": 4.0}},
            units={"uniformity": "fraction", "grain_density": "1/um^2"},
            sample_id=sample.sample_id, site=self.site, time=self.sim.now,
            metadata={"technique": "electron-microscopy",
                      "operator": requester or "autonomous"})
