"""Automated liquid handler for reagent preparation.

Prepares stock solutions and mixtures ahead of synthesis.  Its job in the
ecosystem is mostly logistical: it gates synthesis steps (no prepared
reagents, no reaction) and contributes a third raw-data dialect (plate
maps) for the metadata extraction experiment.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.instruments.base import Instrument, Measurement, OperationRequest


class LiquidHandler(Instrument):
    """Pipetting robot with a 96-slot deck."""

    kind = "liquid-handler"
    operations = ("prepare",)

    def __init__(self, sim, name, site, rngs, *,
                 time_per_transfer_s: float = 8.0,
                 volume_error_fraction: float = 0.01,
                 deck_slots: int = 96, **kw: Any) -> None:
        super().__init__(sim, name, site, rngs, **kw)
        self.time_per_transfer_s = time_per_transfer_s
        self.volume_error_fraction = volume_error_fraction
        self.deck_slots = deck_slots
        self.prepared: dict[str, dict[str, float]] = {}

    def operating_envelope(self) -> dict[str, tuple[float, float]]:
        return {"volume_uL": (0.5, 5000.0)}

    def prepare(self, mixture_id: str, recipe: Mapping[str, float],
                requester: str = ""):
        """Generator: pipette a mixture; returns a plate-map Measurement.

        ``recipe`` maps reagent name -> volume (uL).  Actual dispensed
        volumes carry pipetting error, recorded in the plate map.
        """
        if len(self.prepared) >= self.deck_slots:
            # Oldest mixture is consumed/discarded to free a slot.
            self.prepared.pop(next(iter(self.prepared)))
        request = OperationRequest(
            operation="prepare",
            params={"volume_uL": max(recipe.values()) if recipe else 1.0},
            requester=requester)
        duration = self.time_per_transfer_s * max(len(recipe), 1)
        yield from self.operate(request, duration)
        actual = {
            reagent: float(vol * (1.0 + self.rng.normal(
                0.0, self.volume_error_fraction)))
            for reagent, vol in recipe.items()}
        self.prepared[mixture_id] = actual
        return Measurement(
            measurement_id=self.next_measurement_id(),
            instrument=self.name, kind="plate-map",
            values={"n_transfers": float(len(recipe)),
                    "total_volume_uL": float(sum(actual.values()))},
            raw={"plate": {mixture_id: actual},
                 "deck_state": {"occupied": len(self.prepared),
                                "capacity": self.deck_slots}},
            units={"total_volume_uL": "uL"},
            site=self.site, time=self.sim.now,
            metadata={"technique": "liquid-handling",
                      "operator": requester or "autonomous"})

    def has_mixture(self, mixture_id: str) -> bool:
        return mixture_id in self.prepared
