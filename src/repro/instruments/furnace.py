"""Tube furnace for thermal post-processing.

Annealing is a *transform* step: it mutates the sample's true properties
(improving the objective up to an optimal temperature, degrading beyond),
so multi-step workflows (synthesize -> anneal -> characterize) have real
cross-step dependencies for the orchestrator to schedule.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.instruments.base import Instrument, OperationRequest
from repro.labsci.sample import Sample


class TubeFurnace(Instrument):
    """Programmable tube furnace."""

    kind = "furnace"
    operations = ("anneal",)

    def __init__(self, sim, name, site, rngs, *,
                 ramp_rate_C_per_s: float = 0.5,
                 optimal_anneal_C: float = 180.0,
                 window_C: float = 60.0, **kw: Any) -> None:
        super().__init__(sim, name, site, rngs, **kw)
        self.ramp_rate_C_per_s = ramp_rate_C_per_s
        self.optimal_anneal_C = optimal_anneal_C
        self.window_C = window_C

    def operating_envelope(self) -> dict[str, tuple[float, float]]:
        return {"temperature": (25.0, 1200.0), "hold_time": (0.0, 48 * 3600.0)}

    def anneal(self, sample: Sample, temperature: float, hold_time_s: float,
               requester: str = ""):
        """Generator: ramp, hold, cool; mutates the sample's properties.

        The improvement factor peaks at ``optimal_anneal_C``:
        ``factor = 1 + 0.3 * exp(-((T - opt)/window)^2) - overheat``
        with an overheating penalty above ``opt + 2*window``.
        """
        request = OperationRequest(
            operation="anneal",
            params={"temperature": temperature, "hold_time": hold_time_s},
            sample=sample, requester=requester)
        ramp_s = abs(temperature - 25.0) / self.ramp_rate_C_per_s
        duration = 2 * ramp_s + hold_time_s  # heat, hold, cool
        yield from self.operate(request, duration)
        boost = 0.3 * float(np.exp(
            -((temperature - self.optimal_anneal_C) / self.window_C) ** 2))
        overheat = max(0.0, (temperature
                             - (self.optimal_anneal_C + 2 * self.window_C))
                       / 400.0)
        factor = max(0.1, 1.0 + boost - overheat)
        for prop in list(sample.true_properties()):
            if prop in ("plqy", "quality", "gfa", "conductivity", "response"):
                sample.apply_transform(prop, factor)
        return factor
