"""Calibration drift and automated recalibration (milestone M4).

Drift is modelled as a random-walk bias that grows with operating hours;
"equipment calibration differences introduce systematic variations that
current systems cannot automatically reconcile" (§3.2) is exactly this
bias, and automated calibration resets it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class CalibrationModel:
    """Random-walk measurement bias accumulated per operating hour.

    Parameters
    ----------
    rng:
        Noise stream.
    drift_per_hour:
        Standard deviation of the bias increment per operating hour.
    initial_bias:
        Bias right after (mis)installation.
    procedure_time_s:
        Duration of one automated calibration run.
    max_abs_bias:
        Physical bound on how far the instrument can drift.
    """

    def __init__(self, rng: np.random.Generator, drift_per_hour: float = 0.001,
                 initial_bias: float = 0.0, procedure_time_s: float = 600.0,
                 max_abs_bias: float = 0.5) -> None:
        self.rng = rng
        self.drift_per_hour = drift_per_hour
        self.procedure_time_s = procedure_time_s
        self.max_abs_bias = max_abs_bias
        self._bias = initial_bias
        self.calibrations = 0
        self.hours_since_calibration = 0.0

    def accumulate(self, hours: float) -> None:
        """Advance the drift random walk by ``hours`` of operation."""
        if hours <= 0:
            return
        step = self.rng.normal(0.0, self.drift_per_hour * np.sqrt(hours))
        self._bias = float(np.clip(self._bias + step,
                                   -self.max_abs_bias, self.max_abs_bias))
        self.hours_since_calibration += hours

    def bias(self) -> float:
        """Current systematic measurement offset."""
        return self._bias

    def reset(self) -> None:
        """Automated calibration: zero the bias."""
        self._bias = 0.0
        self.calibrations += 1
        self.hours_since_calibration = 0.0

    def needs_calibration(self, tolerance: float) -> bool:
        """Would a QA check flag this instrument?"""
        return abs(self._bias) > tolerance
