"""Photoluminescence spectrometer.

Measures optical properties (PLQY, emission wavelength) of quantum-dot
and perovskite samples.  The raw payload is a full synthetic spectrum —
a numpy array the data layer must interpret — while ``values`` carries the
fitted scalars with instrument noise and calibration drift.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.instruments.base import Instrument, Measurement, OperationRequest
from repro.labsci.sample import Sample


class PLSpectrometer(Instrument):
    """Fluorescence spectrometer with drift-prone wavelength axis."""

    kind = "spectrometer"
    operations = ("measure",)

    def __init__(self, sim, name, site, rngs, *,
                 scan_time_s: float = 45.0, plqy_noise: float = 0.015,
                 wavelength_noise_nm: float = 0.8,
                 wavelength_range: tuple[float, float] = (350.0, 900.0),
                 n_channels: int = 1024, **kw: Any) -> None:
        super().__init__(sim, name, site, rngs, **kw)
        self.scan_time_s = scan_time_s
        self.plqy_noise = plqy_noise
        self.wavelength_noise_nm = wavelength_noise_nm
        self.wavelength_range = wavelength_range
        self.n_channels = n_channels

    def operating_envelope(self) -> dict[str, tuple[float, float]]:
        return {"integration_time": (0.001, 600.0)}

    def _synthesize_spectrum(self, center_nm: float,
                             intensity: float) -> np.ndarray:
        """Gaussian emission peak + baseline + shot noise."""
        lo, hi = self.wavelength_range
        wl = np.linspace(lo, hi, self.n_channels)
        width = 18.0 + 6.0 * self.rng.random()
        signal = intensity * np.exp(-((wl - center_nm) / width) ** 2)
        baseline = 0.02 + 0.005 * np.sin(wl / 120.0)
        noise = self.rng.normal(0.0, 0.004, size=wl.shape)
        return np.vstack([wl, signal + baseline + noise])

    def measure(self, sample: Sample, requester: str = ""):
        """Generator: acquire a PL spectrum; returns a :class:`Measurement`."""
        request = OperationRequest(operation="measure", sample=sample,
                                   requester=requester)
        yield from self.operate(request, self.scan_time_s)
        true_plqy = sample.true_property("plqy")
        true_nm = sample.true_property("emission_nm")
        obs_plqy = float(np.clip(
            self.apply_calibration_bias(true_plqy, self.plqy_noise), 0.0, 1.0))
        obs_nm = float(true_nm + self.rng.normal(0.0, self.wavelength_noise_nm))
        spectrum = self._synthesize_spectrum(obs_nm, max(obs_plqy, 1e-3))
        return Measurement(
            measurement_id=self.next_measurement_id(),
            instrument=self.name, kind="pl-spectrum",
            values={"plqy": obs_plqy, "emission_nm": obs_nm},
            raw={"spectrum": spectrum,
                 "acq": {"channels": self.n_channels,
                         "integration_s": self.scan_time_s}},
            units={"plqy": "fraction", "emission_nm": "nm"},
            sample_id=sample.sample_id, site=self.site, time=self.sim.now,
            metadata={"operator": requester or "autonomous",
                      "technique": "photoluminescence"})
