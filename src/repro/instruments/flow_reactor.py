"""Fluidic self-driving-lab reactor (§3.1, ref [24]).

A continuous microfluidic reactor: droplet-scale reaction volumes, seconds
per condition once the line is primed, and in-line optical sampling.  The
module models the properties the paper quantifies — ">100x data
acquisition efficiency over traditional batch methods" with minimal
chemical waste — via per-sample time and reagent budgets orders of
magnitude below :class:`~repro.instruments.synthesis.BatchSynthesisRobot`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.instruments.base import Instrument, OperationRequest
from repro.labsci.sample import Sample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.labsci.landscapes import Landscape


class FluidicReactor(Instrument):
    """Continuous-flow droplet reactor with in-line sampling.

    Parameters
    ----------
    landscape:
        Ground truth sampled by the reactor.
    sample_time_s:
        Steady-state time per condition (droplet residence + switching).
    prime_time_s:
        One-off line priming cost when conditions change chemistry
        (i.e. when any *discrete* parameter differs from the previous
        condition).
    reagent_per_sample_mL:
        Droplet-scale consumption.
    """

    kind = "fluidic-reactor"
    operations = ("synthesize", "sweep")

    def __init__(self, sim, name, site, rngs, landscape: "Landscape", *,
                 sample_time_s: float = 12.0, prime_time_s: float = 120.0,
                 reagent_per_sample_mL: float = 0.05, **kw: Any) -> None:
        super().__init__(sim, name, site, rngs, **kw)
        self.landscape = landscape
        self.sample_time_s = sample_time_s
        self.prime_time_s = prime_time_s
        self.reagent_per_sample_mL = reagent_per_sample_mL
        self.reagent_used_mL = 0.0
        self.samples_made = 0
        self._last_chemistry: tuple[str, ...] | None = None

    def operating_envelope(self) -> dict[str, tuple[float, float]]:
        # Microfluidic lines tolerate less heat than a batch mantle and
        # clog at high concentrations.
        return {"temperature": (0.0, 260.0), "dopant_conc": (0.0, 1.0),
                "residence_time": (0.5, 3600.0)}

    def _condition_time(self, params: Mapping[str, Any]) -> float:
        chemistry = self.landscape.space.discrete_key(params)
        t = self.sample_time_s
        if chemistry != self._last_chemistry:
            t += self.prime_time_s
        self._last_chemistry = chemistry
        return t

    def synthesize(self, params: Mapping[str, Any], requester: str = ""):
        """Generator: produce one droplet-scale sample."""
        duration = self._condition_time(params)
        request = OperationRequest(operation="synthesize",
                                   params=dict(params), requester=requester)
        yield from self.operate(request, duration)
        self.reagent_used_mL += self.reagent_per_sample_mL
        self.samples_made += 1
        sample = Sample.synthesize(params, self.landscape, site=self.site)
        sample.record(self.sim.now, self.name, "synthesize(flow)")
        return sample

    def sweep(self, param_list: list[Mapping[str, Any]], requester: str = ""):
        """Generator: run a batch of conditions back-to-back.

        Returns a list of samples.  Sweeps amortize priming across
        conditions sharing a chemistry — the access pattern fluidic SDLs
        are built for.  Ground truth for the whole sweep is computed in
        one vectorized :meth:`Sample.synthesize_batch` call up front
        (truth is a pure function of params); the simulated per-condition
        timing, priming and reagent accounting are unchanged.
        """
        samples = Sample.synthesize_batch(list(param_list), self.landscape,
                                          site=self.site)
        for params, sample in zip(param_list, samples):
            duration = self._condition_time(params)
            request = OperationRequest(operation="synthesize",
                                       params=dict(params),
                                       requester=requester)
            yield from self.operate(request, duration)
            self.reagent_used_mL += self.reagent_per_sample_mL
            self.samples_made += 1
            sample.record(self.sim.now, self.name, "synthesize(flow)")
        return samples
