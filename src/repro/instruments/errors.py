"""Instrument-layer exceptions."""

from __future__ import annotations


class InstrumentError(Exception):
    """Base class for instrument failures."""


class InstrumentFault(InstrumentError):
    """The instrument hardware has faulted and needs repair."""


class OutOfSpec(InstrumentError):
    """A requested operation violates the instrument's operating envelope.

    Raised *by the instrument's own interlocks*.  Note that interlocks are
    deliberately incomplete (real instruments will happily run many
    scientifically wrong recipes) — catching the rest is the verification
    layer's job (E2).
    """


class VendorError(InstrumentError):
    """A vendor protocol rejected a native command (wrong dialect)."""
