"""HPC cluster as a computational "instrument".

The paper's workflows "run simulations on HPC systems" alongside
experiments.  This model provides a node pool with FIFO scheduling, queue
wait, walltime accounting, and a surrogate-physics job type that predicts
landscape properties with controllable model bias — cheaper but less
accurate than a real experiment, which is what makes simulation/experiment
trade-offs meaningful for the orchestrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

import numpy as np

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.labsci.landscapes import Landscape
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry


@dataclass
class JobResult:
    """Outcome of one HPC job."""

    job_id: str
    values: dict[str, float]
    queued_s: float
    ran_s: float
    nodes: int
    metadata: dict[str, Any] = field(default_factory=dict)


class HpcCluster:
    """A multi-node cluster with a FIFO node allocator.

    Parameters
    ----------
    sim, name, site, rngs:
        Standard identity plumbing.
    n_nodes:
        Pool size.
    model_bias / model_noise:
        Systematic and stochastic error of the surrogate-physics job —
        simulations are *informative but wrong*, so campaigns cannot
        simply replace experiments with compute.
    """

    kind = "hpc-cluster"

    def __init__(self, sim: "Simulator", name: str, site: str,
                 rngs: "RngRegistry", *, n_nodes: int = 16,
                 model_bias: float = 0.08, model_noise: float = 0.04) -> None:
        self.sim = sim
        self.name = name
        self.site = site
        self.rng = rngs.stream(f"hpc/{name}")
        self.nodes = Resource(sim, capacity=n_nodes)
        self.n_nodes = n_nodes
        self.model_bias = model_bias
        self.model_noise = model_noise
        self.stats = {"jobs": 0, "node_seconds": 0.0, "queue_wait": 0.0}

    @property
    def utilization_nodes(self) -> int:
        return self.nodes.count

    def capability_descriptor(self) -> dict[str, Any]:
        return {"kind": self.kind, "site": self.site, "nodes": self.n_nodes,
                "operations": ["simulate", "analyze"]}

    def run_job(self, walltime_s: float, n_nodes: int = 1,
                job_kind: str = "generic",
                compute: Optional[Any] = None):
        """Generator: allocate nodes, run, free; returns a JobResult.

        ``compute`` is an optional zero-argument callable evaluated at job
        completion whose dict result becomes ``JobResult.values``.
        """
        if n_nodes > self.n_nodes:
            raise ValueError(
                f"job wants {n_nodes} nodes; cluster has {self.n_nodes}")
        submit_time = self.sim.now
        requests = [self.nodes.request() for _ in range(n_nodes)]
        yield self.sim.all_of(requests)
        queued = self.sim.now - submit_time
        try:
            yield self.sim.timeout(walltime_s)
        finally:
            for req in requests:
                req.release()
        self.stats["jobs"] += 1
        self.stats["node_seconds"] += walltime_s * n_nodes
        self.stats["queue_wait"] += queued
        values = compute() if compute is not None else {}
        # World-scoped ids: one "hpc.job" stream per world, so same-seed
        # federations number their jobs identically.
        return JobResult(job_id=self.sim.ids.label("hpc.job", "job"),
                         values=values,
                         queued_s=queued, ran_s=walltime_s, nodes=n_nodes,
                         metadata={"kind": job_kind, "cluster": self.name})

    def simulate(self, landscape: "Landscape", params: Mapping[str, Any],
                 fidelity: str = "medium"):
        """Generator: surrogate-physics prediction of landscape properties.

        Fidelity trades walltime for error:

        ====== =========== ==========================
        level  walltime    error multiplier
        ====== =========== ==========================
        low    120 s, 1 n  2.0x
        medium 900 s, 4 n  1.0x
        high   7200 s, 8 n 0.4x
        ====== =========== ==========================
        """
        profile = {"low": (120.0, 1, 2.0), "medium": (900.0, 4, 1.0),
                   "high": (7200.0, 8, 0.4)}
        if fidelity not in profile:
            raise ValueError(f"unknown fidelity {fidelity!r}")
        walltime, n_nodes, err = profile[fidelity]

        def compute() -> dict[str, float]:
            truth = landscape.evaluate(params)
            out = {}
            for k, v in truth.items():
                scale = max(abs(v), 1e-9)
                out[k] = float(
                    v + err * self.model_bias * scale *
                    np.sin(7.0 * sum(ord(c) for c in k))
                    + self.rng.normal(0.0, err * self.model_noise * scale))
            return out

        result = yield from self.run_job(walltime, n_nodes,
                                         job_kind=f"simulate/{fidelity}",
                                         compute=compute)
        return result
