"""Vendor-specific instrument protocol dialects.

Real laboratories face "established commercial products to custom-built
research equipment not originally designed for networked automation"
(§3.1).  We model four fictional vendor dialects that differ in command
vocabulary, payload shape, and units — the heterogeneity the hardware
abstraction layer (:mod:`repro.instruments.hal`) exists to hide:

========== ==================== ======================= ==================
vendor     command style        payload shape           units
========== ==================== ======================= ==================
aisle-ref  canonical names      flat dict               canonical (C, s)
kelvin-sci ``StartSynthesis``   flat dict               Kelvin, minutes
helios     single ``execute``   nested ``{"recipe":..}`` Fahrenheit, s
custom-lab ``cmd_*``            list of (key, value)    C, hours
========== ==================== ======================= ==================

``aisle-ref`` is the one vendor whose dialect happens to match the
canonical interface, so "no HAL" workflows succeed against it and fail
against the rest — the contrast E6 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.instruments.base import Instrument
from repro.instruments.errors import VendorError

#: Canonical parameter units: temperature C, times s, volumes mL.
CANONICAL_TIME_KEYS = ("residence_time", "hold_time")


@dataclass(frozen=True)
class VendorDialect:
    """One vendor's wire conventions."""

    vendor: str
    #: canonical operation -> native command name
    command_map: dict[str, str]
    #: canonical params -> native payload
    encode: Callable[[dict[str, Any]], Any]
    #: native payload -> canonical params
    decode: Callable[[Any], dict[str, Any]]


# -- unit/shape helpers -----------------------------------------------------------

def _identity_encode(params: dict[str, Any]) -> Any:
    return dict(params)


def _identity_decode(payload: Any) -> dict[str, Any]:
    if not isinstance(payload, Mapping):
        raise VendorError(f"aisle-ref expects a flat mapping, got {payload!r}")
    return dict(payload)


def _kelvin_encode(params: dict[str, Any]) -> Any:
    out: dict[str, Any] = {}
    for k, v in params.items():
        if k == "temperature":
            out["temperature_K"] = float(v) + 273.15
        elif k in CANONICAL_TIME_KEYS:
            out[f"{k}_min"] = float(v) / 60.0
        else:
            out[k] = v
    return out


def _kelvin_decode(payload: Any) -> dict[str, Any]:
    if not isinstance(payload, Mapping):
        raise VendorError("kelvin-sci expects a mapping payload")
    out: dict[str, Any] = {}
    for k, v in payload.items():
        if k == "temperature_K":
            out["temperature"] = float(v) - 273.15
        elif k.endswith("_min"):
            out[k[:-4]] = float(v) * 60.0
        else:
            out[k] = v
    return out


def _helios_encode(params: dict[str, Any]) -> Any:
    recipe: dict[str, Any] = {}
    for k, v in params.items():
        if k == "temperature":
            recipe["T_setpoint_F"] = float(v) * 9.0 / 5.0 + 32.0
        else:
            recipe[k] = v
    return {"recipe": recipe, "schema": "helios/v2"}


def _helios_decode(payload: Any) -> dict[str, Any]:
    if (not isinstance(payload, Mapping) or "recipe" not in payload
            or not isinstance(payload["recipe"], Mapping)):
        raise VendorError("helios expects {'recipe': {...}}")
    out: dict[str, Any] = {}
    for k, v in payload["recipe"].items():
        if k == "T_setpoint_F":
            out["temperature"] = (float(v) - 32.0) * 5.0 / 9.0
        else:
            out[k] = v
    return out


def _customlab_encode(params: dict[str, Any]) -> Any:
    pairs = []
    for k, v in params.items():
        if k in CANONICAL_TIME_KEYS:
            pairs.append((f"{k}_hr", float(v) / 3600.0))
        else:
            pairs.append((k, v))
    return pairs


def _customlab_decode(payload: Any) -> dict[str, Any]:
    if not isinstance(payload, (list, tuple)):
        raise VendorError("custom-lab expects a list of (key, value) pairs")
    out: dict[str, Any] = {}
    for item in payload:
        if not (isinstance(item, (list, tuple)) and len(item) == 2):
            raise VendorError(f"bad custom-lab pair: {item!r}")
        k, v = item
        if str(k).endswith("_hr"):
            out[str(k)[:-3]] = float(v) * 3600.0
        else:
            out[str(k)] = v
    return out


#: The four dialects, keyed by vendor name.
VENDOR_DIALECTS: dict[str, VendorDialect] = {
    "aisle-ref": VendorDialect(
        vendor="aisle-ref",
        command_map={"synthesize": "synthesize", "measure": "measure",
                     "anneal": "anneal", "prepare": "prepare"},
        encode=_identity_encode, decode=_identity_decode),
    "kelvin-sci": VendorDialect(
        vendor="kelvin-sci",
        command_map={"synthesize": "StartSynthesis",
                     "measure": "StartMeasurement",
                     "anneal": "StartThermalProgram",
                     "prepare": "StartPrep"},
        encode=_kelvin_encode, decode=_kelvin_decode),
    "helios": VendorDialect(
        vendor="helios",
        command_map={"synthesize": "execute", "measure": "execute",
                     "anneal": "execute", "prepare": "execute"},
        encode=_helios_encode, decode=_helios_decode),
    "custom-lab": VendorDialect(
        vendor="custom-lab",
        command_map={"synthesize": "cmd_synth", "measure": "cmd_meas",
                     "anneal": "cmd_anneal", "prepare": "cmd_prep"},
        encode=_customlab_encode, decode=_customlab_decode),
}


class VendorProtocol:
    """An instrument's native control endpoint, speaking one dialect.

    :meth:`invoke` is what arrives "on the wire": a native command name and
    a native payload.  Unknown commands and malformed payloads raise
    :class:`VendorError` — this is where HAL-less cross-vendor workflows
    die.
    """

    def __init__(self, instrument: Instrument, dialect: VendorDialect) -> None:
        self.instrument = instrument
        self.dialect = dialect
        # Reverse map: native command -> canonical ops it can carry.
        self._reverse: dict[str, list[str]] = {}
        for op, cmd in dialect.command_map.items():
            self._reverse.setdefault(cmd, []).append(op)
        self.stats = {"invocations": 0, "errors": 0}

    @property
    def vendor(self) -> str:
        return self.dialect.vendor

    def invoke(self, native_command: str, payload: Any = None,
               sample: Any = None, requester: str = ""):
        """Generator: execute a native command.

        For multiplexed dialects (helios), the canonical operation is
        inferred from which operations the instrument supports.
        """
        self.stats["invocations"] += 1
        ops = self._reverse.get(native_command)
        if not ops:
            self.stats["errors"] += 1
            raise VendorError(
                f"{self.vendor} device {self.instrument.name!r} does not "
                f"understand command {native_command!r}")
        try:
            params = self.dialect.decode(payload) if payload is not None else {}
        except VendorError:
            self.stats["errors"] += 1
            raise
        op = next((o for o in ops if o in self.instrument.operations), ops[0])
        result = yield from self._dispatch(op, params, sample, requester)
        return result

    def _dispatch(self, op: str, params: dict[str, Any], sample: Any,
                  requester: str):
        inst = self.instrument
        if op not in inst.operations:
            self.stats["errors"] += 1
            raise VendorError(
                f"{inst.name} ({inst.kind}) does not support {op!r}")
        if op == "synthesize":
            result = yield from inst.synthesize(params, requester=requester)
        elif op == "measure":
            if sample is None:
                raise VendorError("measure requires a sample")
            result = yield from inst.measure(sample, requester=requester)
        elif op == "anneal":
            if sample is None:
                raise VendorError("anneal requires a sample")
            result = yield from inst.anneal(
                sample, temperature=float(params["temperature"]),
                hold_time_s=float(params["hold_time"]), requester=requester)
        elif op == "prepare":
            mixture_id = str(params.pop("mixture_id", "mixture"))
            result = yield from inst.prepare(mixture_id, params,
                                             requester=requester)
        else:  # pragma: no cover - defensive
            raise VendorError(f"unhandled canonical operation {op!r}")
        return result


def make_vendor_protocol(instrument: Instrument,
                         vendor: str) -> VendorProtocol:
    """Wrap ``instrument`` behind the named vendor's native protocol."""
    try:
        dialect = VENDOR_DIALECTS[vendor]
    except KeyError:
        raise KeyError(
            f"unknown vendor {vendor!r}; known: {sorted(VENDOR_DIALECTS)}"
        ) from None
    return VendorProtocol(instrument, dialect)
