"""Simulated scientific instruments and cyberinfrastructure (§3.1).

Every instrument is a discrete-event model with realistic duty cycles,
noise, calibration drift, and failure modes, fronted by vendor-specific
protocol dialects (:mod:`repro.instruments.vendors`) and unified by the
hardware abstraction layer of milestone M1 (:mod:`repro.instruments.hal`).
Physics-aware digital twins (:mod:`repro.instruments.twin`) validate
workflows before they touch "hardware" (M3).

Concrete instruments:

- :class:`~repro.instruments.synthesis.BatchSynthesisRobot` — classical
  batch synthesis (slow, reagent-hungry).
- :class:`~repro.instruments.flow_reactor.FluidicReactor` — fluidic SDL
  (fast, droplet-scale; the >100x efficiency claim of E7).
- :class:`~repro.instruments.spectrometer.PLSpectrometer` — optical
  characterization.
- :class:`~repro.instruments.xrd.XRayDiffractometer` — structure.
- :class:`~repro.instruments.microscope.ElectronMicroscope` — imaging.
- :class:`~repro.instruments.furnace.TubeFurnace` — thermal processing.
- :class:`~repro.instruments.liquid_handler.LiquidHandler` — sample prep.
- :class:`~repro.instruments.hpc.HpcCluster` — computation as a resource.
"""

from repro.instruments.base import (Instrument, InstrumentStatus, Measurement,
                                    OperationRequest)
from repro.instruments.calibration import CalibrationModel
from repro.instruments.errors import (InstrumentError, InstrumentFault,
                                      OutOfSpec, VendorError)
from repro.instruments.flow_reactor import FluidicReactor
from repro.instruments.furnace import TubeFurnace
from repro.instruments.hal import HalAdapter, HardwareAbstractionLayer
from repro.instruments.hpc import HpcCluster, JobResult
from repro.instruments.liquid_handler import LiquidHandler
from repro.instruments.maintenance import MaintenanceAgent
from repro.instruments.service import (InstrumentService,
                                       RemoteInstrumentClient)
from repro.instruments.microscope import ElectronMicroscope
from repro.instruments.spectrometer import PLSpectrometer
from repro.instruments.synthesis import BatchSynthesisRobot
from repro.instruments.twin import DigitalTwin
from repro.instruments.vendors import (VENDOR_DIALECTS, VendorProtocol,
                                       make_vendor_protocol)
from repro.instruments.xrd import XRayDiffractometer

__all__ = [
    "BatchSynthesisRobot",
    "CalibrationModel",
    "DigitalTwin",
    "ElectronMicroscope",
    "FluidicReactor",
    "HalAdapter",
    "HardwareAbstractionLayer",
    "HpcCluster",
    "Instrument",
    "InstrumentError",
    "InstrumentFault",
    "InstrumentService",
    "InstrumentStatus",
    "JobResult",
    "LiquidHandler",
    "MaintenanceAgent",
    "Measurement",
    "OperationRequest",
    "OutOfSpec",
    "PLSpectrometer",
    "RemoteInstrumentClient",
    "TubeFurnace",
    "VENDOR_DIALECTS",
    "VendorError",
    "VendorProtocol",
    "XRayDiffractometer",
    "make_vendor_protocol",
]
