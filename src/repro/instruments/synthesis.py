"""Batch synthesis robot — the classical (slow) way to make samples.

The baseline against which the fluidic SDL's >100x data-acquisition
efficiency is measured (E7): each batch takes tens of minutes and consumes
milliliters of reagent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.instruments.base import Instrument, OperationRequest
from repro.labsci.sample import Sample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.labsci.landscapes import Landscape


class BatchSynthesisRobot(Instrument):
    """Robotic batch synthesis station.

    Parameters
    ----------
    landscape:
        The ground truth the synthesized samples embody.
    batch_time_s:
        Wall time per synthesis batch (default 30 min: heat-up, reaction,
        cool-down, workup).
    reagent_per_sample_mL:
        Chemical consumption per sample.
    """

    kind = "synthesis-robot"
    operations = ("synthesize",)

    def __init__(self, sim, name, site, rngs, landscape: "Landscape", *,
                 batch_time_s: float = 1800.0,
                 reagent_per_sample_mL: float = 10.0, **kw: Any) -> None:
        super().__init__(sim, name, site, rngs, **kw)
        self.landscape = landscape
        self.batch_time_s = batch_time_s
        self.reagent_per_sample_mL = reagent_per_sample_mL
        self.reagent_used_mL = 0.0
        self.samples_made = 0

    def operating_envelope(self) -> dict[str, tuple[float, float]]:
        # Hardware interlock: the heating mantle physically cannot exceed
        # 400 C, and the pumps cannot meter below 1 uL concentrations.
        return {"temperature": (0.0, 400.0), "dopant_conc": (0.0, 10.0)}

    def synthesize(self, params: Mapping[str, Any], requester: str = ""):
        """Generator: run one batch; returns the new :class:`Sample`."""
        request = OperationRequest(operation="synthesize",
                                   params=dict(params), requester=requester)
        yield from self.operate(request, self.batch_time_s)
        self.reagent_used_mL += self.reagent_per_sample_mL
        self.samples_made += 1
        sample = Sample.synthesize(params, self.landscape, site=self.site)
        sample.record(self.sim.now, self.name, "synthesize")
        return sample
