"""X-ray diffractometer.

Produces powder diffraction patterns whose peak sharpness encodes sample
crystallinity (proxied by the landscape's objective property).  Used by
materials campaigns for structure confirmation and by the data-fabric
experiments as a second heterogeneous raw format.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.instruments.base import Instrument, Measurement, OperationRequest
from repro.labsci.sample import Sample


class XRayDiffractometer(Instrument):
    """Powder XRD with configurable two-theta range."""

    kind = "xrd"
    operations = ("measure",)

    def __init__(self, sim, name, site, rngs, *,
                 scan_time_s: float = 900.0,
                 two_theta_range: tuple[float, float] = (10.0, 80.0),
                 n_points: int = 2800, crystallinity_noise: float = 0.02,
                 **kw: Any) -> None:
        super().__init__(sim, name, site, rngs, **kw)
        self.scan_time_s = scan_time_s
        self.two_theta_range = two_theta_range
        self.n_points = n_points
        self.crystallinity_noise = crystallinity_noise

    def operating_envelope(self) -> dict[str, tuple[float, float]]:
        return {"tube_voltage_kV": (10.0, 60.0)}

    def _pattern(self, crystallinity: float,
                 seed_key: str) -> np.ndarray:
        lo, hi = self.two_theta_range
        tt = np.linspace(lo, hi, self.n_points)
        # Peak positions derived deterministically from the sample's
        # discrete chemistry so "the same phase" always diffracts alike.
        # (blake2, not hash(): the built-in is salted per process.)
        h = int.from_bytes(
            hashlib.blake2b(seed_key.encode(), digest_size=4).digest(),
            "little")
        local = np.random.default_rng(h)
        n_peaks = 6 + int(local.integers(0, 5))
        centers = local.uniform(lo + 2, hi - 2, size=n_peaks)
        heights = local.uniform(0.2, 1.0, size=n_peaks) * max(crystallinity,
                                                              0.02)
        width = 0.12 + 0.8 * (1.0 - crystallinity)  # amorphous = broad
        pattern = np.zeros_like(tt)
        for c, a in zip(centers, heights):
            pattern += a * np.exp(-((tt - c) / width) ** 2)
        pattern += 0.05 + self.rng.normal(0.0, 0.01, size=tt.shape)
        return np.vstack([tt, pattern])

    def measure(self, sample: Sample, requester: str = ""):
        """Generator: acquire a diffraction pattern."""
        request = OperationRequest(operation="measure", sample=sample,
                                   requester=requester)
        yield from self.operate(request, self.scan_time_s)
        truth = sample.true_properties()
        # Crystallinity proxy: the landscape objective (first property).
        objective = next(iter(truth.values()))
        crystallinity = float(np.clip(objective, 0.0, 1.0))
        observed = float(np.clip(self.apply_calibration_bias(
            crystallinity, self.crystallinity_noise), 0.0, 1.0))
        chem_key = "|".join(str(v) for k, v in sorted(sample.params.items())
                            if isinstance(v, str))
        pattern = self._pattern(observed, chem_key)
        return Measurement(
            measurement_id=self.next_measurement_id(),
            instrument=self.name, kind="xrd-pattern",
            values={"crystallinity": observed},
            raw={"two_theta": pattern[0], "counts": pattern[1],
                 "meta": {"radiation": "CuKa", "scan_s": self.scan_time_s}},
            units={"crystallinity": "fraction"},
            sample_id=sample.sample_id, site=self.site, time=self.sim.now,
            metadata={"technique": "powder-xrd", "operator": requester
                      or "autonomous"})
